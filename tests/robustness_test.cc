// Robustness and failure-injection tests: fuzzed parser input, extreme
// probabilities, degenerate geometry, and adversarial edge cases across
// the public API.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "common/rng.h"
#include "core/uncertain_kcenter.h"
#include "cost/expected_cost.h"
#include "metric/euclidean_space.h"
#include "solver/enclosing_ball.h"
#include "solver/gonzalez.h"
#include "uncertain/generators.h"
#include "uncertain/io.h"

namespace ukc {
namespace {

using geometry::Point;
using metric::EuclideanSpace;
using metric::SiteId;
using uncertain::UncertainDataset;
using uncertain::UncertainPoint;

// --- Parser fuzzing: random garbage must fail cleanly, never crash ---

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(1);
  const char alphabet[] = "ukc-dataset 0123456789.eE+- \n\tpointdimn#";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const size_t length = static_cast<size_t>(rng.UniformInt(0, 200));
    for (size_t i = 0; i < length; ++i) {
      text += alphabet[static_cast<size_t>(
          rng.UniformInt(0, sizeof(alphabet) - 2))];
    }
    std::istringstream stream(text);
    auto result = uncertain::LoadDataset(stream);
    // Either a parse error or (extremely unlikely) a valid dataset —
    // both fine, crashes are not.
    if (result.ok()) {
      EXPECT_GE(result->n(), 1u);
    }
  }
}

TEST(ParserFuzzTest, TruncationsOfAValidFileFailCleanly) {
  auto dataset = uncertain::GenerateLineInstance(
      4, 3, 10.0, 1.0, uncertain::ProbabilityShape::kRandom, 2);
  ASSERT_TRUE(dataset.ok());
  std::ostringstream out;
  ASSERT_TRUE(uncertain::SaveDataset(*dataset, out).ok());
  const std::string full = out.str();
  for (size_t cut = 0; cut < full.size(); cut += 7) {
    std::istringstream stream(full.substr(0, cut));
    auto result = uncertain::LoadDataset(stream);
    (void)result;  // Must not crash; failure expected for most cuts.
  }
  // The untruncated file parses.
  std::istringstream stream(full);
  EXPECT_TRUE(uncertain::LoadDataset(stream).ok());
}

TEST(ParserFuzzTest, MutatedNumbersFailOrParse) {
  auto dataset = uncertain::GenerateLineInstance(
      3, 2, 10.0, 1.0, uncertain::ProbabilityShape::kUniform, 3);
  ASSERT_TRUE(dataset.ok());
  std::ostringstream out;
  ASSERT_TRUE(uncertain::SaveDataset(*dataset, out).ok());
  std::string text = out.str();
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = text;
    const size_t pos =
        static_cast<size_t>(rng.UniformInt(0, mutated.size() - 1));
    mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    std::istringstream stream(mutated);
    auto result = uncertain::LoadDataset(stream);
    (void)result;  // No crash is the assertion.
  }
}

// --- Extreme probabilities ---

TEST(ExtremeProbabilityTest, TinyMassStillExact) {
  auto space = std::make_shared<EuclideanSpace>(1);
  const SiteId near = space->AddPoint(Point{0.0});
  const SiteId far = space->AddPoint(Point{1000.0});
  const SiteId center = space->AddPoint(Point{0.0});
  const double epsilon = 1e-12;
  std::vector<UncertainPoint> points;
  points.push_back(
      *UncertainPoint::Build({{near, 1.0 - epsilon}, {far, epsilon}}));
  auto dataset = UncertainDataset::Build(space, std::move(points));
  ASSERT_TRUE(dataset.ok());
  auto cost_value = cost::ExactAssignedCost(*dataset, {center});
  ASSERT_TRUE(cost_value.ok());
  EXPECT_NEAR(*cost_value, epsilon * 1000.0, 1e-18 * 1000.0 + 1e-12);
}

TEST(ExtremeProbabilityTest, ManyPointsTinyTailsAccumulate) {
  // 50 points each with a 1e-6 far tail: P(some tail) ~ 5e-5; the exact
  // sweep must resolve the resulting small expectation shift.
  auto space = std::make_shared<EuclideanSpace>(1);
  const SiteId origin = space->AddPoint(Point{0.0});
  const SiteId far = space->AddPoint(Point{100.0});
  std::vector<UncertainPoint> points;
  const double tail = 1e-6;
  for (int i = 0; i < 50; ++i) {
    points.push_back(*UncertainPoint::Build({{origin, 1.0 - tail}, {far, tail}}));
  }
  auto dataset = UncertainDataset::Build(space, std::move(points));
  ASSERT_TRUE(dataset.ok());
  auto cost_value = cost::ExactAssignedCost(
      *dataset, cost::Assignment(dataset->n(), origin));
  ASSERT_TRUE(cost_value.ok());
  // E[max] = 100 * P(at least one tail) = 100 * (1 - (1-tail)^50).
  const double expected = 100.0 * (1.0 - std::pow(1.0 - tail, 50));
  EXPECT_NEAR(*cost_value, expected, 1e-9);
}

// --- Degenerate geometry ---

TEST(DegenerateGeometryTest, AllPointsCoincide) {
  auto space = std::make_shared<EuclideanSpace>(2);
  const SiteId site = space->AddPoint(Point{3.0, 3.0});
  std::vector<UncertainPoint> points;
  for (int i = 0; i < 5; ++i) points.push_back(UncertainPoint::Certain(site));
  auto dataset = UncertainDataset::Build(space, std::move(points));
  ASSERT_TRUE(dataset.ok());
  core::UncertainKCenterOptions options;
  options.k = 2;
  auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->expected_cost, 0.0, 1e-12);
}

TEST(DegenerateGeometryTest, CollinearPointsInHighDimension) {
  auto space = std::make_shared<EuclideanSpace>(5);
  std::vector<UncertainPoint> points;
  for (int i = 0; i < 8; ++i) {
    Point a(5);
    Point b(5);
    a[0] = static_cast<double>(i);
    b[0] = static_cast<double>(i) + 0.25;
    points.push_back(*UncertainPoint::Build(
        {{space->AddPoint(a), 0.5}, {space->AddPoint(b), 0.5}}));
  }
  auto dataset = UncertainDataset::Build(space, std::move(points));
  ASSERT_TRUE(dataset.ok());
  for (auto rule : {cost::AssignmentRule::kExpectedDistance,
                    cost::AssignmentRule::kExpectedPoint,
                    cost::AssignmentRule::kOneCenter}) {
    core::UncertainKCenterOptions options;
    options.k = 3;
    options.rule = rule;
    auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
    ASSERT_TRUE(solution.ok()) << cost::AssignmentRuleToString(rule);
    EXPECT_GT(solution->expected_cost, 0.0);
  }
}

TEST(DegenerateGeometryTest, WelzlOnCoincidentAndCollinearClouds) {
  Rng rng(5);
  // All coincident.
  std::vector<Point> same(20, Point{1.0, 2.0, 3.0});
  auto ball = solver::WelzlMinBall(same, rng);
  ASSERT_TRUE(ball.ok());
  EXPECT_NEAR(ball->radius, 0.0, 1e-12);
  // Collinear in 3-D.
  std::vector<Point> line;
  for (int i = 0; i <= 10; ++i) {
    line.push_back(Point{static_cast<double>(i), 2.0 * i, -1.0 * i});
  }
  auto line_ball = solver::WelzlMinBall(line, rng);
  ASSERT_TRUE(line_ball.ok());
  const double half = geometry::Distance(line.front(), line.back()) / 2.0;
  EXPECT_NEAR(line_ball->radius, half, 1e-6);
}

TEST(DegenerateGeometryTest, GonzalezWithDuplicateSites) {
  EuclideanSpace space(2);
  std::vector<SiteId> sites;
  for (int i = 0; i < 12; ++i) {
    sites.push_back(space.AddPoint(Point{static_cast<double>(i % 3), 0.0}));
  }
  auto solution = solver::Gonzalez(space, sites, 3);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->radius, 0.0, 1e-12);
}

// --- Heterogeneous z (points with different location counts) ---

TEST(HeterogeneousTest, MixedLocationCountsWorkEndToEnd) {
  auto space = std::make_shared<EuclideanSpace>(2);
  Rng rng(6);
  std::vector<UncertainPoint> points;
  for (int i = 0; i < 12; ++i) {
    const size_t z = 1 + static_cast<size_t>(rng.UniformInt(0, 6));
    std::vector<uncertain::Location> locations;
    const auto probabilities = uncertain::MakeProbabilities(
        z, uncertain::ProbabilityShape::kRandom, rng);
    for (size_t j = 0; j < z; ++j) {
      locations.push_back(uncertain::Location{
          space->AddPoint(Point{rng.Gaussian(0.0, 3.0), rng.Gaussian(0.0, 3.0)}),
          probabilities[j]});
    }
    points.push_back(*UncertainPoint::Build(std::move(locations)));
  }
  auto dataset = UncertainDataset::Build(space, std::move(points));
  ASSERT_TRUE(dataset.ok());
  EXPECT_GE(dataset->max_locations(), 1u);
  core::UncertainKCenterOptions options;
  options.k = 3;
  auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
  ASSERT_TRUE(solution.ok());
  // Cross-check against Monte Carlo.
  Rng mc_rng(7);
  auto estimate = cost::MonteCarloAssignedCost(*dataset, solution->assignment,
                                               100000, mc_rng);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->mean, solution->expected_cost,
              5.0 * estimate->std_error + 1e-9);
}

// --- Scale invariance (sanity of the whole chain) ---

TEST(ScaleInvarianceTest, CostsScaleLinearly) {
  const double scale = 1000.0;
  auto build = [&](double s) {
    auto space = std::make_shared<EuclideanSpace>(2);
    std::vector<UncertainPoint> points;
    Rng rng(8);
    for (int i = 0; i < 10; ++i) {
      std::vector<uncertain::Location> locations;
      for (int j = 0; j < 3; ++j) {
        locations.push_back(uncertain::Location{
            space->AddPoint(Point{s * rng.Gaussian(), s * rng.Gaussian()}),
            1.0 / 3});
      }
      points.push_back(*UncertainPoint::Build(std::move(locations)));
    }
    return std::move(UncertainDataset::Build(space, std::move(points))).value();
  };
  UncertainDataset small = build(1.0);
  UncertainDataset large = build(scale);
  core::UncertainKCenterOptions options;
  options.k = 2;
  auto small_solution = core::SolveUncertainKCenter(&small, options);
  auto large_solution = core::SolveUncertainKCenter(&large, options);
  ASSERT_TRUE(small_solution.ok());
  ASSERT_TRUE(large_solution.ok());
  EXPECT_NEAR(large_solution->expected_cost,
              scale * small_solution->expected_cost,
              1e-6 * large_solution->expected_cost);
}

}  // namespace
}  // namespace ukc
