// End-to-end integration tests: every instance family crossed with
// every valid pipeline configuration, the coherence chain between
// lower bounds, exact optima, and pipeline costs, and solution
// stability across serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/baselines.h"
#include "core/exact_tiny.h"
#include "core/uncertain_kcenter.h"
#include "cost/expected_cost.h"
#include "exper/instances.h"
#include "exper/reference.h"
#include "uncertain/io.h"

namespace ukc {
namespace {

using uncertain::UncertainDataset;

struct Configuration {
  cost::AssignmentRule rule;
  core::SurrogateKind surrogate;
};

std::vector<Configuration> ValidConfigurations(bool euclidean) {
  std::vector<Configuration> configs;
  if (euclidean) {
    configs.push_back({cost::AssignmentRule::kExpectedDistance,
                       core::SurrogateKind::kExpectedPoint});
    configs.push_back({cost::AssignmentRule::kExpectedPoint,
                       core::SurrogateKind::kExpectedPoint});
  }
  configs.push_back({cost::AssignmentRule::kExpectedDistance,
                     core::SurrogateKind::kOneCenter});
  configs.push_back({cost::AssignmentRule::kOneCenter,
                     core::SurrogateKind::kOneCenter});
  return configs;
}

// Every family x configuration x solver runs, produces a valid
// assignment, and its exact cost agrees with an independent recompute.
TEST(IntegrationTest, AllFamiliesAllConfigurations) {
  for (auto family :
       {exper::Family::kUniform, exper::Family::kClustered,
        exper::Family::kOutlier, exper::Family::kLine,
        exper::Family::kGridGraph}) {
    exper::InstanceSpec spec;
    spec.family = family;
    spec.n = 18;
    spec.z = 3;
    spec.k = 3;
    spec.seed = 101;
    for (auto solver_kind : {solver::CertainSolverKind::kGonzalez,
                             solver::CertainSolverKind::kGonzalezRefined}) {
      auto probe = exper::MakeInstance(spec);
      ASSERT_TRUE(probe.ok());
      for (const auto& config : ValidConfigurations(probe->is_euclidean())) {
        auto dataset = exper::MakeInstance(spec);
        ASSERT_TRUE(dataset.ok());
        core::UncertainKCenterOptions options;
        options.k = spec.k;
        options.rule = config.rule;
        options.surrogate = config.surrogate;
        options.certain.kind = solver_kind;
        auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
        ASSERT_TRUE(solution.ok())
            << exper::FamilyToString(family) << " "
            << cost::AssignmentRuleToString(config.rule) << " "
            << core::SurrogateKindToString(config.surrogate);
        EXPECT_TRUE(cost::ValidateAssignment(*dataset, solution->centers,
                                             solution->assignment)
                        .ok());
        auto recomputed =
            cost::ExactAssignedCost(*dataset, solution->assignment);
        ASSERT_TRUE(recomputed.ok());
        EXPECT_DOUBLE_EQ(solution->expected_cost, *recomputed);
      }
    }
  }
}

// The coherence chain on a tiny instance:
//   lower bound <= unrestricted optimum <= restricted optimum
//   <= pipeline cost <= factor * restricted optimum.
TEST(IntegrationTest, CoherenceChainTinyEuclidean) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    exper::InstanceSpec spec;
    spec.family = exper::Family::kClustered;
    spec.n = 5;
    spec.z = 2;
    spec.k = 2;
    spec.seed = seed;
    auto dataset = exper::MakeInstance(spec);
    ASSERT_TRUE(dataset.ok());

    core::UncertainKCenterOptions options;
    options.k = 2;
    options.rule = cost::AssignmentRule::kExpectedDistance;
    auto pipeline = core::SolveUncertainKCenter(&dataset.value(), options);
    ASSERT_TRUE(pipeline.ok());

    auto candidates = core::DefaultCandidateSites(&dataset.value());
    ASSERT_TRUE(candidates.ok());
    auto unrestricted =
        core::ExactUnrestrictedAssigned(&dataset.value(), 2, *candidates);
    auto restricted = core::ExactRestrictedAssigned(
        &dataset.value(), 2, cost::AssignmentRule::kExpectedDistance,
        *candidates);
    auto bound = exper::UnrestrictedLowerBound(&dataset.value(), 2);
    ASSERT_TRUE(unrestricted.ok());
    ASSERT_TRUE(restricted.ok());
    ASSERT_TRUE(bound.ok());

    EXPECT_LE(bound->combined, unrestricted->expected_cost + 1e-9);
    EXPECT_LE(unrestricted->expected_cost, restricted->expected_cost + 1e-9);
    EXPECT_LE(restricted->expected_cost, pipeline->expected_cost + 1e-9);
    ASSERT_FALSE(pipeline->bounds.empty());
    EXPECT_LE(pipeline->expected_cost,
              pipeline->bounds[0].factor * restricted->expected_cost + 1e-9);
  }
}

// The same chain in a finite metric, where every quantity is the true
// optimum over the whole space.
TEST(IntegrationTest, CoherenceChainFiniteMetric) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kGridGraph;
  spec.n = 5;
  spec.z = 2;
  spec.k = 2;
  spec.seed = 7;
  auto dataset = exper::MakeInstance(spec);
  ASSERT_TRUE(dataset.ok());

  core::UncertainKCenterOptions options;
  options.k = 2;
  options.rule = cost::AssignmentRule::kOneCenter;
  auto pipeline = core::SolveUncertainKCenter(&dataset.value(), options);
  ASSERT_TRUE(pipeline.ok());

  auto candidates = core::DefaultCandidateSites(&dataset.value());
  ASSERT_TRUE(candidates.ok());
  auto unrestricted =
      core::ExactUnrestrictedAssigned(&dataset.value(), 2, *candidates);
  auto bound = exper::UnrestrictedLowerBound(&dataset.value(), 2);
  ASSERT_TRUE(unrestricted.ok());
  ASSERT_TRUE(bound.ok());
  EXPECT_LE(bound->combined, unrestricted->expected_cost + 1e-9);
  EXPECT_LE(unrestricted->expected_cost, pipeline->expected_cost + 1e-9);
  ASSERT_FALSE(pipeline->bounds.empty());
  EXPECT_LE(pipeline->expected_cost,
            pipeline->bounds[0].factor * unrestricted->expected_cost + 1e-9);
}

// Serializing and reloading an instance yields the same solution.
TEST(IntegrationTest, SerializationPreservesSolutions) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kClustered;
  spec.n = 25;
  spec.z = 4;
  spec.k = 3;
  spec.seed = 13;
  auto original = exper::MakeInstance(spec);
  ASSERT_TRUE(original.ok());
  std::stringstream buffer;
  ASSERT_TRUE(uncertain::SaveDataset(*original, buffer).ok());
  auto reloaded = uncertain::LoadDataset(buffer);
  ASSERT_TRUE(reloaded.ok());

  core::UncertainKCenterOptions options;
  options.k = 3;
  auto a = core::SolveUncertainKCenter(&original.value(), options);
  auto b = core::SolveUncertainKCenter(&reloaded.value(), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->expected_cost, b->expected_cost,
              1e-12 * (1.0 + a->expected_cost));
  EXPECT_NEAR(a->certain_radius, b->certain_radius, 1e-12);
}

// Baselines and the pipeline agree on the playing field: everything is
// evaluated by the same exact cost engine, and the certified lower
// bound sits below all of them.
TEST(IntegrationTest, LowerBoundBelowAllAlgorithms) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kOutlier;
  spec.n = 25;
  spec.z = 4;
  spec.k = 3;
  spec.seed = 17;
  auto probe = exper::MakeInstance(spec);
  ASSERT_TRUE(probe.ok());
  auto bound = exper::UnrestrictedLowerBound(&probe.value(), 3);
  ASSERT_TRUE(bound.ok());

  for (auto kind : {baselines::BaselineKind::kPooledLocations,
                    baselines::BaselineKind::kModalLocation,
                    baselines::BaselineKind::kRandomCenters,
                    baselines::BaselineKind::kTruncatedMedian}) {
    auto dataset = exper::MakeInstance(spec);
    ASSERT_TRUE(dataset.ok());
    baselines::BaselineOptions options;
    options.k = 3;
    auto result = baselines::RunBaseline(&dataset.value(), kind, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(bound->combined, result->expected_cost + 1e-9)
        << baselines::BaselineKindToString(kind);
  }
}

// Monte-Carlo agreement for the full pipeline on every family (the
// exact engine and the sampler disagree only through floating noise).
TEST(IntegrationTest, MonteCarloAgreesEverywhere) {
  for (auto family : {exper::Family::kClustered, exper::Family::kLine,
                      exper::Family::kGridGraph}) {
    exper::InstanceSpec spec;
    spec.family = family;
    spec.n = 20;
    spec.z = 3;
    spec.k = 3;
    spec.seed = 19;
    auto dataset = exper::MakeInstance(spec);
    ASSERT_TRUE(dataset.ok());
    core::UncertainKCenterOptions options;
    options.k = 3;
    options.rule = dataset->is_euclidean()
                       ? cost::AssignmentRule::kExpectedDistance
                       : cost::AssignmentRule::kOneCenter;
    auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
    ASSERT_TRUE(solution.ok());
    Rng rng(21);
    auto estimate = cost::MonteCarloAssignedCost(
        *dataset, solution->assignment, 150000, rng);
    ASSERT_TRUE(estimate.ok());
    EXPECT_NEAR(estimate->mean, solution->expected_cost,
                5.0 * estimate->std_error + 1e-9)
        << exper::FamilyToString(family);
  }
}

}  // namespace
}  // namespace ukc
