// Tests for the uncertain k-median extension (the paper's announced
// future work) and its deterministic local-search substrate.

#include "core/kmedian.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/exact_tiny.h"
#include "solver/kmedian_local_search.h"
#include "uncertain/generators.h"

namespace ukc {
namespace core {
namespace {

using metric::SiteId;
using uncertain::UncertainDataset;

// --- Deterministic substrate ---

TEST(KMedianLocalSearchTest, RejectsBadInput) {
  EXPECT_FALSE(solver::KMedianLocalSearch({}, 1).ok());
  EXPECT_FALSE(solver::KMedianLocalSearch({{1.0}}, 0).ok());
  EXPECT_FALSE(solver::KMedianLocalSearch({{1.0}}, 2).ok());
  EXPECT_FALSE(solver::KMedianLocalSearch({{1.0, 2.0}, {1.0}}, 1).ok());
  EXPECT_FALSE(solver::KMedianLocalSearch({{-1.0}}, 1).ok());
}

TEST(KMedianLocalSearchTest, SingleFacility) {
  // Facility 1 is cheaper in total.
  auto solution = solver::KMedianLocalSearch({{5.0, 1.0}, {5.0, 2.0}}, 1);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->facilities, (std::vector<size_t>{1}));
  EXPECT_DOUBLE_EQ(solution->total_cost, 3.0);
  EXPECT_EQ(solution->assignment, (std::vector<size_t>{1, 1}));
}

TEST(KMedianLocalSearchTest, MatchesExactOnRandomMatrices) {
  Rng rng(1);
  int matched = 0;
  const int trials = 12;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<std::vector<double>> cost(7, std::vector<double>(8));
    for (auto& row : cost) {
      for (double& value : row) value = rng.UniformDouble(0.0, 10.0);
    }
    auto heuristic = solver::KMedianLocalSearch(cost, 3);
    auto exact = solver::KMedianExact(cost, 3);
    ASSERT_TRUE(heuristic.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(heuristic->total_cost, exact->total_cost - 1e-12);
    // Arbitrary matrices are not metric, so the 5-approx bound does not
    // apply; still, best-improvement local search should usually land
    // on the optimum at this size.
    if (heuristic->total_cost <= exact->total_cost + 1e-9) ++matched;
  }
  EXPECT_GE(matched, trials / 2);
}

TEST(KMedianLocalSearchTest, FiveApproxOnMetricCosts) {
  // Metric cost matrices (points on a line, facilities = clients): the
  // single-swap local optimum is within 5x of the exact optimum.
  Rng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> xs(9);
    for (double& x : xs) x = rng.UniformDouble(0.0, 100.0);
    std::vector<std::vector<double>> cost(xs.size(),
                                          std::vector<double>(xs.size()));
    for (size_t i = 0; i < xs.size(); ++i) {
      for (size_t j = 0; j < xs.size(); ++j) {
        cost[i][j] = std::abs(xs[i] - xs[j]);
      }
    }
    auto heuristic = solver::KMedianLocalSearch(cost, 3);
    auto exact = solver::KMedianExact(cost, 3);
    ASSERT_TRUE(heuristic.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(heuristic->total_cost, 5.0 * exact->total_cost + 1e-9);
  }
}

TEST(KMedianExactTest, RespectsSubsetCap) {
  std::vector<std::vector<double>> cost(3, std::vector<double>(30, 1.0));
  EXPECT_FALSE(solver::KMedianExact(cost, 10, /*max_subsets=*/100).ok());
}

// --- Uncertain k-median ---

UncertainDataset Clustered(uint64_t seed, size_t n = 20) {
  uncertain::EuclideanInstanceOptions options;
  options.n = n;
  options.z = 3;
  options.dim = 2;
  options.seed = seed;
  return std::move(uncertain::GenerateClusteredInstance(options, 3)).value();
}

TEST(UncertainKMedianTest, CostIsSumOfPerPointExpectations) {
  UncertainDataset dataset = Clustered(3, 6);
  const auto sites = dataset.LocationSites();
  cost::Assignment assignment(dataset.n(), sites[0]);
  auto total = ExactKMedianCost(dataset, assignment);
  ASSERT_TRUE(total.ok());
  double manual = 0.0;
  for (size_t i = 0; i < dataset.n(); ++i) {
    manual += dataset.point(i).ExpectedDistanceTo(dataset.space(), sites[0]);
  }
  EXPECT_NEAR(*total, manual, 1e-12);
}

TEST(UncertainKMedianTest, EDAssignmentIsOptimalForFixedCenters) {
  // Structural fact 1: with the sum objective, per-point argmin expected
  // distance is the optimal assignment — no other assignment beats it.
  UncertainDataset dataset = Clustered(4, 6);
  const auto sites = dataset.LocationSites();
  const std::vector<SiteId> centers = {sites[0], sites[sites.size() / 2],
                                       sites.back()};
  auto ed = cost::AssignExpectedDistance(dataset, centers);
  ASSERT_TRUE(ed.ok());
  auto ed_cost = ExactKMedianCost(dataset, *ed);
  ASSERT_TRUE(ed_cost.ok());
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    cost::Assignment random(dataset.n());
    for (auto& a : random) {
      a = centers[static_cast<size_t>(rng.UniformInt(0, 2))];
    }
    auto random_cost = ExactKMedianCost(dataset, random);
    ASSERT_TRUE(random_cost.ok());
    EXPECT_GE(*random_cost, *ed_cost - 1e-12);
  }
}

TEST(UncertainKMedianTest, LocalSearchNearExactReduction) {
  for (uint64_t seed = 10; seed < 14; ++seed) {
    UncertainDataset dataset = Clustered(seed, 8);
    const auto candidates = dataset.LocationSites();
    UncertainKMedianOptions options;
    options.k = 2;
    options.method = KMedianMethod::kExpectedMatrixLocalSearch;
    auto heuristic = SolveUncertainKMedian(&dataset, candidates, options);
    options.method = KMedianMethod::kExpectedMatrixExact;
    auto exact = SolveUncertainKMedian(&dataset, candidates, options);
    ASSERT_TRUE(heuristic.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(heuristic->expected_cost, exact->expected_cost - 1e-12);
    EXPECT_LE(heuristic->expected_cost, 5.0 * exact->expected_cost + 1e-9);
  }
}

TEST(UncertainKMedianTest, SurrogatePipelineRunsAndIsComparable) {
  UncertainDataset dataset = Clustered(20, 15);
  const auto candidates = dataset.LocationSites();
  UncertainKMedianOptions options;
  options.k = 3;
  options.method = KMedianMethod::kSurrogateLocalSearch;
  auto surrogate = SolveUncertainKMedian(&dataset, candidates, options);
  ASSERT_TRUE(surrogate.ok());
  options.method = KMedianMethod::kExpectedMatrixLocalSearch;
  auto direct = SolveUncertainKMedian(&dataset, candidates, options);
  ASSERT_TRUE(direct.ok());
  // The exact reduction can only be at least as good; the surrogate
  // pipeline should be in the same ballpark (within the 5-approx-ish
  // constants, loosely checked at 3x here).
  EXPECT_LE(direct->expected_cost, surrogate->expected_cost + 1e-9);
  EXPECT_LE(surrogate->expected_cost, 3.0 * direct->expected_cost + 1e-9);
}

TEST(UncertainKMedianTest, Validation) {
  UncertainDataset dataset = Clustered(30, 5);
  const auto candidates = dataset.LocationSites();
  UncertainKMedianOptions options;
  options.k = 0;
  EXPECT_FALSE(SolveUncertainKMedian(&dataset, candidates, options).ok());
  options.k = 2;
  EXPECT_FALSE(SolveUncertainKMedian(nullptr, candidates, options).ok());
  EXPECT_FALSE(SolveUncertainKMedian(&dataset, {}, options).ok());
  EXPECT_FALSE(
      ExactKMedianCost(dataset, cost::Assignment(dataset.n(), 9999)).ok());
  EXPECT_FALSE(ExactKMedianCost(dataset, cost::Assignment{0}).ok());
}

TEST(UncertainKMedianTest, WorksOnFiniteMetric) {
  auto graph = uncertain::GenerateGridGraph(4, 4, 0.5, 2.0, 41);
  ASSERT_TRUE(graph.ok());
  auto dataset = uncertain::GenerateMetricInstance(
      *graph, 8, 3, 2.0, uncertain::ProbabilityShape::kRandom, 43);
  ASSERT_TRUE(dataset.ok());
  std::vector<SiteId> candidates;
  for (SiteId s = 0; s < dataset->space().num_sites(); ++s) {
    candidates.push_back(s);
  }
  UncertainKMedianOptions options;
  options.k = 2;
  for (auto method : {KMedianMethod::kExpectedMatrixLocalSearch,
                      KMedianMethod::kExpectedMatrixExact,
                      KMedianMethod::kSurrogateLocalSearch}) {
    options.method = method;
    auto solution = SolveUncertainKMedian(&dataset.value(), candidates, options);
    ASSERT_TRUE(solution.ok());
    EXPECT_EQ(solution->centers.size(), 2u);
    EXPECT_GT(solution->expected_cost, 0.0);
  }
}

}  // namespace
}  // namespace core
}  // namespace ukc
