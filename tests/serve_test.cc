// Resilient serving core suite (serve/registry.h + serve/tenant.h).
//
// The properties under test, in rough order of load-bearing-ness:
//   1. Kill-and-restore is BITWISE: a replica restored from the
//      snapshot sidecar and caught up by replaying the acked suffix
//      answers every query bit-for-bit like the uninterrupted primary
//      — across threads {1, 2, 8} × snapshot cadence {1, 7, 64}.
//   2. Chaos: >= 1000 mixed ops over >= 4 tenants under injected
//      faults end bitwise-equal to a fault-free replay of exactly the
//      acked appends (the all-or-nothing append contract).
//   3. Deadlines are deterministic (AfterChecks) and side-effect-free:
//      an expired query returns kDeadlineExceeded and changes nothing.
//   4. Overload sheds the newest submission with a marked
//      kUnavailable that the serve retry policy refuses to retry.
//   5. The watchdog degrades a failing tenant to stale-but-available
//      (reads from the last snapshot, writes refused) and recovers it
//      once the boundary heals.
//
// Extra chaos seeds sweep in from UKC_FAULTS (see the verify-faults
// target and docs/operations.md), mirroring the crash-recovery suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/registry.h"
#include "serve/serve.h"
#include "serve/tenant.h"
#include "stream/coreset.h"
#include "uncertain/chunk.h"

namespace ukc {
namespace {

using serve::RegistryOptions;
using serve::Tenant;
using serve::TenantConfig;
using serve::TenantRegistry;
using serve::TenantState;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// A deterministic batch of n uncertain points in [-10, 10]^dim with
// 1..3 locations each. Batches depend only on the Rng state, so two
// registries fed from equal-seeded generators see equal streams.
uncertain::UncertainPointBatch MakeBatch(Rng& rng, size_t n, size_t dim) {
  uncertain::UncertainPointBatch batch;
  batch.dim = dim;
  batch.norm = metric::Norm::kL2;
  batch.offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    const size_t locations = 1 + rng.Next() % 3;
    std::vector<double> weights(locations);
    double total = 0.0;
    for (double& w : weights) {
      w = rng.UniformDouble(0.1, 1.0);
      total += w;
    }
    for (size_t l = 0; l < locations; ++l) {
      for (size_t d = 0; d < dim; ++d) {
        batch.coords.push_back(rng.UniformDouble(-10.0, 10.0));
      }
      batch.probabilities.push_back(weights[l] / total);
    }
    batch.offsets.push_back(batch.offsets.back() + locations);
  }
  return batch;
}

TenantConfig BasicConfig(const std::string& snapshot_path = "",
                         uint64_t cadence = 16) {
  TenantConfig config;
  config.dim = 2;
  config.norm = metric::Norm::kL2;
  config.k = 3;
  config.coreset.max_cells = 32;
  config.coreset.base_cell_width = 1e-3;
  config.snapshot_path = snapshot_path;
  config.snapshot_every_appends = cadence;
  config.snapshot_sync = false;
  return config;
}

void ExpectCellsBitwiseEqual(
    const std::vector<stream::StreamingCoreset::Cell>& got,
    const std::vector<stream::StreamingCoreset::Cell>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t c = 0; c < got.size(); ++c) {
    EXPECT_EQ(got[c].min_index, want[c].min_index);
    EXPECT_EQ(got[c].count, want[c].count);
    EXPECT_EQ(got[c].max_spread, want[c].max_spread);
    EXPECT_EQ(got[c].representative, want[c].representative);
  }
}

// Bitwise comparison of the full answer surface of two tenants
// (presumed replicas): cells, fingerprints, and all three query
// shapes. Candidate sets come from the centers answer itself, so both
// sides evaluate the same candidates.
void ExpectReplicasAnswerIdentically(TenantRegistry& a, TenantRegistry& b,
                                     const std::string& id) {
  Tenant* ta = a.FindTenant(id);
  Tenant* tb = b.FindTenant(id);
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  EXPECT_EQ(ta->epoch(), tb->epoch());
  EXPECT_EQ(ta->next_index(), tb->next_index());
  EXPECT_EQ(ta->content_fingerprint(), tb->content_fingerprint());
  ExpectCellsBitwiseEqual(tb->ExtractCells(), ta->ExtractCells());

  auto centers_a = a.QueryCenters(id, Deadline());
  auto centers_b = b.QueryCenters(id, Deadline());
  ASSERT_TRUE(centers_a.ok()) << centers_a.status();
  ASSERT_TRUE(centers_b.ok()) << centers_b.status();
  EXPECT_EQ(centers_a->epoch, centers_b->epoch);
  EXPECT_EQ(centers_a->k, centers_b->k);
  EXPECT_EQ(centers_a->cost, centers_b->cost);
  EXPECT_EQ(centers_a->lower, centers_b->lower);
  EXPECT_EQ(centers_a->upper, centers_b->upper);
  EXPECT_EQ(centers_a->center_coords, centers_b->center_coords);

  if (centers_a->k == 0) return;
  auto bracket_a =
      a.QueryBracket(id, centers_a->center_coords, centers_a->k, Deadline());
  auto bracket_b =
      b.QueryBracket(id, centers_a->center_coords, centers_a->k, Deadline());
  ASSERT_TRUE(bracket_a.ok()) << bracket_a.status();
  ASSERT_TRUE(bracket_b.ok()) << bracket_b.status();
  EXPECT_EQ(bracket_a->cost, bracket_b->cost);
  EXPECT_EQ(bracket_a->error_bound, bracket_b->error_bound);
  EXPECT_EQ(bracket_a->lower, bracket_b->lower);
  EXPECT_EQ(bracket_a->upper, bracket_b->upper);
}

// --- Lifecycle and basic queries --------------------------------------------

TEST(ServeTest, LifecycleAppendDrainAndQuery) {
  TenantRegistry registry(RegistryOptions{});
  ASSERT_TRUE(registry.CreateTenant("alpha", BasicConfig()).ok());
  Rng rng(7);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
  }
  EXPECT_EQ(registry.QueueDepth("alpha"), 6u);
  const serve::DrainResult drained = registry.Drain();
  EXPECT_EQ(drained.applied, 6u);
  EXPECT_EQ(drained.failed, 0u);
  EXPECT_EQ(registry.QueueDepth("alpha"), 0u);

  Tenant* tenant = registry.FindTenant("alpha");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->epoch(), 6u);
  EXPECT_EQ(tenant->next_index(), 24u);
  EXPECT_EQ(tenant->state(), TenantState::kLive);

  auto centers = registry.QueryCenters("alpha", Deadline());
  ASSERT_TRUE(centers.ok()) << centers.status();
  EXPECT_EQ(centers->epoch, 6u);
  EXPECT_FALSE(centers->stale);
  EXPECT_EQ(centers->k, 3u);
  EXPECT_GE(centers->cost, 0.0);
  EXPECT_LE(centers->lower, centers->cost);
  EXPECT_GE(centers->upper, centers->cost);

  // The candidate-cost query on the solved centers must reproduce the
  // solve's own cost: on certain representative cells the expected
  // distance IS the distance, and both paths scan cells in the same
  // fixed order.
  auto cost = registry.QueryCandidateCost("alpha", centers->center_coords,
                                          centers->k, Deadline());
  ASSERT_TRUE(cost.ok()) << cost.status();
  EXPECT_EQ(cost->cost, centers->cost);

  auto bracket = registry.QueryBracket("alpha", centers->center_coords,
                                       centers->k, Deadline());
  ASSERT_TRUE(bracket.ok()) << bracket.status();
  EXPECT_EQ(bracket->cost, centers->cost);
  EXPECT_EQ(bracket->lower, centers->lower);
  EXPECT_EQ(bracket->upper, centers->upper);

  EXPECT_EQ(registry.stats().appends_applied, 6u);
  EXPECT_EQ(registry.stats().queries_answered, 3u);
}

TEST(ServeTest, RegistryValidatesTenantsAndRoutes) {
  TenantRegistry registry(RegistryOptions{});
  EXPECT_FALSE(registry.CreateTenant("", BasicConfig()).ok());
  TenantConfig zero_dim = BasicConfig();
  zero_dim.dim = 0;
  EXPECT_FALSE(registry.CreateTenant("bad", zero_dim).ok());
  ASSERT_TRUE(registry.CreateTenant("alpha", BasicConfig()).ok());
  EXPECT_FALSE(registry.CreateTenant("alpha", BasicConfig()).ok());

  Rng rng(1);
  EXPECT_EQ(registry.SubmitAppend("ghost", MakeBatch(rng, 2, 2)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.QueryCenters("ghost", Deadline()).status().code(),
            StatusCode::kNotFound);

  // A batch under the wrong norm is rejected at apply time, with the
  // tenant bitwise unchanged (the all-or-nothing contract).
  uncertain::UncertainPointBatch batch = MakeBatch(rng, 2, 2);
  batch.norm = metric::Norm::kL1;
  ASSERT_TRUE(registry.SubmitAppend("alpha", batch).ok());
  const uint64_t before = registry.FindTenant("alpha")->content_fingerprint();
  const serve::DrainResult drained = registry.Drain();
  EXPECT_EQ(drained.failed, 1u);
  EXPECT_EQ(drained.applied, 0u);
  EXPECT_EQ(registry.FindTenant("alpha")->content_fingerprint(), before);
  EXPECT_EQ(registry.FindTenant("alpha")->epoch(), 0u);
}

TEST(ServeTest, TenantsAreIsolated) {
  // Appends and failures on one tenant never move another tenant's
  // state: the isolation half of multi-tenancy.
  TenantRegistry registry(RegistryOptions{});
  ASSERT_TRUE(registry.CreateTenant("alpha", BasicConfig()).ok());
  ASSERT_TRUE(registry.CreateTenant("beta", BasicConfig()).ok());
  Rng rng(11);
  ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
  registry.Drain();
  const uint64_t alpha_print =
      registry.FindTenant("alpha")->content_fingerprint();

  // Beta absorbs appends and a failing one; alpha must not move.
  uncertain::UncertainPointBatch bad = MakeBatch(rng, 2, 2);
  bad.norm = metric::Norm::kL1;
  ASSERT_TRUE(registry.SubmitAppend("beta", MakeBatch(rng, 4, 2)).ok());
  ASSERT_TRUE(registry.SubmitAppend("beta", bad).ok());
  registry.Drain();
  EXPECT_EQ(registry.FindTenant("alpha")->content_fingerprint(), alpha_print);
  EXPECT_EQ(registry.FindTenant("alpha")->epoch(), 1u);
  EXPECT_EQ(registry.FindTenant("beta")->epoch(), 1u);
}

// --- Deadlines --------------------------------------------------------------

TEST(ServeTest, ExpiredDeadlineRejectsEveryQueryShape) {
  TenantRegistry registry(RegistryOptions{});
  ASSERT_TRUE(registry.CreateTenant("alpha", BasicConfig()).ok());
  Rng rng(3);
  ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 8, 2)).ok());
  registry.Drain();

  const std::vector<double> candidates = {0.0, 0.0};
  EXPECT_EQ(registry.QueryCenters("alpha", Deadline::Expired()).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(registry.QueryCandidateCost("alpha", candidates, 1,
                                        Deadline::Expired())
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(
      registry.QueryBracket("alpha", candidates, 1, Deadline::Expired())
          .status()
          .code(),
      StatusCode::kDeadlineExceeded);
  EXPECT_EQ(registry.stats().queries_deadline_exceeded, 3u);
  EXPECT_EQ(registry.stats().queries_answered, 0u);

  // And the rejection is side-effect-free: the same queries under an
  // infinite deadline now succeed with live (non-stale) answers.
  auto centers = registry.QueryCenters("alpha", Deadline());
  ASSERT_TRUE(centers.ok()) << centers.status();
  EXPECT_FALSE(centers->stale);
}

TEST(ServeTest, CheckBudgetDeadlineExpiresMidSolveDeterministically) {
  // AfterChecks(n) expires at exactly the n-th deadline check,
  // independent of wall clock — the deterministic handle the tests and
  // the CLI's --deadline-checks flag use. With a budget of 2 the
  // centers query gets past its entry check and dies inside the solve,
  // on every run, at the same check site.
  TenantRegistry registry(RegistryOptions{});
  ASSERT_TRUE(registry.CreateTenant("alpha", BasicConfig()).ok());
  Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 8, 2)).ok());
  }
  registry.Drain();

  for (int run = 0; run < 3; ++run) {
    auto rejected = registry.QueryCenters("alpha", Deadline::AfterChecks(2));
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kDeadlineExceeded);
  }
  // A partial solve left nothing behind: the full query still answers
  // and equals a fresh replica's answer (asserted via cache bypass —
  // the failed attempts must not have populated the cache).
  auto centers = registry.QueryCenters("alpha", Deadline());
  ASSERT_TRUE(centers.ok()) << centers.status();
  EXPECT_EQ(centers->epoch, 4u);

  // A generous check budget sails through.
  auto fine = registry.QueryCenters("alpha", Deadline::AfterChecks(1 << 20));
  ASSERT_TRUE(fine.ok()) << fine.status();
  EXPECT_EQ(fine->cost, centers->cost);
}

// --- Overload shedding ------------------------------------------------------

TEST(ServeTest, FullQueueShedsNewestWithMarkedUnavailable) {
  RegistryOptions options;
  options.queue_capacity = 2;
  TenantRegistry registry(options);
  ASSERT_TRUE(registry.CreateTenant("alpha", BasicConfig()).ok());
  Rng rng(9);
  ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 2, 2)).ok());
  ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 2, 2)).ok());
  const Status shed = registry.SubmitAppend("alpha", MakeBatch(rng, 2, 2));
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(serve::IsShed(shed));
  EXPECT_TRUE(shed.IsTransientError());  // Transient-coded...
  EXPECT_EQ(registry.stats().appends_shed, 1u);
  EXPECT_EQ(registry.QueueDepth("alpha"), 2u);

  // ...but the serve retry policy refuses to retry it: one attempt,
  // zero retries (re-submitting into a full queue amplifies overload).
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.sleeper = [](std::chrono::nanoseconds) {};
  RetryStats stats;
  const Status retried = registry.SubmitAppendWithRetry(
      "alpha", MakeBatch(rng, 2, 2), retry, &stats);
  EXPECT_TRUE(serve::IsShed(retried));
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);

  // Drain relieves the pressure; the queue admits again.
  registry.Drain();
  EXPECT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 2, 2)).ok());
}

TEST(ServeTest, IsShedRequiresBothCodeAndMarker) {
  EXPECT_FALSE(serve::IsShed(Status::OK()));
  EXPECT_FALSE(serve::IsShed(Status::Unavailable("plain transient")));
  EXPECT_FALSE(serve::IsShed(
      Status::Internal(std::string(serve::kShedMessageMarker))));
  EXPECT_TRUE(serve::IsShed(serve::ShedStatus("queue full")));
}

#if UKC_FAULT_INJECTION

TEST(ServeTest, TransientEnqueueFaultRetriesButShedDoesNot) {
  // The regression the retry_if satellite exists for: an injected
  // transient enqueue fault IS retried (and clears), while a shed —
  // the same kUnavailable code — is not.
  TenantRegistry registry(RegistryOptions{});
  ASSERT_TRUE(registry.CreateTenant("alpha", BasicConfig()).ok());
  Rng rng(13);
  FaultPlan plan;
  plan.rules.push_back(
      FaultRule{"serve.enqueue", {0}, 0.0, StatusCode::kUnavailable, 0});
  ScopedFaultInjection scope(plan);

  RetryOptions retry;
  retry.max_attempts = 3;
  retry.sleeper = [](std::chrono::nanoseconds) {};
  RetryStats stats;
  ASSERT_TRUE(registry
                  .SubmitAppendWithRetry("alpha", MakeBatch(rng, 2, 2), retry,
                                         &stats)
                  .ok());
  EXPECT_EQ(stats.attempts, 2u);  // Fault at hit 0, clean at hit 1.
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(registry.stats().enqueue_faults, 1u);
  EXPECT_EQ(registry.QueueDepth("alpha"), 1u);
}

// --- Watchdog: degrade, stale serving, recovery -----------------------------

TEST(ServeTest, WatchdogDegradesServesStaleAndRecovers) {
  const std::string path = TempPath("watchdog.ckpt");
  std::remove(path.c_str());
  RegistryOptions options;
  options.degrade_after_failures = 3;
  TenantRegistry registry(options);
  ASSERT_TRUE(
      registry.CreateTenant("alpha", BasicConfig(path, /*cadence=*/1)).ok());
  Rng rng(17);

  // Seed some healthy state; cadence 1 means every ack snapshots.
  ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
  ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
  registry.Drain();
  Tenant* tenant = registry.FindTenant("alpha");
  ASSERT_EQ(tenant->epoch(), 2u);
  ASSERT_EQ(tenant->stable_epoch(), 2u);
  auto healthy = registry.QueryCenters("alpha", Deadline());
  ASSERT_TRUE(healthy.ok()) << healthy.status();

  {
    // Every append now fails at the serve.append boundary: three
    // consecutive failures trip the watchdog.
    FaultPlan plan;
    plan.rules.push_back(
        FaultRule{"serve.append", {}, 1.0, StatusCode::kInternal, 0});
    ScopedFaultInjection scope(plan);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
    }
    const serve::DrainResult drained = registry.Drain();
    EXPECT_EQ(drained.failed, 3u);
    EXPECT_EQ(drained.degraded, 1u);
    EXPECT_EQ(tenant->state(), TenantState::kDegraded);

    // Degraded: writes refused outright at submission...
    const Status refused = registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2));
    EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
    EXPECT_FALSE(refused.IsTransientError());

    // ...while queries stay available, served STALE from the last
    // snapshot and flagged as such.
    auto stale = registry.QueryCenters("alpha", Deadline());
    ASSERT_TRUE(stale.ok()) << stale.status();
    EXPECT_TRUE(stale->stale);
    EXPECT_EQ(stale->epoch, 2u);
    EXPECT_EQ(stale->cost, healthy->cost);
    EXPECT_EQ(stale->center_coords, healthy->center_coords);

    // While the boundary still fails... the recovery probe targets
    // serve.snapshot, which this plan leaves healthy, so the NEXT
    // drain recovers (append and snapshot are distinct boundaries).
  }

  // Fault cleared: the next Drain's recovery probe snapshots
  // successfully and revives the tenant.
  const serve::DrainResult recovered = registry.Drain();
  EXPECT_EQ(recovered.recovered, 1u);
  EXPECT_EQ(tenant->state(), TenantState::kLive);
  ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
  EXPECT_EQ(registry.Drain().applied, 1u);
  EXPECT_EQ(tenant->epoch(), 3u);
  auto live_again = registry.QueryCenters("alpha", Deadline());
  ASSERT_TRUE(live_again.ok()) << live_again.status();
  EXPECT_FALSE(live_again->stale);
  EXPECT_EQ(registry.stats().degrade_events, 1u);
  EXPECT_EQ(registry.stats().recover_events, 1u);
}

TEST(ServeTest, FailingSnapshotBoundaryKeepsTenantDegraded) {
  const std::string path = TempPath("snap_fail.ckpt");
  std::remove(path.c_str());
  RegistryOptions options;
  options.degrade_after_failures = 2;
  TenantRegistry registry(options);
  ASSERT_TRUE(
      registry.CreateTenant("alpha", BasicConfig(path, /*cadence=*/1)).ok());
  Rng rng(19);
  ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
  registry.Drain();  // Healthy snapshot at epoch 1.

  FaultPlan plan;
  plan.rules.push_back(
      FaultRule{"serve.snapshot", {}, 1.0, StatusCode::kUnavailable, 0});
  ScopedFaultInjection scope(plan);

  // Two acked appends whose cadence snapshots both fail: appends land
  // (epoch moves) but the watchdog degrades on the snapshot boundary.
  ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
  ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
  const serve::DrainResult drained = registry.Drain();
  EXPECT_EQ(drained.applied, 2u);
  EXPECT_EQ(drained.degraded, 1u);
  Tenant* tenant = registry.FindTenant("alpha");
  EXPECT_EQ(tenant->state(), TenantState::kDegraded);
  EXPECT_EQ(tenant->epoch(), 3u);
  EXPECT_EQ(tenant->stable_epoch(), 1u);

  // The recovery probe hits the same failing boundary: still degraded,
  // still serving the stale epoch.
  EXPECT_EQ(registry.Drain().recovered, 0u);
  EXPECT_EQ(tenant->state(), TenantState::kDegraded);
  auto stale = registry.QueryCenters("alpha", Deadline());
  ASSERT_TRUE(stale.ok()) << stale.status();
  EXPECT_TRUE(stale->stale);
  EXPECT_EQ(stale->epoch, 1u);
}

// --- Kill-and-restore: the bitwise failover sweep ---------------------------

// Runs one primary for `total_batches` acked appends (worker threads
// `threads`, snapshot cadence `cadence`), kills it, rebuilds a replica
// from the sidecar, replays the acked suffix from the outbox, and
// requires the replica to answer bitwise-identically. Returns the
// epoch the replica restored to (to assert the sweep exercised real
// rollback).
uint64_t KillRestoreReplayOnce(int threads, uint64_t cadence, uint64_t seed) {
  const std::string path = TempPath("kill_restore.ckpt");
  std::remove(path.c_str());
  const TenantConfig config = BasicConfig(path, cadence);
  constexpr uint64_t kBatches = 24;

  RegistryOptions options;
  options.threads = threads;
  TenantRegistry primary(options);
  EXPECT_TRUE(primary.CreateTenant("alpha", config).ok());
  Rng rng(seed);
  std::vector<uncertain::UncertainPointBatch> outbox;
  for (uint64_t b = 0; b < kBatches; ++b) {
    outbox.push_back(MakeBatch(rng, 3, 2));
    EXPECT_TRUE(primary.SubmitAppend("alpha", outbox.back()).ok());
    primary.Drain();  // Ack + cadence snapshot.
  }
  EXPECT_EQ(primary.FindTenant("alpha")->epoch(), kBatches);

  // "Kill": the primary object stays alive only as the answer oracle;
  // the replica starts from nothing but the sidecar + the outbox.
  TenantRegistry replica(options);
  EXPECT_TRUE(replica.CreateTenant("alpha", config).ok());
  uint64_t restored_epoch = 0;
  const Status restored = replica.RestoreTenant("alpha", &restored_epoch);
  if (cadence > kBatches) {
    // The cadence never fired, so no sidecar exists: failover
    // degrades to a clean cold start over the full outbox.
    EXPECT_FALSE(restored.ok());
    restored_epoch = 0;
  } else {
    EXPECT_TRUE(restored.ok()) << restored;
    EXPECT_EQ(restored_epoch, kBatches - kBatches % cadence);
  }
  // Replay the acked suffix.
  for (uint64_t b = restored_epoch; b < kBatches; ++b) {
    EXPECT_TRUE(replica.SubmitAppend("alpha", outbox[b]).ok());
  }
  replica.Drain();
  ExpectReplicasAnswerIdentically(primary, replica, "alpha");
  return restored_epoch;
}

TEST(ServeTest, KillAndRestoreIsBitwiseAcrossThreadsAndCadences) {
  size_t combo = 0;
  size_t rolled_back = 0;
  for (int threads : {1, 2, 8}) {
    for (uint64_t cadence : {uint64_t{1}, uint64_t{7}, uint64_t{64}}) {
      SCOPED_TRACE(::testing::Message()
                   << "threads=" << threads << " cadence=" << cadence);
      const uint64_t restored_epoch =
          KillRestoreReplayOnce(threads, cadence, 0x5eed ^ combo);
      ++combo;
      if (restored_epoch < 24) ++rolled_back;
    }
  }
  // Cadences 7 and 64 leave the sidecar behind the head, so the sweep
  // must have exercised genuine rollback-and-replay, not just reload.
  EXPECT_GE(rolled_back, 6u);
}

TEST(ServeTest, ThreadCountNeverChangesAnyAnswerBit) {
  // Two registries at different worker counts fed the same stream:
  // every answer bit must match (the serving core's replica
  // determinism rests on thread-invariance of the solve).
  RegistryOptions one;
  one.threads = 1;
  RegistryOptions eight;
  eight.threads = 8;
  TenantRegistry a(one);
  TenantRegistry b(eight);
  ASSERT_TRUE(a.CreateTenant("alpha", BasicConfig()).ok());
  ASSERT_TRUE(b.CreateTenant("alpha", BasicConfig()).ok());
  Rng rng_a(23), rng_b(23);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(a.SubmitAppend("alpha", MakeBatch(rng_a, 4, 2)).ok());
    ASSERT_TRUE(b.SubmitAppend("alpha", MakeBatch(rng_b, 4, 2)).ok());
  }
  a.Drain();
  b.Drain();
  ExpectReplicasAnswerIdentically(a, b, "alpha");
}

// --- Snapshot-cadence edge cases --------------------------------------------

TEST(ServeTest, SnapshotWithPendingAppendsRestoresToSnapshotEpochOnly) {
  // A snapshot races queued-but-unacked appends: the sidecar must
  // reflect exactly the acked prefix, never queued work. Restore rolls
  // to the snapshot epoch; replaying the suffix reconverges bitwise.
  const std::string path = TempPath("pending.ckpt");
  std::remove(path.c_str());
  const TenantConfig config = BasicConfig(path, /*cadence=*/3);
  TenantRegistry registry(RegistryOptions{});
  ASSERT_TRUE(registry.CreateTenant("alpha", config).ok());
  Rng rng(29);
  std::vector<uncertain::UncertainPointBatch> outbox;
  for (int i = 0; i < 5; ++i) outbox.push_back(MakeBatch(rng, 3, 2));
  for (const auto& batch : outbox) {
    ASSERT_TRUE(registry.SubmitAppend("alpha", batch).ok());
  }
  registry.Drain();  // Acks all 5; the cadence snapshot fired at epoch 3.
  Tenant* tenant = registry.FindTenant("alpha");
  ASSERT_EQ(tenant->epoch(), 5u);
  ASSERT_EQ(tenant->stable_epoch(), 3u);

  TenantRegistry replica(RegistryOptions{});
  ASSERT_TRUE(replica.CreateTenant("alpha", config).ok());
  uint64_t restored_epoch = 0;
  ASSERT_TRUE(replica.RestoreTenant("alpha", &restored_epoch).ok());
  EXPECT_EQ(restored_epoch, 3u);
  for (uint64_t b = restored_epoch; b < outbox.size(); ++b) {
    ASSERT_TRUE(replica.SubmitAppend("alpha", outbox[b]).ok());
  }
  replica.Drain();
  ExpectReplicasAnswerIdentically(registry, replica, "alpha");
}

TEST(ServeTest, RestoreInvalidatesInFlightQueryCache) {
  // A query answered just before a restore must not leak its cached
  // answer past the rollback: the post-restore answer reflects the
  // restored epoch.
  const std::string path = TempPath("cache_restore.ckpt");
  std::remove(path.c_str());
  const TenantConfig config = BasicConfig(path, /*cadence=*/2);
  TenantRegistry registry(RegistryOptions{});
  ASSERT_TRUE(registry.CreateTenant("alpha", config).ok());
  Rng rng(31);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
  }
  registry.Drain();  // Epoch 3; snapshot at epoch 2.
  auto head = registry.QueryCenters("alpha", Deadline());
  ASSERT_TRUE(head.ok()) << head.status();
  ASSERT_EQ(head->epoch, 3u);

  uint64_t restored_epoch = 0;
  ASSERT_TRUE(registry.RestoreTenant("alpha", &restored_epoch).ok());
  ASSERT_EQ(restored_epoch, 2u);
  auto rolled = registry.QueryCenters("alpha", Deadline());
  ASSERT_TRUE(rolled.ok()) << rolled.status();
  EXPECT_EQ(rolled->epoch, 2u);  // Not the cached epoch-3 answer.
}

TEST(ServeTest, RestoreRevivesADegradedTenant) {
  const std::string path = TempPath("degraded_restore.ckpt");
  std::remove(path.c_str());
  RegistryOptions options;
  options.degrade_after_failures = 1;
  TenantRegistry registry(options);
  ASSERT_TRUE(
      registry.CreateTenant("alpha", BasicConfig(path, /*cadence=*/1)).ok());
  Rng rng(37);
  ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
  registry.Drain();

  {
    FaultPlan plan;
    plan.rules.push_back(
        FaultRule{"serve.append", {}, 1.0, StatusCode::kInternal, 0});
    ScopedFaultInjection scope(plan);
    ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
    registry.Drain();
  }
  Tenant* tenant = registry.FindTenant("alpha");
  ASSERT_EQ(tenant->state(), TenantState::kDegraded);

  // Failover instead of waiting for the watchdog: restore clears the
  // degraded state AND the failure accounting in one stroke.
  uint64_t restored_epoch = 0;
  ASSERT_TRUE(registry.RestoreTenant("alpha", &restored_epoch).ok());
  EXPECT_EQ(restored_epoch, 1u);
  EXPECT_EQ(tenant->state(), TenantState::kLive);
  ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
  EXPECT_EQ(registry.Drain().applied, 1u);
  EXPECT_EQ(tenant->epoch(), 2u);
}

TEST(ServeTest, RestoreRejectsConfigMismatchAndMissingSidecar) {
  const std::string path = TempPath("mismatch_serve.ckpt");
  std::remove(path.c_str());
  TenantRegistry registry(RegistryOptions{});
  ASSERT_TRUE(
      registry.CreateTenant("alpha", BasicConfig(path, /*cadence=*/1)).ok());
  // No sidecar yet: restore must fail cleanly.
  EXPECT_FALSE(registry.RestoreTenant("alpha", nullptr).ok());

  Rng rng(41);
  ASSERT_TRUE(registry.SubmitAppend("alpha", MakeBatch(rng, 4, 2)).ok());
  registry.Drain();

  // Same sidecar, different k: the config fingerprint gates the
  // restore (a snapshot from another configuration must never be
  // silently served).
  TenantConfig other = BasicConfig(path, /*cadence=*/1);
  other.k = 7;
  TenantRegistry imposter(RegistryOptions{});
  ASSERT_TRUE(imposter.CreateTenant("alpha", other).ok());
  const Status rejected = imposter.RestoreTenant("alpha", nullptr);
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(imposter.FindTenant("alpha")->epoch(), 0u);
}

// --- Chaos: mixed ops, many tenants, injected faults ------------------------

// One chaos round: >= `num_ops` mixed operations over `kTenants`
// tenants with faults injected at the enqueue, snapshot and restore
// boundaries (append faults are exercised by the targeted tests; the
// chaos plan keeps them out so the acked set stays observable as a
// per-drain prefix — see the watchdog analysis in the drain loop).
// After the storm, every tenant must be bitwise-equal to a fault-free
// replay of exactly its acked appends, and the exported metrics
// snapshot must mirror the observed event counts exactly. When
// `counter_digest` is non-null it receives a canonical dump of every
// counter series (name, labels, value) so callers can assert the
// export is identical across thread counts.
void ChaosRound(uint64_t seed, size_t num_ops, int threads = 1,
                std::string* counter_digest = nullptr) {
  constexpr size_t kTenants = 4;
  obs::MetricsRegistry chaos_metrics;
  RegistryOptions options;
  options.queue_capacity = 4;
  options.degrade_after_failures = 2;
  options.threads = threads;
  options.metrics = &chaos_metrics;
  // Measure every query: the bar below asserts the latency series
  // holds one observation per query routed to a tenant.
  options.latency_sample_every = 1;
  TenantRegistry registry(options);

  std::vector<std::string> ids;
  std::vector<TenantConfig> configs;
  for (size_t t = 0; t < kTenants; ++t) {
    const std::string id = "tenant-" + std::to_string(t);
    TenantConfig config = BasicConfig(
        TempPath("chaos_" + std::to_string(seed) + "_" + id + ".ckpt"),
        /*cadence=*/1 + t);  // Mixed cadences across tenants.
    config.k = 2 + t % 3;
    std::remove(config.snapshot_path.c_str());
    EXPECT_TRUE(registry.CreateTenant(id, config).ok());
    ids.push_back(id);
    configs.push_back(config);
  }

  // Per-tenant mirror of the registry queue (batches admitted but not
  // yet drained) and the authoritative acked log the reference replay
  // uses. Invariant exploited: with serve.append excluded from the
  // plan, the acked subset of one drain is always a PREFIX of the
  // queue — mid-drain failures only come from the snapshot boundary,
  // whose degrade refuses everything after it.
  std::vector<std::vector<uncertain::UncertainPointBatch>> pending(kTenants);
  std::vector<std::vector<uncertain::UncertainPointBatch>> acked(kTenants);

  FaultPlan plan;
  plan.seed = seed;
  plan.rules.push_back(
      FaultRule{"serve.enqueue", {}, 0.05, StatusCode::kUnavailable, 0});
  plan.rules.push_back(
      FaultRule{"serve.snapshot", {}, 0.10, StatusCode::kUnavailable, 0});
  plan.rules.push_back(
      FaultRule{"serve.restore", {}, 0.10, StatusCode::kUnavailable, 0});
  plan.rules.push_back(
      FaultRule{"checkpoint.write", {}, 0.05, StatusCode::kUnavailable, 0});

  Rng rng(seed);
  size_t deadline_hits = 0;
  size_t sheds = 0;
  size_t restores = 0;
  size_t ops = 0;
  {
    ScopedFaultInjection scope(plan);
    while (ops < num_ops) {
      const size_t t = rng.Next() % kTenants;
      const uint64_t dice = rng.Next() % 100;
      ++ops;
      if (dice < 55) {
        // Submit: mirror the queue only on an OK admission.
        uncertain::UncertainPointBatch batch =
            MakeBatch(rng, 1 + rng.Next() % 4, 2);
        const Status admitted = registry.SubmitAppend(ids[t], batch);
        if (admitted.ok()) {
          pending[t].push_back(std::move(batch));
        } else if (serve::IsShed(admitted)) {
          ++sheds;
        }
      } else if (dice < 75) {
        // Drain: the acked subset of each tenant's queue is the first
        // (epoch delta) entries of the mirror; the rest were refused.
        std::vector<uint64_t> before(kTenants);
        for (size_t i = 0; i < kTenants; ++i) {
          before[i] = registry.FindTenant(ids[i])->epoch();
        }
        registry.Drain();
        for (size_t i = 0; i < kTenants; ++i) {
          const uint64_t delta =
              registry.FindTenant(ids[i])->epoch() - before[i];
          ASSERT_LE(delta, pending[i].size());
          for (uint64_t a = 0; a < delta; ++a) {
            acked[i].push_back(std::move(pending[i][a]));
          }
          pending[i].clear();
        }
      } else if (dice < 95) {
        // Query with an occasional tight (deterministic) deadline.
        const Deadline deadline = (dice % 5 == 0)
                                      ? Deadline::AfterChecks(2)
                                      : Deadline();
        const uint64_t shape = rng.Next() % 3;
        if (shape == 0) {
          auto answer = registry.QueryCenters(ids[t], deadline);
          if (!answer.ok()) {
            ASSERT_EQ(answer.status().code(),
                      StatusCode::kDeadlineExceeded);
            ++deadline_hits;
          }
        } else {
          const std::vector<double> candidates = {
              rng.UniformDouble(-10.0, 10.0), rng.UniformDouble(-10.0, 10.0)};
          auto answer =
              shape == 1
                  ? registry
                        .QueryCandidateCost(ids[t], candidates, 1, deadline)
                        .status()
                  : registry.QueryBracket(ids[t], candidates, 1, deadline)
                        .status();
          if (!answer.ok()) {
            ASSERT_EQ(answer.code(), StatusCode::kDeadlineExceeded);
            ++deadline_hits;
          }
        }
      } else {
        // Failover: a successful restore rolls the tenant back to a
        // prefix of its acked log and forgets its queue.
        uint64_t restored_epoch = 0;
        const Status restored =
            registry.RestoreTenant(ids[t], &restored_epoch);
        if (restored.ok()) {
          ++restores;
          ASSERT_LE(restored_epoch, acked[t].size());
          acked[t].resize(restored_epoch);
          pending[t].clear();
        }
      }
    }
    // Final settle inside the fault scope still counts as chaos.
    std::vector<uint64_t> before(kTenants);
    for (size_t i = 0; i < kTenants; ++i) {
      before[i] = registry.FindTenant(ids[i])->epoch();
    }
    registry.Drain();
    for (size_t i = 0; i < kTenants; ++i) {
      const uint64_t delta = registry.FindTenant(ids[i])->epoch() - before[i];
      ASSERT_LE(delta, pending[i].size());
      for (uint64_t a = 0; a < delta; ++a) {
        acked[i].push_back(std::move(pending[i][a]));
      }
      pending[i].clear();
    }
  }

  // The verdict: each tenant bitwise-equals a fault-free replay of
  // exactly its acked appends into a fresh tenant.
  TenantRegistry reference(RegistryOptions{});
  for (size_t t = 0; t < kTenants; ++t) {
    TenantConfig config = configs[t];
    config.snapshot_path.clear();  // The replay needs no sidecar.
    ASSERT_TRUE(reference.CreateTenant(ids[t], config).ok());
    Tenant* replayed = reference.FindTenant(ids[t]);
    for (const auto& batch : acked[t]) {
      ASSERT_TRUE(replayed->Append(batch).ok());
    }
    Tenant* chaotic = registry.FindTenant(ids[t]);
    SCOPED_TRACE(::testing::Message()
                 << "seed=" << seed << " tenant=" << ids[t]
                 << " acked=" << acked[t].size()
                 << " state=" << serve::TenantStateToString(chaotic->state()));
    EXPECT_EQ(chaotic->epoch(), acked[t].size());
    EXPECT_EQ(chaotic->content_fingerprint(),
              replayed->content_fingerprint());
    // Compare LIVE cells (a degraded tenant's ExtractCells serves the
    // stale snapshot; the live coreset must still match the replay).
    chaotic->MarkLive();
    ExpectCellsBitwiseEqual(chaotic->ExtractCells(),
                            replayed->ExtractCells());
  }
  // The storm must have actually stormed.
  const serve::ServeStats& stats = registry.stats();
  EXPECT_GE(ops, num_ops);
  EXPECT_GT(stats.appends_applied, 0u);
  EXPECT_GT(stats.queries_answered, 0u);
  EXPECT_GT(stats.enqueue_faults + stats.snapshot_failures +
                stats.append_failures,
            0u);

  // The observability bar: the exported snapshot's counters match the
  // ServeStats mirror one-for-one AND the event counts this test
  // observed from the outside (sheds, deadline hits, restores).
  if (obs::kEnabled) {
    const obs::RegistrySnapshot snapshot = chaos_metrics.Snapshot();
    const auto counter = [&snapshot](const char* name, const char* key,
                                     const char* value) -> uint64_t {
      const obs::MetricSnapshot* series = snapshot.Find(name, {{key, value}});
      return series == nullptr ? 0u : series->counter_value;
    };
    EXPECT_EQ(counter("ukc_serve_appends_total", "outcome", "submitted"),
              stats.appends_submitted);
    EXPECT_EQ(counter("ukc_serve_appends_total", "outcome", "shed"),
              stats.appends_shed);
    EXPECT_EQ(stats.appends_shed, sheds);
    EXPECT_EQ(counter("ukc_serve_appends_total", "outcome", "enqueue_fault"),
              stats.enqueue_faults);
    EXPECT_EQ(counter("ukc_serve_appends_total", "outcome", "refused"),
              stats.appends_refused);
    EXPECT_EQ(counter("ukc_serve_appends_total", "outcome", "applied"),
              stats.appends_applied);
    EXPECT_EQ(counter("ukc_serve_appends_total", "outcome", "failed"),
              stats.append_failures);
    EXPECT_EQ(counter("ukc_serve_snapshots_total", "outcome", "saved"),
              stats.snapshots_saved);
    EXPECT_EQ(counter("ukc_serve_snapshots_total", "outcome", "failed"),
              stats.snapshot_failures);
    EXPECT_EQ(counter("ukc_serve_tenant_events_total", "event", "degrade"),
              stats.degrade_events);
    EXPECT_EQ(counter("ukc_serve_tenant_events_total", "event", "recover"),
              stats.recover_events);
    EXPECT_EQ(
        counter("ukc_serve_tenant_events_total", "event", "failover_restore"),
        restores);
    EXPECT_EQ(counter("ukc_serve_queries_total", "outcome", "answered"),
              stats.queries_answered);
    EXPECT_EQ(
        counter("ukc_serve_queries_total", "outcome", "deadline_exceeded"),
        stats.queries_deadline_exceeded);
    EXPECT_EQ(stats.queries_deadline_exceeded, deadline_hits);
    EXPECT_EQ(counter("ukc_serve_queries_total", "outcome", "failed"),
              stats.queries_failed);
    // Every query that reached a tenant landed in a latency histogram
    // (deadline-burners included — they must show in the tail).
    EXPECT_EQ(snapshot.HistogramTotal("ukc_serve_query_seconds").count,
              stats.queries_answered + stats.queries_deadline_exceeded +
                  stats.queries_failed);
    if (counter_digest != nullptr) {
      std::string digest;
      for (const obs::MetricSnapshot& series : snapshot.metrics) {
        if (series.type != obs::MetricType::kCounter) continue;
        digest += series.name;
        for (const auto& label : series.labels) {
          digest += "{" + label.first + "=" + label.second + "}";
        }
        digest += "=" + std::to_string(series.counter_value) + "\n";
      }
      *counter_digest = digest;
    }
  }
}

TEST(ServeTest, ChaosStormEndsBitwiseEqualToFaultFreeReplay) {
  ChaosRound(/*seed=*/0xbadcafe, /*num_ops=*/1200);
}

TEST(ServeTest, ChaosMetricsSnapshotDeterministicAcrossThreads) {
  // The same storm at query fan-out {1, 2, 8} threads exports the
  // SAME counter values series-for-series: the op sequence is
  // deterministic and the sharded counters merge commutatively, so
  // thread placement cannot leak into the snapshot.
  if (!obs::kEnabled) GTEST_SKIP() << "built with UKC_OBS=OFF";
  std::string reference;
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    std::string digest;
    ChaosRound(/*seed=*/0xbadcafe, /*num_ops=*/400, threads, &digest);
    EXPECT_FALSE(digest.empty());
    if (reference.empty()) {
      reference = digest;
    } else {
      EXPECT_EQ(digest, reference);
    }
  }
}

TEST(ServeTest, ChaosSeedSweepFromEnvironment) {
  // Default seeds plus whatever CI passes via UKC_FAULTS — the same
  // widening knob the crash-recovery suite uses.
  std::vector<uint64_t> seeds = {7, 5309};
  for (uint64_t seed : FaultSeedsFromEnv()) seeds.push_back(seed);
  for (uint64_t seed : seeds) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    ChaosRound(Mix64(seed), /*num_ops=*/300);
  }
}

#else  // !UKC_FAULT_INJECTION

TEST(ServeTest, FaultSuiteCompiledOut) {
  GTEST_SKIP() << "built with -DUKC_FAULT_INJECTION=0";
}

#endif  // UKC_FAULT_INJECTION

}  // namespace
}  // namespace ukc
