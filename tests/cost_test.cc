// Tests for the expected-cost engine: the exact E[max] sweep against
// brute-force enumeration and Monte Carlo, plus the assignment rules.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "cost/assignment.h"
#include "cost/expected_cost.h"
#include "cost/lower_bounds.h"
#include "metric/euclidean_space.h"
#include "metric/matrix_space.h"
#include "uncertain/generators.h"

namespace ukc {
namespace cost {
namespace {

using geometry::Point;
using metric::EuclideanSpace;
using metric::SiteId;
using uncertain::UncertainDataset;
using uncertain::UncertainPoint;

// --- ExpectedMaxOfIndependent ---

TEST(ExpectedMaxTest, SingleDeterministicVariable) {
  EXPECT_DOUBLE_EQ(ExpectedMaxOfIndependent({{{3.0, 1.0}}}), 3.0);
}

TEST(ExpectedMaxTest, SingleVariableIsItsMean) {
  // E[max(X)] = E[X].
  EXPECT_DOUBLE_EQ(
      ExpectedMaxOfIndependent({{{1.0, 0.5}, {5.0, 0.25}, {9.0, 0.25}}}),
      0.5 * 1 + 0.25 * 5 + 0.25 * 9);
}

TEST(ExpectedMaxTest, TwoCoins) {
  // X, Y uniform on {0, 1}: max is 1 unless both are 0.
  EXPECT_DOUBLE_EQ(
      ExpectedMaxOfIndependent({{{0.0, 0.5}, {1.0, 0.5}},
                                {{0.0, 0.5}, {1.0, 0.5}}}),
      0.75);
}

TEST(ExpectedMaxTest, DeterministicDominates) {
  // One variable is always 10, the other at most 5.
  EXPECT_DOUBLE_EQ(ExpectedMaxOfIndependent(
                       {{{10.0, 1.0}}, {{1.0, 0.5}, {5.0, 0.5}}}),
                   10.0);
}

TEST(ExpectedMaxTest, TiedValuesAcrossVariables) {
  // Both variables take the value 2 with positive probability.
  const double value = ExpectedMaxOfIndependent(
      {{{2.0, 0.5}, {4.0, 0.5}}, {{2.0, 0.5}, {3.0, 0.5}}});
  // Enumerate: (2,2)->2 .25, (2,3)->3 .25, (4,2)->4 .25, (4,3)->4 .25.
  EXPECT_DOUBLE_EQ(value, 0.25 * 2 + 0.25 * 3 + 0.5 * 4);
}

TEST(ExpectedMaxTest, NegativeValuesSupported) {
  const double value = ExpectedMaxOfIndependent(
      {{{-3.0, 0.5}, {-1.0, 0.5}}, {{-2.0, 1.0}}});
  // max(-3,-2) = -2 w.p. .5; max(-1,-2) = -1 w.p. .5.
  EXPECT_DOUBLE_EQ(value, -1.5);
}

TEST(ExpectedMaxTest, ManyVariablesApproachUpperEnd) {
  // 30 iid uniform{0,1} coins: E[max] = 1 - 2^-30.
  std::vector<DiscreteDistribution> distributions(
      30, DiscreteDistribution{{0.0, 0.5}, {1.0, 0.5}});
  EXPECT_NEAR(ExpectedMaxOfIndependent(distributions),
              1.0 - std::pow(2.0, -30), 1e-12);
}

// Random cross-validation: the sweep equals brute-force enumeration.
class ExpectedMaxRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ExpectedMaxRandomTest, MatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  const size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
  std::vector<DiscreteDistribution> distributions(n);
  for (auto& d : distributions) {
    const size_t z = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    const auto probabilities = uncertain::MakeProbabilities(
        z, uncertain::ProbabilityShape::kRandom, rng);
    for (size_t j = 0; j < z; ++j) {
      d.emplace_back(rng.UniformDouble(0.0, 10.0), probabilities[j]);
    }
  }
  // Brute force over all combinations.
  std::vector<size_t> choice(n, 0);
  double expectation = 0.0;
  while (true) {
    double probability = 1.0;
    double worst = -1e300;
    for (size_t i = 0; i < n; ++i) {
      probability *= distributions[i][choice[i]].second;
      worst = std::max(worst, distributions[i][choice[i]].first);
    }
    expectation += probability * worst;
    size_t i = 0;
    for (; i < n; ++i) {
      if (++choice[i] < distributions[i].size()) break;
      choice[i] = 0;
    }
    if (i == n) break;
  }
  EXPECT_NEAR(ExpectedMaxOfIndependent(distributions), expectation, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExpectedMaxRandomTest,
                         ::testing::Range(0, 25));

// --- Dataset-level costs ---

// Fixture: 3 uncertain points on a line with locations {0..5}.
class CostFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto space = std::make_shared<EuclideanSpace>(1);
    for (int x = 0; x <= 5; ++x) {
      space->AddPoint(Point{static_cast<double>(x)});
    }
    std::vector<UncertainPoint> points;
    points.push_back(*UncertainPoint::Build({{0, 0.5}, {1, 0.5}}));
    points.push_back(*UncertainPoint::Build({{2, 0.25}, {3, 0.75}}));
    points.push_back(*UncertainPoint::Build({{4, 0.1}, {5, 0.9}}));
    dataset_ = std::make_unique<UncertainDataset>(
        std::move(UncertainDataset::Build(space, std::move(points))).value());
  }

  std::unique_ptr<UncertainDataset> dataset_;
};

TEST_F(CostFixture, ExactMatchesBruteForceAssigned) {
  const Assignment assignment = {1, 3, 4};
  auto exact = ExactAssignedCost(*dataset_, assignment);
  auto brute = BruteForceAssignedCost(*dataset_, assignment);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(*exact, *brute, 1e-12);
}

TEST_F(CostFixture, ExactMatchesBruteForceUnassigned) {
  const std::vector<SiteId> centers = {1, 4};
  auto exact = ExactUnassignedCost(*dataset_, centers);
  auto brute = BruteForceUnassignedCost(*dataset_, centers);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(*exact, *brute, 1e-12);
}

TEST_F(CostFixture, UnassignedNeverExceedsAssigned) {
  const std::vector<SiteId> centers = {1, 4};
  auto assignment = AssignExpectedDistance(*dataset_, centers);
  ASSERT_TRUE(assignment.ok());
  auto assigned = ExactAssignedCost(*dataset_, *assignment);
  auto unassigned = ExactUnassignedCost(*dataset_, centers);
  ASSERT_TRUE(assigned.ok());
  ASSERT_TRUE(unassigned.ok());
  EXPECT_LE(*unassigned, *assigned + 1e-12);
}

TEST_F(CostFixture, MonteCarloAgreesWithExact) {
  const Assignment assignment = {0, 2, 5};
  auto exact = ExactAssignedCost(*dataset_, assignment);
  ASSERT_TRUE(exact.ok());
  Rng rng(9);
  auto estimate = MonteCarloAssignedCost(*dataset_, assignment, 200000, rng);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->mean, *exact, 5.0 * estimate->std_error + 1e-9);
  EXPECT_GT(estimate->std_error, 0.0);
  EXPECT_EQ(estimate->samples, 200000);
}

TEST_F(CostFixture, MonteCarloUnassignedAgreesWithExact) {
  const std::vector<SiteId> centers = {1, 5};
  auto exact = ExactUnassignedCost(*dataset_, centers);
  ASSERT_TRUE(exact.ok());
  Rng rng(10);
  auto estimate = MonteCarloUnassignedCost(*dataset_, centers, 200000, rng);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->mean, *exact, 5.0 * estimate->std_error + 1e-9);
}

TEST_F(CostFixture, InputValidation) {
  EXPECT_FALSE(ExactAssignedCost(*dataset_, {1, 2}).ok());        // Wrong size.
  EXPECT_FALSE(ExactAssignedCost(*dataset_, {1, 2, 99}).ok());    // Bad site.
  EXPECT_FALSE(ExactUnassignedCost(*dataset_, {}).ok());          // No centers.
  EXPECT_FALSE(ExactUnassignedCost(*dataset_, {-1}).ok());        // Bad site.
  Rng rng(11);
  EXPECT_FALSE(MonteCarloAssignedCost(*dataset_, {1, 2, 3}, 0, rng).ok());
}

TEST_F(CostFixture, BruteForceRespectsCap) {
  BruteForceCostOptions tight;
  tight.max_realizations = 2;
  EXPECT_FALSE(BruteForceAssignedCost(*dataset_, {1, 3, 4}, tight).ok());
}

// Larger randomized agreement test across generated instances.
class CostAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(CostAgreementTest, ExactEqualsBruteForceOnRandomInstances) {
  uncertain::EuclideanInstanceOptions options;
  options.n = 6;
  options.z = 3;
  options.dim = 2;
  options.seed = static_cast<uint64_t>(GetParam()) * 91 + 5;
  auto dataset = uncertain::GenerateClusteredInstance(options, 2);
  ASSERT_TRUE(dataset.ok());
  const auto sites = dataset->LocationSites();
  const std::vector<SiteId> centers = {sites[0], sites[sites.size() / 2]};
  auto assignment = AssignExpectedDistance(*dataset, centers);
  ASSERT_TRUE(assignment.ok());
  auto exact = ExactAssignedCost(*dataset, *assignment);
  auto brute = BruteForceAssignedCost(*dataset, *assignment);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(*exact, *brute, 1e-10 * (1.0 + std::abs(*brute)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CostAgreementTest, ::testing::Range(0, 10));

// --- Assignment rules ---

TEST_F(CostFixture, AssignExpectedDistancePicksMinimizer) {
  // Centers at 0 and 5.
  auto assignment = AssignExpectedDistance(*dataset_, {0, 5});
  ASSERT_TRUE(assignment.ok());
  // Point 0 (mass at 0,1) -> center 0; point 2 (mass at 4,5) -> center 5.
  EXPECT_EQ((*assignment)[0], 0);
  EXPECT_EQ((*assignment)[2], 5);
  EXPECT_TRUE(ValidateAssignment(*dataset_, {0, 5}, *assignment).ok());
}

TEST_F(CostFixture, AssignBySurrogateUsesNearestCenter) {
  const std::vector<SiteId> surrogates = {0, 3, 5};
  auto assignment = AssignBySurrogate(*dataset_, surrogates, {1, 4});
  ASSERT_TRUE(assignment.ok());
  EXPECT_EQ((*assignment)[0], 1);  // Surrogate 0 closer to 1.
  EXPECT_EQ((*assignment)[1], 4);  // Surrogate 3 closer to 4.
  EXPECT_EQ((*assignment)[2], 4);
}

TEST_F(CostFixture, AssignmentValidation) {
  EXPECT_FALSE(AssignExpectedDistance(*dataset_, {}).ok());
  EXPECT_FALSE(AssignBySurrogate(*dataset_, {0, 1}, {2}).ok());  // Size.
  EXPECT_FALSE(ValidateAssignment(*dataset_, {0, 5}, {0, 5}).ok());
  EXPECT_FALSE(ValidateAssignment(*dataset_, {0, 5}, {0, 5, 3}).ok());
}

TEST(AssignmentRuleTest, Names) {
  EXPECT_EQ(AssignmentRuleToString(AssignmentRule::kExpectedDistance), "ED");
  EXPECT_EQ(AssignmentRuleToString(AssignmentRule::kExpectedPoint), "EP");
  EXPECT_EQ(AssignmentRuleToString(AssignmentRule::kOneCenter), "OC");
}

// --- Lower bounds ---

TEST_F(CostFixture, PerPointLowerBoundIsALowerBound) {
  auto bound = PerPointLowerBound(*dataset_);
  ASSERT_TRUE(bound.ok());
  EXPECT_GT(*bound, 0.0);
  // Any concrete solution costs at least the bound.
  const std::vector<SiteId> centers = {1, 4};
  auto assignment = AssignExpectedDistance(*dataset_, centers);
  ASSERT_TRUE(assignment.ok());
  auto value = ExactAssignedCost(*dataset_, *assignment);
  ASSERT_TRUE(value.ok());
  EXPECT_LE(*bound, *value + 1e-9);
}

TEST_F(CostFixture, PointFloorIsBelowAnyCenter) {
  for (size_t i = 0; i < dataset_->n(); ++i) {
    auto floor = PointExpectedDistanceFloor(*dataset_, i);
    ASSERT_TRUE(floor.ok());
    for (SiteId c = 0; c < dataset_->space().num_sites(); ++c) {
      EXPECT_LE(*floor,
                dataset_->point(i).ExpectedDistanceTo(dataset_->space(), c) +
                    1e-7);
    }
  }
}

TEST(LowerBoundTest, FiniteMetricFloorSearchesAllSites) {
  auto matrix = metric::MatrixSpace::Build(
      {{0, 1, 4}, {1, 0, 4}, {4, 4, 0}});
  ASSERT_TRUE(matrix.ok());
  std::vector<UncertainPoint> points;
  points.push_back(*UncertainPoint::Build({{0, 0.5}, {2, 0.5}}));
  auto dataset = UncertainDataset::Build(*matrix, std::move(points));
  ASSERT_TRUE(dataset.ok());
  auto floor = PointExpectedDistanceFloor(*dataset, 0);
  ASSERT_TRUE(floor.ok());
  // Site 0: 0.5*0 + 0.5*4 = 2; site 1: 0.5*1+0.5*4 = 2.5; site 2: 2.
  EXPECT_DOUBLE_EQ(*floor, 2.0);
}


// The kd-tree fast path for the unassigned cost (Euclidean L2, at least
// kDefaultKdTreeCutover centers) must agree exactly with the
// brute-force distance scan.
TEST(UnassignedKdPathTest, AgreesWithLinearScan) {
  uncertain::EuclideanInstanceOptions options;
  options.n = 40;
  options.z = 3;
  options.dim = 2;
  options.seed = 77;
  auto dataset = uncertain::GenerateClusteredInstance(options, 4);
  ASSERT_TRUE(dataset.ok());
  const auto sites = dataset->LocationSites();
  ASSERT_GE(sites.size(), kDefaultKdTreeCutover + 4);
  // Enough centers to trigger the kd-tree path.
  std::vector<SiteId> centers(sites.begin(),
                              sites.begin() + kDefaultKdTreeCutover + 4);
  auto fast = ExactUnassignedCost(*dataset, centers);
  ASSERT_TRUE(fast.ok());
  // Reference: rebuild via the generic machinery with a manual scan.
  std::vector<DiscreteDistribution> distributions(dataset->n());
  for (size_t i = 0; i < dataset->n(); ++i) {
    for (const auto& loc : dataset->point(i).locations()) {
      distributions[i].emplace_back(
          dataset->space().DistanceToSet(loc.site, centers), loc.probability);
    }
  }
  EXPECT_NEAR(*fast, ExpectedMaxOfIndependent(distributions), 1e-10);
}

// The kd path must NOT fire for non-L2 norms (it would compute the
// wrong metric); verify the result still matches the norm's semantics.
TEST(UnassignedKdPathTest, L1NormStaysOnLinearScan) {
  auto space = std::make_shared<EuclideanSpace>(2, metric::Norm::kL1);
  std::vector<SiteId> sites;
  Rng rng(78);
  for (int i = 0; i < 30; ++i) {
    sites.push_back(space->AddPoint(Point{rng.Gaussian(), rng.Gaussian()}));
  }
  std::vector<UncertainPoint> points;
  points.push_back(*UncertainPoint::Build({{sites[0], 0.5}, {sites[1], 0.5}}));
  auto dataset = UncertainDataset::Build(space, std::move(points));
  ASSERT_TRUE(dataset.ok());
  std::vector<SiteId> centers(sites.begin() + 2, sites.begin() + 22);
  auto value = ExactUnassignedCost(*dataset, centers);
  ASSERT_TRUE(value.ok());
  double expected = 0.0;
  for (const auto& loc : dataset->point(0).locations()) {
    expected +=
        loc.probability * dataset->space().DistanceToSet(loc.site, centers);
  }
  EXPECT_NEAR(*value, expected, 1e-12);
}

}  // namespace
}  // namespace cost
}  // namespace ukc
