// Checkpoint layer (stream/checkpoint.h) and the coreset binary image
// (stream/coreset.h SerializeTo/Deserialize): exact round-trips, and —
// the crash-consistency contract — every corruption mode (byte flips,
// truncation, bad magic/version) detected at load, and a failed save
// leaving the previous checkpoint intact.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "stream/checkpoint.h"
#include "stream/coreset.h"

namespace ukc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

stream::StreamingCoreset MakeCoreset(size_t n, uint64_t seed) {
  stream::CoresetOptions options;
  options.max_cells = 64;
  options.base_cell_width = 1e-3;
  stream::StreamingCoreset coreset(2, metric::Norm::kL2, options);
  Rng rng(seed);
  for (uint64_t i = 0; i < n; ++i) {
    const double coords[2] = {rng.UniformDouble(0.0, 10.0),
                              rng.UniformDouble(0.0, 10.0)};
    EXPECT_TRUE(coreset.Add(i, coords, rng.UniformDouble(0.0, 0.5)).ok());
  }
  return coreset;
}

void ExpectBitwiseEqual(const stream::StreamingCoreset& a,
                        const stream::StreamingCoreset& b) {
  EXPECT_EQ(a.dim(), b.dim());
  EXPECT_EQ(a.norm(), b.norm());
  EXPECT_EQ(a.level(), b.level());
  EXPECT_EQ(a.num_points(), b.num_points());
  const auto cells_a = a.ExtractCells();
  const auto cells_b = b.ExtractCells();
  ASSERT_EQ(cells_a.size(), cells_b.size());
  for (size_t c = 0; c < cells_a.size(); ++c) {
    EXPECT_EQ(cells_a[c].min_index, cells_b[c].min_index);
    EXPECT_EQ(cells_a[c].count, cells_b[c].count);
    EXPECT_EQ(cells_a[c].max_spread, cells_b[c].max_spread);
    EXPECT_EQ(cells_a[c].representative, cells_b[c].representative);
  }
}

// --- Coreset image ----------------------------------------------------------

TEST(CoresetSerializationTest, RoundTripIsBitwise) {
  const auto coreset = MakeCoreset(500, 3);
  ASSERT_GT(coreset.num_cells(), 1u);
  std::string image;
  coreset.SerializeTo(&image);
  auto restored = stream::StreamingCoreset::Deserialize(image);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectBitwiseEqual(coreset, *restored);
  // Serializing the restored coreset reproduces the exact bytes (cells
  // are written in min_index order, not hash order).
  std::string reimage;
  restored->SerializeTo(&reimage);
  EXPECT_EQ(image, reimage);
}

TEST(CoresetSerializationTest, EmptyCoresetRoundTrips) {
  stream::CoresetOptions options;
  stream::StreamingCoreset empty(3, metric::Norm::kLInf, options);
  std::string image;
  empty.SerializeTo(&image);
  auto restored = stream::StreamingCoreset::Deserialize(image);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->num_points(), 0u);
  EXPECT_EQ(restored->num_cells(), 0u);
  EXPECT_EQ(restored->norm(), metric::Norm::kLInf);
  EXPECT_EQ(restored->dim(), 3u);
}

TEST(CoresetSerializationTest, RestoredCoresetKeepsAbsorbing) {
  // A restored image is live state, not a snapshot: adding the second
  // half of a stream to it must match the uninterrupted build.
  stream::CoresetOptions options;
  options.max_cells = 32;
  options.base_cell_width = 1e-3;
  const uint64_t n = 400;
  stream::StreamingCoreset full(2, metric::Norm::kL2, options);
  stream::StreamingCoreset half(2, metric::Norm::kL2, options);
  Rng rng(9);
  for (uint64_t i = 0; i < n; ++i) {
    const double coords[2] = {rng.UniformDouble(0.0, 4.0),
                              rng.UniformDouble(0.0, 4.0)};
    const double spread = rng.UniformDouble(0.0, 0.1);
    ASSERT_TRUE(full.Add(i, coords, spread).ok());
    if (i < n / 2) ASSERT_TRUE(half.Add(i, coords, spread).ok());
    if (i == n / 2 - 1) {
      std::string image;
      half.SerializeTo(&image);
      half = std::move(*stream::StreamingCoreset::Deserialize(image));
    }
    if (i >= n / 2) ASSERT_TRUE(half.Add(i, coords, spread).ok());
  }
  ExpectBitwiseEqual(full, half);
}

TEST(CoresetSerializationTest, RejectsTruncationAndTrailingBytes) {
  const auto coreset = MakeCoreset(200, 5);
  std::string image;
  coreset.SerializeTo(&image);
  // Every proper prefix must be rejected (sampled stride to keep the
  // test fast; boundaries 0 and size-1 included).
  for (size_t len = 0; len < image.size(); len += 7) {
    EXPECT_FALSE(
        stream::StreamingCoreset::Deserialize(image.substr(0, len)).ok())
        << "prefix " << len;
  }
  EXPECT_FALSE(
      stream::StreamingCoreset::Deserialize(image.substr(0, image.size() - 1))
          .ok());
  EXPECT_FALSE(stream::StreamingCoreset::Deserialize(image + "x").ok());
}

TEST(CoresetSerializationTest, RejectsCorruptHeaderFields) {
  const auto coreset = MakeCoreset(100, 7);
  std::string image;
  coreset.SerializeTo(&image);
  {
    std::string bad = image;
    bad[0] = static_cast<char>(bad[0] + 1);  // Unknown version.
    EXPECT_FALSE(stream::StreamingCoreset::Deserialize(bad).ok());
  }
  {
    std::string bad = image;
    bad[4] = '\xff';  // Version high bytes.
    EXPECT_FALSE(stream::StreamingCoreset::Deserialize(bad).ok());
  }
}

// --- Checkpoint sidecar -----------------------------------------------------

stream::IngestCheckpoint MakeCheckpoint() {
  stream::IngestCheckpoint checkpoint;
  checkpoint.config_fingerprint = 0x1122334455667788ULL;
  checkpoint.content_fingerprint = 0x99aabbccddeeff00ULL;
  checkpoint.batches = 42;
  checkpoint.points = 42 * 64;
  checkpoint.locations = 42 * 64 * 3;
  checkpoint.has_byte_offset = true;
  checkpoint.byte_offset = 123456789;
  checkpoint.cursor_window_hash = 0x0123456789abcdefULL;
  MakeCoreset(300, 11).SerializeTo(&checkpoint.coreset_image);
  return checkpoint;
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("roundtrip.ckpt");
  const auto saved = MakeCheckpoint();
  ASSERT_TRUE(stream::SaveCheckpoint(path, saved).ok());
  auto loaded = stream::LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->config_fingerprint, saved.config_fingerprint);
  EXPECT_EQ(loaded->content_fingerprint, saved.content_fingerprint);
  EXPECT_EQ(loaded->batches, saved.batches);
  EXPECT_EQ(loaded->points, saved.points);
  EXPECT_EQ(loaded->locations, saved.locations);
  EXPECT_EQ(loaded->has_byte_offset, saved.has_byte_offset);
  EXPECT_EQ(loaded->byte_offset, saved.byte_offset);
  EXPECT_EQ(loaded->cursor_window_hash, saved.cursor_window_hash);
  EXPECT_EQ(loaded->coreset_image, saved.coreset_image);
  // No temp file left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  auto loaded = stream::LoadCheckpoint(TempPath("never_written.ckpt"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, EveryByteFlipIsDetected) {
  const std::string path = TempPath("flip.ckpt");
  ASSERT_TRUE(stream::SaveCheckpoint(path, MakeCheckpoint()).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);
  // Flip one bit at a sampled stride of positions — the trailing
  // checksum must catch every one of them (flips in the checksum
  // itself included).
  const std::string flipped_path = TempPath("flipped.ckpt");
  for (size_t pos = 0; pos < bytes.size(); pos += 11) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    std::ofstream(flipped_path, std::ios::binary) << corrupt;
    auto loaded = stream::LoadCheckpoint(flipped_path);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << pos;
  }
  // The last byte (checksum tail) as well.
  std::string corrupt = bytes;
  corrupt.back() = static_cast<char>(corrupt.back() ^ 1);
  std::ofstream(flipped_path, std::ios::binary) << corrupt;
  EXPECT_FALSE(stream::LoadCheckpoint(flipped_path).ok());
}

TEST(CheckpointTest, TruncationIsDetected) {
  const std::string path = TempPath("trunc_src.ckpt");
  ASSERT_TRUE(stream::SaveCheckpoint(path, MakeCheckpoint()).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::string cut_path = TempPath("trunc.ckpt");
  for (size_t len : {size_t{0}, size_t{4}, size_t{16}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::ofstream(cut_path, std::ios::binary) << bytes.substr(0, len);
    EXPECT_FALSE(stream::LoadCheckpoint(cut_path).ok()) << "len " << len;
  }
}

TEST(CheckpointTest, SaveOverwritesAtomically) {
  const std::string path = TempPath("atomic.ckpt");
  auto first = MakeCheckpoint();
  first.batches = 1;
  ASSERT_TRUE(stream::SaveCheckpoint(path, first).ok());
  auto second = MakeCheckpoint();
  second.batches = 2;
  ASSERT_TRUE(stream::SaveCheckpoint(path, second).ok());
  auto loaded = stream::LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->batches, 2u);
}

TEST(CheckpointTest, UnwritableDirectoryFailsCleanly) {
  const Status status = stream::SaveCheckpoint(
      TempPath("no/such/directory/x.ckpt"), MakeCheckpoint());
  EXPECT_FALSE(status.ok());
}

#if UKC_FAULT_INJECTION

TEST(CheckpointTest, FailedSaveLeavesThePreviousCheckpointIntact) {
  // The crash-consistency claim, exercised at each injection site of
  // the write path: after a failed save the previous checkpoint still
  // loads, bit-for-bit.
  for (const char* site : {"checkpoint.open", "checkpoint.write",
                           "checkpoint.rename"}) {
    SCOPED_TRACE(site);
    const std::string path =
        TempPath(std::string("failed_save_") + site + ".ckpt");
    auto good = MakeCheckpoint();
    good.batches = 7;
    ASSERT_TRUE(stream::SaveCheckpoint(path, good).ok());

    {
      FaultPlan plan;
      plan.rules.push_back(
          FaultRule{site, {0}, 0.0, StatusCode::kUnavailable, 0});
      ScopedFaultInjection scope(plan);
      auto doomed = MakeCheckpoint();
      doomed.batches = 8;
      EXPECT_FALSE(stream::SaveCheckpoint(path, doomed).ok());
    }

    auto loaded = stream::LoadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->batches, 7u);
    EXPECT_EQ(loaded->coreset_image, good.coreset_image);
  }
}

TEST(CheckpointTest, ReadFaultSurfacesAsLoadError) {
  const std::string path = TempPath("read_fault.ckpt");
  ASSERT_TRUE(stream::SaveCheckpoint(path, MakeCheckpoint()).ok());
  FaultPlan plan;
  plan.rules.push_back(
      FaultRule{"checkpoint.read", {0}, 0.0, StatusCode::kUnavailable, 0});
  ScopedFaultInjection scope(plan);
  EXPECT_FALSE(stream::LoadCheckpoint(path).ok());
}

#endif  // UKC_FAULT_INJECTION

}  // namespace
}  // namespace ukc
