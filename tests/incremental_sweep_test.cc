// Randomized property suite for the incremental swap-sweep engine.
//
// The engine (cost/parallel_evaluator.h) claims two exact equivalences,
// and this file asserts both the hard way — EXPECT_EQ on doubles, no
// tolerance anywhere:
//  * incremental rollover: SwapCostMatrix with rolled-over base tables
//    (only the entries touched by the accepted swap rebuilt) is bitwise
//    identical to a full rebuild every round;
//  * kd-pruned candidate scans: visiting only the locations a candidate
//    can improve (BoundedKdTree with per-position subtree bounds) is
//    bitwise identical to the full O(N) scan.
// Both are exercised as multi-round local-search *trajectories* — the
// accepted swap of round r feeds round r+1, so a single mismatched bit
// anywhere compounds into diverging center sets — across dimensions
// d ∈ {1, 2, 3, 8}, several (k, z) shapes, threads ∈ {1, 2, 8}, and
// ≥ 3 accepted-swap rounds, on random instances.
//
// Also here: the worker-sharded subset enumeration behind
// ExactUnassignedTiny (ranked unranking vs the serial odometer,
// including cost ties where the lowest-rank subset must win), and the
// engine's cache-invalidation discipline (a different dataset through
// the same evaluator must not reuse tables).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/unassigned.h"
#include "cost/expected_cost_evaluator.h"
#include "cost/parallel_evaluator.h"
#include "exper/instances.h"
#include "solver/brute_force.h"
#include "solver/gonzalez.h"

namespace ukc {
namespace {

using metric::SiteId;

const int kThreadCounts[] = {1, 2, 8};

uncertain::UncertainDataset MakeDataset(size_t n, size_t dim, size_t z,
                                        uint64_t seed,
                                        exper::Family family =
                                            exper::Family::kClustered) {
  exper::InstanceSpec spec;
  spec.family = family;
  spec.n = n;
  spec.z = z;
  spec.dim = dim;
  spec.k = 4;
  spec.seed = seed;
  return std::move(exper::MakeInstance(spec)).value();
}

cost::ParallelCandidateEvaluator::Options EvaluatorOptions(int threads,
                                                           bool fast) {
  cost::ParallelCandidateEvaluator::Options options;
  options.threads = threads;
  options.incremental_rollover = fast;
  options.kd_prune = fast;
  return options;
}

// Applies the deterministic round step shared by every trajectory below:
// the (position, candidate) argmin over all non-identity swaps, accepted
// unconditionally so every round rolls the tables over.
void ApplyBestSwap(const std::vector<double>& values,
                   const std::vector<SiteId>& pool,
                   std::vector<SiteId>* centers) {
  double best_value = std::numeric_limits<double>::infinity();
  size_t best_position = 0;
  SiteId best_replacement = metric::kInvalidSite;
  for (size_t p = 0; p < centers->size(); ++p) {
    for (size_t c = 0; c < pool.size(); ++c) {
      if (pool[c] == (*centers)[p]) continue;
      const double value = values[p * pool.size() + c];
      if (value < best_value) {
        best_value = value;
        best_position = p;
        best_replacement = pool[c];
      }
    }
  }
  ASSERT_NE(best_replacement, metric::kInvalidSite);
  (*centers)[best_position] = best_replacement;
}

// The core property: for a ≥3-accepted-swap trajectory, the incremental
// engine (rollover + kd pruning) and the full-rebuild/full-scan
// reference produce bitwise-identical swap matrices at every round and
// every thread count — and the fast path is additionally bitwise
// invariant across thread counts.
TEST(IncrementalSweepTest, TrajectoriesMatchFullRebuildBitwise) {
  constexpr size_t kRounds = 4;
  struct Shape {
    size_t k;
    size_t z;
  };
  const Shape shapes[] = {{3, 2}, {5, 4}};
  uint64_t seed = 100;
  for (size_t dim : {1u, 2u, 3u, 8u}) {
    for (const Shape& shape : shapes) {
      ++seed;
      const auto dataset = MakeDataset(60, dim, shape.z, seed);
      const auto sites = dataset.LocationSites();
      auto gonzalez = solver::Gonzalez(dataset.space(), sites, shape.k);
      ASSERT_TRUE(gonzalez.ok());
      std::vector<SiteId> pool;
      for (size_t i = 0; i < 12; ++i) {
        pool.push_back(sites[(i * 131) % sites.size()]);
      }

      // Per-round matrices of the threads=1 fast run, the cross-thread
      // reference.
      std::vector<std::vector<double>> fast_rounds;
      for (int threads : kThreadCounts) {
        cost::ParallelCandidateEvaluator reference(
            EvaluatorOptions(threads, /*fast=*/false));
        cost::ParallelCandidateEvaluator fast(
            EvaluatorOptions(threads, /*fast=*/true));
        std::vector<SiteId> centers = gonzalez->centers;
        for (size_t round = 0; round < kRounds; ++round) {
          auto expected = reference.SwapCostMatrix(dataset, centers, pool);
          auto actual = fast.SwapCostMatrix(dataset, centers, pool);
          ASSERT_TRUE(expected.ok()) << expected.status();
          ASSERT_TRUE(actual.ok()) << actual.status();
          ASSERT_EQ(actual->size(), expected->size());
          for (size_t v = 0; v < expected->size(); ++v) {
            ASSERT_EQ((*actual)[v], (*expected)[v])
                << "dim=" << dim << " k=" << shape.k << " z=" << shape.z
                << " threads=" << threads << " round=" << round
                << " swap=" << v;
          }
          if (threads == 1) {
            fast_rounds.push_back(*actual);
          } else {
            ASSERT_LT(round, fast_rounds.size());
            ASSERT_EQ(*actual, fast_rounds[round])
                << "thread-count variance: dim=" << dim
                << " threads=" << threads << " round=" << round;
          }
          ApplyBestSwap(*actual, pool, &centers);
        }
      }
    }
  }
}

// Non-Euclidean spaces have no coordinate arena: the engine must fall
// back to the full rebuild + full scan and still agree with the
// explicit reference configuration.
TEST(IncrementalSweepTest, NonEuclideanMatchesReference) {
  const auto dataset =
      MakeDataset(40, 2, 3, 7, exper::Family::kGridGraph);
  const auto sites = dataset.LocationSites();
  auto gonzalez = solver::Gonzalez(dataset.space(), sites, 3);
  ASSERT_TRUE(gonzalez.ok());
  std::vector<SiteId> pool(sites.begin(),
                           sites.begin() + std::min<size_t>(8, sites.size()));
  cost::ParallelCandidateEvaluator reference(EvaluatorOptions(1, false));
  cost::ParallelCandidateEvaluator fast(EvaluatorOptions(1, true));
  std::vector<SiteId> centers = gonzalez->centers;
  for (size_t round = 0; round < 3; ++round) {
    auto expected = reference.SwapCostMatrix(dataset, centers, pool);
    auto actual = fast.SwapCostMatrix(dataset, centers, pool);
    ASSERT_TRUE(expected.ok()) << expected.status();
    ASSERT_TRUE(actual.ok()) << actual.status();
    ASSERT_EQ(*actual, *expected) << "round=" << round;
    ApplyBestSwap(*actual, pool, &centers);
  }
}

// Cache-poisoning property: scoring dataset A, then a same-shaped but
// different dataset B, through one evaluator must give exactly what a
// fresh evaluator gives on B — the content fingerprint, not object
// identity, gates the rollover.
TEST(IncrementalSweepTest, DatasetChangeInvalidatesRolledTables) {
  cost::ParallelCandidateEvaluator shared(EvaluatorOptions(1, true));
  std::vector<double> fresh_values;
  for (uint64_t seed : {500u, 501u}) {
    const auto dataset = MakeDataset(50, 2, 3, seed);
    const auto sites = dataset.LocationSites();
    auto gonzalez = solver::Gonzalez(dataset.space(), sites, 4);
    ASSERT_TRUE(gonzalez.ok());
    std::vector<SiteId> pool(sites.begin(),
                             sites.begin() + std::min<size_t>(10, sites.size()));
    auto shared_result =
        shared.SwapCostMatrix(dataset, gonzalez->centers, pool);
    cost::ParallelCandidateEvaluator fresh(EvaluatorOptions(1, true));
    auto fresh_result = fresh.SwapCostMatrix(dataset, gonzalez->centers, pool);
    ASSERT_TRUE(shared_result.ok()) << shared_result.status();
    ASSERT_TRUE(fresh_result.ok()) << fresh_result.status();
    EXPECT_EQ(*shared_result, *fresh_result) << "seed=" << seed;
  }
}

// The full consumer: LocalSearchUnassigned through the incremental
// engine versus the reference paths — identical trajectory (centers,
// cost, swap count) at every thread count.
TEST(IncrementalSweepTest, LocalSearchTrajectoryMatchesReferencePaths) {
  std::vector<SiteId> reference_centers;
  double reference_cost = 0.0;
  size_t reference_swaps = 0;
  bool have_reference = false;
  for (int threads : kThreadCounts) {
    for (bool reference_paths : {true, false}) {
      auto dataset = MakeDataset(60, 2, 3, 19);
      core::UnassignedSearchOptions options;
      options.k = 3;
      options.max_swaps = 10;
      options.threads = threads;
      options.reference_swap_paths = reference_paths;
      auto solution = core::LocalSearchUnassigned(&dataset, options);
      ASSERT_TRUE(solution.ok()) << solution.status();
      if (!have_reference) {
        reference_centers = solution->centers;
        reference_cost = solution->expected_cost;
        reference_swaps = solution->swaps;
        have_reference = true;
        continue;
      }
      EXPECT_EQ(solution->centers, reference_centers)
          << "threads=" << threads << " reference=" << reference_paths;
      EXPECT_EQ(solution->expected_cost, reference_cost);
      EXPECT_EQ(solution->swaps, reference_swaps);
    }
  }
}

// --- Worker-sharded subset enumeration --------------------------------------

// CombinationFromRank must reproduce the serial odometer at every rank,
// for every small (m, k).
TEST(TinyEnumerateTest, CombinationFromRankMatchesOdometer) {
  for (uint64_t m = 1; m <= 9; ++m) {
    for (uint64_t k = 1; k <= m; ++k) {
      std::vector<size_t> odometer(k);
      for (size_t i = 0; i < k; ++i) odometer[i] = i;
      const uint64_t count = solver::BinomialCount(m, k);
      for (uint64_t rank = 0; rank < count; ++rank) {
        std::vector<size_t> unranked;
        solver::CombinationFromRank(rank, m, k, &unranked);
        ASSERT_EQ(unranked, odometer) << "m=" << m << " k=" << k
                                      << " rank=" << rank;
        const bool more = solver::NextCombination(&odometer, m);
        ASSERT_EQ(more, rank + 1 < count);
      }
    }
  }
}

// Sharded enumeration parity on an exhaustive instance: every thread
// count must reproduce the serial first-strict-minimum scan exactly.
TEST(TinyEnumerateTest, ShardedEnumerationMatchesSerialScan) {
  const auto dataset = MakeDataset(25, 2, 3, 21);
  const auto sites = dataset.LocationSites();
  std::vector<SiteId> candidates(
      sites.begin(), sites.begin() + std::min<size_t>(9, sites.size()));
  const size_t k = 3;

  // Serial reference: the odometer scan with a strict <, first minimum
  // kept — the behavior the sharded path must reproduce bit for bit.
  cost::ExpectedCostEvaluator evaluator;
  std::vector<size_t> index(k);
  for (size_t i = 0; i < k; ++i) index[i] = i;
  double best_value = std::numeric_limits<double>::infinity();
  std::vector<SiteId> best_centers;
  while (true) {
    std::vector<SiteId> centers(k);
    for (size_t i = 0; i < k; ++i) centers[i] = candidates[index[i]];
    const double value = *evaluator.UnassignedCost(dataset, centers);
    if (value < best_value) {
      best_value = value;
      best_centers = centers;
    }
    if (!solver::NextCombination(&index, candidates.size())) break;
  }

  for (int threads : kThreadCounts) {
    auto solution =
        core::ExactUnassignedTiny(dataset, k, candidates, 2'000'000, threads);
    ASSERT_TRUE(solution.ok()) << solution.status();
    EXPECT_EQ(solution->centers, best_centers) << "threads=" << threads;
    EXPECT_EQ(solution->expected_cost, best_value) << "threads=" << threads;
  }
}

// Tie discipline: duplicate a candidate site at identical coordinates,
// so subsets differing only in which duplicate they use have *exactly*
// equal costs. The lexicographically first subset (the one using the
// lower-rank duplicate) must win at every thread count — the min-index
// selection the serial scan's strict < implies.
TEST(TinyEnumerateTest, TiesResolveToLowestRankSubset) {
  auto dataset = MakeDataset(15, 2, 2, 23);
  metric::EuclideanSpace* space = dataset.euclidean();
  ASSERT_NE(space, nullptr);
  const auto sites = dataset.LocationSites();
  const size_t k = 2;

  // candidates = a few original sites plus an exact coordinate clone of
  // each — every subset has an equal-cost twin at a later rank.
  std::vector<SiteId> candidates(
      sites.begin(), sites.begin() + std::min<size_t>(4, sites.size()));
  const size_t originals = candidates.size();
  for (size_t i = 0; i < originals; ++i) {
    candidates.push_back(space->AddCoords(space->coords(candidates[i])));
  }

  std::vector<SiteId> reference_centers;
  double reference_cost = 0.0;
  for (int threads : kThreadCounts) {
    auto solution =
        core::ExactUnassignedTiny(dataset, k, candidates, 2'000'000, threads);
    ASSERT_TRUE(solution.ok()) << solution.status();
    if (threads == 1) {
      reference_centers = solution->centers;
      reference_cost = solution->expected_cost;
      // The winning subset must use only original sites: its clone
      // twins tie on cost but sit at strictly higher ranks.
      for (SiteId center : solution->centers) {
        EXPECT_TRUE(std::find(candidates.begin(),
                              candidates.begin() + originals,
                              center) != candidates.begin() + originals)
            << "tie resolved away from the lowest-rank subset";
      }
      continue;
    }
    EXPECT_EQ(solution->centers, reference_centers) << "threads=" << threads;
    EXPECT_EQ(solution->expected_cost, reference_cost);
  }
}

}  // namespace
}  // namespace ukc
