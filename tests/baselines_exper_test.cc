// Tests for the baseline comparators and the experiment harness.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/baselines.h"
#include "core/uncertain_kcenter.h"
#include "cost/expected_cost.h"
#include "exper/instances.h"
#include "exper/reference.h"
#include "uncertain/generators.h"

namespace ukc {
namespace {

using uncertain::UncertainDataset;

UncertainDataset Clustered(uint64_t seed, size_t n = 30) {
  uncertain::EuclideanInstanceOptions options;
  options.n = n;
  options.z = 4;
  options.dim = 2;
  options.seed = seed;
  return std::move(uncertain::GenerateClusteredInstance(options, 3)).value();
}

TEST(BaselinesTest, AllKindsRunOnEuclidean) {
  for (auto kind : {baselines::BaselineKind::kPooledLocations,
                    baselines::BaselineKind::kModalLocation,
                    baselines::BaselineKind::kRandomCenters,
                    baselines::BaselineKind::kTruncatedMedian}) {
    UncertainDataset dataset = Clustered(1);
    baselines::BaselineOptions options;
    options.k = 3;
    auto result = baselines::RunBaseline(&dataset, kind, options);
    ASSERT_TRUE(result.ok()) << baselines::BaselineKindToString(kind);
    EXPECT_EQ(result->name, baselines::BaselineKindToString(kind));
    EXPECT_LE(result->centers.size(), 3u);
    EXPECT_EQ(result->assignment.size(), dataset.n());
    EXPECT_GT(result->expected_cost, 0.0);
  }
}

TEST(BaselinesTest, AllKindsRunOnMetric) {
  auto graph = uncertain::GenerateGridGraph(5, 5, 0.5, 2.0, 3);
  ASSERT_TRUE(graph.ok());
  for (auto kind : {baselines::BaselineKind::kPooledLocations,
                    baselines::BaselineKind::kModalLocation,
                    baselines::BaselineKind::kRandomCenters,
                    baselines::BaselineKind::kTruncatedMedian}) {
    auto dataset = uncertain::GenerateMetricInstance(
        *graph, 12, 3, 2.0, uncertain::ProbabilityShape::kRandom, 5);
    ASSERT_TRUE(dataset.ok());
    baselines::BaselineOptions options;
    options.k = 2;
    auto result = baselines::RunBaseline(&dataset.value(), kind, options);
    ASSERT_TRUE(result.ok()) << baselines::BaselineKindToString(kind);
  }
}

TEST(BaselinesTest, Validation) {
  UncertainDataset dataset = Clustered(7);
  baselines::BaselineOptions options;
  options.k = 0;
  EXPECT_FALSE(baselines::RunBaseline(
                   &dataset, baselines::BaselineKind::kPooledLocations, options)
                   .ok());
  EXPECT_FALSE(baselines::RunBaseline(
                   nullptr, baselines::BaselineKind::kPooledLocations, {})
                   .ok());
  options.k = 2;
  options.truncation_delta = 1.5;
  EXPECT_FALSE(baselines::RunBaseline(
                   &dataset, baselines::BaselineKind::kTruncatedMedian, options)
                   .ok());
}

TEST(BaselinesTest, PaperPipelineBeatsModalWhenModesCollapse) {
  // Two families of points share the same modal location but carry 40%
  // of their mass in opposite far tails. The modal baseline collapses
  // every surrogate to the origin, so its two centers coincide; the
  // expected-point pipeline splits them and hedges toward the tails.
  auto space = std::make_shared<metric::EuclideanSpace>(2);
  const metric::SiteId origin = space->AddPoint(geometry::Point{0.0, 0.0});
  const metric::SiteId east = space->AddPoint(geometry::Point{100.0, 0.0});
  const metric::SiteId west = space->AddPoint(geometry::Point{-100.0, 0.0});
  std::vector<uncertain::UncertainPoint> points;
  for (int copy = 0; copy < 3; ++copy) {
    points.push_back(
        *uncertain::UncertainPoint::Build({{origin, 0.6}, {east, 0.4}}));
    points.push_back(
        *uncertain::UncertainPoint::Build({{origin, 0.6}, {west, 0.4}}));
  }
  auto dataset = uncertain::UncertainDataset::Build(space, std::move(points));
  ASSERT_TRUE(dataset.ok());

  core::UncertainKCenterOptions pipeline_options;
  pipeline_options.k = 2;
  auto pipeline =
      core::SolveUncertainKCenter(&dataset.value(), pipeline_options);
  ASSERT_TRUE(pipeline.ok());

  baselines::BaselineOptions baseline_options;
  baseline_options.k = 2;
  auto modal = baselines::RunBaseline(
      &dataset.value(), baselines::BaselineKind::kModalLocation,
      baseline_options);
  ASSERT_TRUE(modal.ok());
  EXPECT_LT(pipeline->expected_cost, modal->expected_cost);
}

TEST(InstancesTest, AllFamiliesMaterialize) {
  for (auto family :
       {exper::Family::kUniform, exper::Family::kClustered,
        exper::Family::kOutlier, exper::Family::kLine,
        exper::Family::kGridGraph}) {
    exper::InstanceSpec spec;
    spec.family = family;
    spec.n = 15;
    spec.z = 3;
    spec.seed = 21;
    auto dataset = exper::MakeInstance(spec);
    ASSERT_TRUE(dataset.ok()) << exper::FamilyToString(family);
    EXPECT_EQ(dataset->n(), 15u);
    const std::string description = exper::DescribeInstance(spec);
    EXPECT_NE(description.find(exper::FamilyToString(family)),
              std::string::npos);
  }
}

TEST(InstancesTest, LineFamilyIsOneDimensional) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kLine;
  auto dataset = exper::MakeInstance(spec);
  ASSERT_TRUE(dataset.ok());
  ASSERT_TRUE(dataset->is_euclidean());
  EXPECT_EQ(dataset->euclidean()->dim(), 1u);
}

TEST(InstancesTest, GridGraphFamilyIsFinite) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kGridGraph;
  spec.n = 10;
  auto dataset = exper::MakeInstance(spec);
  ASSERT_TRUE(dataset.ok());
  EXPECT_FALSE(dataset->is_euclidean());
}

TEST(ReferenceTest, LowerBoundBelowEveryAlgorithm) {
  for (auto family : {exper::Family::kClustered, exper::Family::kGridGraph}) {
    exper::InstanceSpec spec;
    spec.family = family;
    spec.n = 20;
    spec.z = 3;
    spec.k = 3;
    spec.seed = 31;
    auto dataset = exper::MakeInstance(spec);
    ASSERT_TRUE(dataset.ok());
    auto bound = exper::UnrestrictedLowerBound(&dataset.value(), spec.k);
    ASSERT_TRUE(bound.ok());
    EXPECT_GE(bound->combined, bound->per_point);
    EXPECT_GE(bound->combined, bound->surrogate);

    core::UncertainKCenterOptions options;
    options.k = spec.k;
    if (!dataset->is_euclidean()) {
      options.rule = cost::AssignmentRule::kOneCenter;
    }
    auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
    ASSERT_TRUE(solution.ok());
    EXPECT_LE(bound->combined, solution->expected_cost + 1e-9)
        << exper::FamilyToString(family);
  }
}

TEST(ReferenceTest, LowerBoundPositiveOnSpreadInstances) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kClustered;
  spec.n = 25;
  spec.spread = 1.5;
  spec.seed = 41;
  auto dataset = exper::MakeInstance(spec);
  ASSERT_TRUE(dataset.ok());
  auto bound = exper::UnrestrictedLowerBound(&dataset.value(), spec.k);
  ASSERT_TRUE(bound.ok());
  EXPECT_GT(bound->combined, 0.0);
}

}  // namespace
}  // namespace ukc
