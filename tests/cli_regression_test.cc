// End-to-end regressions against the built ukc_cli binary (path baked
// in by CMake as UKC_CLI_BIN). These pin the CLI's *process contract* —
// exit codes, stderr wording, file side effects — which unit tests on
// the library can't see:
//   - --metrics-out to an unopenable path fails FAST with the OS error
//     on stderr and a non-zero exit, instead of running the whole
//     workload and then silently dropping the export (the bug: the
//     file was opened only after the run finished).
//   - The happy path writes a non-empty export in the format the
//     extension picks (.json = JSON, else Prometheus text).
//   - --serve --window drives the sliding-window serving path and
//     reports the expiry counters.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#ifndef UKC_CLI_BIN
#error "UKC_CLI_BIN must be defined to the built ukc_cli path"
#endif

namespace ukc {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved.
};

RunResult RunCli(const std::string& arguments) {
  const std::string command = std::string(UKC_CLI_BIN) + " " + arguments + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t read = 0;
  while ((read = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), read);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Tiny but real workloads. The serve session meters into the default
// registry (query latency histograms, churn counters), so its export
// has content; the plain solve run is the cheapest way to reach the
// exit path.
const char kTinyRun[] = "--generate clustered --n 30 --z 2 --dim 2 --k 2";
const char kTinyServeRun[] =
    "--serve --serve-tenants 2 --serve-ops 200 --k 2 --dim 2 --seed 7 "
    "--threads 1";

TEST(CliRegressionTest, UnopenableMetricsPathFailsFastWithOsError) {
  const std::string bad = "/nonexistent-ukc-dir/metrics.json";
  const auto result = RunCli(std::string(kTinyRun) + " --metrics-out " + bad);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("cannot open metrics file"), std::string::npos)
      << result.output;
  // The OS error is part of the message (ENOENT here).
  EXPECT_NE(result.output.find("No such file or directory"), std::string::npos)
      << result.output;
  std::ifstream check(bad);
  EXPECT_FALSE(check.good()) << "a partial metrics file was left behind";
}

TEST(CliRegressionTest, MetricsOutWritesJsonOrPrometheusByExtension) {
  const std::string json_path = TempPath("cli_metrics.json");
  const std::string prom_path = TempPath("cli_metrics.prom");
  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());

  const auto json_run =
      RunCli(std::string(kTinyServeRun) + " --metrics-out " + json_path);
  EXPECT_EQ(json_run.exit_code, 0) << json_run.output;
  std::ifstream json_file(json_path);
  ASSERT_TRUE(json_file.good());
  std::stringstream json_text;
  json_text << json_file.rdbuf();
  EXPECT_EQ(json_text.str().rfind("{\"metrics\":", 0), 0u) << json_text.str();
  EXPECT_NE(json_text.str().find("ukc_serve"), std::string::npos);

  const auto prom_run =
      RunCli(std::string(kTinyServeRun) + " --metrics-out " + prom_path);
  EXPECT_EQ(prom_run.exit_code, 0) << prom_run.output;
  std::ifstream prom_file(prom_path);
  ASSERT_TRUE(prom_file.good());
  std::stringstream prom_text;
  prom_text << prom_file.rdbuf();
  EXPECT_NE(prom_text.str().find("# TYPE"), std::string::npos)
      << prom_text.str();

  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());
}

TEST(CliRegressionTest, ServeWindowDrivesExpiryAndReportsIt) {
  const auto result = RunCli(
      "--serve --serve-tenants 2 --serve-ops 400 --k 2 --dim 2 "
      "--window 16 --seed 7 --threads 1");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("window points"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("points expired"), std::string::npos)
      << result.output;
  // A negative window is rejected up front.
  const auto bad = RunCli("--serve --window -1");
  EXPECT_NE(bad.exit_code, 0);
}

}  // namespace
}  // namespace ukc
