// Observability core (src/obs/): registry get-or-create identity,
// counter/gauge/histogram semantics, deterministic multi-threaded
// snapshots, quantile extraction, Prometheus/JSON export shape, and
// the span path stack. Everything runs against private registries so
// counts are exact regardless of what other tests metered into the
// process-wide default.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ukc {
namespace obs {
namespace {

TEST(MetricsRegistryTest, GetOrCreateReturnsStableHandles) {
  if (!kEnabled) GTEST_SKIP() << "built with UKC_OBS=OFF";
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("ukc_test_total", "help", {{"k", "v"}});
  Counter* b = registry.GetCounter("ukc_test_total", "ignored", {{"k", "v"}});
  EXPECT_EQ(a, b);
  // Label order does not split the metric.
  Counter* c = registry.GetCounter("ukc_test_multi", "",
                                   {{"b", "2"}, {"a", "1"}});
  Counter* d = registry.GetCounter("ukc_test_multi", "",
                                   {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(c, d);
  // A different label VALUE is a different series.
  Counter* e = registry.GetCounter("ukc_test_total", "", {{"k", "other"}});
  EXPECT_NE(a, e);
  EXPECT_EQ(registry.NumMetrics(), 3u);
}

TEST(MetricsRegistryTest, CounterAndGaugeValues) {
  if (!kEnabled) GTEST_SKIP() << "built with UKC_OBS=OFF";
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("ukc_c_total");
  Gauge* gauge = registry.GetGauge("ukc_g");
  counter->Increment();
  counter->Add(41);
  gauge->Set(7);
  gauge->Add(-3);
  EXPECT_EQ(counter->Value(), 42u);
  EXPECT_EQ(gauge->Value(), 4);

  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 2u);
  EXPECT_EQ(snapshot.metrics[0].counter_value, 42u);
  EXPECT_EQ(snapshot.metrics[1].gauge_value, 4);
  EXPECT_EQ(snapshot.CounterTotal("ukc_c_total"), 42u);

  registry.Reset();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(gauge->Value(), 0);
}

TEST(MetricsRegistryTest, HistogramCountsSumAndQuantiles) {
  if (!kEnabled) GTEST_SKIP() << "built with UKC_OBS=OFF";
  MetricsRegistry registry;
  // Bounds 1, 2, 4, 8: values land by upper_bound (value <= bound).
  Histogram* h = registry.GetHistogram("ukc_h_seconds", "", {},
                                       ExponentialBuckets(1.0, 2.0, 4));
  for (int i = 0; i < 100; ++i) h->Observe(1.5);  // Bucket (1, 2].
  h->Observe(100.0);                              // Overflow bucket.

  const HistogramSnapshot snapshot = h->Snapshot();
  ASSERT_EQ(snapshot.bounds.size(), 4u);
  ASSERT_EQ(snapshot.counts.size(), 5u);
  EXPECT_EQ(snapshot.counts[1], 100u);
  EXPECT_EQ(snapshot.counts[4], 1u);
  EXPECT_EQ(snapshot.count, 101u);
  EXPECT_NEAR(snapshot.sum, 100 * 1.5 + 100.0, 1e-6);
  // p50 interpolates inside (1, 2]; the overflow bucket reports its
  // lower bound (the last finite bound).
  const double p50 = snapshot.Quantile(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 8.0);
  EXPECT_NEAR(snapshot.Mean(), (100 * 1.5 + 100.0) / 101.0, 1e-9);
  // Empty histograms answer 0 everywhere.
  EXPECT_EQ(HistogramSnapshot{}.Quantile(0.5), 0.0);
}

// A quantile landing in the +Inf overflow bucket is a LOWER BOUND, not
// an estimate: Quantile sets the overflow flag, and ExportJson marks
// the quantile with a "<q>_lower_bound" field so dashboards can render
// "p99 >= X" instead of a silently wrong point estimate.
TEST(MetricsRegistryTest, OverflowQuantilesAreFlaggedAsLowerBounds) {
  if (!kEnabled) GTEST_SKIP() << "built with UKC_OBS=OFF";
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("ukc_over_seconds", "", {},
                                       ExponentialBuckets(1.0, 2.0, 4));
  // Half the mass in (1, 2], half past the last finite bound (8): p50
  // interpolates normally, p95/p99 land in the overflow bucket.
  for (int i = 0; i < 50; ++i) h->Observe(1.5);
  for (int i = 0; i < 50; ++i) h->Observe(100.0);
  const HistogramSnapshot snapshot = h->Snapshot();

  bool overflow = true;
  const double p50 = snapshot.Quantile(0.5, &overflow);
  EXPECT_FALSE(overflow);  // The flag is cleared, not just left alone.
  EXPECT_LE(p50, 2.0);
  const double p99 = snapshot.Quantile(0.99, &overflow);
  EXPECT_TRUE(overflow);
  EXPECT_DOUBLE_EQ(p99, 8.0);  // The last finite bound, never +Inf.
  // The flag is optional — a null out-param must not crash.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.99), 8.0);

  const std::string json = registry.ExportJson();
  EXPECT_EQ(json.find("\"p50_lower_bound\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_lower_bound\":true"), std::string::npos);
}

// The determinism contract: the merged snapshot depends only on the
// multiset of observed events, not on which thread observed which —
// integer bucket counts and the fixed-point sum are commutative.
TEST(MetricsRegistryTest, SnapshotDeterministicAcrossThreadCounts) {
  if (!kEnabled) GTEST_SKIP() << "built with UKC_OBS=OFF";
  RegistrySnapshot reference;
  for (const int threads : {1, 2, 8}) {
    MetricsRegistry registry;
    Counter* counter = registry.GetCounter("ukc_det_total");
    Histogram* h = registry.GetHistogram("ukc_det_seconds");
    ThreadPool pool(threads);
    pool.ParallelFor(4096, [&](int, size_t i) {
      counter->Increment();
      h->Observe(1e-6 * static_cast<double>(i % 32 + 1));
    });
    const RegistrySnapshot snapshot = registry.Snapshot();
    EXPECT_EQ(snapshot.CounterTotal("ukc_det_total"), 4096u);
    if (reference.metrics.empty()) {
      reference = snapshot;
      continue;
    }
    ASSERT_EQ(snapshot.metrics.size(), reference.metrics.size());
    const HistogramSnapshot& got = snapshot.metrics[1].histogram;
    const HistogramSnapshot& want = reference.metrics[1].histogram;
    EXPECT_EQ(got.counts, want.counts) << "threads=" << threads;
    EXPECT_EQ(got.count, want.count);
    // Fixed-point accumulation: the sum is bitwise identical too.
    EXPECT_EQ(got.sum, want.sum) << "threads=" << threads;
  }
}

TEST(MetricsRegistryTest, PrometheusExportShape) {
  if (!kEnabled) GTEST_SKIP() << "built with UKC_OBS=OFF";
  MetricsRegistry registry;
  registry.GetCounter("ukc_x_total", "counts x", {{"site", "a"}})->Add(3);
  registry
      .GetHistogram("ukc_y_seconds", "times y", {},
                    ExponentialBuckets(1.0, 2.0, 2))
      ->Observe(1.5);
  const std::string text = registry.ExportPrometheus();
  EXPECT_NE(text.find("# TYPE ukc_x_total counter"), std::string::npos);
  EXPECT_NE(text.find("ukc_x_total{site=\"a\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ukc_y_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("ukc_y_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ukc_y_seconds_count 1"), std::string::npos);

  const std::string json = registry.ExportJson();
  EXPECT_NE(json.find("\"ukc_x_total\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(TraceSpanTest, NestedSpansBuildDottedPaths) {
  if (!kEnabled) GTEST_SKIP() << "built with UKC_OBS=OFF";
  MetricsRegistry registry;
  EXPECT_EQ(TraceSpan::CurrentPath(), "");
  {
    TraceSpan outer("solve", &registry);
    EXPECT_EQ(TraceSpan::CurrentPath(), "solve");
    {
      TraceSpan inner("sweep", &registry);
      EXPECT_EQ(TraceSpan::CurrentPath(), "solve.sweep");
    }
    EXPECT_EQ(TraceSpan::CurrentPath(), "solve");
  }
  EXPECT_EQ(TraceSpan::CurrentPath(), "");
  const RegistrySnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterTotal("ukc_span_total"), 2u);
  const MetricSnapshot* inner_series =
      snapshot.Find("ukc_span_seconds", {{"span", "solve.sweep"}});
  ASSERT_NE(inner_series, nullptr);
  EXPECT_EQ(inner_series->histogram.count, 1u);
}

TEST(ScopedTimerTest, ObservesOnceAndCancelDetaches) {
  if (!kEnabled) GTEST_SKIP() << "built with UKC_OBS=OFF";
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("ukc_t_seconds");
  { ScopedTimer timer(h); }
  {
    ScopedTimer timer(h);
    timer.Cancel();
  }
  { ScopedTimer timer(nullptr); }  // Measure-only: must not crash.
  EXPECT_EQ(h->Snapshot().count, 1u);
}

}  // namespace
}  // namespace obs
}  // namespace ukc
