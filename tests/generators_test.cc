#include "uncertain/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metric/metric_checker.h"

namespace ukc {
namespace uncertain {
namespace {

TEST(ProbabilitiesTest, UniformShape) {
  Rng rng(1);
  const auto p = MakeProbabilities(4, ProbabilityShape::kUniform, rng);
  ASSERT_EQ(p.size(), 4u);
  for (double value : p) EXPECT_DOUBLE_EQ(value, 0.25);
}

TEST(ProbabilitiesTest, RandomShapeSumsToOne) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto p = MakeProbabilities(7, ProbabilityShape::kRandom, rng);
    double total = 0.0;
    for (double value : p) {
      EXPECT_GT(value, 0.0);
      total += value;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(ProbabilitiesTest, SpikyShapeHasDominantMass) {
  Rng rng(3);
  const auto p = MakeProbabilities(5, ProbabilityShape::kSpiky, rng);
  double biggest = 0.0;
  double total = 0.0;
  for (double value : p) {
    biggest = std::max(biggest, value);
    total += value;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GE(biggest, 0.89);
}

TEST(ProbabilitiesTest, SingleLocation) {
  Rng rng(4);
  for (auto shape : {ProbabilityShape::kUniform, ProbabilityShape::kRandom,
                     ProbabilityShape::kSpiky}) {
    const auto p = MakeProbabilities(1, shape, rng);
    ASSERT_EQ(p.size(), 1u);
    EXPECT_DOUBLE_EQ(p[0], 1.0);
  }
}

EuclideanInstanceOptions SmallOptions() {
  EuclideanInstanceOptions options;
  options.n = 25;
  options.z = 3;
  options.dim = 2;
  options.spread = 0.4;
  options.seed = 11;
  return options;
}

TEST(GeneratorsTest, UniformInstanceShape) {
  auto dataset = GenerateUniformInstance(SmallOptions());
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->n(), 25u);
  EXPECT_EQ(dataset->max_locations(), 3u);
  EXPECT_TRUE(dataset->is_euclidean());
  EXPECT_EQ(dataset->euclidean()->dim(), 2u);
}

TEST(GeneratorsTest, DeterministicInSeed) {
  auto a = GenerateUniformInstance(SmallOptions());
  auto b = GenerateUniformInstance(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->n(); ++i) {
    for (size_t j = 0; j < a->point(i).num_locations(); ++j) {
      EXPECT_EQ(a->euclidean()->point(a->point(i).site(j)),
                b->euclidean()->point(b->point(i).site(j)));
      EXPECT_DOUBLE_EQ(a->point(i).probability(j), b->point(i).probability(j));
    }
  }
}

TEST(GeneratorsTest, SeedsChangeTheInstance) {
  auto options = SmallOptions();
  auto a = GenerateUniformInstance(options);
  options.seed = 12;
  auto b = GenerateUniformInstance(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->euclidean()->point(a->point(0).site(0)),
            b->euclidean()->point(b->point(0).site(0)));
}

TEST(GeneratorsTest, ClusteredInstanceIsTighterThanUniform) {
  auto options = SmallOptions();
  options.n = 60;
  auto clustered = GenerateClusteredInstance(options, 3, /*cluster_stddev=*/0.2);
  ASSERT_TRUE(clustered.ok());
  EXPECT_EQ(clustered->n(), 60u);
  EXPECT_FALSE(GenerateClusteredInstance(options, 0).ok());
}

TEST(GeneratorsTest, OutlierInstanceHasFarLocations) {
  auto options = SmallOptions();
  options.z = 4;
  auto dataset = GenerateOutlierInstance(options, 2, /*outlier_probability=*/0.1,
                                         /*outlier_distance=*/50.0);
  ASSERT_TRUE(dataset.ok());
  // Every point's support diameter is near the outlier distance.
  double min_diameter = 1e18;
  for (size_t i = 0; i < dataset->n(); ++i) {
    min_diameter = std::min(min_diameter,
                            dataset->point(i).SupportDiameter(dataset->space()));
  }
  EXPECT_GT(min_diameter, 25.0);
}

TEST(GeneratorsTest, OutlierInstanceValidation) {
  auto options = SmallOptions();
  options.z = 1;
  EXPECT_FALSE(GenerateOutlierInstance(options, 2).ok());  // Needs z >= 2.
  options.z = 3;
  EXPECT_FALSE(GenerateOutlierInstance(options, 2, /*outlier_probability=*/1.5).ok());
}

TEST(GeneratorsTest, LineInstanceIsOneDimensional) {
  auto dataset = GenerateLineInstance(30, 4, 100.0, 2.0,
                                      ProbabilityShape::kUniform, 7);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->euclidean()->dim(), 1u);
  EXPECT_EQ(dataset->n(), 30u);
  // Supports are narrow relative to the line length.
  EXPECT_LE(dataset->MaxSupportDiameter(), 2.0 + 1e-9);
}

TEST(GeneratorsTest, GridGraphIsValidMetric) {
  auto graph = GenerateGridGraph(4, 5, 0.5, 2.0, 13);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ((*graph)->num_sites(), 20);
  EXPECT_EQ((*graph)->num_edges(), 4u * 4 + 3 * 5);  // 31 edges.
  EXPECT_TRUE(metric::CheckMetricAxioms(**graph).ok());
}

TEST(GeneratorsTest, GridGraphValidation) {
  EXPECT_FALSE(GenerateGridGraph(0, 5, 0.5, 2.0, 1).ok());
  EXPECT_FALSE(GenerateGridGraph(3, 3, 0.0, 2.0, 1).ok());
  EXPECT_FALSE(GenerateGridGraph(3, 3, 2.0, 1.0, 1).ok());
}

TEST(GeneratorsTest, MetricInstanceOverGraph) {
  auto graph = GenerateGridGraph(5, 5, 0.5, 2.0, 17);
  ASSERT_TRUE(graph.ok());
  auto dataset = GenerateMetricInstance(*graph, 12, 3, 2.0,
                                        ProbabilityShape::kRandom, 19);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->n(), 12u);
  EXPECT_FALSE(dataset->is_euclidean());
  // Locations are distinct sites per point.
  for (size_t i = 0; i < dataset->n(); ++i) {
    EXPECT_EQ(dataset->point(i).num_locations(), 3u);
  }
}

TEST(GeneratorsTest, MetricInstanceValidation) {
  auto graph = GenerateGridGraph(2, 2, 0.5, 2.0, 17);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(GenerateMetricInstance(nullptr, 5, 2, 1.0,
                                      ProbabilityShape::kUniform, 1)
                   .ok());
  EXPECT_FALSE(GenerateMetricInstance(*graph, 5, 9, 1.0,
                                      ProbabilityShape::kUniform, 1)
                   .ok());  // z > |sites|.
  EXPECT_FALSE(GenerateMetricInstance(*graph, 5, 2, 0.0,
                                      ProbabilityShape::kUniform, 1)
                   .ok());
}

}  // namespace
}  // namespace uncertain
}  // namespace ukc
