// Determinism tests for the parallel candidate-evaluation pipeline:
// batch results must be *bitwise* identical to serial results for every
// thread count, for both the exact and Monte-Carlo paths. Each
// candidate's evaluation is arithmetically identical no matter which
// worker runs it (per-worker evaluators are pure scratch; Monte-Carlo
// streams are forked by candidate index), so EXPECT_EQ on doubles is
// the right assertion — any tolerance would hide a scheduling leak.
//
// Also covers the ThreadPool itself (full coverage of the index space,
// worker ids in range) and the thread-count invariance of the routed
// consumers (unassigned local search, k-median local search, refine).

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/unassigned.h"
#include "cost/expected_cost_evaluator.h"
#include "cost/parallel_evaluator.h"
#include "exper/instances.h"
#include "solver/gonzalez.h"
#include "solver/kmedian_local_search.h"
#include "solver/refine.h"

namespace ukc {
namespace {

using metric::SiteId;

const int kThreadCounts[] = {1, 2, 8};

uncertain::UncertainDataset MakeDataset(size_t n, uint64_t seed,
                                        exper::Family family =
                                            exper::Family::kClustered) {
  exper::InstanceSpec spec;
  spec.family = family;
  spec.n = n;
  spec.z = 3;
  spec.dim = 2;
  spec.k = 4;
  spec.seed = seed;
  return std::move(exper::MakeInstance(spec)).value();
}

// Some candidate center sets around a Gonzalez seed, local-search style.
std::vector<std::vector<SiteId>> MakeCenterSets(
    const uncertain::UncertainDataset& dataset, size_t count) {
  const auto sites = dataset.LocationSites();
  auto seed = solver::Gonzalez(dataset.space(), sites, 4);
  std::vector<std::vector<SiteId>> center_sets;
  for (size_t s = 0; s < count; ++s) {
    auto centers = seed->centers;
    centers[s % centers.size()] = sites[(s * 131) % sites.size()];
    center_sets.push_back(std::move(centers));
  }
  return center_sets;
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    std::atomic<bool> worker_in_range{true};
    pool.ParallelFor(kCount, [&](int worker, size_t index) {
      if (worker < 0 || worker >= threads) worker_in_range = false;
      hits[index].fetch_add(1);
    });
    EXPECT_TRUE(worker_in_range.load());
    for (size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int job = 0; job < 20; ++job) {
    std::atomic<size_t> total{0};
    pool.ParallelFor(100, [&](int, size_t index) { total += index; });
    EXPECT_EQ(total.load(), 100u * 99 / 2);
  }
  pool.ParallelFor(0, [](int, size_t) { FAIL(); });  // Empty job is a no-op.
}

TEST(ParallelEvaluatorTest, ExactBatchBitwiseMatchesSerial) {
  const auto dataset = MakeDataset(150, 7);
  const auto center_sets = MakeCenterSets(dataset, 24);

  cost::ExpectedCostEvaluator serial;
  std::vector<double> reference;
  for (const auto& centers : center_sets) {
    reference.push_back(*serial.UnassignedCost(dataset, centers));
  }

  for (int threads : kThreadCounts) {
    cost::ParallelCandidateEvaluator::Options options;
    options.threads = threads;
    cost::ParallelCandidateEvaluator parallel(options);
    auto values = parallel.UnassignedCostBatch(dataset, center_sets);
    ASSERT_TRUE(values.ok()) << values.status();
    ASSERT_EQ(values->size(), reference.size());
    for (size_t s = 0; s < reference.size(); ++s) {
      EXPECT_EQ((*values)[s], reference[s])
          << "threads=" << threads << " set=" << s;
    }
  }
}

TEST(ParallelEvaluatorTest, AssignedBatchBitwiseMatchesSerial) {
  const auto dataset = MakeDataset(120, 9);
  const auto sites = dataset.LocationSites();
  std::vector<cost::Assignment> assignments;
  for (uint64_t variant = 0; variant < 12; ++variant) {
    cost::Assignment assignment(dataset.n());
    for (size_t i = 0; i < dataset.n(); ++i) {
      assignment[i] = sites[(i * 7 + variant * 13) % sites.size()];
    }
    assignments.push_back(std::move(assignment));
  }

  cost::ExpectedCostEvaluator serial;
  std::vector<double> reference;
  for (const auto& assignment : assignments) {
    reference.push_back(*serial.AssignedCost(dataset, assignment));
  }

  for (int threads : kThreadCounts) {
    cost::ParallelCandidateEvaluator::Options options;
    options.threads = threads;
    cost::ParallelCandidateEvaluator parallel(options);
    auto values = parallel.AssignedCostBatch(dataset, assignments);
    ASSERT_TRUE(values.ok()) << values.status();
    for (size_t a = 0; a < reference.size(); ++a) {
      EXPECT_EQ((*values)[a], reference[a])
          << "threads=" << threads << " assignment=" << a;
    }
  }
}

TEST(ParallelEvaluatorTest, MonteCarloBatchIsThreadCountInvariant) {
  const auto dataset = MakeDataset(60, 11);
  const auto center_sets = MakeCenterSets(dataset, 8);
  constexpr int64_t kSamples = 5000;

  std::vector<cost::MonteCarloEstimate> reference;
  for (int threads : kThreadCounts) {
    cost::ParallelCandidateEvaluator::Options options;
    options.threads = threads;
    cost::ParallelCandidateEvaluator parallel(options);
    Rng rng(123);  // Fresh identical stream per thread count.
    auto estimates = parallel.MonteCarloUnassignedCostBatch(dataset, center_sets,
                                                            kSamples, rng);
    ASSERT_TRUE(estimates.ok()) << estimates.status();
    if (reference.empty()) {
      reference = *estimates;
      // Sanity: the estimates agree with the exact sweep.
      cost::ExpectedCostEvaluator exact;
      for (size_t s = 0; s < center_sets.size(); ++s) {
        const double truth = *exact.UnassignedCost(dataset, center_sets[s]);
        EXPECT_NEAR(reference[s].mean, truth,
                    6.0 * reference[s].std_error + 1e-9);
      }
      continue;
    }
    for (size_t s = 0; s < reference.size(); ++s) {
      EXPECT_EQ((*estimates)[s].mean, reference[s].mean)
          << "threads=" << threads << " set=" << s;
      EXPECT_EQ((*estimates)[s].std_error, reference[s].std_error);
      EXPECT_EQ((*estimates)[s].samples, reference[s].samples);
    }
  }
}

TEST(ParallelEvaluatorTest, SwapCostMatrixMatchesFullEvaluation) {
  for (exper::Family family :
       {exper::Family::kClustered, exper::Family::kGridGraph}) {
    const auto dataset = MakeDataset(80, 13, family);
    const auto sites = dataset.LocationSites();
    auto seed = solver::Gonzalez(dataset.space(), sites, 4);
    const std::vector<SiteId>& centers = seed->centers;
    std::vector<SiteId> pool(sites.begin(),
                             sites.begin() + std::min<size_t>(10, sites.size()));

    // Reference: full linear-path evaluation of every swapped set. The
    // merge-sweep enumerates the same events in the same value order,
    // but events *tied on value* (common in the grid-graph metric) may
    // apply in a different order, so the comparison is to rounding, not
    // bitwise. Across thread counts the swap path is bitwise identical
    // — asserted below against the threads=1 matrix.
    cost::ExpectedCostEvaluator::Options linear_options;
    linear_options.kdtree_cutover = std::numeric_limits<size_t>::max();
    cost::ExpectedCostEvaluator serial(linear_options);
    std::vector<double> reference;
    for (size_t p = 0; p < centers.size(); ++p) {
      for (SiteId candidate : pool) {
        std::vector<SiteId> trial = centers;
        trial[p] = candidate;
        reference.push_back(*serial.UnassignedCost(dataset, trial));
      }
    }

    std::vector<double> single_threaded;
    for (int threads : kThreadCounts) {
      cost::ParallelCandidateEvaluator::Options options;
      options.threads = threads;
      cost::ParallelCandidateEvaluator parallel(options);
      auto values = parallel.SwapCostMatrix(dataset, centers, pool);
      ASSERT_TRUE(values.ok()) << values.status();
      ASSERT_EQ(values->size(), reference.size());
      for (size_t v = 0; v < reference.size(); ++v) {
        EXPECT_NEAR((*values)[v], reference[v],
                    1e-12 * (1.0 + std::abs(reference[v])))
            << "threads=" << threads << " swap=" << v;
      }
      if (single_threaded.empty()) {
        single_threaded = *values;
        continue;
      }
      for (size_t v = 0; v < single_threaded.size(); ++v) {
        EXPECT_EQ((*values)[v], single_threaded[v])
            << "threads=" << threads << " swap=" << v;
      }
    }
  }
}

TEST(ParallelEvaluatorTest, PropagatesErrors) {
  const auto dataset = MakeDataset(20, 17);
  cost::ParallelCandidateEvaluator parallel;
  std::vector<std::vector<SiteId>> center_sets = {{0}, {-1}, {0}};
  EXPECT_FALSE(parallel.UnassignedCostBatch(dataset, center_sets).ok());
  EXPECT_FALSE(parallel.SwapCostMatrix(dataset, {}, {0}).ok());
  EXPECT_FALSE(parallel.SwapCostMatrix(dataset, {0}, {}).ok());
}

TEST(ConsumerDeterminismTest, LocalSearchUnassignedIsThreadCountInvariant) {
  std::vector<SiteId> reference_centers;
  double reference_cost = 0.0;
  size_t reference_swaps = 0;
  for (int threads : kThreadCounts) {
    auto dataset = MakeDataset(60, 19);
    core::UnassignedSearchOptions options;
    options.k = 3;
    options.max_swaps = 10;
    options.threads = threads;
    auto solution = core::LocalSearchUnassigned(&dataset, options);
    ASSERT_TRUE(solution.ok()) << solution.status();
    if (threads == 1) {
      reference_centers = solution->centers;
      reference_cost = solution->expected_cost;
      reference_swaps = solution->swaps;
      continue;
    }
    EXPECT_EQ(solution->centers, reference_centers) << "threads=" << threads;
    EXPECT_EQ(solution->expected_cost, reference_cost);
    EXPECT_EQ(solution->swaps, reference_swaps);
  }
}

TEST(ConsumerDeterminismTest, ExactUnassignedTinyIsThreadCountInvariant) {
  const auto dataset = MakeDataset(25, 21);
  const auto sites = dataset.LocationSites();
  std::vector<SiteId> candidates(sites.begin(),
                                 sites.begin() + std::min<size_t>(9, sites.size()));
  std::vector<SiteId> reference_centers;
  double reference_cost = 0.0;
  for (int threads : kThreadCounts) {
    auto solution =
        core::ExactUnassignedTiny(dataset, 3, candidates, 2'000'000, threads);
    ASSERT_TRUE(solution.ok()) << solution.status();
    if (threads == 1) {
      reference_centers = solution->centers;
      reference_cost = solution->expected_cost;
      continue;
    }
    EXPECT_EQ(solution->centers, reference_centers) << "threads=" << threads;
    EXPECT_EQ(solution->expected_cost, reference_cost);
  }
}

TEST(ConsumerDeterminismTest, KMedianLocalSearchIsThreadCountInvariant) {
  Rng rng(31);
  const size_t clients = 40;
  const size_t facilities = 25;
  std::vector<std::vector<double>> cost(clients);
  for (auto& row : cost) {
    row.reserve(facilities);
    for (size_t f = 0; f < facilities; ++f) {
      row.push_back(rng.UniformDouble(0.0, 10.0));
    }
  }
  std::vector<size_t> reference_facilities;
  double reference_cost = 0.0;
  for (int threads : kThreadCounts) {
    solver::KMedianOptions options;
    options.threads = threads;
    auto solution = solver::KMedianLocalSearch(cost, 5, options);
    ASSERT_TRUE(solution.ok()) << solution.status();
    if (threads == 1) {
      reference_facilities = solution->facilities;
      reference_cost = solution->total_cost;
      continue;
    }
    EXPECT_EQ(solution->facilities, reference_facilities)
        << "threads=" << threads;
    EXPECT_EQ(solution->total_cost, reference_cost);
  }
}

TEST(ConsumerDeterminismTest, RefineKCenterIsThreadCountInvariant) {
  std::vector<SiteId> reference_centers;
  double reference_radius = 0.0;
  for (int threads : kThreadCounts) {
    auto dataset = MakeDataset(80, 23);
    const auto sites = dataset.LocationSites();
    auto seed = solver::Gonzalez(dataset.space(), sites, 4);
    ASSERT_TRUE(seed.ok());
    solver::RefineOptions options;
    options.threads = threads;
    auto refined = solver::RefineKCenter(dataset.shared_space().get(), sites,
                                         *seed, options);
    ASSERT_TRUE(refined.ok()) << refined.status();
    EXPECT_LE(refined->radius, seed->radius + 1e-12);
    if (threads == 1) {
      reference_centers = refined->centers;
      reference_radius = refined->radius;
      continue;
    }
    EXPECT_EQ(refined->centers, reference_centers) << "threads=" << threads;
    EXPECT_EQ(refined->radius, reference_radius);
  }
}

}  // namespace
}  // namespace ukc
