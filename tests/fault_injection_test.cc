// Deterministic fault-injection framework (common/fault_injection.h):
// fire decisions must be a pure function of (seed, site, hit index),
// site rules must match exactly or by '*' prefix, and the disabled
// path (no injector installed) must always return OK.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"

namespace ukc {
namespace {

#if UKC_FAULT_INJECTION

TEST(FaultInjectionTest, NoInjectorMeansAlwaysOk) {
  ASSERT_EQ(FaultInjector::Active(), nullptr);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(FaultInjector::Check("ingest.read").ok());
  }
}

TEST(FaultInjectionTest, FiresAtExactlyTheRequestedHits) {
  FaultPlan plan;
  plan.seed = 1;
  plan.rules.push_back(FaultRule{"ingest.read", {2, 5}, 0.0,
                                 StatusCode::kUnavailable, 0});
  ScopedFaultInjection scope(plan);
  std::vector<bool> fired;
  for (uint64_t hit = 0; hit < 8; ++hit) {
    fired.push_back(!FaultInjector::Check("ingest.read").ok());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false}));
  EXPECT_EQ(scope.injector().hits("ingest.read"), 8u);
  EXPECT_EQ(scope.injector().fires(), 2u);
}

TEST(FaultInjectionTest, OnlyMatchingSitesAreAffected) {
  FaultPlan plan;
  plan.rules.push_back(
      FaultRule{"checkpoint.write", {0}, 0.0, StatusCode::kUnavailable, 0});
  ScopedFaultInjection scope(plan);
  EXPECT_TRUE(FaultInjector::Check("checkpoint.rename").ok());
  EXPECT_TRUE(FaultInjector::Check("ingest.read").ok());
  EXPECT_FALSE(FaultInjector::Check("checkpoint.write").ok());
}

TEST(FaultInjectionTest, PrefixWildcardMatchesTheSubsystem) {
  FaultPlan plan;
  plan.rules.push_back(
      FaultRule{"checkpoint.*", {0}, 0.0, StatusCode::kUnavailable, 0});
  ScopedFaultInjection scope(plan);
  EXPECT_FALSE(FaultInjector::Check("checkpoint.open").ok());
  EXPECT_FALSE(FaultInjector::Check("checkpoint.write").ok());
  EXPECT_TRUE(FaultInjector::Check("ingest.read").ok());
}

TEST(FaultInjectionTest, InjectedCodeIsTheRulesCode) {
  FaultPlan plan;
  plan.rules.push_back(
      FaultRule{"io.read_chunk", {0}, 0.0, StatusCode::kInvalidArgument, 0});
  plan.rules.push_back(
      FaultRule{"ingest.read", {0}, 0.0, StatusCode::kUnavailable, 0});
  ScopedFaultInjection scope(plan);
  const Status permanent = FaultInjector::Check("io.read_chunk");
  EXPECT_EQ(permanent.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(permanent.IsTransientError());
  const Status transient = FaultInjector::Check("ingest.read");
  EXPECT_EQ(transient.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(transient.IsTransientError());
}

TEST(FaultInjectionTest, MaxFiresCapsTheRule) {
  // probability = 1 would fire every hit; max_fires = 2 models the
  // "two hiccups then healthy" scenario retries recover from.
  FaultPlan plan;
  plan.rules.push_back(
      FaultRule{"ingest.read", {}, 1.0, StatusCode::kUnavailable, 2});
  ScopedFaultInjection scope(plan);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (!FaultInjector::Check("ingest.read").ok()) ++fires;
  }
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(scope.injector().fires(), 2u);
}

TEST(FaultInjectionTest, ProbabilityDecisionsAreSeedDeterministic) {
  auto decisions = [](uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.rules.push_back(
        FaultRule{"ingest.read", {}, 0.5, StatusCode::kUnavailable, 0});
    ScopedFaultInjection scope(plan);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!FaultInjector::Check("ingest.read").ok());
    }
    return fired;
  };
  const auto run_a = decisions(42);
  const auto run_b = decisions(42);
  EXPECT_EQ(run_a, run_b);  // Same seed: bit-identical decision stream.
  // A p=0.5 rule over 64 hits fires somewhere strictly inside (0, 64)
  // for any reasonable mixer; seed 42 and 43 should disagree somewhere.
  int fires_a = 0;
  for (const bool f : run_a) fires_a += f ? 1 : 0;
  EXPECT_GT(fires_a, 0);
  EXPECT_LT(fires_a, 64);
  EXPECT_NE(run_a, decisions(43));
}

TEST(FaultInjectionTest, DecisionsAreIndependentPerSite) {
  // The same seed must not fire the same hit indices at every site —
  // the site name is part of the hash key.
  FaultPlan plan;
  plan.seed = 7;
  plan.rules.push_back(FaultRule{"*", {}, 0.5, StatusCode::kUnavailable, 0});
  ScopedFaultInjection scope(plan);
  std::vector<bool> site_a, site_b;
  for (int i = 0; i < 64; ++i) {
    site_a.push_back(!FaultInjector::Check("a.read").ok());
  }
  for (int i = 0; i < 64; ++i) {
    site_b.push_back(!FaultInjector::Check("b.read").ok());
  }
  EXPECT_NE(site_a, site_b);
}

TEST(FaultInjectionTest, ScopeUninstallsOnExit) {
  {
    FaultPlan plan;
    plan.rules.push_back(
        FaultRule{"ingest.read", {0}, 0.0, StatusCode::kUnavailable, 0});
    ScopedFaultInjection scope(plan);
    EXPECT_NE(FaultInjector::Active(), nullptr);
    EXPECT_FALSE(FaultInjector::Check("ingest.read").ok());
  }
  EXPECT_EQ(FaultInjector::Active(), nullptr);
  EXPECT_TRUE(FaultInjector::Check("ingest.read").ok());
}

#else  // !UKC_FAULT_INJECTION

TEST(FaultInjectionTest, CompiledOut) {
  GTEST_SKIP() << "built with -DUKC_FAULT_INJECTION=0";
}

#endif  // UKC_FAULT_INJECTION

TEST(FaultSeedsFromEnvTest, ParsesSeedLists) {
  const char* kVar = "UKC_FAULTS_TEST_VAR";
  ::unsetenv(kVar);
  EXPECT_TRUE(FaultSeedsFromEnv(kVar).empty());

  ::setenv(kVar, "1,2,42", 1);
  EXPECT_EQ(FaultSeedsFromEnv(kVar), (std::vector<uint64_t>{1, 2, 42}));

  ::setenv(kVar, " 7  9 ,11 ", 1);  // Spaces and commas both separate.
  EXPECT_EQ(FaultSeedsFromEnv(kVar), (std::vector<uint64_t>{7, 9, 11}));

  ::setenv(kVar, "", 1);
  EXPECT_TRUE(FaultSeedsFromEnv(kVar).empty());

  ::setenv(kVar, "3,banana,5", 1);  // Malformed: all-or-nothing.
  EXPECT_TRUE(FaultSeedsFromEnv(kVar).empty());
  ::unsetenv(kVar);
}

}  // namespace
}  // namespace ukc
