#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "metric/euclidean_space.h"
#include "metric/graph_space.h"
#include "metric/matrix_space.h"
#include "metric/metric_checker.h"
#include "metric/metric_space.h"

namespace ukc {
namespace metric {
namespace {

using geometry::Point;

TEST(EuclideanSpaceTest, AddAndQuery) {
  EuclideanSpace space(2);
  EXPECT_EQ(space.num_sites(), 0);
  const SiteId a = space.AddPoint(Point{0.0, 0.0});
  const SiteId b = space.AddPoint(Point{3.0, 4.0});
  EXPECT_EQ(space.num_sites(), 2);
  EXPECT_DOUBLE_EQ(space.Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(space.Distance(a, a), 0.0);
  EXPECT_EQ(space.point(b), (Point{3.0, 4.0}));
}

TEST(EuclideanSpaceTest, SiteIdsAreStableAcrossGrowth) {
  EuclideanSpace space(1);
  const SiteId a = space.AddPoint(Point{1.0});
  for (int i = 0; i < 100; ++i) space.AddPoint(Point{static_cast<double>(i)});
  EXPECT_EQ(space.point(a), (Point{1.0}));
}

TEST(EuclideanSpaceTest, NormVariants) {
  EuclideanSpace l1(2, Norm::kL1);
  EuclideanSpace linf(2, Norm::kLInf);
  const SiteId a1 = l1.AddPoint(Point{0.0, 0.0});
  const SiteId b1 = l1.AddPoint(Point{1.0, 2.0});
  EXPECT_DOUBLE_EQ(l1.Distance(a1, b1), 3.0);
  const SiteId a2 = linf.AddPoint(Point{0.0, 0.0});
  const SiteId b2 = linf.AddPoint(Point{1.0, 2.0});
  EXPECT_DOUBLE_EQ(linf.Distance(a2, b2), 2.0);
}

TEST(EuclideanSpaceTest, DistanceToFreePoint) {
  EuclideanSpace space(2);
  const SiteId a = space.AddPoint(Point{0.0, 0.0});
  EXPECT_DOUBLE_EQ(space.DistanceToPoint(a, Point{0.0, 2.0}), 2.0);
}

TEST(EuclideanSpaceTest, NameMentionsNormAndCount) {
  EuclideanSpace space(3, Norm::kL1);
  space.AddPoint(Point{0.0, 0.0, 0.0});
  const std::string name = space.Name();
  EXPECT_NE(name.find("L1"), std::string::npos);
  EXPECT_NE(name.find("1 sites"), std::string::npos);
}

TEST(EuclideanSpaceDeathTest, DimensionMismatchAborts) {
  EuclideanSpace space(2);
  EXPECT_DEATH(space.AddPoint(Point{1.0}), "CHECK failed");
}

TEST(MetricSpaceTest, DistanceToSetAndNearest) {
  EuclideanSpace space(1);
  const SiteId a = space.AddPoint(Point{0.0});
  const SiteId b = space.AddPoint(Point{10.0});
  const SiteId q = space.AddPoint(Point{4.0});
  EXPECT_DOUBLE_EQ(space.DistanceToSet(q, {a, b}), 4.0);
  EXPECT_EQ(space.NearestInSet(q, {a, b}), a);
  EXPECT_EQ(space.NearestInSet(q, {}), kInvalidSite);
  EXPECT_TRUE(std::isinf(space.DistanceToSet(q, {})));
}

TEST(MetricSpaceTest, NearestTieBreaksToEarliest) {
  EuclideanSpace space(1);
  const SiteId a = space.AddPoint(Point{1.0});
  const SiteId b = space.AddPoint(Point{-1.0});
  const SiteId q = space.AddPoint(Point{0.0});
  EXPECT_EQ(space.NearestInSet(q, {a, b}), a);
  EXPECT_EQ(space.NearestInSet(q, {b, a}), b);
}

TEST(MatrixSpaceTest, ValidMatrix) {
  auto space = MatrixSpace::Build({{0, 1, 2}, {1, 0, 1.5}, {2, 1.5, 0}});
  ASSERT_TRUE(space.ok());
  EXPECT_EQ((*space)->num_sites(), 3);
  EXPECT_DOUBLE_EQ((*space)->Distance(0, 2), 2.0);
}

TEST(MatrixSpaceTest, RejectsEmpty) {
  EXPECT_FALSE(MatrixSpace::Build({}).ok());
}

TEST(MatrixSpaceTest, RejectsNonSquare) {
  EXPECT_FALSE(MatrixSpace::Build({{0, 1}, {1}}).ok());
}

TEST(MatrixSpaceTest, RejectsNonzeroDiagonal) {
  EXPECT_FALSE(MatrixSpace::Build({{1}}).ok());
}

TEST(MatrixSpaceTest, RejectsAsymmetry) {
  EXPECT_FALSE(MatrixSpace::Build({{0, 1}, {2, 0}}).ok());
}

TEST(MatrixSpaceTest, RejectsNegative) {
  EXPECT_FALSE(MatrixSpace::Build({{0, -1}, {-1, 0}}).ok());
}

TEST(MatrixSpaceTest, RejectsTriangleViolation) {
  // d(0,2) = 10 > d(0,1) + d(1,2) = 2.
  auto result = MatrixSpace::Build({{0, 1, 10}, {1, 0, 1}, {10, 1, 0}});
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("triangle"), std::string::npos);
}

TEST(MatrixSpaceTest, TriangleCheckCanBeSkipped) {
  auto result = MatrixSpace::Build({{0, 1, 10}, {1, 0, 1}, {10, 1, 0}},
                                   /*check_triangle=*/false);
  EXPECT_TRUE(result.ok());
}

TEST(MatrixSpaceTest, RejectsZeroDistanceBetweenDistinctSites) {
  EXPECT_FALSE(MatrixSpace::Build({{0, 0}, {0, 0}}).ok());
}

TEST(GraphSpaceTest, PathGraphDistances) {
  // 0 -1- 1 -2- 2.
  auto space = GraphSpace::Build(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  ASSERT_TRUE(space.ok());
  EXPECT_DOUBLE_EQ((*space)->Distance(0, 2), 3.0);
  EXPECT_DOUBLE_EQ((*space)->Distance(2, 0), 3.0);
  EXPECT_DOUBLE_EQ((*space)->Distance(1, 1), 0.0);
}

TEST(GraphSpaceTest, ShortcutBeatsLongPath) {
  auto space =
      GraphSpace::Build(3, {{0, 1, 5.0}, {1, 2, 5.0}, {0, 2, 1.0}});
  ASSERT_TRUE(space.ok());
  EXPECT_DOUBLE_EQ((*space)->Distance(0, 2), 1.0);
  EXPECT_DOUBLE_EQ((*space)->Distance(0, 1), 5.0);  // Not 6 via 2? 1+5=6 > 5.
}

TEST(GraphSpaceTest, RoutesThroughCheaperVertex) {
  auto space =
      GraphSpace::Build(3, {{0, 1, 5.0}, {1, 2, 1.0}, {0, 2, 1.0}});
  ASSERT_TRUE(space.ok());
  EXPECT_DOUBLE_EQ((*space)->Distance(0, 1), 2.0);  // Via vertex 2.
}

TEST(GraphSpaceTest, RejectsDisconnected) {
  auto result = GraphSpace::Build(3, {{0, 1, 1.0}});
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("disconnected"), std::string::npos);
}

TEST(GraphSpaceTest, RejectsBadEdges) {
  EXPECT_FALSE(GraphSpace::Build(2, {{0, 2, 1.0}}).ok());   // Out of range.
  EXPECT_FALSE(GraphSpace::Build(2, {{0, 0, 1.0}}).ok());   // Self loop.
  EXPECT_FALSE(GraphSpace::Build(2, {{0, 1, 0.0}}).ok());   // Zero weight.
  EXPECT_FALSE(GraphSpace::Build(2, {{0, 1, -1.0}}).ok());  // Negative.
  EXPECT_FALSE(GraphSpace::Build(0, {}).ok());              // No vertices.
}

TEST(GraphSpaceTest, SingleVertex) {
  auto space = GraphSpace::Build(1, {});
  ASSERT_TRUE(space.ok());
  EXPECT_DOUBLE_EQ((*space)->Distance(0, 0), 0.0);
}

// The shortest-path metric satisfies the axioms by construction; the
// checker should agree on every space we build.
TEST(MetricCheckerTest, AcceptsEuclidean) {
  Rng rng(2);
  EuclideanSpace space(3);
  for (int i = 0; i < 30; ++i) {
    space.AddPoint(Point{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()});
  }
  EXPECT_TRUE(CheckMetricAxioms(space).ok());
}

TEST(MetricCheckerTest, AcceptsGraph) {
  Rng rng(3);
  std::vector<Edge> edges;
  const SiteId n = 20;
  for (SiteId v = 1; v < n; ++v) {
    edges.push_back(Edge{static_cast<SiteId>(rng.UniformInt(0, v - 1)), v,
                         rng.UniformDouble(0.1, 2.0)});
  }
  auto space = GraphSpace::Build(n, edges);
  ASSERT_TRUE(space.ok());
  EXPECT_TRUE(CheckMetricAxioms(**space).ok());
}

TEST(MetricCheckerTest, RejectsTriangleViolation) {
  auto space = MatrixSpace::Build({{0, 1, 9}, {1, 0, 1}, {9, 1, 0}},
                                  /*check_triangle=*/false);
  ASSERT_TRUE(space.ok());
  Status status = CheckMetricAxioms(**space);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(MetricCheckerTest, SamplingPathOnLargerSpace) {
  Rng rng(4);
  EuclideanSpace space(2);
  for (int i = 0; i < 200; ++i) {
    space.AddPoint(Point{rng.Gaussian(), rng.Gaussian()});
  }
  MetricCheckOptions options;
  options.exhaustive_limit = 100;  // Forces the sampling path.
  options.num_samples = 2000;
  EXPECT_TRUE(CheckMetricAxioms(space, options).ok());
}

}  // namespace
}  // namespace metric
}  // namespace ukc
