#include "geometry/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.h"

namespace ukc {
namespace geometry {
namespace {

std::vector<Point> RandomPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (size_t i = 0; i < n; ++i) {
    Point p(dim);
    for (size_t a = 0; a < dim; ++a) p[a] = rng.UniformDouble(-10.0, 10.0);
    points.push_back(std::move(p));
  }
  return points;
}

size_t BruteNearest(const std::vector<Point>& points, const Point& query) {
  size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < points.size(); ++i) {
    const double d2 = SquaredDistance(points[i], query);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

TEST(KdTreeTest, RejectsBadInput) {
  EXPECT_FALSE(KdTree::Build({}).ok());
  EXPECT_FALSE(KdTree::Build({Point{0.0}, Point{0.0, 1.0}}).ok());
}

TEST(KdTreeTest, SinglePoint) {
  auto tree = KdTree::Build({Point{3.0, 4.0}});
  ASSERT_TRUE(tree.ok());
  const auto nearest = tree->Nearest(Point{0.0, 0.0});
  EXPECT_EQ(nearest.index, 0u);
  EXPECT_DOUBLE_EQ(nearest.squared_distance, 25.0);
}

TEST(KdTreeTest, NearestMatchesBruteForceRandom) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    for (size_t dim : {1u, 2u, 3u, 5u}) {
      const auto points = RandomPoints(200, dim, seed * 10 + dim);
      auto tree = KdTree::Build(points);
      ASSERT_TRUE(tree.ok());
      Rng rng(seed * 100 + dim);
      for (int q = 0; q < 50; ++q) {
        Point query(dim);
        for (size_t a = 0; a < dim; ++a) {
          query[a] = rng.UniformDouble(-12.0, 12.0);
        }
        const auto result = tree->Nearest(query);
        const size_t brute = BruteNearest(points, query);
        EXPECT_NEAR(result.squared_distance,
                    SquaredDistance(points[brute], query), 1e-12)
            << "seed=" << seed << " dim=" << dim;
      }
    }
  }
}

TEST(KdTreeTest, NearestOfIndexedPointIsItself) {
  const auto points = RandomPoints(100, 2, 7);
  auto tree = KdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  for (size_t i = 0; i < points.size(); i += 7) {
    const auto result = tree->Nearest(points[i]);
    EXPECT_DOUBLE_EQ(result.squared_distance, 0.0);
    EXPECT_EQ(tree->point(result.index), points[i]);
  }
}

TEST(KdTreeTest, DuplicatePointsHandled) {
  std::vector<Point> points(10, Point{1.0, 1.0});
  points.push_back(Point{5.0, 5.0});
  auto tree = KdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  const auto result = tree->Nearest(Point{4.9, 5.0});
  EXPECT_EQ(result.index, 10u);
}

TEST(KdTreeTest, WithinRadiusMatchesBruteForce) {
  const auto points = RandomPoints(300, 2, 9);
  auto tree = KdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  Rng rng(10);
  for (int q = 0; q < 20; ++q) {
    Point query{rng.UniformDouble(-10.0, 10.0), rng.UniformDouble(-10.0, 10.0)};
    const double radius = rng.UniformDouble(0.5, 5.0);
    auto found = tree->WithinRadius(query, radius);
    std::sort(found.begin(), found.end());
    std::vector<size_t> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (Distance(points[i], query) <= radius) expected.push_back(i);
    }
    EXPECT_EQ(found, expected);
  }
}

TEST(KdTreeTest, WithinRadiusZeroFindsExactHits) {
  const auto points = RandomPoints(50, 3, 11);
  auto tree = KdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  const auto found = tree->WithinRadius(points[17], 0.0);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 17u);
}

TEST(KdTreeTest, SizeAndAccessors) {
  const auto points = RandomPoints(42, 2, 13);
  auto tree = KdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 42u);
}

}  // namespace
}  // namespace geometry
}  // namespace ukc
