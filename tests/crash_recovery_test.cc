// Randomized crash-recovery property suite for checkpointed ingestion
// (stream/ingest.h IngestCoreset + stream/checkpoint.h).
//
// The property under test: crash an ingestion at a deterministic batch
// via fault injection, re-run against the same sidecar, and the final
// coreset is BITWISE identical to the uninterrupted run — across
// threads {1, 2, 8} × shards {1, 3, 8} × checkpoint cadence {1, 7, 64},
// on both restore paths (seek-positioned file streams and
// replay-verified in-memory streams). Degraded modes must degrade to a
// full re-ingest, never to a wrong coreset: corrupted sidecars, config
// mismatches and stale cursors are detected and rejected.
//
// Extra crash seeds sweep in from the environment (UKC_FAULTS=1,2,42)
// so CI can widen the randomized coverage without a rebuild; see
// docs/operations.md.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "exper/instances.h"
#include "stream/checkpoint.h"
#include "stream/coreset.h"
#include "stream/ingest.h"
#include "uncertain/io.h"

namespace ukc {
namespace {

#if UKC_FAULT_INJECTION

constexpr size_t kN = 400;
constexpr size_t kChunk = 16;
// ceil(kN / kChunk): the number of non-empty batches of the stream.
constexpr uint64_t kTotalBatches = (kN + kChunk - 1) / kChunk;

const int kThreadCounts[] = {1, 2, 8};
const int kShardCounts[] = {1, 3, 8};
const uint64_t kCadences[] = {1, 7, 64};

uncertain::UncertainDataset MakeDataset(uint64_t seed) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kClustered;
  spec.n = kN;
  spec.z = 3;
  spec.dim = 2;
  spec.k = 4;
  spec.spread = 0.5;
  spec.seed = seed;
  return std::move(exper::MakeInstance(spec)).value();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

stream::IngestOptions IngestConfig(int shards, uint64_t cadence,
                                   const std::string& checkpoint_path) {
  stream::IngestOptions options;
  options.chunk_size = kChunk;
  options.shards = shards;
  options.coreset.max_cells = 128;
  options.checkpoint.path = checkpoint_path;
  options.checkpoint.every_n_batches = cadence;
  options.checkpoint.sync = false;  // Logic-only tests skip the fsyncs.
  return options;
}

struct IngestOutcome {
  Status status = Status::OK();
  stream::IngestStats stats;
  std::vector<stream::StreamingCoreset::Cell> cells;
  bool ok = false;
};

IngestOutcome RunOnce(const stream::ResumableSourceFactory& factory, size_t dim,
                  int threads, const stream::IngestOptions& options) {
  ThreadPool pool(threads);
  IngestOutcome out;
  auto coreset = stream::IngestCoreset(dim, factory, options, &pool, &out.stats);
  if (coreset.ok()) {
    out.ok = true;
    out.cells = coreset->ExtractCells();
  } else {
    out.status = coreset.status();
  }
  return out;
}

void ExpectCellsBitwiseEqual(
    const std::vector<stream::StreamingCoreset::Cell>& got,
    const std::vector<stream::StreamingCoreset::Cell>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t c = 0; c < got.size(); ++c) {
    EXPECT_EQ(got[c].min_index, want[c].min_index);
    EXPECT_EQ(got[c].count, want[c].count);
    EXPECT_EQ(got[c].max_spread, want[c].max_spread);
    EXPECT_EQ(got[c].representative, want[c].representative);
  }
}

// Crashes the ingestion at batch pull `crash_hit` (permanent error, so
// the retry layer does not absorb it), then re-runs against the same
// sidecar and asserts bitwise recovery. Returns whether the recovery
// actually restored from a checkpoint (vs a clean full re-ingest).
bool CrashAndRecover(const stream::ResumableSourceFactory& factory,
                     const std::vector<stream::StreamingCoreset::Cell>& want,
                     int threads, int shards, uint64_t cadence,
                     uint64_t crash_hit, const std::string& checkpoint_path,
                     bool seek_path) {
  std::remove(checkpoint_path.c_str());
  const stream::IngestOptions options =
      IngestConfig(shards, cadence, checkpoint_path);

  bool crashed = false;
  {
    FaultPlan plan;
    plan.rules.push_back(
        FaultRule{"ingest.read", {crash_hit}, 0.0, StatusCode::kInternal, 0});
    ScopedFaultInjection scope(plan);
    const IngestOutcome crash = RunOnce(factory, 2, threads, options);
    crashed = !crash.ok;
    // A crash_hit beyond the stream's pulls (incl. the EOF pull) never
    // fires; the run then completes and already equals the baseline.
    if (crash.ok) ExpectCellsBitwiseEqual(crash.cells, want);
  }

  const IngestOutcome recovery = RunOnce(factory, 2, threads, options);
  EXPECT_TRUE(recovery.ok) << recovery.status;
  if (!recovery.ok) return false;
  ExpectCellsBitwiseEqual(recovery.cells, want);
  // Resumed totals must match an uninterrupted run exactly.
  EXPECT_EQ(recovery.stats.batches, kTotalBatches);
  EXPECT_EQ(recovery.stats.points, kN);
  EXPECT_FALSE(recovery.stats.checkpoint_rejected);
  // Note a completed first run also leaves a (final) sidecar, so the
  // recovery may legitimately restore even when no crash fired.
  (void)crashed;
  if (recovery.stats.restored) {
    EXPECT_GT(recovery.stats.restored_batches, 0u);
    if (seek_path) {
      EXPECT_EQ(recovery.stats.replayed_batches, 0u);
    } else {
      EXPECT_EQ(recovery.stats.replayed_batches,
                recovery.stats.restored_batches);
    }
  }
  return recovery.stats.restored;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new uncertain::UncertainDataset(MakeDataset(101));
    file_path_ = new std::string(TempPath("crash_recovery.ukc"));
    ASSERT_TRUE(uncertain::SaveDatasetToFile(*dataset_, *file_path_).ok());
    // The uninterrupted baseline; the coreset is partition-invariant,
    // so one baseline covers every (threads, shards, cadence) combo.
    const IngestOutcome base =
        RunOnce(stream::ResumableDatasetFactory(dataset_, kChunk), 2, 1,
            IngestConfig(1, 1, ""));
    ASSERT_TRUE(base.ok) << base.status;
    ASSERT_EQ(base.stats.batches, kTotalBatches);
    baseline_ = new std::vector<stream::StreamingCoreset::Cell>(base.cells);
    ASSERT_GT(baseline_->size(), 1u);
  }
  static void TearDownTestSuite() {
    delete baseline_;
    delete file_path_;
    delete dataset_;
  }

  static uncertain::UncertainDataset* dataset_;
  static std::string* file_path_;
  static std::vector<stream::StreamingCoreset::Cell>* baseline_;
};

uncertain::UncertainDataset* CrashRecoveryTest::dataset_ = nullptr;
std::string* CrashRecoveryTest::file_path_ = nullptr;
std::vector<stream::StreamingCoreset::Cell>* CrashRecoveryTest::baseline_ =
    nullptr;

TEST_F(CrashRecoveryTest, SeekPathResumesBitwiseAcrossConfigurations) {
  size_t combo = 0;
  size_t restored_combos = 0;
  for (int threads : kThreadCounts) {
    for (int shards : kShardCounts) {
      for (uint64_t cadence : kCadences) {
        // Deterministic "random" crash point per combo, spread over
        // the whole stream including the EOF pull.
        const uint64_t crash_hit = Mix64(0xc0ffee ^ combo) % (kTotalBatches + 2);
        ++combo;
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " shards=" << shards
                     << " cadence=" << cadence << " crash=" << crash_hit);
        if (CrashAndRecover(
                stream::ResumableFileFactory(*file_path_, kChunk), *baseline_,
                threads, shards, cadence,
                crash_hit, TempPath("seek.ckpt"), /*seek_path=*/true)) {
          ++restored_combos;
        }
      }
    }
  }
  // The sweep must actually exercise the restore path, not just the
  // full-re-ingest fallback.
  EXPECT_GT(restored_combos, 0u);
}

TEST_F(CrashRecoveryTest, ReplayPathResumesBitwiseAcrossConfigurations) {
  size_t combo = 0;
  size_t restored_combos = 0;
  for (int threads : kThreadCounts) {
    for (int shards : kShardCounts) {
      for (uint64_t cadence : kCadences) {
        const uint64_t crash_hit = Mix64(0xdecaf ^ combo) % (kTotalBatches + 2);
        ++combo;
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " shards=" << shards
                     << " cadence=" << cadence << " crash=" << crash_hit);
        if (CrashAndRecover(
                stream::ResumableDatasetFactory(dataset_, kChunk), *baseline_,
                threads, shards, cadence,
                crash_hit, TempPath("replay.ckpt"), /*seek_path=*/false)) {
          ++restored_combos;
        }
      }
    }
  }
  EXPECT_GT(restored_combos, 0u);
}

TEST_F(CrashRecoveryTest, EnvSeedSweepWidensTheCrashCoverage) {
  // Default seeds plus whatever CI passes via UKC_FAULTS.
  std::vector<uint64_t> seeds = {3, 1009};
  for (uint64_t seed : FaultSeedsFromEnv()) seeds.push_back(seed);
  for (uint64_t seed : seeds) {
    const uint64_t crash_hit = Mix64(seed) % (kTotalBatches + 2);
    SCOPED_TRACE(::testing::Message() << "seed=" << seed
                                      << " crash=" << crash_hit);
    CrashAndRecover(stream::ResumableFileFactory(*file_path_, kChunk),
                    *baseline_, /*threads=*/2, /*shards=*/3, /*cadence=*/1,
                    crash_hit, TempPath("sweep.ckpt"), /*seek_path=*/true);
  }
}

TEST_F(CrashRecoveryTest, CrashDuringMergeRecoversBitwise) {
  const std::string checkpoint_path = TempPath("merge_crash.ckpt");
  std::remove(checkpoint_path.c_str());
  const stream::IngestOptions options = IngestConfig(3, 1, checkpoint_path);
  const auto factory = stream::ResumableFileFactory(*file_path_, kChunk);
  {
    FaultPlan plan;
    // The merge tree runs once, at end of stream: with 3 shards it has
    // ceil(log2 3) = 2 stride rounds, so hits 0 and 1 exist.
    plan.rules.push_back(
        FaultRule{"ingest.merge", {1}, 0.0, StatusCode::kInternal, 0});
    ScopedFaultInjection scope(plan);
    EXPECT_FALSE(RunOnce(factory, 2, 2, options).ok);
  }
  const IngestOutcome recovery = RunOnce(factory, 2, 2, options);
  ASSERT_TRUE(recovery.ok) << recovery.status;
  ExpectCellsBitwiseEqual(recovery.cells, *baseline_);
}

TEST_F(CrashRecoveryTest, CorruptSidecarFallsBackToFullReingest) {
  const std::string checkpoint_path = TempPath("corrupt.ckpt");
  const auto factory = stream::ResumableFileFactory(*file_path_, kChunk);
  // Crash mid-stream so a real sidecar exists ...
  CrashAndRecover(factory, *baseline_, 2, 3, 1, kTotalBatches / 2,
                  checkpoint_path, /*seek_path=*/true);
  ASSERT_TRUE(stream::LoadCheckpoint(checkpoint_path).ok());
  // ... then flip one byte of it.
  std::ifstream in(checkpoint_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  std::ofstream(checkpoint_path, std::ios::binary) << bytes;

  const IngestOutcome recovery =
      RunOnce(factory, 2, 2, IngestConfig(3, 1, checkpoint_path));
  ASSERT_TRUE(recovery.ok) << recovery.status;
  EXPECT_TRUE(recovery.stats.checkpoint_rejected);
  EXPECT_FALSE(recovery.stats.restored);
  EXPECT_EQ(recovery.stats.restored_batches, 0u);
  ExpectCellsBitwiseEqual(recovery.cells, *baseline_);
}

TEST_F(CrashRecoveryTest, ConfigMismatchRejectsTheSidecar) {
  const std::string checkpoint_path = TempPath("mismatch.ckpt");
  const auto factory = stream::ResumableFileFactory(*file_path_, kChunk);
  CrashAndRecover(factory, *baseline_, 2, 3, 1, kTotalBatches / 2,
                  checkpoint_path, /*seek_path=*/true);
  ASSERT_TRUE(stream::LoadCheckpoint(checkpoint_path).ok());

  // Same sidecar, different shard count: the group boundaries would
  // differ, so the restore must be rejected — and the full re-ingest
  // still lands on the partition-invariant baseline.
  const IngestOutcome recovery =
      RunOnce(factory, 2, 2, IngestConfig(8, 1, checkpoint_path));
  ASSERT_TRUE(recovery.ok) << recovery.status;
  EXPECT_TRUE(recovery.stats.checkpoint_rejected);
  EXPECT_FALSE(recovery.stats.restored);
  ExpectCellsBitwiseEqual(recovery.cells, *baseline_);
}

TEST_F(CrashRecoveryTest, StaleCursorAgainstChangedFileIsRejected) {
  // Checkpoint against the real file, then swap in a file whose bytes
  // differ (points reordered): the seek either fails structural
  // validation or the restore is rejected — never a silently wrong
  // coreset built from a mismatched prefix.
  const std::string moved = TempPath("stale_cursor.ukc");
  {
    std::ifstream in(*file_path_, std::ios::binary);
    std::ofstream out(moved, std::ios::binary);
    out << in.rdbuf();
  }
  const std::string checkpoint_path = TempPath("stale.ckpt");
  const auto factory = stream::ResumableFileFactory(moved, kChunk);
  CrashAndRecover(factory, *baseline_, 1, 1, 1, kTotalBatches / 2,
                  checkpoint_path, /*seek_path=*/true);
  ASSERT_TRUE(stream::LoadCheckpoint(checkpoint_path).ok());

  auto other = MakeDataset(202);  // Different data, same size ballpark.
  ASSERT_TRUE(uncertain::SaveDatasetToFile(other, moved).ok());
  const IngestOutcome recovery = RunOnce(stream::ResumableFileFactory(moved, kChunk),
                                     2, 1, IngestConfig(1, 1, checkpoint_path));
  ASSERT_TRUE(recovery.ok) << recovery.status;
  // Whatever the rejection route, the result must be a clean full
  // ingest of the NEW file.
  const IngestOutcome fresh = RunOnce(stream::ResumableFileFactory(moved, kChunk),
                                  2, 1, IngestConfig(1, 1, ""));
  ASSERT_TRUE(fresh.ok) << fresh.status;
  ExpectCellsBitwiseEqual(recovery.cells, fresh.cells);
}

TEST_F(CrashRecoveryTest, TransientReadFaultIsRetriedInPlace) {
  // One transient hiccup per stream: the retry layer clears it and the
  // run completes without ever touching the checkpoint machinery.
  FaultPlan plan;
  plan.rules.push_back(
      FaultRule{"ingest.read", {5}, 0.0, StatusCode::kUnavailable, 0});
  ScopedFaultInjection scope(plan);
  stream::IngestOptions options = IngestConfig(3, 1, "");
  options.retry.sleeper = [](std::chrono::nanoseconds) {};
  const IngestOutcome out =
      RunOnce(stream::ResumableFileFactory(*file_path_, kChunk), 2, 2, options);
  ASSERT_TRUE(out.ok) << out.status;
  EXPECT_GE(out.stats.read_retries, 1u);
  EXPECT_EQ(out.stats.read_exhausted, 0u);
  ExpectCellsBitwiseEqual(out.cells, *baseline_);
}

TEST_F(CrashRecoveryTest, ExhaustedRetriesFailTheRunThenRecover) {
  const std::string checkpoint_path = TempPath("exhaust.ckpt");
  std::remove(checkpoint_path.c_str());
  stream::IngestOptions options = IngestConfig(3, 1, checkpoint_path);
  options.retry.sleeper = [](std::chrono::nanoseconds) {};
  const auto factory = stream::ResumableFileFactory(*file_path_, kChunk);
  {
    // Three consecutive transient failures exhaust the default
    // max_attempts = 3 budget.
    FaultPlan plan;
    plan.rules.push_back(FaultRule{
        "ingest.read", {6, 7, 8}, 0.0, StatusCode::kUnavailable, 0});
    ScopedFaultInjection scope(plan);
    const IngestOutcome out = RunOnce(factory, 2, 2, options);
    ASSERT_FALSE(out.ok);
    EXPECT_EQ(out.status.code(), StatusCode::kUnavailable);
    EXPECT_GE(out.stats.read_exhausted, 1u);
  }
  const IngestOutcome recovery = RunOnce(factory, 2, 2, options);
  ASSERT_TRUE(recovery.ok) << recovery.status;
  ExpectCellsBitwiseEqual(recovery.cells, *baseline_);
}

#else  // !UKC_FAULT_INJECTION

TEST(CrashRecoveryTest, CompiledOut) {
  GTEST_SKIP() << "built with -DUKC_FAULT_INJECTION=0";
}

#endif  // UKC_FAULT_INJECTION

}  // namespace
}  // namespace ukc
