// ThreadPool regression suite, centered on the exception protocol: a
// job fn that throws must abort the batch, drain every worker, and
// rethrow the FIRST captured exception on the borrowing thread — and
// the pool must stay fully usable afterwards. (The pre-fix behavior
// was std::terminate from an unhandled exception on a worker thread.)
// Run under TSan (-DUKC_SANITIZE=thread) the drain protocol is also a
// data-race check.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace ukc {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    const size_t n = 10000;
    std::vector<std::atomic<int>> counts(n);
    pool.ParallelFor(n, [&](int worker, size_t i) {
      EXPECT_GE(worker, 0);
      EXPECT_LT(worker, pool.num_threads());
      counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ThrowingJobRethrowsOnBorrowingThread) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [&](int, size_t i) {
                         if (i == 137) throw std::runtime_error("boom at 137");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionMessageSurvivesTheRethrow) {
  ThreadPool pool(2);
  try {
    pool.ParallelFor(8, [&](int, size_t i) {
      if (i == 3) throw std::runtime_error("distinctive message");
    });
    FAIL() << "ParallelFor swallowed the exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "distinctive message");
  }
}

TEST(ThreadPoolTest, PoolIsReusableAfterAThrowingJob) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(pool.ParallelFor(
                     64, [&](int, size_t) { throw std::runtime_error("x"); }),
                 std::runtime_error);
    // The very next job must run normally on the drained pool.
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, [&](int, size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 5050u) << "round " << round;
  }
}

TEST(ThreadPoolTest, AbortedBatchStopsPullingNewIndices) {
  // Throwing at the first index must abort the batch early: with a
  // huge count, far fewer indices run than exist. The bound is loose
  // (workers may each grab one index before observing the abort flag)
  // but orders of magnitude below count.
  ThreadPool pool(8);
  std::atomic<size_t> ran{0};
  const size_t count = 1u << 20;
  EXPECT_THROW(pool.ParallelFor(count,
                                [&](int, size_t) {
                                  ran.fetch_add(1, std::memory_order_relaxed);
                                  throw std::runtime_error("abort");
                                }),
               std::runtime_error);
  EXPECT_LT(ran.load(), count / 2);
}

TEST(ThreadPoolTest, EveryThrowingWorkerIsDrainedNotLeaked) {
  // All workers throw concurrently; exactly one exception may surface
  // per batch and the pool must survive many such batches (a leaked
  // exception_ptr or an undrained worker would deadlock or terminate).
  ThreadPool pool(8);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.ParallelFor(pool.num_threads() * 4, [&](int, size_t i) {
        throw std::runtime_error("worker " + std::to_string(i));
      });
      FAIL() << "no exception in round " << round;
    } catch (const std::runtime_error&) {
    }
  }
  std::atomic<size_t> ok{0};
  pool.ParallelFor(32, [&](int, size_t) {
    ok.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ok.load(), 32u);
}

TEST(ThreadPoolTest, ConcurrentThrowsAggregateIntoOneCountedError) {
  // Rendezvous so every executor (the caller plus 3 workers) is inside
  // a job before any throws: exactly 4 exceptions are captured, and
  // the batch surfaces ONE error carrying the count and the first
  // message — not a silently dropped 3-of-4.
  ThreadPool pool(4);
  std::atomic<int> started{0};
  try {
    pool.ParallelFor(4, [&](int, size_t i) {
      started.fetch_add(1, std::memory_order_relaxed);
      while (started.load(std::memory_order_relaxed) < 4) {
      }
      throw std::runtime_error("job " + std::to_string(i) + " failed");
    });
    FAIL() << "ParallelFor swallowed the batch failure";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("4 worker exceptions"), std::string::npos) << what;
    EXPECT_NE(what.find("first:"), std::string::npos) << what;
    EXPECT_NE(what.find("failed"), std::string::npos) << what;
  }
  // The pool survives the multi-throw batch.
  std::atomic<size_t> ok{0};
  pool.ParallelFor(16,
                   [&](int, size_t) { ok.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ok.load(), 16u);
}

TEST(ThreadPoolTest, SingleExceptionKeepsItsConcreteType) {
  // The aggregation must not flatten the one-exception case: a lone
  // std::logic_error arrives as std::logic_error, not as the
  // aggregated runtime_error wrapper.
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   1000, [&](int, size_t i) {
                     if (i == 500) throw std::logic_error("only one");
                   }),
               std::logic_error);
}

TEST(ThreadPoolTest, NonStandardExceptionsAreCountedInTheAggregate) {
  // Jobs throwing non-std::exception payloads still aggregate; the
  // first-message slot degrades to a placeholder instead of crashing.
  ThreadPool pool(4);
  std::atomic<int> started{0};
  try {
    pool.ParallelFor(4, [&](int, size_t) {
      started.fetch_add(1, std::memory_order_relaxed);
      while (started.load(std::memory_order_relaxed) < 4) {
      }
      throw 42;
    });
    FAIL() << "ParallelFor swallowed the batch failure";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("4 worker exceptions"), std::string::npos) << what;
    EXPECT_NE(what.find("<non-standard exception>"), std::string::npos) << what;
  }
  // A lone non-standard exception still arrives unwrapped.
  EXPECT_THROW(pool.ParallelFor(1, [&](int, size_t) { throw 7; }), int);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineAndStillThrows) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](int worker, size_t i) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_THROW(
      pool.ParallelFor(3, [&](int, size_t) { throw std::logic_error("t"); }),
      std::logic_error);
  // Still usable inline.
  size_t sum = 0;
  pool.ParallelFor(4, [&](int, size_t i) { sum += i; });
  EXPECT_EQ(sum, 6u);
}

}  // namespace
}  // namespace ukc
