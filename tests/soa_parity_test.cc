// Parity tests for the flat (SoA) geometry core and the reusable
// expected-cost engine: every fast path must agree with a naive
// Point-based reference implementation.
//
//   - distance kernels vs straightforward coordinate loops, for all
//     three norms and d in {1, 2, 3, 8} (covering every unrolled case
//     plus the strided fallback);
//   - the implicit-layout kd-tree vs brute-force nearest/radius scans,
//     and BuildFlat vs Build;
//   - EuclideanSpace::DistanceToSet / NearestInSet overrides vs the
//     generic per-pair scan;
//   - ExpectedCostEvaluator vs BruteForce* enumeration on tiny
//     instances, and vs the pre-refactor log/exp sweep formulation on
//     the exper::MakeInstance families (1e-9 relative tolerance);
//   - the kd-tree and linear unassigned paths against each other, and
//     threaded vs sequential Monte Carlo.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "cost/assignment.h"
#include "cost/expected_cost.h"
#include "cost/expected_cost_evaluator.h"
#include "exper/instances.h"
#include "geometry/kdtree.h"
#include "geometry/point.h"
#include "geometry/point_view.h"
#include "metric/euclidean_space.h"
#include "solver/gonzalez.h"

namespace ukc {
namespace {

using geometry::Point;
using metric::EuclideanSpace;
using metric::Norm;
using metric::SiteId;

std::vector<Point> RandomPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point p(dim);
    for (size_t a = 0; a < dim; ++a) p[a] = rng.UniformDouble(-10.0, 10.0);
    points.push_back(std::move(p));
  }
  return points;
}

// Naive references written against Point only, mirroring the seed
// implementations the kernels replaced.
double NaiveSquaredDistance(const Point& a, const Point& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}
double NaiveL1(const Point& a, const Point& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) total += std::abs(a[i] - b[i]);
  return total;
}
double NaiveLInf(const Point& a, const Point& b) {
  double worst = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(DistanceKernelParityTest, AllNormsAllDims) {
  for (size_t dim : {1u, 2u, 3u, 8u}) {
    const auto points = RandomPoints(60, dim, 100 + dim);
    for (size_t i = 0; i < points.size(); ++i) {
      for (size_t j = 0; j < points.size(); ++j) {
        const double* a = points[i].coords().data();
        const double* b = points[j].coords().data();
        // Same arithmetic order, so equality is exact.
        EXPECT_EQ(geometry::SquaredDistanceKernel(a, b, dim),
                  NaiveSquaredDistance(points[i], points[j]))
            << "dim=" << dim;
        EXPECT_EQ(geometry::L1DistanceKernel(a, b, dim),
                  NaiveL1(points[i], points[j]));
        EXPECT_EQ(geometry::LInfDistanceKernel(a, b, dim),
                  NaiveLInf(points[i], points[j]));
      }
    }
  }
}

TEST(DistanceKernelParityTest, PointFreeFunctionsMatchKernels) {
  for (size_t dim : {1u, 2u, 3u, 8u}) {
    const auto points = RandomPoints(20, dim, 200 + dim);
    for (size_t i = 0; i + 1 < points.size(); ++i) {
      const Point& a = points[i];
      const Point& b = points[i + 1];
      EXPECT_EQ(geometry::SquaredDistance(a, b), NaiveSquaredDistance(a, b));
      EXPECT_EQ(geometry::Distance(a, b), std::sqrt(NaiveSquaredDistance(a, b)));
      EXPECT_EQ(geometry::L1Distance(a, b), NaiveL1(a, b));
      EXPECT_EQ(geometry::LInfDistance(a, b), NaiveLInf(a, b));
    }
  }
}

TEST(KdTreeParityTest, NearestMatchesBruteForceAcrossDims) {
  for (size_t dim : {1u, 2u, 3u, 8u}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      const auto points = RandomPoints(257, dim, seed * 1000 + dim);
      auto tree = geometry::KdTree::Build(points);
      ASSERT_TRUE(tree.ok());
      Rng rng(seed * 31 + dim);
      for (int q = 0; q < 60; ++q) {
        Point query(dim);
        for (size_t a = 0; a < dim; ++a) {
          query[a] = rng.UniformDouble(-12.0, 12.0);
        }
        double best = std::numeric_limits<double>::infinity();
        for (const Point& p : points) {
          best = std::min(best, NaiveSquaredDistance(p, query));
        }
        EXPECT_DOUBLE_EQ(tree->Nearest(query).squared_distance, best)
            << "dim=" << dim << " seed=" << seed;
      }
    }
  }
}

TEST(KdTreeParityTest, BuildFlatMatchesBuild) {
  const size_t dim = 3;
  const auto points = RandomPoints(100, dim, 5);
  std::vector<double> coords;
  for (const Point& p : points) {
    coords.insert(coords.end(), p.coords().begin(), p.coords().end());
  }
  auto boxed = geometry::KdTree::Build(points);
  auto flat = geometry::KdTree::BuildFlat(std::move(coords), dim);
  ASSERT_TRUE(boxed.ok());
  ASSERT_TRUE(flat.ok());
  Rng rng(6);
  for (int q = 0; q < 50; ++q) {
    Point query{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};
    const auto a = boxed->Nearest(query);
    const auto b = flat->Nearest(query);
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.squared_distance, b.squared_distance);
  }
}

TEST(KdTreeParityTest, WithinRadiusMatchesBruteForceHighDim) {
  const size_t dim = 8;
  const auto points = RandomPoints(200, dim, 9);
  auto tree = geometry::KdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  Rng rng(10);
  for (int q = 0; q < 20; ++q) {
    Point query(dim);
    for (size_t a = 0; a < dim; ++a) query[a] = rng.UniformDouble(-10.0, 10.0);
    const double radius = rng.UniformDouble(2.0, 12.0);
    auto found = tree->WithinRadius(query, radius);
    std::sort(found.begin(), found.end());
    std::vector<size_t> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (std::sqrt(NaiveSquaredDistance(points[i], query)) <= radius) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(found, expected);
  }
}

TEST(EuclideanSpaceParityTest, SetScansMatchGenericLoop) {
  for (Norm norm : {Norm::kL2, Norm::kL1, Norm::kLInf}) {
    for (size_t dim : {1u, 2u, 3u, 8u}) {
      EuclideanSpace space(dim, RandomPoints(80, dim, 300 + dim), norm);
      std::vector<SiteId> candidates;
      for (SiteId s = 3; s < space.num_sites(); s += 7) candidates.push_back(s);
      for (SiteId a = 0; a < space.num_sites(); a += 11) {
        // Generic reference: per-pair virtual Distance calls.
        double best = std::numeric_limits<double>::infinity();
        SiteId best_site = metric::kInvalidSite;
        for (SiteId c : candidates) {
          const double d = space.Distance(a, c);
          if (d < best) {
            best = d;
            best_site = c;
          }
        }
        EXPECT_EQ(space.DistanceToSet(a, candidates), best);
        EXPECT_EQ(space.NearestInSet(a, candidates), best_site);
      }
    }
  }
}

// --- Expected-cost engine parity ---

// The pre-refactor sweep: per-point distribution vectors built through
// the virtual distance oracle, then the log/exp product formulation.
double ReferenceExpectedMax(
    const std::vector<cost::DiscreteDistribution>& distributions) {
  struct Event {
    double value;
    uint32_t index;
    double probability;
  };
  std::vector<Event> events;
  for (size_t i = 0; i < distributions.size(); ++i) {
    for (const auto& [value, probability] : distributions[i]) {
      events.push_back(Event{value, static_cast<uint32_t>(i), probability});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.value < b.value; });
  std::vector<double> cdf(distributions.size(), 0.0);
  size_t zeros = distributions.size();
  KahanSum log_product;
  KahanSum expectation;
  double previous = 0.0;
  size_t e = 0;
  while (e < events.size()) {
    const double value = events[e].value;
    while (e < events.size() && events[e].value == value) {
      const Event& event = events[e];
      const double old_cdf = cdf[event.index];
      const double new_cdf = old_cdf + event.probability;
      cdf[event.index] = new_cdf;
      if (old_cdf == 0.0) {
        --zeros;
      } else {
        log_product.Add(-std::log(old_cdf));
      }
      log_product.Add(std::log(new_cdf));
      ++e;
    }
    const double product = zeros > 0 ? 0.0 : std::exp(log_product.Total());
    const double mass = product - previous;
    if (mass > 0.0) expectation.Add(value * mass);
    previous = product;
  }
  return expectation.Total();
}

double ReferenceAssignedCost(const uncertain::UncertainDataset& dataset,
                             const cost::Assignment& assignment) {
  std::vector<cost::DiscreteDistribution> distributions(dataset.n());
  for (size_t i = 0; i < dataset.n(); ++i) {
    for (const auto& loc : dataset.point(i).locations()) {
      distributions[i].emplace_back(
          dataset.space().Distance(loc.site, assignment[i]), loc.probability);
    }
  }
  return ReferenceExpectedMax(distributions);
}

double ReferenceUnassignedCost(const uncertain::UncertainDataset& dataset,
                               const std::vector<SiteId>& centers) {
  std::vector<cost::DiscreteDistribution> distributions(dataset.n());
  for (size_t i = 0; i < dataset.n(); ++i) {
    for (const auto& loc : dataset.point(i).locations()) {
      distributions[i].emplace_back(
          dataset.space().DistanceToSet(loc.site, centers), loc.probability);
    }
  }
  return ReferenceExpectedMax(distributions);
}

class InstanceFamilyParityTest
    : public ::testing::TestWithParam<exper::Family> {};

TEST_P(InstanceFamilyParityTest, CostsMatchReferenceSweep) {
  exper::InstanceSpec spec;
  spec.family = GetParam();
  spec.n = 50;
  spec.z = 4;
  spec.dim = spec.family == exper::Family::kLine ? 1 : 2;
  spec.k = 4;
  spec.seed = 11;
  auto dataset = exper::MakeInstance(spec);
  ASSERT_TRUE(dataset.ok());
  const auto sites = dataset->LocationSites();
  auto centers = solver::Gonzalez(dataset->space(), sites, spec.k);
  ASSERT_TRUE(centers.ok());
  auto assignment = cost::AssignExpectedDistance(*dataset, centers->centers);
  ASSERT_TRUE(assignment.ok());

  auto assigned = cost::ExactAssignedCost(*dataset, *assignment);
  ASSERT_TRUE(assigned.ok());
  const double reference_assigned = ReferenceAssignedCost(*dataset, *assignment);
  EXPECT_NEAR(*assigned, reference_assigned,
              1e-9 * (1.0 + std::abs(reference_assigned)));

  auto unassigned = cost::ExactUnassignedCost(*dataset, centers->centers);
  ASSERT_TRUE(unassigned.ok());
  const double reference_unassigned =
      ReferenceUnassignedCost(*dataset, centers->centers);
  EXPECT_NEAR(*unassigned, reference_unassigned,
              1e-9 * (1.0 + std::abs(reference_unassigned)));
}

INSTANTIATE_TEST_SUITE_P(Families, InstanceFamilyParityTest,
                         ::testing::Values(exper::Family::kUniform,
                                           exper::Family::kClustered,
                                           exper::Family::kOutlier,
                                           exper::Family::kLine,
                                           exper::Family::kGridGraph));

TEST(EvaluatorParityTest, MatchesBruteForceOnTinyInstances) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    exper::InstanceSpec spec;
    spec.family = exper::Family::kClustered;
    spec.n = 6;
    spec.z = 3;
    spec.dim = 2;
    spec.k = 2;
    spec.seed = seed;
    auto dataset = exper::MakeInstance(spec);
    ASSERT_TRUE(dataset.ok());
    const auto sites = dataset->LocationSites();
    std::vector<SiteId> centers = {sites[0], sites[sites.size() / 2]};
    auto assignment = cost::AssignExpectedDistance(*dataset, centers);
    ASSERT_TRUE(assignment.ok());

    cost::ExpectedCostEvaluator evaluator;
    auto assigned = evaluator.AssignedCost(*dataset, *assignment);
    auto brute_assigned = cost::BruteForceAssignedCost(*dataset, *assignment);
    ASSERT_TRUE(assigned.ok());
    ASSERT_TRUE(brute_assigned.ok());
    EXPECT_NEAR(*assigned, *brute_assigned,
                1e-9 * (1.0 + std::abs(*brute_assigned)));

    auto unassigned = evaluator.UnassignedCost(*dataset, centers);
    auto brute_unassigned = cost::BruteForceUnassignedCost(*dataset, centers);
    ASSERT_TRUE(unassigned.ok());
    ASSERT_TRUE(brute_unassigned.ok());
    EXPECT_NEAR(*unassigned, *brute_unassigned,
                1e-9 * (1.0 + std::abs(*brute_unassigned)));
  }
}

TEST(EvaluatorParityTest, KdTreeAndLinearPathsAgree) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kClustered;
  spec.n = 120;
  spec.z = 3;
  spec.dim = 2;
  spec.k = 8;
  spec.seed = 3;
  auto dataset = exper::MakeInstance(spec);
  ASSERT_TRUE(dataset.ok());
  const auto sites = dataset->LocationSites();
  ASSERT_GT(sites.size(), 64u);
  std::vector<SiteId> centers(sites.begin(), sites.begin() + 64);

  cost::ExpectedCostEvaluator::Options linear_options;
  linear_options.kdtree_cutover = std::numeric_limits<size_t>::max();
  cost::ExpectedCostEvaluator linear(linear_options);
  cost::ExpectedCostEvaluator::Options tree_options;
  tree_options.kdtree_cutover = 1;
  cost::ExpectedCostEvaluator tree(tree_options);

  auto linear_value = linear.UnassignedCost(*dataset, centers);
  auto tree_value = tree.UnassignedCost(*dataset, centers);
  ASSERT_TRUE(linear_value.ok());
  ASSERT_TRUE(tree_value.ok());
  EXPECT_NEAR(*linear_value, *tree_value, 1e-10 * (1.0 + *linear_value));
}

TEST(EvaluatorParityTest, BatchMatchesIndividualCalls) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kUniform;
  spec.n = 40;
  spec.z = 3;
  spec.dim = 2;
  spec.k = 3;
  spec.seed = 8;
  auto dataset = exper::MakeInstance(spec);
  ASSERT_TRUE(dataset.ok());
  const auto sites = dataset->LocationSites();
  std::vector<std::vector<SiteId>> center_sets;
  for (size_t offset = 0; offset + 3 < sites.size(); offset += 5) {
    center_sets.push_back({sites[offset], sites[offset + 1], sites[offset + 3]});
  }
  cost::ExpectedCostEvaluator evaluator;
  auto batch = evaluator.UnassignedCostBatch(*dataset, center_sets);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), center_sets.size());
  for (size_t s = 0; s < center_sets.size(); ++s) {
    cost::ExpectedCostEvaluator fresh;
    auto single = fresh.UnassignedCost(*dataset, center_sets[s]);
    ASSERT_TRUE(single.ok());
    EXPECT_DOUBLE_EQ((*batch)[s], *single);
  }
}

TEST(EvaluatorParityTest, ThreadedMonteCarloMatchesExact) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kClustered;
  spec.n = 30;
  spec.z = 4;
  spec.dim = 2;
  spec.k = 3;
  spec.seed = 21;
  auto dataset = exper::MakeInstance(spec);
  ASSERT_TRUE(dataset.ok());
  const auto sites = dataset->LocationSites();
  auto centers = solver::Gonzalez(dataset->space(), sites, spec.k);
  ASSERT_TRUE(centers.ok());
  auto assignment = cost::AssignExpectedDistance(*dataset, centers->centers);
  ASSERT_TRUE(assignment.ok());
  auto exact = cost::ExactAssignedCost(*dataset, *assignment);
  ASSERT_TRUE(exact.ok());

  cost::ExpectedCostEvaluator::Options options;
  options.monte_carlo_threads = 4;
  cost::ExpectedCostEvaluator evaluator(options);
  Rng rng(99);
  auto estimate =
      evaluator.MonteCarloAssignedCost(*dataset, *assignment, 100000, rng);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->samples, 100000);
  EXPECT_NEAR(estimate->mean, *exact, 6.0 * estimate->std_error + 1e-9);

  // Deterministic: the same seed and thread count reproduce the mean.
  Rng rng_again(99);
  auto again =
      evaluator.MonteCarloAssignedCost(*dataset, *assignment, 100000, rng_again);
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(estimate->mean, again->mean);
}

}  // namespace
}  // namespace ukc
