#include "core/surrogates.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "metric/euclidean_space.h"
#include "metric/matrix_space.h"
#include "uncertain/generators.h"

namespace ukc {
namespace core {
namespace {

using geometry::Point;
using metric::EuclideanSpace;
using metric::SiteId;
using uncertain::UncertainDataset;
using uncertain::UncertainPoint;

uncertain::UncertainDataset EuclideanInstance(uint64_t seed, size_t n = 10) {
  uncertain::EuclideanInstanceOptions options;
  options.n = n;
  options.z = 4;
  options.dim = 2;
  options.seed = seed;
  return std::move(uncertain::GenerateClusteredInstance(options, 2)).value();
}

TEST(SurrogateTest, ExpectedPointIsTheProbabilityWeightedMean) {
  auto space = std::make_shared<EuclideanSpace>(2);
  const SiteId a = space->AddPoint(Point{0.0, 0.0});
  const SiteId b = space->AddPoint(Point{4.0, 8.0});
  std::vector<UncertainPoint> points;
  points.push_back(*UncertainPoint::Build({{a, 0.25}, {b, 0.75}}));
  auto dataset = UncertainDataset::Build(space, std::move(points));
  ASSERT_TRUE(dataset.ok());

  SurrogateOptions options;
  options.kind = SurrogateKind::kExpectedPoint;
  auto surrogates = BuildSurrogates(&dataset.value(), options);
  ASSERT_TRUE(surrogates.ok());
  ASSERT_EQ(surrogates->size(), 1u);
  const Point& mean = dataset->euclidean()->point((*surrogates)[0]);
  EXPECT_NEAR(mean[0], 3.0, 1e-12);
  EXPECT_NEAR(mean[1], 6.0, 1e-12);
}

TEST(SurrogateTest, ExpectedPointRequiresEuclidean) {
  auto matrix = metric::MatrixSpace::Build({{0, 1}, {1, 0}});
  ASSERT_TRUE(matrix.ok());
  std::vector<UncertainPoint> points;
  points.push_back(*UncertainPoint::Build({{0, 0.5}, {1, 0.5}}));
  auto dataset = UncertainDataset::Build(*matrix, std::move(points));
  ASSERT_TRUE(dataset.ok());
  SurrogateOptions options;
  options.kind = SurrogateKind::kExpectedPoint;
  EXPECT_FALSE(BuildSurrogates(&dataset.value(), options).ok());
}

TEST(SurrogateTest, OneCenterEuclideanMinimizesExpectedDistance) {
  auto dataset = EuclideanInstance(3, 6);
  SurrogateOptions options;
  options.kind = SurrogateKind::kOneCenter;
  auto surrogates = BuildSurrogates(&dataset, options);
  ASSERT_TRUE(surrogates.ok());
  // The P̃ objective at the surrogate beats the objective at every
  // location of the point (the discrete alternative).
  for (size_t i = 0; i < dataset.n(); ++i) {
    const double at_surrogate =
        dataset.point(i).ExpectedDistanceTo(dataset.space(), (*surrogates)[i]);
    for (const uncertain::Location& loc : dataset.point(i).locations()) {
      EXPECT_LE(at_surrogate,
                dataset.point(i).ExpectedDistanceTo(dataset.space(), loc.site) +
                    1e-7);
    }
  }
}

TEST(SurrogateTest, OneCenterFiniteMetricAllSites) {
  auto graph = uncertain::GenerateGridGraph(4, 4, 0.5, 2.0, 7);
  ASSERT_TRUE(graph.ok());
  auto dataset = uncertain::GenerateMetricInstance(
      *graph, 8, 3, 2.0, uncertain::ProbabilityShape::kRandom, 9);
  ASSERT_TRUE(dataset.ok());
  SurrogateOptions options;
  options.kind = SurrogateKind::kOneCenter;
  options.candidates = OneCenterCandidates::kAllSites;
  auto surrogates = BuildSurrogates(&dataset.value(), options);
  ASSERT_TRUE(surrogates.ok());
  // Exhaustive verification of minimality over the whole space.
  for (size_t i = 0; i < dataset->n(); ++i) {
    const double best = dataset->point(i).ExpectedDistanceTo(
        dataset->space(), (*surrogates)[i]);
    for (SiteId q = 0; q < dataset->space().num_sites(); ++q) {
      EXPECT_LE(best,
                dataset->point(i).ExpectedDistanceTo(dataset->space(), q) +
                    1e-12);
    }
  }
}

TEST(SurrogateTest, OwnLocationsIsTwoApproximateMedian) {
  auto graph = uncertain::GenerateGridGraph(5, 5, 0.5, 2.0, 11);
  ASSERT_TRUE(graph.ok());
  auto dataset = uncertain::GenerateMetricInstance(
      *graph, 10, 4, 2.0, uncertain::ProbabilityShape::kRandom, 13);
  ASSERT_TRUE(dataset.ok());
  SurrogateOptions all;
  all.kind = SurrogateKind::kOneCenter;
  all.candidates = OneCenterCandidates::kAllSites;
  SurrogateOptions own;
  own.kind = SurrogateKind::kOneCenter;
  own.candidates = OneCenterCandidates::kOwnLocations;
  auto exact = BuildSurrogates(&dataset.value(), all);
  auto approx = BuildSurrogates(&dataset.value(), own);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  for (size_t i = 0; i < dataset->n(); ++i) {
    const double exact_value = dataset->point(i).ExpectedDistanceTo(
        dataset->space(), (*exact)[i]);
    const double approx_value = dataset->point(i).ExpectedDistanceTo(
        dataset->space(), (*approx)[i]);
    EXPECT_GE(approx_value, exact_value - 1e-12);
    EXPECT_LE(approx_value, 2.0 * exact_value + 1e-9)
        << "point " << i << ": own-locations median worse than 2x optimal";
  }
}

TEST(SurrogateTest, ModalPicksMostProbableLocation) {
  auto space = std::make_shared<EuclideanSpace>(1);
  const SiteId a = space->AddPoint(Point{0.0});
  const SiteId b = space->AddPoint(Point{5.0});
  std::vector<UncertainPoint> points;
  points.push_back(*UncertainPoint::Build({{a, 0.3}, {b, 0.7}}));
  auto dataset = UncertainDataset::Build(space, std::move(points));
  ASSERT_TRUE(dataset.ok());
  SurrogateOptions options;
  options.kind = SurrogateKind::kModal;
  auto surrogates = BuildSurrogates(&dataset.value(), options);
  ASSERT_TRUE(surrogates.ok());
  EXPECT_EQ((*surrogates)[0], b);
}

TEST(SurrogateTest, SurrogatesAreOnePerPoint) {
  auto dataset = EuclideanInstance(5, 12);
  for (auto kind : {SurrogateKind::kExpectedPoint, SurrogateKind::kOneCenter,
                    SurrogateKind::kModal}) {
    SurrogateOptions options;
    options.kind = kind;
    auto surrogates = BuildSurrogates(&dataset, options);
    ASSERT_TRUE(surrogates.ok()) << SurrogateKindToString(kind);
    EXPECT_EQ(surrogates->size(), dataset.n());
  }
}

TEST(SurrogateTest, KindNames) {
  EXPECT_EQ(SurrogateKindToString(SurrogateKind::kExpectedPoint),
            "expected-point");
  EXPECT_EQ(SurrogateKindToString(SurrogateKind::kOneCenter), "one-center");
  EXPECT_EQ(SurrogateKindToString(SurrogateKind::kModal), "modal");
}

TEST(SurrogateTest, NullDatasetRejected) {
  EXPECT_FALSE(BuildSurrogates(nullptr, {}).ok());
  EXPECT_FALSE(ExpectedPointOneCenter(nullptr).ok());
}

TEST(SurrogateTest, ExpectedPointOneCenterIndexChecked) {
  auto dataset = EuclideanInstance(6, 3);
  EXPECT_FALSE(ExpectedPointOneCenter(&dataset, 99).ok());
  auto site = ExpectedPointOneCenter(&dataset, 1);
  ASSERT_TRUE(site.ok());
  EXPECT_GE(*site, 0);
}

}  // namespace
}  // namespace core
}  // namespace ukc
