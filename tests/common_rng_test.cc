#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <set>

#include "common/alias_table.h"

namespace ukc {
namespace {

TEST(SplitMix64Test, DeterministicStream) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsCentered) {
  Rng rng(5);
  double total = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) total += rng.UniformDouble();
  EXPECT_NEAR(total / samples, 0.5, 0.01);
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(6);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All 5 values observed.
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(8);
  std::vector<int> histogram(10, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    ++histogram[static_cast<size_t>(rng.UniformInt(0, 9))];
  }
  for (int count : histogram) {
    EXPECT_NEAR(count, samples / 10, samples / 100);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(9);
  double total = 0.0;
  double total_sq = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    const double g = rng.Gaussian();
    total += g;
    total_sq += g * g;
  }
  EXPECT_NEAR(total / samples, 0.0, 0.02);
  EXPECT_NEAR(total_sq / samples, 1.0, 0.03);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(10);
  double total = 0.0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) total += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(total / samples, 5.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double total = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) total += rng.Exponential(2.0);
  EXPECT_NEAR(total / samples, 0.5, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / samples, 0.3, 0.01);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(14);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> histogram(3, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) ++histogram[rng.Discrete(weights)];
  EXPECT_EQ(histogram[1], 0);
  EXPECT_NEAR(static_cast<double>(histogram[0]) / samples, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(histogram[2]) / samples, 0.75, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleIsDeterministic) {
  std::vector<int> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Rng rng_a(16);
  Rng rng_b(16);
  rng_a.Shuffle(&a);
  rng_b.Shuffle(&b);
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkedStreamsDecorrelated) {
  Rng parent(17);
  Rng child_a = parent.Fork(0);
  Rng child_b = parent.Fork(1);
  // Not a statistical test, just a smoke check that streams differ.
  bool any_difference = false;
  for (int i = 0; i < 16; ++i) {
    if (child_a.Next() != child_b.Next()) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(AliasTableTest, RejectsBadInput) {
  EXPECT_FALSE(AliasTable::Build({}).ok());
  EXPECT_FALSE(AliasTable::Build({0.0, 0.0}).ok());
  EXPECT_FALSE(AliasTable::Build({1.0, -0.5}).ok());
}

TEST(AliasTableTest, SingleOutcome) {
  auto table = AliasTable::Build({2.5});
  ASSERT_TRUE(table.ok());
  Rng rng(18);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table->Sample(rng), 0u);
  EXPECT_DOUBLE_EQ(table->Probability(0), 1.0);
}

TEST(AliasTableTest, NormalizesWeights) {
  auto table = AliasTable::Build({2.0, 6.0});
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table->Probability(0), 0.25);
  EXPECT_DOUBLE_EQ(table->Probability(1), 0.75);
}

TEST(AliasTableTest, EmpiricalFrequenciesMatch) {
  const std::vector<double> weights = {0.1, 0.2, 0.3, 0.4};
  auto table = AliasTable::Build(weights);
  ASSERT_TRUE(table.ok());
  Rng rng(19);
  std::vector<int> histogram(4, 0);
  const int samples = 400000;
  for (int i = 0; i < samples; ++i) ++histogram[table->Sample(rng)];
  for (size_t j = 0; j < weights.size(); ++j) {
    EXPECT_NEAR(static_cast<double>(histogram[j]) / samples, weights[j], 0.005)
        << "outcome " << j;
  }
}

TEST(AliasTableTest, ZeroWeightOutcomeNeverSampled) {
  auto table = AliasTable::Build({0.0, 1.0, 0.0, 1.0});
  ASSERT_TRUE(table.ok());
  Rng rng(20);
  for (int i = 0; i < 20000; ++i) {
    const size_t s = table->Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTableTest, ManyOutcomes) {
  std::vector<double> weights(257);
  Rng seed_rng(21);
  for (double& w : weights) w = seed_rng.UniformDouble(0.0, 1.0);
  weights[100] = 0.0;
  auto table = AliasTable::Build(weights);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), weights.size());
  Rng rng(22);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(table->Sample(rng), 100u);
  }
}

}  // namespace
}  // namespace ukc
