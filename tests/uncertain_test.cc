#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>

#include "common/rng.h"
#include "common/strings.h"
#include "metric/euclidean_space.h"
#include "metric/matrix_space.h"
#include "stream/ingest.h"
#include "uncertain/dataset.h"
#include "uncertain/io.h"
#include "uncertain/sampler.h"
#include "uncertain/uncertain_point.h"

namespace ukc {
namespace uncertain {
namespace {

using geometry::Point;
using metric::EuclideanSpace;
using metric::SiteId;

TEST(UncertainPointTest, BuildValidatesProbabilities) {
  EXPECT_TRUE(UncertainPoint::Build({{0, 0.5}, {1, 0.5}}).ok());
  EXPECT_FALSE(UncertainPoint::Build({}).ok());
  EXPECT_FALSE(UncertainPoint::Build({{0, 0.5}, {1, 0.4}}).ok());   // Sum != 1.
  EXPECT_FALSE(UncertainPoint::Build({{0, 1.5}, {1, -0.5}}).ok());  // Negative.
  EXPECT_FALSE(UncertainPoint::Build({{0, 0.0}, {1, 1.0}}).ok());   // Zero prob.
  EXPECT_FALSE(UncertainPoint::Build({{-1, 1.0}}).ok());            // Bad site.
}

TEST(UncertainPointTest, ToleratesTinyRounding) {
  EXPECT_TRUE(
      UncertainPoint::Build({{0, 1.0 / 3}, {1, 1.0 / 3}, {2, 1.0 / 3}}).ok());
}

TEST(UncertainPointTest, MergesDuplicateSites) {
  auto p = UncertainPoint::Build({{5, 0.25}, {5, 0.25}, {7, 0.5}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_locations(), 2u);
  // Merged probability.
  double p5 = 0.0;
  for (const Location& loc : p->locations()) {
    if (loc.site == 5) p5 = loc.probability;
  }
  EXPECT_DOUBLE_EQ(p5, 0.5);
}

TEST(UncertainPointTest, CertainFactory) {
  UncertainPoint p = UncertainPoint::Certain(3);
  EXPECT_EQ(p.num_locations(), 1u);
  EXPECT_EQ(p.site(0), 3);
  EXPECT_DOUBLE_EQ(p.probability(0), 1.0);
}

TEST(UncertainPointTest, ModalLocation) {
  auto p = UncertainPoint::Build({{0, 0.2}, {1, 0.5}, {2, 0.3}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ModalLocation().site, 1);
}

TEST(UncertainPointTest, ExpectedDistance) {
  auto space = std::make_shared<EuclideanSpace>(1);
  const SiteId a = space->AddPoint(Point{0.0});
  const SiteId b = space->AddPoint(Point{10.0});
  const SiteId q = space->AddPoint(Point{4.0});
  auto p = UncertainPoint::Build({{a, 0.75}, {b, 0.25}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->ExpectedDistanceTo(*space, q), 0.75 * 4.0 + 0.25 * 6.0);
}

TEST(UncertainPointTest, MinExpectedDistanceSite) {
  auto space = std::make_shared<EuclideanSpace>(1);
  const SiteId a = space->AddPoint(Point{0.0});
  const SiteId b = space->AddPoint(Point{10.0});
  const SiteId c1 = space->AddPoint(Point{1.0});
  const SiteId c2 = space->AddPoint(Point{9.0});
  auto p = UncertainPoint::Build({{a, 0.9}, {b, 0.1}});
  ASSERT_TRUE(p.ok());
  double best = 0.0;
  EXPECT_EQ(p->MinExpectedDistanceSite(*space, {c1, c2}, &best), c1);
  EXPECT_DOUBLE_EQ(best, 0.9 * 1.0 + 0.1 * 9.0);
  EXPECT_EQ(p->MinExpectedDistanceSite(*space, {}), metric::kInvalidSite);
}

TEST(UncertainPointTest, SupportDiameter) {
  auto space = std::make_shared<EuclideanSpace>(1);
  const SiteId a = space->AddPoint(Point{0.0});
  const SiteId b = space->AddPoint(Point{3.0});
  const SiteId c = space->AddPoint(Point{7.0});
  auto p = UncertainPoint::Build({{a, 0.4}, {b, 0.3}, {c, 0.3}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->SupportDiameter(*space), 7.0);
  EXPECT_DOUBLE_EQ(UncertainPoint::Certain(a).SupportDiameter(*space), 0.0);
}

std::shared_ptr<EuclideanSpace> TinySpace() {
  auto space = std::make_shared<EuclideanSpace>(2);
  for (int i = 0; i < 6; ++i) {
    space->AddPoint(Point{static_cast<double>(i), 0.0});
  }
  return space;
}

TEST(DatasetTest, BuildValidatesSiteRange) {
  auto space = TinySpace();
  std::vector<UncertainPoint> points;
  points.push_back(UncertainPoint::Certain(0));
  points.push_back(UncertainPoint::Certain(99));  // Out of range.
  EXPECT_FALSE(UncertainDataset::Build(space, std::move(points)).ok());
}

TEST(DatasetTest, BuildRejectsEmpty) {
  auto space = TinySpace();
  EXPECT_FALSE(UncertainDataset::Build(space, {}).ok());
  EXPECT_FALSE(UncertainDataset::Build(nullptr, {UncertainPoint::Certain(0)}).ok());
}

TEST(DatasetTest, AccessorsAndStats) {
  auto space = TinySpace();
  std::vector<UncertainPoint> points;
  points.push_back(*UncertainPoint::Build({{0, 0.5}, {1, 0.5}}));
  points.push_back(*UncertainPoint::Build({{2, 0.3}, {3, 0.3}, {4, 0.4}}));
  auto dataset = UncertainDataset::Build(space, std::move(points));
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->n(), 2u);
  EXPECT_EQ(dataset->max_locations(), 3u);
  EXPECT_EQ(dataset->total_locations(), 5u);
  EXPECT_TRUE(dataset->is_euclidean());
  EXPECT_EQ(dataset->LocationSites(), (std::vector<SiteId>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(dataset->MaxSupportDiameter(), 2.0);  // Sites 2..4.
}

TEST(DatasetTest, LocationSitesDeduplicates) {
  auto space = TinySpace();
  std::vector<UncertainPoint> points;
  points.push_back(*UncertainPoint::Build({{1, 0.5}, {2, 0.5}}));
  points.push_back(*UncertainPoint::Build({{2, 0.5}, {3, 0.5}}));
  auto dataset = UncertainDataset::Build(space, std::move(points));
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->LocationSites(), (std::vector<SiteId>{1, 2, 3}));
}

TEST(SamplerTest, FrequenciesMatchProbabilities) {
  auto space = TinySpace();
  std::vector<UncertainPoint> points;
  points.push_back(*UncertainPoint::Build({{0, 0.2}, {1, 0.8}}));
  points.push_back(*UncertainPoint::Build({{2, 1.0}}));
  auto dataset = UncertainDataset::Build(space, std::move(points));
  ASSERT_TRUE(dataset.ok());

  RealizationSampler sampler(*dataset);
  Rng rng(5);
  int first_is_zero = 0;
  const int samples = 100000;
  Realization realization;
  for (int s = 0; s < samples; ++s) {
    sampler.SampleInto(rng, &realization);
    ASSERT_EQ(realization.size(), 2u);
    if (sampler.SiteOf(realization, 0) == 0) ++first_is_zero;
    EXPECT_EQ(sampler.SiteOf(realization, 1), 2);
  }
  EXPECT_NEAR(static_cast<double>(first_is_zero) / samples, 0.2, 0.01);
}

TEST(SamplerTest, DeterministicGivenSeed) {
  auto space = TinySpace();
  std::vector<UncertainPoint> points;
  points.push_back(*UncertainPoint::Build({{0, 0.5}, {1, 0.5}}));
  auto dataset = UncertainDataset::Build(space, std::move(points));
  ASSERT_TRUE(dataset.ok());
  RealizationSampler sampler(*dataset);
  Rng rng_a(6);
  Rng rng_b(6);
  for (int s = 0; s < 100; ++s) {
    EXPECT_EQ(sampler.Sample(rng_a), sampler.Sample(rng_b));
  }
}

UncertainDataset MakeRoundTripDataset() {
  auto space = std::make_shared<EuclideanSpace>(2);
  const SiteId a = space->AddPoint(Point{0.125, -3.5});
  const SiteId b = space->AddPoint(Point{1e-7, 42.0});
  const SiteId c = space->AddPoint(Point{5.0, 5.0});
  std::vector<UncertainPoint> points;
  points.push_back(*UncertainPoint::Build({{a, 0.25}, {b, 0.75}}));
  points.push_back(*UncertainPoint::Build({{c, 1.0}}));
  return std::move(UncertainDataset::Build(space, std::move(points))).value();
}

TEST(IoTest, SaveLoadRoundTrip) {
  UncertainDataset original = MakeRoundTripDataset();
  std::stringstream buffer;
  ASSERT_TRUE(SaveDataset(original, buffer).ok());
  auto loaded = LoadDataset(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->n(), original.n());
  EXPECT_EQ(loaded->max_locations(), original.max_locations());
  const auto* loaded_space = loaded->euclidean();
  ASSERT_NE(loaded_space, nullptr);
  EXPECT_EQ(loaded_space->dim(), 2u);
  // Exact coordinate and probability round trip (17 significant digits).
  for (size_t i = 0; i < original.n(); ++i) {
    const UncertainPointView p0 = original.point(i);
    const UncertainPointView p1 = loaded->point(i);
    ASSERT_EQ(p0.num_locations(), p1.num_locations());
    for (size_t j = 0; j < p0.num_locations(); ++j) {
      EXPECT_DOUBLE_EQ(p0.probability(j), p1.probability(j));
      EXPECT_EQ(original.euclidean()->point(p0.site(j)),
                loaded_space->point(p1.site(j)));
    }
  }
}

TEST(IoTest, LoadRejectsGarbage) {
  std::stringstream bad1("not a dataset");
  EXPECT_FALSE(LoadDataset(bad1).ok());
  std::stringstream bad2("ukc-dataset 1\ndim 2\nn 1\npoint 2\n0.5 1 2\n");
  EXPECT_FALSE(LoadDataset(bad2).ok());  // Truncated.
  std::stringstream bad3("ukc-dataset 99\ndim 2\nn 1\n");
  EXPECT_FALSE(LoadDataset(bad3).ok());  // Bad version.
  std::stringstream empty("");
  EXPECT_FALSE(LoadDataset(empty).ok());
}

TEST(IoTest, LoadIgnoresCommentsAndBlankLines) {
  std::stringstream text(
      "# header comment\n"
      "ukc-dataset 1\n"
      "\n"
      "dim 1\n"
      "n 1  # one point\n"
      "point 1\n"
      "1.0 2.5\n");
  auto loaded = LoadDataset(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->n(), 1u);
  EXPECT_EQ(loaded->euclidean()->point(loaded->point(0).site(0)), (Point{2.5}));
}

TEST(IoTest, SaveRejectsNonEuclidean) {
  auto matrix = metric::MatrixSpace::Build({{0, 1}, {1, 0}});
  ASSERT_TRUE(matrix.ok());
  std::vector<UncertainPoint> points;
  points.push_back(*UncertainPoint::Build({{0, 0.5}, {1, 0.5}}));
  auto dataset = UncertainDataset::Build(*matrix, std::move(points));
  ASSERT_TRUE(dataset.ok());
  std::stringstream buffer;
  EXPECT_FALSE(SaveDataset(*dataset, buffer).ok());
}

// --- Shared distribution validation -----------------------------------------
//
// Every ingestion entry point — UncertainPoint::Build, the chunked
// DatasetReader, and the streaming producer source — routes the
// per-point distribution invariant through one ValidateDistribution
// helper. These tests prove the contract: the same malformed input
// (p <= 0, Σp off, NaN) is rejected by all three with the *same* core
// message (each adds only its provenance prefix), so the entry points
// cannot drift apart.

// Runs one probability vector through each entry point and returns the
// three statuses (Build, ReadChunk, producer source), in that order.
std::vector<Status> StatusesFromAllEntryPoints(
    const std::vector<double>& probabilities) {
  std::vector<Status> statuses;

  // 1. UncertainPoint::Build, one distinct site per location.
  std::vector<Location> locations;
  for (size_t j = 0; j < probabilities.size(); ++j) {
    locations.push_back(Location{static_cast<SiteId>(j), probabilities[j]});
  }
  statuses.push_back(UncertainPoint::Build(std::move(locations)).status());

  // 2. DatasetReader::ReadChunk, from a serialized 1-d text stream.
  std::string text = StrFormat("ukc-dataset 1\ndim 1\nn 1\npoint %zu\n",
                               probabilities.size());
  for (size_t j = 0; j < probabilities.size(); ++j) {
    text += StrFormat("%.17g %zu\n", probabilities[j], j);
  }
  std::istringstream stream(text);
  auto reader = DatasetReader::FromStream(stream);
  if (!reader.ok()) {
    statuses.push_back(reader.status());
  } else {
    UncertainPointBatch batch;
    statuses.push_back(reader->ReadChunk(16, &batch).status());
  }

  // 3. stream::MakeProducerBatchSource, one emitted point.
  bool emitted = false;
  auto source = stream::MakeProducerBatchSource(
      1,
      [&](std::vector<double>* coords, std::vector<double>* probs) {
        if (emitted) return false;
        emitted = true;
        for (size_t j = 0; j < probabilities.size(); ++j) {
          coords->push_back(static_cast<double>(j));
          probs->push_back(probabilities[j]);
        }
        return true;
      },
      16);
  UKC_CHECK(source.ok());
  UncertainPointBatch batch;
  statuses.push_back((*source)(&batch).status());
  return statuses;
}

TEST(DistributionValidationTest, EntryPointsShareAcceptance) {
  for (const Status& status :
       StatusesFromAllEntryPoints({0.25, 0.25, 0.5})) {
    EXPECT_TRUE(status.ok()) << status;
  }
}

TEST(DistributionValidationTest, EntryPointsRejectIdentically) {
  const std::vector<std::vector<double>> malformed = {
      {0.5, -0.5},                                        // Negative.
      {0.5, 0.0, 0.5},                                    // Zero.
      {0.3, 0.3},                                         // Σp off.
      {0.5, std::numeric_limits<double>::quiet_NaN()},    // NaN.
      {0.5, std::numeric_limits<double>::infinity()},     // Infinite.
  };
  for (const auto& probabilities : malformed) {
    // The core message every entry point must end with.
    const Status core = ValidateDistribution(probabilities);
    ASSERT_FALSE(core.ok());
    const std::vector<Status> statuses =
        StatusesFromAllEntryPoints(probabilities);
    ASSERT_EQ(statuses.size(), 3u);
    for (size_t entry = 0; entry < statuses.size(); ++entry) {
      ASSERT_FALSE(statuses[entry].ok())
          << "entry point " << entry << " accepted a malformed distribution";
      EXPECT_TRUE(statuses[entry].message().ends_with(core.message()))
          << "entry point " << entry << " drifted: got '"
          << statuses[entry].message() << "', core is '" << core.message()
          << "'";
    }
  }
}

}  // namespace
}  // namespace uncertain
}  // namespace ukc
