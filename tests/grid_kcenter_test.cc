// Tests for the grid-discretized (1+eps) Euclidean k-center solver —
// the genuine "(1+eps) algorithm for certain points" plug of the
// paper's theorems.

#include "solver/grid_kcenter.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/uncertain_kcenter.h"
#include "solver/gonzalez.h"
#include "solver/partition_exact.h"
#include "uncertain/generators.h"

namespace ukc {
namespace solver {
namespace {

using geometry::Point;

std::vector<Point> RandomPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (size_t i = 0; i < n; ++i) {
    Point p(dim);
    for (size_t a = 0; a < dim; ++a) p[a] = rng.UniformDouble(0.0, 10.0);
    points.push_back(std::move(p));
  }
  return points;
}

TEST(GridKCenterTest, RejectsBadInput) {
  EXPECT_FALSE(GridKCenter({}, 1).ok());
  EXPECT_FALSE(GridKCenter({Point{0.0}}, 0).ok());
  GridKCenterOptions bad_eps;
  bad_eps.eps = 0.0;
  EXPECT_FALSE(GridKCenter({Point{0.0}}, 1, bad_eps).ok());
  bad_eps.eps = 2.0;
  EXPECT_FALSE(GridKCenter({Point{0.0}}, 1, bad_eps).ok());
  EXPECT_FALSE(GridKCenter({Point{0.0}, Point{0.0, 1.0}}, 1).ok());
}

TEST(GridKCenterTest, CoincidentPointsGiveZeroRadius) {
  std::vector<Point> points(5, Point{2.0, 2.0});
  auto solution = GridKCenter(points, 2);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->radius, 0.0);
}

TEST(GridKCenterTest, KAtLeastNGivesZeroRadius) {
  const auto points = RandomPoints(4, 2, 1);
  auto solution = GridKCenter(points, 6);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->radius, 0.0);
}

// The core guarantee: radius <= (1+eps) * exact continuous optimum.
class GridRatioSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GridRatioSweep, WithinOnePlusEpsOfExact) {
  const int seed = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  const double eps = 0.25;
  const auto points = RandomPoints(10, 2, static_cast<uint64_t>(seed) + 500);
  GridKCenterOptions options;
  options.eps = eps;
  auto grid = GridKCenter(points, static_cast<size_t>(k), options);
  ASSERT_TRUE(grid.ok()) << grid.status();
  auto exact = ExactPartitionKCenter(points, static_cast<size_t>(k));
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(grid->radius, (1.0 + eps) * exact->radius + 1e-9)
      << "seed=" << seed << " k=" << k;
  EXPECT_GE(grid->radius, exact->radius - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GridRatioSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                                            ::testing::Values(1, 2, 3)));

TEST(GridKCenterTest, TighterEpsHelps) {
  const auto points = RandomPoints(12, 2, 42);
  GridKCenterOptions loose;
  loose.eps = 0.8;
  GridKCenterOptions tight;
  tight.eps = 0.1;
  auto a = GridKCenter(points, 2, loose);
  auto b = GridKCenter(points, 2, tight);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto exact = ExactPartitionKCenter(points, 2);
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(b->radius, (1.0 + 0.1) * exact->radius + 1e-9);
  EXPECT_LE(b->radius, a->radius + 1e-9);
}

TEST(GridKCenterTest, BeatsOrMatchesGonzalezAtModerateSize) {
  const auto points = RandomPoints(100, 2, 7);
  metric::EuclideanSpace space(2, points);
  std::vector<metric::SiteId> sites(points.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    sites[i] = static_cast<metric::SiteId>(i);
  }
  auto greedy = Gonzalez(space, sites, 3);
  ASSERT_TRUE(greedy.ok());
  GridKCenterOptions options;
  options.eps = 0.25;
  auto grid = GridKCenter(points, 3, options);
  ASSERT_TRUE(grid.ok()) << grid.status();
  // (1+eps) < 2, so the grid solver must not be worse than Gonzalez by
  // more than rounding at its guarantee level; in practice it wins.
  EXPECT_LE(grid->radius, greedy.value().radius * 1.05 + 1e-9);
}

TEST(GridKCenterTest, ThreeDimensionsWork) {
  const auto points = RandomPoints(9, 3, 11);
  GridKCenterOptions options;
  options.eps = 0.5;
  auto grid = GridKCenter(points, 2, options);
  ASSERT_TRUE(grid.ok()) << grid.status();
  auto exact = ExactPartitionKCenter(points, 2);
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(grid->radius, 1.5 * exact->radius + 1e-9);
}

TEST(GridKCenterTest, CandidateCapFailsCleanly) {
  const auto points = RandomPoints(50, 3, 13);
  GridKCenterOptions options;
  options.eps = 0.05;
  options.max_candidates = 100;
  EXPECT_FALSE(GridKCenter(points, 2, options).ok());
}

// End-to-end: the facade with the kGridEpsilon plug certifies the
// paper's 5+eps / 3+eps factors.
TEST(GridKCenterTest, FacadeCertifiesEpsilonFactors) {
  uncertain::EuclideanInstanceOptions generator;
  generator.n = 20;
  generator.z = 3;
  generator.dim = 2;
  generator.seed = 17;
  auto dataset = uncertain::GenerateClusteredInstance(generator, 2);
  ASSERT_TRUE(dataset.ok());
  core::UncertainKCenterOptions options;
  options.k = 2;
  options.rule = cost::AssignmentRule::kExpectedDistance;
  options.certain.kind = CertainSolverKind::kGridEpsilon;
  options.certain.epsilon = 0.25;
  auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_EQ(solution->certain_algorithm, "grid-epsilon");
  ASSERT_FALSE(solution->bounds.empty());
  // 4 + f with f = 1.25: the paper's 5 + eps.
  EXPECT_DOUBLE_EQ(solution->bounds[0].factor, 5.25);
}

}  // namespace
}  // namespace solver
}  // namespace ukc
