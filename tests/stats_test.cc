// RunningStats::Merge edge cases (common/stats.h): the parallel
// Welford combine must behave at the boundaries a sharded reduction
// actually hits — empty shards on both sides and single-observation
// shards, where the naive combine formulas divide by zero or lose the
// unbiased-variance correction.

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace ukc {
namespace {

TEST(RunningStatsMergeTest, EmptyMergeEmptyStaysEmpty) {
  RunningStats a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.Mean(), 0.0);
  EXPECT_EQ(a.Variance(), 0.0);
  EXPECT_TRUE(std::isinf(a.Min()));
  EXPECT_TRUE(std::isinf(a.Max()));
}

TEST(RunningStatsMergeTest, EmptyAbsorbsNonEmptyExactly) {
  RunningStats shard;
  shard.Add(2.0);
  shard.Add(4.0);
  shard.Add(6.0);

  RunningStats merged;  // Empty left side.
  merged.Merge(shard);
  EXPECT_EQ(merged.count(), 3);
  EXPECT_DOUBLE_EQ(merged.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(merged.Variance(), 4.0);  // Unbiased: ((4+0+4)/2).
  EXPECT_DOUBLE_EQ(merged.Min(), 2.0);
  EXPECT_DOUBLE_EQ(merged.Max(), 6.0);
}

TEST(RunningStatsMergeTest, NonEmptyMergeEmptyIsANoOp) {
  RunningStats stats;
  stats.Add(1.0);
  stats.Add(3.0);
  const RunningStats empty;
  stats.Merge(empty);
  EXPECT_EQ(stats.count(), 2);
  EXPECT_DOUBLE_EQ(stats.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 3.0);
}

TEST(RunningStatsMergeTest, SingleObservationShards) {
  // One observation has no variance; two merged singletons must
  // produce the exact two-sample unbiased variance.
  RunningStats left, right;
  left.Add(10.0);
  right.Add(20.0);
  EXPECT_EQ(left.Variance(), 0.0);
  left.Merge(right);
  EXPECT_EQ(left.count(), 2);
  EXPECT_DOUBLE_EQ(left.Mean(), 15.0);
  EXPECT_DOUBLE_EQ(left.Variance(), 50.0);  // ((10-15)^2+(20-15)^2)/1.
  EXPECT_DOUBLE_EQ(left.StdDev(), std::sqrt(50.0));
}

TEST(RunningStatsMergeTest, MergeMatchesSerialAccumulation) {
  const double values[] = {0.5, -1.25, 3.0, 3.0, 7.75, -2.5, 0.0, 9.125};
  RunningStats serial;
  RunningStats shard_a, shard_b;
  for (int i = 0; i < 8; ++i) {
    serial.Add(values[i]);
    (i < 3 ? shard_a : shard_b).Add(values[i]);  // Uneven split.
  }
  shard_a.Merge(shard_b);
  EXPECT_EQ(shard_a.count(), serial.count());
  EXPECT_NEAR(shard_a.Mean(), serial.Mean(), 1e-12);
  EXPECT_NEAR(shard_a.Variance(), serial.Variance(), 1e-12);
  EXPECT_DOUBLE_EQ(shard_a.Min(), serial.Min());
  EXPECT_DOUBLE_EQ(shard_a.Max(), serial.Max());
}

}  // namespace
}  // namespace ukc
