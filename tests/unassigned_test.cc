// Tests for the unassigned-version solvers and the relations the
// paper's taxonomy implies between the three problem versions.

#include "core/unassigned.h"

#include <gtest/gtest.h>

#include "core/exact_tiny.h"
#include "cost/expected_cost.h"
#include "exper/instances.h"
#include "uncertain/generators.h"

namespace ukc {
namespace core {
namespace {

using metric::SiteId;
using uncertain::UncertainDataset;

UncertainDataset Tiny(uint64_t seed) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kClustered;
  spec.n = 5;
  spec.z = 2;
  spec.k = 2;
  spec.seed = seed;
  return std::move(exper::MakeInstance(spec)).value();
}

TEST(ExactUnassignedTinyTest, Validation) {
  UncertainDataset dataset = Tiny(1);
  const auto sites = dataset.LocationSites();
  EXPECT_FALSE(ExactUnassignedTiny(dataset, 0, sites).ok());
  EXPECT_FALSE(ExactUnassignedTiny(dataset, sites.size() + 1, sites).ok());
  EXPECT_FALSE(ExactUnassignedTiny(dataset, 3, sites, /*max_subsets=*/1).ok());
}

TEST(ExactUnassignedTinyTest, FindsTheSubsetOptimum) {
  UncertainDataset dataset = Tiny(2);
  const auto sites = dataset.LocationSites();
  auto exact = ExactUnassignedTiny(dataset, 2, sites);
  ASSERT_TRUE(exact.ok());
  // Spot-check optimality against random subsets.
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t a = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(sites.size()) - 1));
    const size_t b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(sites.size()) - 1));
    if (a == b) continue;
    auto value = cost::ExactUnassignedCost(dataset, {sites[a], sites[b]});
    ASSERT_TRUE(value.ok());
    EXPECT_GE(*value, exact->expected_cost - 1e-12);
  }
}

// Version ordering: OPT_unassigned <= OPT_unrestricted <= OPT_restricted
// over the same candidate set (fixing more structure can only hurt).
TEST(VersionOrderingTest, UnassignedBelowUnrestrictedBelowRestricted) {
  for (uint64_t seed = 4; seed <= 8; ++seed) {
    UncertainDataset dataset = Tiny(seed);
    auto candidates = DefaultCandidateSites(&dataset);
    ASSERT_TRUE(candidates.ok());
    auto unassigned = ExactUnassignedTiny(dataset, 2, *candidates);
    auto unrestricted = ExactUnrestrictedAssigned(&dataset, 2, *candidates);
    auto restricted = ExactRestrictedAssigned(
        &dataset, 2, cost::AssignmentRule::kExpectedDistance, *candidates);
    ASSERT_TRUE(unassigned.ok());
    ASSERT_TRUE(unrestricted.ok());
    ASSERT_TRUE(restricted.ok());
    EXPECT_LE(unassigned->expected_cost, unrestricted->expected_cost + 1e-9);
    EXPECT_LE(unrestricted->expected_cost, restricted->expected_cost + 1e-9);
  }
}

TEST(LocalSearchUnassignedTest, Validation) {
  UncertainDataset dataset = Tiny(9);
  UnassignedSearchOptions options;
  options.k = 0;
  EXPECT_FALSE(LocalSearchUnassigned(&dataset, options).ok());
  EXPECT_FALSE(LocalSearchUnassigned(nullptr, {}).ok());
}

TEST(LocalSearchUnassignedTest, NeverWorseThanPipelineSeed) {
  for (uint64_t seed = 10; seed <= 14; ++seed) {
    exper::InstanceSpec spec;
    spec.family = exper::Family::kClustered;
    spec.n = 20;
    spec.z = 3;
    spec.k = 3;
    spec.spread = 1.5;
    spec.seed = seed;
    auto dataset = exper::MakeInstance(spec);
    ASSERT_TRUE(dataset.ok());
    // Seed cost: the pipeline centers under the unassigned objective.
    UncertainKCenterOptions pipeline_options;
    pipeline_options.k = 3;
    pipeline_options.evaluate_unassigned = true;
    auto seed_solution =
        SolveUncertainKCenter(&dataset.value(), pipeline_options);
    ASSERT_TRUE(seed_solution.ok());

    UnassignedSearchOptions options;
    options.k = 3;
    auto refined = LocalSearchUnassigned(&dataset.value(), options);
    ASSERT_TRUE(refined.ok());
    EXPECT_LE(refined->expected_cost, seed_solution->unassigned_cost + 1e-9);
  }
}

TEST(LocalSearchUnassignedTest, ReachesTinyOptimumOften) {
  // The candidate set must include the pipeline's surrogate sites
  // (DefaultCandidateSites does), or the "exact" reference is optimal
  // over a smaller pool than the search and the comparison inverts.
  int hits = 0;
  const int trials = 6;
  for (uint64_t seed = 20; seed < 20 + trials; ++seed) {
    UncertainDataset dataset = Tiny(seed);
    auto candidates = DefaultCandidateSites(&dataset);
    ASSERT_TRUE(candidates.ok());
    auto exact = ExactUnassignedTiny(dataset, 2, *candidates);
    ASSERT_TRUE(exact.ok());
    UnassignedSearchOptions options;
    options.k = 2;
    options.candidates = *candidates;
    auto refined = LocalSearchUnassigned(&dataset, options);
    ASSERT_TRUE(refined.ok());
    EXPECT_GE(refined->expected_cost, exact->expected_cost - 1e-9);
    if (refined->expected_cost <= exact->expected_cost + 1e-9) ++hits;
  }
  EXPECT_GE(hits, trials - 2);  // Local search may miss occasionally.
}

TEST(LocalSearchUnassignedTest, WorksOnFiniteMetric) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kGridGraph;
  spec.n = 12;
  spec.z = 3;
  spec.k = 2;
  spec.seed = 31;
  auto dataset = exper::MakeInstance(spec);
  ASSERT_TRUE(dataset.ok());
  UnassignedSearchOptions options;
  options.k = 2;
  auto refined = LocalSearchUnassigned(&dataset.value(), options);
  ASSERT_TRUE(refined.ok());
  EXPECT_EQ(refined->centers.size(), 2u);
  EXPECT_GT(refined->expected_cost, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace ukc
