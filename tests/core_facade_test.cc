// Tests for the UncertainKCenter facade: configuration handling, bound
// metadata, timings, and cross-configuration consistency.

#include "core/uncertain_kcenter.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cost/expected_cost.h"
#include "uncertain/generators.h"

namespace ukc {
namespace core {
namespace {

using uncertain::UncertainDataset;

UncertainDataset Euclidean(uint64_t seed, size_t n = 30) {
  uncertain::EuclideanInstanceOptions options;
  options.n = n;
  options.z = 4;
  options.dim = 2;
  options.seed = seed;
  return std::move(uncertain::GenerateClusteredInstance(options, 3)).value();
}

UncertainDataset Metric(uint64_t seed, size_t n = 15) {
  auto graph = uncertain::GenerateGridGraph(6, 6, 0.5, 2.0, seed + 77);
  return std::move(uncertain::GenerateMetricInstance(
                       *graph, n, 3, 2.0,
                       uncertain::ProbabilityShape::kRandom, seed))
      .value();
}

TEST(FacadeTest, RejectsInvalidConfigurations) {
  UncertainDataset euclidean = Euclidean(1);
  UncertainKCenterOptions options;
  options.k = 0;
  EXPECT_FALSE(SolveUncertainKCenter(&euclidean, options).ok());
  EXPECT_FALSE(SolveUncertainKCenter(nullptr, {}).ok());

  UncertainDataset metric = Metric(1);
  options.k = 2;
  options.rule = cost::AssignmentRule::kExpectedPoint;
  EXPECT_FALSE(SolveUncertainKCenter(&metric, options).ok());
  options.rule = cost::AssignmentRule::kExpectedDistance;
  options.surrogate = SurrogateKind::kExpectedPoint;
  EXPECT_FALSE(SolveUncertainKCenter(&metric, options).ok());
}

TEST(FacadeTest, EuclideanDefaultsToExpectedPointSurrogate) {
  UncertainDataset dataset = Euclidean(2);
  UncertainKCenterOptions options;
  options.k = 3;
  auto solution = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->centers.size(), 3u);
  EXPECT_EQ(solution->assignment.size(), dataset.n());
  EXPECT_GT(solution->expected_cost, 0.0);
  EXPECT_EQ(solution->surrogates.size(), dataset.n());
  EXPECT_EQ(solution->certain_algorithm, "gonzalez");
  EXPECT_DOUBLE_EQ(solution->certain_factor, 2.0);
  // ED rule + P̄ surrogate + f=2: Table 1's factor 6 claims.
  ASSERT_EQ(solution->bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(solution->bounds[0].factor, 6.0);
  EXPECT_EQ(solution->bounds[0].reference, BoundReference::kRestrictedOptimum);
  EXPECT_DOUBLE_EQ(solution->bounds[1].factor, 6.0);
  EXPECT_EQ(solution->bounds[1].reference,
            BoundReference::kUnrestrictedOptimum);
}

TEST(FacadeTest, EPRuleGetsFactorFour) {
  UncertainDataset dataset = Euclidean(3);
  UncertainKCenterOptions options;
  options.k = 3;
  options.rule = cost::AssignmentRule::kExpectedPoint;
  auto solution = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(solution.ok());
  ASSERT_FALSE(solution->bounds.empty());
  EXPECT_DOUBLE_EQ(solution->bounds[0].factor, 4.0);
  EXPECT_EQ(solution->bounds[0].theorem, "Theorem 2.2 (EP)");
}

TEST(FacadeTest, MetricDefaultsToOneCenterSurrogate) {
  UncertainDataset dataset = Metric(4);
  UncertainKCenterOptions options;
  options.k = 2;
  options.rule = cost::AssignmentRule::kOneCenter;
  auto solution = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(solution.ok());
  // OC rule, P̃ surrogate, f=2: factor 3+2f = 7 (Theorem 2.7).
  ASSERT_EQ(solution->bounds.size(), 1u);
  EXPECT_DOUBLE_EQ(solution->bounds[0].factor, 7.0);
  EXPECT_EQ(solution->bounds[0].theorem, "Theorem 2.7");
}

TEST(FacadeTest, OwnLocationsWeakensTheConstant) {
  UncertainDataset dataset = Metric(5);
  UncertainKCenterOptions options;
  options.k = 2;
  options.rule = cost::AssignmentRule::kOneCenter;
  options.one_center_candidates = OneCenterCandidates::kOwnLocations;
  auto solution = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->bounds.size(), 1u);
  // m = 2, f = 2: 2 + m + f(1+m) = 10.
  EXPECT_DOUBLE_EQ(solution->bounds[0].factor, 10.0);
}

TEST(FacadeTest, ModalSurrogateCarriesNoBounds) {
  UncertainDataset dataset = Euclidean(6);
  UncertainKCenterOptions options;
  options.k = 3;
  options.surrogate = SurrogateKind::kModal;
  auto solution = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->bounds.empty());
}

TEST(FacadeTest, ExpectedCostMatchesIndependentEvaluation) {
  UncertainDataset dataset = Euclidean(7);
  UncertainKCenterOptions options;
  options.k = 3;
  auto solution = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(solution.ok());
  auto recomputed = cost::ExactAssignedCost(dataset, solution->assignment);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_DOUBLE_EQ(solution->expected_cost, *recomputed);
}

TEST(FacadeTest, UnassignedEvaluationOnRequest) {
  UncertainDataset dataset = Euclidean(8);
  UncertainKCenterOptions options;
  options.k = 3;
  auto without = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(std::isnan(without->unassigned_cost));

  options.evaluate_unassigned = true;
  auto with = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(with.ok());
  EXPECT_FALSE(std::isnan(with->unassigned_cost));
  // The free (per-realization) assignment can only help.
  EXPECT_LE(with->unassigned_cost, with->expected_cost + 1e-9);
}

TEST(FacadeTest, AssignmentServesEveryPointWithAChosenCenter) {
  UncertainDataset dataset = Euclidean(9);
  UncertainKCenterOptions options;
  options.k = 4;
  for (auto rule : {cost::AssignmentRule::kExpectedDistance,
                    cost::AssignmentRule::kExpectedPoint,
                    cost::AssignmentRule::kOneCenter}) {
    options.rule = rule;
    auto solution = SolveUncertainKCenter(&dataset, options);
    ASSERT_TRUE(solution.ok()) << cost::AssignmentRuleToString(rule);
    EXPECT_TRUE(cost::ValidateAssignment(dataset, solution->centers,
                                         solution->assignment)
                    .ok());
  }
}

TEST(FacadeTest, RefinedSolverImprovesOrMatchesGonzalez) {
  UncertainDataset dataset_a = Euclidean(10, 40);
  UncertainDataset dataset_b = Euclidean(10, 40);
  UncertainKCenterOptions options;
  options.k = 3;
  auto greedy = SolveUncertainKCenter(&dataset_a, options);
  options.certain.kind = solver::CertainSolverKind::kGonzalezRefined;
  auto refined = SolveUncertainKCenter(&dataset_b, options);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(refined.ok());
  EXPECT_LE(refined->certain_radius, greedy->certain_radius + 1e-12);
}

TEST(FacadeTest, TimingsArePopulated) {
  UncertainDataset dataset = Euclidean(11);
  UncertainKCenterOptions options;
  options.k = 3;
  auto solution = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(solution.ok());
  EXPECT_GE(solution->timings.surrogate_seconds, 0.0);
  EXPECT_GE(solution->timings.clustering_seconds, 0.0);
  EXPECT_GE(solution->timings.assignment_seconds, 0.0);
  EXPECT_GE(solution->timings.evaluation_seconds, 0.0);
  EXPECT_GE(solution->timings.TotalSeconds(),
            solution->timings.evaluation_seconds);
}

TEST(FacadeTest, KLargerThanNStillWorks) {
  UncertainDataset dataset = Euclidean(12, 4);
  UncertainKCenterOptions options;
  options.k = 9;
  auto solution = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(solution.ok());
  // One center per surrogate: every point served at distance ~ its own
  // spread.
  EXPECT_LE(solution->centers.size(), 4u);
  EXPECT_DOUBLE_EQ(solution->certain_radius, 0.0);
}

TEST(FacadeTest, DeterministicForFixedSeedAndConfig) {
  UncertainDataset dataset_a = Euclidean(13);
  UncertainDataset dataset_b = Euclidean(13);
  UncertainKCenterOptions options;
  options.k = 3;
  auto a = SolveUncertainKCenter(&dataset_a, options);
  auto b = SolveUncertainKCenter(&dataset_b, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->centers, b->centers);
  EXPECT_DOUBLE_EQ(a->expected_cost, b->expected_cost);
}

TEST(FacadeTest, EuclideanWithOneCenterSurrogateGetsMetricBounds) {
  UncertainDataset dataset = Euclidean(14);
  UncertainKCenterOptions options;
  options.k = 3;
  options.surrogate = SurrogateKind::kOneCenter;
  options.rule = cost::AssignmentRule::kOneCenter;
  auto solution = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->bounds.size(), 1u);
  EXPECT_DOUBLE_EQ(solution->bounds[0].factor, 7.0);  // 3 + 2f, f=2.
}

TEST(BoundsTest, FactorsMatchThePaperWithEpsilonSolver) {
  // f = 1 + eps with eps = 0.25.
  const double f = 1.25;
  auto ed = BoundsFor(true, SurrogateKind::kExpectedPoint,
                      cost::AssignmentRule::kExpectedDistance, f);
  ASSERT_EQ(ed.size(), 2u);
  EXPECT_DOUBLE_EQ(ed[0].factor, 5.25);  // 5 + eps.
  auto ep = BoundsFor(true, SurrogateKind::kExpectedPoint,
                      cost::AssignmentRule::kExpectedPoint, f);
  EXPECT_DOUBLE_EQ(ep[0].factor, 3.25);  // 3 + eps.
  auto metric_ed = BoundsFor(false, SurrogateKind::kOneCenter,
                             cost::AssignmentRule::kExpectedDistance, f);
  ASSERT_EQ(metric_ed.size(), 1u);
  EXPECT_DOUBLE_EQ(metric_ed[0].factor, 7.5);  // 7 + 2 eps.
  auto metric_oc = BoundsFor(false, SurrogateKind::kOneCenter,
                             cost::AssignmentRule::kOneCenter, f);
  EXPECT_DOUBLE_EQ(metric_oc[0].factor, 5.5);  // 5 + 2 eps.
}

TEST(BoundsTest, UnsupportedCombinationsAreEmpty) {
  EXPECT_TRUE(BoundsFor(false, SurrogateKind::kExpectedPoint,
                        cost::AssignmentRule::kExpectedDistance, 2.0)
                  .empty());
  EXPECT_TRUE(BoundsFor(true, SurrogateKind::kModal,
                        cost::AssignmentRule::kExpectedDistance, 2.0)
                  .empty());
  EXPECT_TRUE(BoundsFor(true, SurrogateKind::kExpectedPoint,
                        cost::AssignmentRule::kOneCenter, 2.0)
                  .empty());
  EXPECT_TRUE(BoundsFor(true, SurrogateKind::kExpectedPoint,
                        cost::AssignmentRule::kExpectedDistance, 0.0)
                  .empty());
}

TEST(BoundsTest, ReferenceNames) {
  EXPECT_EQ(BoundReferenceToString(BoundReference::kRestrictedOptimum),
            "restricted-optimum");
  EXPECT_EQ(BoundReferenceToString(BoundReference::kUnrestrictedOptimum),
            "unrestricted-optimum");
}

}  // namespace
}  // namespace core
}  // namespace ukc
