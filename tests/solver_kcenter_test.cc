// Tests for the deterministic k-center substrate: Gonzalez,
// Hochbaum–Shmoys, exact brute force, 1D exact, refinement, and the
// dispatcher — including parameterized approximation-ratio sweeps
// against the exact optimum.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "metric/euclidean_space.h"
#include "metric/matrix_space.h"
#include "solver/brute_force.h"
#include "solver/certain_solver.h"
#include "solver/gonzalez.h"
#include "solver/hochbaum_shmoys.h"
#include "solver/kcenter_1d.h"
#include "solver/refine.h"

namespace ukc {
namespace solver {
namespace {

using geometry::Point;
using metric::EuclideanSpace;
using metric::SiteId;

std::vector<SiteId> AllSites(const metric::MetricSpace& space) {
  std::vector<SiteId> sites(static_cast<size_t>(space.num_sites()));
  for (size_t i = 0; i < sites.size(); ++i) sites[i] = static_cast<SiteId>(i);
  return sites;
}

EuclideanSpace RandomSpace(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  EuclideanSpace space(dim);
  for (size_t i = 0; i < n; ++i) {
    Point p(dim);
    for (size_t a = 0; a < dim; ++a) p[a] = rng.UniformDouble(0.0, 10.0);
    space.AddPoint(std::move(p));
  }
  return space;
}

// --- Gonzalez ---

TEST(GonzalezTest, RejectsBadInput) {
  EuclideanSpace space = RandomSpace(5, 2, 1);
  EXPECT_FALSE(Gonzalez(space, AllSites(space), 0).ok());
  EXPECT_FALSE(Gonzalez(space, {}, 2).ok());
  GonzalezOptions options;
  options.first_index = 99;
  EXPECT_FALSE(Gonzalez(space, AllSites(space), 2, options).ok());
}

TEST(GonzalezTest, SingleCenterPicksFirstAndComputesRadius) {
  EuclideanSpace space(1);
  const SiteId a = space.AddPoint(Point{0.0});
  space.AddPoint(Point{4.0});
  space.AddPoint(Point{10.0});
  auto solution = Gonzalez(space, AllSites(space), 1);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->centers, (std::vector<SiteId>{a}));
  EXPECT_DOUBLE_EQ(solution->radius, 10.0);
}

TEST(GonzalezTest, PicksFarthestSecond) {
  EuclideanSpace space(1);
  const SiteId a = space.AddPoint(Point{0.0});
  space.AddPoint(Point{4.0});
  const SiteId c = space.AddPoint(Point{10.0});
  auto solution = Gonzalez(space, AllSites(space), 2);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->centers, (std::vector<SiteId>{a, c}));
  EXPECT_DOUBLE_EQ(solution->radius, 4.0);
}

TEST(GonzalezTest, KAtLeastNGivesZeroRadius) {
  EuclideanSpace space = RandomSpace(4, 2, 2);
  auto solution = Gonzalez(space, AllSites(space), 10);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->centers.size(), 4u);
  EXPECT_DOUBLE_EQ(solution->radius, 0.0);
}

TEST(GonzalezTest, RadiusMatchesCoveringRadius) {
  EuclideanSpace space = RandomSpace(40, 3, 3);
  const auto sites = AllSites(space);
  for (size_t k : {1u, 2u, 5u, 8u}) {
    auto solution = Gonzalez(space, sites, k);
    ASSERT_TRUE(solution.ok());
    EXPECT_NEAR(solution->radius,
                CoveringRadius(space, sites, solution->centers), 1e-12);
  }
}

TEST(GonzalezTest, CentersAreDistinctSites) {
  EuclideanSpace space = RandomSpace(30, 2, 4);
  auto solution = Gonzalez(space, AllSites(space), 6);
  ASSERT_TRUE(solution.ok());
  auto centers = solution->centers;
  std::sort(centers.begin(), centers.end());
  EXPECT_EQ(std::unique(centers.begin(), centers.end()), centers.end());
}

// Parameterized 2-approximation sweep: Gonzalez radius <= 2 * discrete
// optimum on random instances, across seeds and k.
class GonzalezRatioTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GonzalezRatioTest, WithinTwiceDiscreteOptimum) {
  const int seed = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  EuclideanSpace space = RandomSpace(14, 2, static_cast<uint64_t>(seed));
  const auto sites = AllSites(space);
  auto greedy = Gonzalez(space, sites, static_cast<size_t>(k));
  ASSERT_TRUE(greedy.ok());
  auto exact =
      ExactDiscreteKCenter(space, sites, sites, static_cast<size_t>(k));
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(greedy->radius, 2.0 * exact->radius + 1e-9)
      << "seed=" << seed << " k=" << k;
  EXPECT_GE(greedy->radius, exact->radius - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GonzalezRatioTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(1, 2, 3)));

// --- Hochbaum–Shmoys ---

TEST(HochbaumShmoysTest, RejectsBadInput) {
  EuclideanSpace space = RandomSpace(5, 2, 5);
  EXPECT_FALSE(HochbaumShmoys(space, AllSites(space), 0).ok());
  EXPECT_FALSE(HochbaumShmoys(space, {}, 1).ok());
}

TEST(HochbaumShmoysTest, BoundsBracketOptimum) {
  for (uint64_t seed = 10; seed < 18; ++seed) {
    EuclideanSpace space = RandomSpace(13, 2, seed);
    const auto sites = AllSites(space);
    for (size_t k : {1u, 2u, 3u}) {
      auto threshold = HochbaumShmoys(space, sites, k);
      ASSERT_TRUE(threshold.ok());
      auto exact = ExactDiscreteKCenter(space, sites, sites, k);
      ASSERT_TRUE(exact.ok());
      EXPECT_LE(threshold->lower_bound, exact->radius + 1e-9);
      EXPECT_LE(threshold->continuous_lower_bound, exact->radius + 1e-9);
      EXPECT_LE(threshold->solution.radius, 2.0 * exact->radius + 1e-9);
      EXPECT_GE(threshold->solution.radius, exact->radius - 1e-9);
    }
  }
}

TEST(HochbaumShmoysTest, CoincidentPointsGiveZero) {
  EuclideanSpace space(2);
  for (int i = 0; i < 4; ++i) space.AddPoint(Point{1.0, 1.0});
  auto threshold = HochbaumShmoys(space, AllSites(space), 1);
  ASSERT_TRUE(threshold.ok());
  EXPECT_DOUBLE_EQ(threshold->solution.radius, 0.0);
  EXPECT_DOUBLE_EQ(threshold->lower_bound, 0.0);
}

// --- Exact discrete brute force ---

TEST(ExactDiscreteTest, RejectsBadInput) {
  EuclideanSpace space = RandomSpace(5, 2, 6);
  const auto sites = AllSites(space);
  EXPECT_FALSE(ExactDiscreteKCenter(space, sites, sites, 0).ok());
  EXPECT_FALSE(ExactDiscreteKCenter(space, {}, sites, 1).ok());
  BruteForceOptions tight;
  tight.max_subsets = 1;
  EXPECT_FALSE(ExactDiscreteKCenter(space, sites, sites, 2, tight).ok());
}

TEST(ExactDiscreteTest, KnownTwoClusterInstance) {
  EuclideanSpace space(1);
  for (double x : {0.0, 1.0, 2.0, 10.0, 11.0, 12.0}) {
    space.AddPoint(Point{x});
  }
  auto exact = ExactDiscreteKCenter(space, AllSites(space), AllSites(space), 2);
  ASSERT_TRUE(exact.ok());
  // Optimal discrete centers are 1 and 11: radius 1.
  EXPECT_DOUBLE_EQ(exact->radius, 1.0);
}

TEST(ExactDiscreteTest, KGreaterThanCandidates) {
  EuclideanSpace space = RandomSpace(3, 2, 7);
  auto exact = ExactDiscreteKCenter(space, AllSites(space), AllSites(space), 9);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(exact->radius, 0.0);
}

TEST(ExactDiscreteTest, NeverWorseThanGonzalez) {
  for (uint64_t seed = 30; seed < 36; ++seed) {
    EuclideanSpace space = RandomSpace(12, 3, seed);
    const auto sites = AllSites(space);
    auto exact = ExactDiscreteKCenter(space, sites, sites, 3);
    auto greedy = Gonzalez(space, sites, 3);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(greedy.ok());
    EXPECT_LE(exact->radius, greedy->radius + 1e-12);
  }
}

TEST(BinomialCountTest, KnownValues) {
  EXPECT_EQ(BinomialCount(5, 2), 10u);
  EXPECT_EQ(BinomialCount(10, 0), 1u);
  EXPECT_EQ(BinomialCount(10, 10), 1u);
  EXPECT_EQ(BinomialCount(10, 11), 0u);
  EXPECT_EQ(BinomialCount(52, 5), 2598960u);
  // Saturates instead of overflowing.
  EXPECT_EQ(BinomialCount(200, 100), std::numeric_limits<uint64_t>::max());
}

// --- 1D exact ---

TEST(KCenter1DTest, RejectsBadInput) {
  EXPECT_FALSE(KCenter1D({}, 1).ok());
  EXPECT_FALSE(KCenter1D({1.0}, 0).ok());
  EXPECT_FALSE(KCenter1DDP({}, 1).ok());
}

TEST(KCenter1DTest, SingleCluster) {
  auto solution = KCenter1D({3.0, 1.0, 5.0}, 1);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->radius, 2.0);
  ASSERT_EQ(solution->centers.size(), 1u);
  EXPECT_DOUBLE_EQ(solution->centers[0], 3.0);
}

TEST(KCenter1DTest, KnownTwoClusters) {
  auto solution = KCenter1D({0.0, 1.0, 10.0, 12.0}, 2);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->radius, 1.0);
  EXPECT_EQ(solution->cluster_of, (std::vector<size_t>{0, 0, 1, 1}));
}

TEST(KCenter1DTest, KAtLeastN) {
  auto solution = KCenter1D({5.0, 7.0}, 5);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->radius, 0.0);
  EXPECT_EQ(solution->centers.size(), 2u);
}

TEST(KCenter1DTest, DuplicateValues) {
  auto solution = KCenter1D({2.0, 2.0, 2.0, 8.0}, 2);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->radius, 0.0);
}

// Property: the binary-search solver agrees exactly with the DP solver.
class KCenter1DAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KCenter1DAgreementTest, SearchMatchesDP) {
  const int seed = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(seed) * 71 + 3);
  std::vector<double> values(20);
  for (double& v : values) v = rng.UniformDouble(0.0, 100.0);
  auto fast = KCenter1D(values, static_cast<size_t>(k));
  auto reference = KCenter1DDP(values, static_cast<size_t>(k));
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_NEAR(fast->radius, reference->radius, 1e-12)
      << "seed=" << seed << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KCenter1DAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(1, 2, 3, 4, 7)));

// 1D exact also matches the generic discrete brute force (centers at
// input points cannot beat midpoints, so compare against half the
// pairwise-gap optimum via the DP).
TEST(KCenter1DTest, MatchesBruteForcePartitioning) {
  Rng rng(99);
  std::vector<double> values(9);
  for (double& v : values) v = rng.UniformDouble(0.0, 50.0);
  for (size_t k = 1; k <= 4; ++k) {
    auto solution = KCenter1D(values, k);
    ASSERT_TRUE(solution.ok());
    // Brute force over all contiguous partitions via DP is the
    // reference; additionally verify achievability: every point within
    // radius of its center.
    std::vector<double> sorted(values);
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); ++i) {
      const double c = solution->centers[solution->cluster_of[i]];
      EXPECT_LE(std::abs(sorted[i] - c), solution->radius + 1e-12);
    }
  }
}

// --- Refinement ---

TEST(RefineTest, NeverIncreasesRadius) {
  for (uint64_t seed = 50; seed < 56; ++seed) {
    EuclideanSpace space = RandomSpace(30, 2, seed);
    const auto sites = AllSites(space);
    auto seed_solution = Gonzalez(space, sites, 4);
    ASSERT_TRUE(seed_solution.ok());
    auto refined = RefineKCenter(&space, sites, *seed_solution);
    ASSERT_TRUE(refined.ok());
    EXPECT_LE(refined->radius, seed_solution->radius + 1e-12);
    EXPECT_EQ(refined->centers.size(), seed_solution->centers.size());
  }
}

TEST(RefineTest, WorksOnFiniteMetric) {
  auto matrix = metric::MatrixSpace::Build({{0, 2, 4, 6},
                                            {2, 0, 2, 4},
                                            {4, 2, 0, 2},
                                            {6, 4, 2, 0}});
  ASSERT_TRUE(matrix.ok());
  const auto sites = AllSites(**matrix);
  auto seed_solution = Gonzalez(**matrix, sites, 2);
  ASSERT_TRUE(seed_solution.ok());
  auto refined = RefineKCenter(matrix->get(), sites, *seed_solution);
  ASSERT_TRUE(refined.ok());
  EXPECT_LE(refined->radius, seed_solution->radius + 1e-12);
}

TEST(RefineTest, RejectsBadInput) {
  EuclideanSpace space = RandomSpace(5, 2, 60);
  KCenterSolution empty_seed;
  EXPECT_FALSE(RefineKCenter(&space, AllSites(space), empty_seed).ok());
  EXPECT_FALSE(RefineKCenter(nullptr, AllSites(space), empty_seed).ok());
}

// --- Dispatcher ---

TEST(CertainSolverTest, AllKindsRun) {
  for (auto kind :
       {CertainSolverKind::kGonzalez, CertainSolverKind::kHochbaumShmoys,
        CertainSolverKind::kGonzalezRefined, CertainSolverKind::kExact}) {
    EuclideanSpace space = RandomSpace(9, 2, 70);
    const auto sites = AllSites(space);
    CertainSolverOptions options;
    options.kind = kind;
    auto solution = SolveCertainKCenter(&space, sites, 2, options);
    ASSERT_TRUE(solution.ok()) << CertainSolverKindToString(kind);
    EXPECT_EQ(solution->centers.size(), 2u);
    EXPECT_GT(solution->radius, 0.0);
    EXPECT_GE(solution->approx_factor, 1.0);
  }
}

TEST(CertainSolverTest, ExactBeatsGreedyOnEuclidean) {
  EuclideanSpace space = RandomSpace(10, 2, 71);
  const auto sites = AllSites(space);
  CertainSolverOptions exact_options;
  exact_options.kind = CertainSolverKind::kExact;
  auto exact = SolveCertainKCenter(&space, sites, 3, exact_options);
  auto greedy = SolveCertainKCenter(&space, sites, 3, {});
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_LE(exact->radius, greedy->radius + 1e-12);
  EXPECT_DOUBLE_EQ(exact->approx_factor, 1.0);
}

TEST(CertainSolverTest, ExactOnFiniteMetricUsesDiscrete) {
  auto matrix = metric::MatrixSpace::Build(
      {{0, 1, 5}, {1, 0, 5}, {5, 5, 0}});
  ASSERT_TRUE(matrix.ok());
  CertainSolverOptions options;
  options.kind = CertainSolverKind::kExact;
  auto solution =
      SolveCertainKCenter(matrix->get(), AllSites(**matrix), 2, options);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->radius, 1.0);
}

TEST(CertainSolverTest, KindNames) {
  EXPECT_EQ(CertainSolverKindToString(CertainSolverKind::kGonzalez), "gonzalez");
  EXPECT_EQ(CertainSolverKindToString(CertainSolverKind::kExact), "exact");
}

}  // namespace
}  // namespace solver
}  // namespace ukc
