// Tests for the uncertain k-means extension and the weighted Lloyd
// substrate, centered on the bias–variance identity that makes the
// expected-point reduction lossless.

#include "core/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "solver/lloyd.h"
#include "uncertain/generators.h"

namespace ukc {
namespace core {
namespace {

using geometry::Point;
using metric::SiteId;
using uncertain::UncertainDataset;

// --- WeightedKMeans substrate ---

TEST(WeightedKMeansTest, RejectsBadInput) {
  EXPECT_FALSE(solver::WeightedKMeans({}, {}, 1).ok());
  EXPECT_FALSE(solver::WeightedKMeans({Point{0.0}}, {1.0, 2.0}, 1).ok());
  EXPECT_FALSE(solver::WeightedKMeans({Point{0.0}}, {1.0}, 0).ok());
  EXPECT_FALSE(solver::WeightedKMeans({Point{0.0}}, {0.0}, 1).ok());
  EXPECT_FALSE(
      solver::WeightedKMeans({Point{0.0}, Point{0.0, 1.0}}, {1.0, 1.0}, 1).ok());
}

TEST(WeightedKMeansTest, SingleClusterIsWeightedCentroid) {
  std::vector<Point> points = {Point{0.0}, Point{10.0}};
  auto solution = solver::WeightedKMeans(points, {1.0, 3.0}, 1);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->centers.size(), 1u);
  EXPECT_NEAR(solution->centers[0][0], 7.5, 1e-9);
  // Objective = 1*(7.5)^2 + 3*(2.5)^2.
  EXPECT_NEAR(solution->objective, 56.25 + 18.75, 1e-9);
}

TEST(WeightedKMeansTest, SeparatedClustersSplitCorrectly) {
  std::vector<Point> points = {Point{0.0, 0.0}, Point{1.0, 0.0},
                               Point{100.0, 0.0}, Point{101.0, 0.0}};
  std::vector<double> weights(4, 1.0);
  auto solution = solver::WeightedKMeans(points, weights, 2);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->objective, 4 * 0.25, 1e-9);
  EXPECT_EQ(solution->cluster_of[0], solution->cluster_of[1]);
  EXPECT_NE(solution->cluster_of[0], solution->cluster_of[2]);
}

TEST(WeightedKMeansTest, KAtLeastDistinctPointsReachesZero) {
  std::vector<Point> points = {Point{1.0}, Point{2.0}, Point{3.0}};
  auto solution = solver::WeightedKMeans(points, {1.0, 1.0, 1.0}, 3);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->objective, 0.0, 1e-12);
}

TEST(WeightedKMeansTest, DuplicatePointsHandled) {
  std::vector<Point> points(6, Point{2.0, 2.0});
  auto solution = solver::WeightedKMeans(points, std::vector<double>(6, 1.0), 3);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->objective, 0.0, 1e-12);
}

TEST(WeightedKMeansTest, MoreRestartsNeverHurt) {
  Rng rng(1);
  std::vector<Point> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back(Point{rng.Gaussian(), rng.Gaussian()});
  }
  std::vector<double> weights(points.size(), 1.0);
  solver::KMeansOptions one;
  one.restarts = 1;
  one.seed = 5;
  solver::KMeansOptions many;
  many.restarts = 8;
  many.seed = 5;
  auto a = solver::WeightedKMeans(points, weights, 4, one);
  auto b = solver::WeightedKMeans(points, weights, 4, many);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->objective, a->objective + 1e-9);
}

// --- Uncertain k-means ---

UncertainDataset Clustered(uint64_t seed, size_t n = 25) {
  uncertain::EuclideanInstanceOptions options;
  options.n = n;
  options.z = 4;
  options.dim = 2;
  options.seed = seed;
  return std::move(uncertain::GenerateClusteredInstance(options, 3)).value();
}

TEST(UncertainKMeansTest, BiasVarianceIdentityHolds) {
  // expected_cost == surrogate_objective + variance_floor, exactly.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    UncertainDataset dataset = Clustered(seed);
    UncertainKMeansOptions options;
    options.k = 3;
    auto solution = SolveUncertainKMeans(&dataset, options);
    ASSERT_TRUE(solution.ok());
    EXPECT_NEAR(solution->expected_cost,
                solution->surrogate_objective + solution->variance_floor,
                1e-9 * (1.0 + solution->expected_cost));
  }
}

TEST(UncertainKMeansTest, VarianceFloorIsAHardLowerBound) {
  UncertainDataset dataset = Clustered(7, 10);
  auto floor = KMeansVarianceFloor(dataset);
  ASSERT_TRUE(floor.ok());
  // Any assignment whatsoever costs at least the floor.
  Rng rng(8);
  const auto sites = dataset.LocationSites();
  for (int trial = 0; trial < 20; ++trial) {
    cost::Assignment assignment(dataset.n());
    for (auto& a : assignment) {
      a = sites[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(sites.size()) - 1))];
    }
    auto cost_value = ExactKMeansCost(dataset, assignment);
    ASSERT_TRUE(cost_value.ok());
    EXPECT_GE(*cost_value, *floor - 1e-9);
  }
}

TEST(UncertainKMeansTest, NearestExpectedPointAssignmentIsOptimal) {
  // For fixed centers, assigning each point to the center nearest its
  // expected point minimizes the squared objective (bias-variance).
  UncertainDataset dataset = Clustered(9, 8);
  UncertainKMeansOptions options;
  options.k = 2;
  auto solution = SolveUncertainKMeans(&dataset, options);
  ASSERT_TRUE(solution.ok());
  Rng rng(10);
  for (int trial = 0; trial < 30; ++trial) {
    cost::Assignment perturbed = solution->assignment;
    const size_t i =
        static_cast<size_t>(rng.UniformInt(0, dataset.n() - 1));
    perturbed[i] = solution->centers[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(solution->centers.size()) - 1))];
    auto cost_value = ExactKMeansCost(dataset, perturbed);
    ASSERT_TRUE(cost_value.ok());
    EXPECT_GE(*cost_value, solution->expected_cost - 1e-9);
  }
}

TEST(UncertainKMeansTest, ExactCostMatchesManualSum) {
  UncertainDataset dataset = Clustered(11, 5);
  const auto sites = dataset.LocationSites();
  cost::Assignment assignment(dataset.n(), sites[0]);
  auto total = ExactKMeansCost(dataset, assignment);
  ASSERT_TRUE(total.ok());
  double manual = 0.0;
  for (size_t i = 0; i < dataset.n(); ++i) {
    for (const auto& loc : dataset.point(i).locations()) {
      const double d = dataset.space().Distance(loc.site, sites[0]);
      manual += loc.probability * d * d;
    }
  }
  EXPECT_NEAR(*total, manual, 1e-10);
}

TEST(UncertainKMeansTest, Validation) {
  UncertainDataset dataset = Clustered(13, 5);
  UncertainKMeansOptions options;
  options.k = 0;
  EXPECT_FALSE(SolveUncertainKMeans(&dataset, options).ok());
  EXPECT_FALSE(SolveUncertainKMeans(nullptr, {}).ok());
  EXPECT_FALSE(ExactKMeansCost(dataset, cost::Assignment{0}).ok());
  EXPECT_FALSE(
      ExactKMeansCost(dataset, cost::Assignment(dataset.n(), 9999)).ok());

  // Non-Euclidean datasets are rejected (the reduction needs means).
  auto graph = uncertain::GenerateGridGraph(3, 3, 0.5, 2.0, 14);
  ASSERT_TRUE(graph.ok());
  auto metric_dataset = uncertain::GenerateMetricInstance(
      *graph, 4, 2, 2.0, uncertain::ProbabilityShape::kUniform, 15);
  ASSERT_TRUE(metric_dataset.ok());
  options.k = 2;
  EXPECT_FALSE(SolveUncertainKMeans(&metric_dataset.value(), options).ok());
  EXPECT_FALSE(KMeansVarianceFloor(*metric_dataset).ok());
}

TEST(UncertainKMeansTest, MoreCentersNeverIncreaseCost) {
  UncertainDataset dataset_a = Clustered(17, 20);
  UncertainDataset dataset_b = Clustered(17, 20);
  UncertainKMeansOptions options;
  options.k = 2;
  options.lloyd.restarts = 6;
  auto two = SolveUncertainKMeans(&dataset_a, options);
  options.k = 5;
  auto five = SolveUncertainKMeans(&dataset_b, options);
  ASSERT_TRUE(two.ok());
  ASSERT_TRUE(five.ok());
  EXPECT_LE(five->expected_cost, two->expected_cost + 1e-6);
  // But never below the variance floor.
  EXPECT_GE(five->expected_cost, five->variance_floor - 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace ukc
