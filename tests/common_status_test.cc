#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace ukc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllFactories) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, TransientClassification) {
  // kUnavailable is the ONE code the retry layer may clear; everything
  // else is permanent — the classification the ingestion path uses to
  // separate "try again" from "give up and surface it".
  EXPECT_TRUE(IsTransient(StatusCode::kUnavailable));
  EXPECT_FALSE(IsTransient(StatusCode::kOk));
  EXPECT_FALSE(IsTransient(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsTransient(StatusCode::kNotFound));
  EXPECT_FALSE(IsTransient(StatusCode::kOutOfRange));
  EXPECT_FALSE(IsTransient(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsTransient(StatusCode::kUnimplemented));
  EXPECT_FALSE(IsTransient(StatusCode::kInternal));

  EXPECT_TRUE(Status::Unavailable("hiccup").IsTransientError());
  EXPECT_FALSE(Status::Internal("bug").IsTransientError());
  EXPECT_FALSE(Status::OK().IsTransientError());  // Nothing to retry.
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_NE(Status::OK(), Status::Internal("a"));
}

TEST(StatusTest, WithPrefix) {
  Status status = Status::InvalidArgument("negative weight");
  Status prefixed = status.WithPrefix("point 3");
  EXPECT_EQ(prefixed.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(prefixed.message(), "point 3: negative weight");
}

TEST(StatusTest, WithPrefixOnOkIsNoop) {
  EXPECT_TRUE(Status::OK().WithPrefix("ignored").ok());
}

TEST(StatusTest, CopyIsCheap) {
  Status status = Status::Internal("boom");
  Status copy = status;
  EXPECT_EQ(copy, status);
  EXPECT_EQ(copy.message(), "boom");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("missing");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing");
}

Status FailIfNegative(int value) {
  if (value < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int value) {
  UKC_RETURN_IF_ERROR(FailIfNegative(value));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> HalveEven(int value) {
  if (value % 2 != 0) return Status::InvalidArgument("odd");
  return value / 2;
}

Result<int> QuarterEven(int value) {
  UKC_ASSIGN_OR_RETURN(int half, HalveEven(value));
  return HalveEven(half);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValue) {
  Result<int> result = 7;
  EXPECT_EQ(result.value_or(-1), 7);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> result = std::string("payload");
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

TEST(ResultMacroTest, AssignOrReturn) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> inner_fails = QuarterEven(6);  // 6/2 = 3 is odd.
  EXPECT_FALSE(inner_fails.ok());
  EXPECT_EQ(inner_fails.status().code(), StatusCode::kInvalidArgument);

  Result<int> outer_fails = QuarterEven(3);
  EXPECT_FALSE(outer_fails.ok());
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> result = Status::Internal("boom");
  EXPECT_DEATH({ (void)result.value(); }, "boom");
}

}  // namespace
}  // namespace ukc
