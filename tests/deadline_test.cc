// Deadline token suite (common/deadline.h): the default token is
// infinite and free; AfterChecks gives a deterministic countdown (the
// handle tests and the CLI use — no wall clock involved); expiry is
// sticky; copies share one budget; kDeadlineExceeded is deliberately
// NOT transient (retrying an expired query against the same deadline
// can only expire again).

#include <gtest/gtest.h>

#include <chrono>

#include "common/deadline.h"
#include "common/status.h"

namespace ukc {
namespace {

TEST(DeadlineTest, DefaultIsInfiniteAndAlwaysPasses) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(deadline.expired());
    EXPECT_TRUE(deadline.Check("loop").ok());
  }
}

TEST(DeadlineTest, AfterChecksExpiresAtExactlyTheNthCheck) {
  const Deadline deadline = Deadline::AfterChecks(3);
  EXPECT_FALSE(deadline.infinite());
  EXPECT_TRUE(deadline.Check("first").ok());
  EXPECT_TRUE(deadline.Check("second").ok());
  const Status third = deadline.Check("third");
  EXPECT_EQ(third.code(), StatusCode::kDeadlineExceeded);
  // Sticky: once expired, expired forever.
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.Check("fourth").code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, CopiesShareOneBudget) {
  // The token is a value type but the budget is shared state: checks
  // against a copy draw down the same countdown, so a deadline
  // threaded through evaluator options still bounds the WHOLE query.
  const Deadline original = Deadline::AfterChecks(2);
  const Deadline copy = original;
  EXPECT_TRUE(copy.Check("one").ok());
  EXPECT_EQ(original.Check("two").code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(copy.expired());
}

TEST(DeadlineTest, ExpiredFactoryAndCancelAreImmediate) {
  EXPECT_TRUE(Deadline::Expired().expired());
  EXPECT_EQ(Deadline::Expired().Check("x").code(),
            StatusCode::kDeadlineExceeded);

  Deadline cancellable = Deadline::After(std::chrono::hours(1));
  EXPECT_FALSE(cancellable.expired());
  cancellable.Cancel();
  EXPECT_TRUE(cancellable.expired());
}

TEST(DeadlineTest, WallClockDeadlinesExpire) {
  EXPECT_FALSE(Deadline::After(std::chrono::hours(1)).expired());
  EXPECT_TRUE(Deadline::After(std::chrono::nanoseconds(0)).expired());
}

TEST(DeadlineTest, CheckNamesTheSiteAndIsNotTransient) {
  const Status status = Deadline::Expired().Check("QueryCenters");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("QueryCenters"), std::string::npos);
  // A deadline rejection must never enter a retry loop.
  EXPECT_FALSE(status.IsTransientError());
}

}  // namespace
}  // namespace ukc
