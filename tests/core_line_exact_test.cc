// Tests for the R^1 solver and the exact tiny-instance enumerations.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_tiny.h"
#include "core/line_solver.h"
#include "core/uncertain_kcenter.h"
#include "cost/expected_cost.h"
#include "uncertain/generators.h"

namespace ukc {
namespace core {
namespace {

using metric::SiteId;
using uncertain::UncertainDataset;

Result<UncertainDataset> Line(uint64_t seed, size_t n, size_t z,
                              double spread = 2.0) {
  return uncertain::GenerateLineInstance(
      n, z, 30.0, spread, uncertain::ProbabilityShape::kRandom, seed);
}

TEST(LineSolverTest, RejectsBadInput) {
  auto line = Line(1, 5, 3);
  ASSERT_TRUE(line.ok());
  LineSolverOptions options;
  options.k = 0;
  EXPECT_FALSE(SolveLineKCenterED(&line.value(), options).ok());
  EXPECT_FALSE(SolveLineKCenterED(nullptr, {}).ok());

  uncertain::EuclideanInstanceOptions twod;
  twod.n = 5;
  twod.dim = 2;
  twod.seed = 2;
  auto plane = uncertain::GenerateUniformInstance(twod);
  ASSERT_TRUE(plane.ok());
  LineSolverOptions valid;
  valid.k = 1;
  EXPECT_FALSE(SolveLineKCenterED(&plane.value(), valid).ok());
}

TEST(LineSolverTest, CentersAreSortedAndSited) {
  auto line = Line(3, 12, 3);
  ASSERT_TRUE(line.ok());
  LineSolverOptions options;
  options.k = 3;
  auto solution = SolveLineKCenterED(&line.value(), options);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->center_coordinates.size(), 3u);
  EXPECT_TRUE(std::is_sorted(solution->center_coordinates.begin(),
                             solution->center_coordinates.end()));
  EXPECT_EQ(solution->centers.size(), 3u);
  EXPECT_EQ(solution->assignment.size(), line->n());
  // Minted sites carry the coordinates.
  for (size_t g = 0; g < 3; ++g) {
    EXPECT_DOUBLE_EQ(line->euclidean()->point(solution->centers[g])[0],
                     solution->center_coordinates[g]);
  }
}

TEST(LineSolverTest, SingleCenterMatchesConvexMinimum) {
  auto line = Line(4, 6, 3);
  ASSERT_TRUE(line.ok());
  LineSolverOptions options;
  options.k = 1;
  auto solution = SolveLineKCenterED(&line.value(), options);
  ASSERT_TRUE(solution.ok());
  // The k=1 objective is convex in the center; compass refinement from
  // the solver's answer must not find anything better.
  auto refined = RefineOneCenterContinuous(
      *line, geometry::Point{solution->center_coordinates[0]},
      /*initial_step=*/2.0);
  ASSERT_TRUE(refined.ok());
  auto refined_value = OneCenterObjectiveAt(*line, *refined);
  ASSERT_TRUE(refined_value.ok());
  EXPECT_LE(solution->expected_cost, *refined_value + 1e-6);
}

// The line solver matches exhaustive enumeration of the restricted-ED
// problem on tiny instances (the Wang–Zhang substitution check).
class LineExactSweep : public ::testing::TestWithParam<int> {};

TEST_P(LineExactSweep, MatchesRestrictedEDEnumeration) {
  auto line = Line(static_cast<uint64_t>(GetParam()) + 50, 5, 2);
  ASSERT_TRUE(line.ok());
  LineSolverOptions options;
  options.k = 2;
  auto solution = SolveLineKCenterED(&line.value(), options);
  ASSERT_TRUE(solution.ok());

  auto candidates = DefaultCandidateSites(&line.value());
  ASSERT_TRUE(candidates.ok());
  auto reference = ExactRestrictedAssigned(
      &line.value(), 2, cost::AssignmentRule::kExpectedDistance, *candidates);
  ASSERT_TRUE(reference.ok());
  // The continuous solver may do better than the discrete-candidate
  // optimum; it must not be meaningfully worse.
  EXPECT_LE(solution->expected_cost, reference->expected_cost * 1.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineExactSweep, ::testing::Range(0, 8));

// --- Exact tiny enumeration ---

TEST(ExactTinyTest, RejectsBadInput) {
  auto line = Line(7, 4, 2);
  ASSERT_TRUE(line.ok());
  auto candidates = DefaultCandidateSites(&line.value());
  ASSERT_TRUE(candidates.ok());
  EXPECT_FALSE(ExactRestrictedAssigned(nullptr, 1,
                                       cost::AssignmentRule::kExpectedDistance,
                                       *candidates)
                   .ok());
  EXPECT_FALSE(ExactRestrictedAssigned(&line.value(), 0,
                                       cost::AssignmentRule::kExpectedDistance,
                                       *candidates)
                   .ok());
  EXPECT_FALSE(ExactUnrestrictedAssigned(&line.value(), 0, *candidates).ok());
  ExactTinyOptions tight;
  tight.max_center_subsets = 1;
  EXPECT_FALSE(ExactUnrestrictedAssigned(&line.value(), 2, *candidates, tight)
                   .ok());
}

TEST(ExactTinyTest, UnrestrictedNeverWorseThanRestricted) {
  for (uint64_t seed = 60; seed < 66; ++seed) {
    auto line = Line(seed, 4, 2);
    ASSERT_TRUE(line.ok());
    auto candidates = DefaultCandidateSites(&line.value());
    ASSERT_TRUE(candidates.ok());
    auto unrestricted =
        ExactUnrestrictedAssigned(&line.value(), 2, *candidates);
    ASSERT_TRUE(unrestricted.ok());
    for (auto rule : {cost::AssignmentRule::kExpectedDistance,
                      cost::AssignmentRule::kExpectedPoint,
                      cost::AssignmentRule::kOneCenter}) {
      auto restricted =
          ExactRestrictedAssigned(&line.value(), 2, rule, *candidates);
      ASSERT_TRUE(restricted.ok());
      EXPECT_LE(unrestricted->expected_cost,
                restricted->expected_cost + 1e-9)
          << cost::AssignmentRuleToString(rule);
    }
  }
}

TEST(ExactTinyTest, ExactBeatsPipelineOnSameCandidates) {
  for (uint64_t seed = 70; seed < 74; ++seed) {
    uncertain::EuclideanInstanceOptions options;
    options.n = 5;
    options.z = 2;
    options.dim = 2;
    options.seed = seed;
    auto dataset = uncertain::GenerateClusteredInstance(options, 2);
    ASSERT_TRUE(dataset.ok());
    UncertainKCenterOptions pipeline_options;
    pipeline_options.k = 2;
    auto pipeline = SolveUncertainKCenter(&dataset.value(), pipeline_options);
    ASSERT_TRUE(pipeline.ok());
    auto candidates = DefaultCandidateSites(&dataset.value());
    ASSERT_TRUE(candidates.ok());
    auto exact = ExactRestrictedAssigned(
        &dataset.value(), 2, cost::AssignmentRule::kExpectedDistance,
        *candidates);
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(exact->expected_cost, pipeline->expected_cost + 1e-9);
  }
}

TEST(ExactTinyTest, CandidateSetCoversLocationsAndSurrogates) {
  auto line = Line(80, 4, 3);
  ASSERT_TRUE(line.ok());
  const size_t locations = line->LocationSites().size();
  auto candidates = DefaultCandidateSites(&line.value());
  ASSERT_TRUE(candidates.ok());
  // Locations + n expected points + n medians (some may coincide).
  EXPECT_GE(candidates->size(), locations);
  EXPECT_LE(candidates->size(), locations + 2 * line->n());
}

TEST(ExactTinyTest, FiniteMetricCandidatesAreAllSites) {
  auto graph = uncertain::GenerateGridGraph(3, 3, 0.5, 2.0, 90);
  ASSERT_TRUE(graph.ok());
  auto dataset = uncertain::GenerateMetricInstance(
      *graph, 4, 2, 2.0, uncertain::ProbabilityShape::kUniform, 91);
  ASSERT_TRUE(dataset.ok());
  auto candidates = DefaultCandidateSites(&dataset.value());
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 9u);
}

TEST(ExactTinyTest, OneCenterObjectiveMatchesUnassignedCost) {
  auto line = Line(95, 5, 3);
  ASSERT_TRUE(line.ok());
  const SiteId site = line->point(0).site(0);
  const geometry::Point q = line->euclidean()->point(site);
  auto at_point = OneCenterObjectiveAt(*line, q);
  auto at_site = cost::ExactUnassignedCost(*line, {site});
  ASSERT_TRUE(at_point.ok());
  ASSERT_TRUE(at_site.ok());
  EXPECT_NEAR(*at_point, *at_site, 1e-12);
}

TEST(ExactTinyTest, CompassSearchImprovesOrMatchesStart) {
  auto line = Line(97, 6, 3);
  ASSERT_TRUE(line.ok());
  const geometry::Point start{15.0};
  auto start_value = OneCenterObjectiveAt(*line, start);
  ASSERT_TRUE(start_value.ok());
  auto refined = RefineOneCenterContinuous(*line, start, 5.0);
  ASSERT_TRUE(refined.ok());
  auto refined_value = OneCenterObjectiveAt(*line, *refined);
  ASSERT_TRUE(refined_value.ok());
  EXPECT_LE(*refined_value, *start_value + 1e-12);
}

}  // namespace
}  // namespace core
}  // namespace ukc
