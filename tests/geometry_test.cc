#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geometry/box.h"
#include "geometry/point.h"

namespace ukc {
namespace geometry {
namespace {

TEST(PointTest, ConstructionAndAccess) {
  Point p{1.0, 2.0, 3.0};
  EXPECT_EQ(p.dim(), 3u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 3.0);
  p[1] = -4.0;
  EXPECT_DOUBLE_EQ(p[1], -4.0);
}

TEST(PointTest, OriginConstructor) {
  Point p(4);
  EXPECT_EQ(p.dim(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(p[i], 0.0);
}

TEST(PointTest, VectorArithmetic) {
  Point a{1.0, 2.0};
  Point b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Point{2.0, 4.0}));
}

TEST(PointTest, CompoundOperators) {
  Point p{1.0, 1.0};
  p += Point{2.0, 3.0};
  EXPECT_EQ(p, (Point{3.0, 4.0}));
  p -= Point{1.0, 1.0};
  EXPECT_EQ(p, (Point{2.0, 3.0}));
  p *= 0.5;
  EXPECT_EQ(p, (Point{1.0, 1.5}));
}

TEST(PointTest, NormAndDot) {
  Point p{3.0, 4.0};
  EXPECT_DOUBLE_EQ(p.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(p.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(p.Dot(Point{1.0, 1.0}), 7.0);
}

TEST(PointTest, ToStringFormatsCoordinates) {
  EXPECT_EQ((Point{1.0, -2.5}).ToString(), "(1, -2.5)");
}

TEST(DistanceTest, EuclideanBasics) {
  Point a{0.0, 0.0};
  Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
}

TEST(DistanceTest, L1AndLInf) {
  Point a{1.0, 2.0, 3.0};
  Point b{4.0, 0.0, 3.5};
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 3.0 + 2.0 + 0.5);
  EXPECT_DOUBLE_EQ(LInfDistance(a, b), 3.0);
}

TEST(DistanceTest, LpInterpolatesBetweenL1AndL2) {
  Point a{0.0, 0.0};
  Point b{1.0, 1.0};
  EXPECT_DOUBLE_EQ(LpDistance(a, b, 1.0), 2.0);
  EXPECT_NEAR(LpDistance(a, b, 2.0), std::sqrt(2.0), 1e-12);
  // Lp decreases in p.
  EXPECT_GT(LpDistance(a, b, 1.5), LpDistance(a, b, 3.0));
}

TEST(DistanceTest, TriangleInequalityRandom) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    Point a{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};
    Point b{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};
    Point c{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};
    EXPECT_LE(Distance(a, b), Distance(a, c) + Distance(c, b) + 1e-12);
    EXPECT_LE(L1Distance(a, b), L1Distance(a, c) + L1Distance(c, b) + 1e-12);
    EXPECT_LE(LInfDistance(a, b),
              LInfDistance(a, c) + LInfDistance(c, b) + 1e-12);
  }
}

TEST(LerpTest, Endpoints) {
  Point a{0.0, 0.0};
  Point b{2.0, 4.0};
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
  EXPECT_EQ(Lerp(a, b, 0.5), (Point{1.0, 2.0}));
}

TEST(CentroidTest, Mean) {
  std::vector<Point> points = {{0.0, 0.0}, {2.0, 0.0}, {1.0, 3.0}};
  EXPECT_EQ(Centroid(points), (Point{1.0, 1.0}));
}

TEST(WeightedCentroidTest, RespectsWeights) {
  std::vector<Point> points = {{0.0}, {10.0}};
  EXPECT_EQ(WeightedCentroid(points, {1.0, 3.0}), (Point{7.5}));
  EXPECT_EQ(WeightedCentroid(points, {1.0, 0.0}), (Point{0.0}));
}

TEST(WeightedCentroidDeathTest, RejectsAllZeroWeights) {
  std::vector<Point> points = {{0.0}, {1.0}};
  EXPECT_DEATH(WeightedCentroid(points, {0.0, 0.0}), "CHECK failed");
}

TEST(BoxTest, BoundingBox) {
  std::vector<Point> points = {{1.0, 5.0}, {-2.0, 3.0}, {0.0, 7.0}};
  Box box = Box::BoundingBox(points);
  EXPECT_EQ(box.lo(), (Point{-2.0, 3.0}));
  EXPECT_EQ(box.hi(), (Point{1.0, 7.0}));
  EXPECT_DOUBLE_EQ(box.Extent(0), 3.0);
  EXPECT_DOUBLE_EQ(box.Extent(1), 4.0);
  EXPECT_DOUBLE_EQ(box.MaxExtent(), 4.0);
  EXPECT_DOUBLE_EQ(box.Diagonal(), 5.0);
}

TEST(BoxTest, ContainsAndExpand) {
  Box box(Point{0.0, 0.0}, Point{1.0, 1.0});
  EXPECT_TRUE(box.Contains(Point{0.5, 0.5}));
  EXPECT_TRUE(box.Contains(Point{0.0, 1.0}));  // Boundary inclusive.
  EXPECT_FALSE(box.Contains(Point{1.5, 0.5}));
  box.Expand(Point{2.0, -1.0});
  EXPECT_TRUE(box.Contains(Point{1.5, 0.0}));
}

TEST(BoxTest, Inflate) {
  Box box(Point{0.0}, Point{1.0});
  box.Inflate(0.5);
  EXPECT_TRUE(box.Contains(Point{-0.4}));
  EXPECT_TRUE(box.Contains(Point{1.4}));
  EXPECT_FALSE(box.Contains(Point{1.6}));
}

TEST(BoxTest, Center) {
  Box box(Point{0.0, 2.0}, Point{4.0, 6.0});
  EXPECT_EQ(box.Center(), (Point{2.0, 4.0}));
}

TEST(BoxDeathTest, RejectsInvertedCorners) {
  EXPECT_DEATH(Box(Point{1.0}, Point{0.0}), "CHECK failed");
}

}  // namespace
}  // namespace geometry
}  // namespace ukc
