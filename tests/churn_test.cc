// Dynamic-churn suite: incremental insert/delete and sliding-window
// expiry, asserted the repo's usual way — bitwise equality against the
// full-rebuild reference, EXPECT_EQ on doubles, no tolerance anywhere.
//
// The properties under test, in rough order of load-bearing-ness:
//   1. Cost-layer churn trajectories: randomized insert/delete/solve
//      sequences through ParallelCandidateEvaluator::ApplyDatasetEdit
//      produce SwapCostMatrix values bitwise identical to a fresh
//      full-rebuild evaluator at every round, across d ∈ {1, 2, 3, 8}
//      and threads ∈ {1, 2, 8} — and the edits actually roll the
//      cached tables over (the rollover hit counter moves).
//   2. Coreset churn: Remove leaves the coreset bitwise equal to a
//      fresh rebuild of the survivors (levels matched via CoarsenTo);
//      ExpireBefore is a pure function of the final watermark, so any
//      call schedule — per point, batched, once at the end — and any
//      shard/merge split land on identical state.
//   3. Serve churn: windowed appends are batch-split invariant,
//      replicas acking the same append/delete sequence answer
//      identically, and the serve.delete / stream.expire fault sites
//      are all-or-nothing (an errored op leaves the tenant bitwise
//      untouched).
//   4. Checkpoint versioning: a v1 sidecar is rejected at load
//      ("unknown version", never partially interpreted) and the ingest
//      layer degrades it to a counted full re-ingest.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "cost/expected_cost_evaluator.h"
#include "cost/parallel_evaluator.h"
#include "exper/instances.h"
#include "metric/euclidean_space.h"
#include "obs/metrics.h"
#include "serve/registry.h"
#include "serve/serve.h"
#include "serve/tenant.h"
#include "solver/gonzalez.h"
#include "stream/checkpoint.h"
#include "stream/coreset.h"
#include "stream/ingest.h"
#include "uncertain/chunk.h"
#include "uncertain/dataset.h"
#include "uncertain/io.h"

namespace ukc {
namespace {

using metric::SiteId;
using serve::Tenant;
using serve::TenantConfig;
using serve::TenantRegistry;

const int kThreadCounts[] = {1, 2, 8};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- Coreset churn ----------------------------------------------------------

struct ChurnPoint {
  uint64_t index;
  std::vector<double> coords;
  double spread;
};

std::vector<ChurnPoint> MakeChurnStream(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<ChurnPoint> points;
  points.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ChurnPoint p;
    p.index = i;
    for (size_t d = 0; d < dim; ++d) {
      p.coords.push_back(rng.UniformDouble(-10.0, 10.0));
    }
    p.spread = rng.UniformDouble(0.0, 0.5);
    points.push_back(std::move(p));
  }
  return points;
}

stream::CoresetOptions ChurnOptions(uint64_t bucket, bool members) {
  stream::CoresetOptions options;
  options.max_cells = 32;
  options.base_cell_width = 1e-3;
  options.churn_bucket = bucket;
  options.track_members = members;
  return options;
}

void ExpectCoresetsBitwiseEqual(const stream::StreamingCoreset& a,
                                const stream::StreamingCoreset& b) {
  EXPECT_EQ(a.level(), b.level());
  EXPECT_EQ(a.num_points(), b.num_points());
  const auto cells_a = a.ExtractCells();
  const auto cells_b = b.ExtractCells();
  ASSERT_EQ(cells_a.size(), cells_b.size());
  for (size_t c = 0; c < cells_a.size(); ++c) {
    EXPECT_EQ(cells_a[c].min_index, cells_b[c].min_index);
    EXPECT_EQ(cells_a[c].count, cells_b[c].count);
    EXPECT_EQ(cells_a[c].max_spread, cells_b[c].max_spread);
    EXPECT_EQ(cells_a[c].representative, cells_b[c].representative);
  }
  // Same bytes, too: serialization walks cells in min_index order, so
  // equal state must serialize identically (including bucket state).
  std::string image_a;
  std::string image_b;
  a.SerializeTo(&image_a);
  b.SerializeTo(&image_b);
  EXPECT_EQ(image_a, image_b);
}

// Remove leaves the coreset bitwise equal to a fresh build over the
// survivors. Deletes make the level history-dependent, so both sides
// coarsen to the max of the two levels before comparing (the contract
// CoarsenTo documents).
TEST(CoresetChurnTest, RemoveMatchesFreshRebuildOfSurvivors) {
  const size_t kDim = 2;
  const auto points = MakeChurnStream(400, kDim, 11);
  stream::StreamingCoreset incremental(kDim, metric::Norm::kL2,
                                       ChurnOptions(8, /*members=*/true));
  for (const ChurnPoint& p : points) {
    ASSERT_TRUE(incremental.Add(p.index, p.coords.data(), p.spread).ok());
  }
  // Delete every third point, in a scrambled order.
  Rng rng(77);
  std::vector<size_t> victims;
  for (size_t i = 0; i < points.size(); i += 3) victims.push_back(i);
  for (size_t i = victims.size(); i > 1; --i) {
    std::swap(victims[i - 1], victims[rng.Next() % i]);
  }
  for (size_t v : victims) {
    const ChurnPoint& p = points[v];
    ASSERT_TRUE(incremental.Remove(p.index, p.coords.data(), p.spread).ok());
  }
  stream::StreamingCoreset fresh(kDim, metric::Norm::kL2,
                                 ChurnOptions(8, /*members=*/true));
  for (size_t i = 0; i < points.size(); ++i) {
    if (i % 3 == 0) continue;
    const ChurnPoint& p = points[i];
    ASSERT_TRUE(fresh.Add(p.index, p.coords.data(), p.spread).ok());
  }
  const int level = std::max(incremental.level(), fresh.level());
  ASSERT_TRUE(incremental.CoarsenTo(level).ok());
  ASSERT_TRUE(fresh.CoarsenTo(level).ok());
  ExpectCoresetsBitwiseEqual(incremental, fresh);
}

// Remove verifies the replayed point bit-for-bit before touching any
// aggregate — a wrong replay must error, not corrupt silently.
TEST(CoresetChurnTest, RemoveValidatesTheReplayedPoint) {
  const auto points = MakeChurnStream(20, 2, 13);
  stream::StreamingCoreset coreset(2, metric::Norm::kL2,
                                   ChurnOptions(4, /*members=*/true));
  for (const ChurnPoint& p : points) {
    ASSERT_TRUE(coreset.Add(p.index, p.coords.data(), p.spread).ok());
  }
  const ChurnPoint& p = points[5];
  EXPECT_EQ(coreset.Remove(999, p.coords.data(), p.spread).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(coreset.Remove(p.index, p.coords.data(), p.spread + 1e-9).code(),
            StatusCode::kInvalidArgument);
  std::vector<double> wrong = p.coords;
  wrong[0] += 1e-12;
  EXPECT_EQ(coreset.Remove(p.index, wrong.data(), p.spread).code(),
            StatusCode::kInvalidArgument);
  // The failed attempts changed nothing: the true replay still works.
  EXPECT_TRUE(coreset.Remove(p.index, p.coords.data(), p.spread).ok());
  EXPECT_EQ(coreset.num_points(), points.size() - 1);

  stream::StreamingCoreset no_members(2, metric::Norm::kL2,
                                      ChurnOptions(4, /*members=*/false));
  ASSERT_TRUE(no_members.Add(0, points[0].coords.data(), 0.1).ok());
  EXPECT_EQ(no_members.Remove(0, points[0].coords.data(), 0.1).code(),
            StatusCode::kFailedPrecondition);
}

// Expiry is a pure function of the largest watermark applied: per-point,
// batched, and expire-once schedules all land on identical state, and
// a stale (smaller) watermark is an exact no-op.
TEST(CoresetChurnTest, ExpiryIsScheduleInvariant) {
  const size_t kDim = 2;
  const uint64_t kWindow = 64;
  const auto points = MakeChurnStream(300, kDim, 17);
  const auto options = ChurnOptions(8, /*members=*/false);

  stream::StreamingCoreset per_point(kDim, metric::Norm::kL2, options);
  stream::StreamingCoreset batched(kDim, metric::Norm::kL2, options);
  stream::StreamingCoreset at_end(kDim, metric::Norm::kL2, options);
  uint64_t retired_per_point = 0;
  uint64_t retired_batched = 0;
  for (const ChurnPoint& p : points) {
    ASSERT_TRUE(per_point.Add(p.index, p.coords.data(), p.spread).ok());
    ASSERT_TRUE(batched.Add(p.index, p.coords.data(), p.spread).ok());
    ASSERT_TRUE(at_end.Add(p.index, p.coords.data(), p.spread).ok());
    const uint64_t acked = p.index + 1;
    if (acked > kWindow) {
      retired_per_point += *per_point.ExpireBefore(acked - kWindow);
      if (acked % 29 == 0) {  // A coarser, drifting schedule.
        retired_batched += *batched.ExpireBefore(acked - kWindow);
      }
    }
  }
  const uint64_t final_watermark = points.size() - kWindow;
  retired_batched += *batched.ExpireBefore(final_watermark);
  const uint64_t retired_at_end = *at_end.ExpireBefore(final_watermark);
  EXPECT_EQ(retired_per_point, retired_batched);
  EXPECT_EQ(retired_per_point, retired_at_end);
  ExpectCoresetsBitwiseEqual(per_point, batched);
  ExpectCoresetsBitwiseEqual(per_point, at_end);

  // Monotone: re-applying any smaller watermark retires nothing and
  // changes nothing.
  std::string before;
  per_point.SerializeTo(&before);
  EXPECT_EQ(*per_point.ExpireBefore(final_watermark / 2), 0u);
  std::string after;
  per_point.SerializeTo(&after);
  EXPECT_EQ(before, after);

  // Adds below the retired watermark are rejected — they could never
  // be expired again deterministically.
  EXPECT_EQ(per_point.Add(0, points[0].coords.data(), 0.1).code(),
            StatusCode::kInvalidArgument);
}

// Shard pipelines ack disjoint slices with watermark 0 and expire only
// after the final merge: any shard split must land bitwise on the
// single-stream result.
TEST(CoresetChurnTest, ExpiryIsShardSplitInvariant) {
  const size_t kDim = 2;
  const auto points = MakeChurnStream(240, kDim, 23);
  const auto options = ChurnOptions(8, /*members=*/false);
  const uint64_t watermark = 100;

  stream::StreamingCoreset single(kDim, metric::Norm::kL2, options);
  for (const ChurnPoint& p : points) {
    ASSERT_TRUE(single.Add(p.index, p.coords.data(), p.spread).ok());
  }
  ASSERT_TRUE(single.ExpireBefore(watermark).ok());

  for (size_t shards : {2u, 3u, 5u}) {
    std::vector<stream::StreamingCoreset> shard_sets;
    for (size_t s = 0; s < shards; ++s) {
      shard_sets.emplace_back(kDim, metric::Norm::kL2, options);
    }
    for (const ChurnPoint& p : points) {
      ASSERT_TRUE(shard_sets[p.index % shards]
                      .Add(p.index, p.coords.data(), p.spread)
                      .ok());
    }
    stream::StreamingCoreset merged(kDim, metric::Norm::kL2, options);
    for (const stream::StreamingCoreset& shard : shard_sets) {
      ASSERT_TRUE(merged.MergeFrom(shard).ok());
    }
    ASSERT_TRUE(merged.ExpireBefore(watermark).ok());
    const int level = std::max(single.level(), merged.level());
    ASSERT_TRUE(single.CoarsenTo(level).ok());
    ASSERT_TRUE(merged.CoarsenTo(level).ok());
    ExpectCoresetsBitwiseEqual(merged, single);
  }
}

// --- Cost-layer churn trajectories ------------------------------------------

uncertain::UncertainDataset MakeCostDataset(size_t n, size_t dim, size_t z,
                                            uint64_t seed) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kClustered;
  spec.n = n;
  spec.z = z;
  spec.dim = dim;
  spec.k = 4;
  spec.seed = seed;
  return std::move(exper::MakeInstance(spec)).value();
}

cost::ParallelCandidateEvaluator::Options CostOptions(int threads, bool fast) {
  cost::ParallelCandidateEvaluator::Options options;
  options.threads = threads;
  options.incremental_rollover = fast;
  options.kd_prune = fast;
  return options;
}

// Accept the argmin non-identity swap, as in incremental_sweep_test.
void ApplyBestSwap(const std::vector<double>& values,
                   const std::vector<SiteId>& pool,
                   std::vector<SiteId>* centers) {
  double best_value = std::numeric_limits<double>::infinity();
  size_t best_position = 0;
  SiteId best_replacement = metric::kInvalidSite;
  for (size_t p = 0; p < centers->size(); ++p) {
    for (size_t c = 0; c < pool.size(); ++c) {
      if (pool[c] == (*centers)[p]) continue;
      const double value = values[p * pool.size() + c];
      if (value < best_value) {
        best_value = value;
        best_position = p;
        best_replacement = pool[c];
      }
    }
  }
  ASSERT_NE(best_replacement, metric::kInvalidSite);
  (*centers)[best_position] = best_replacement;
}

// Mints a fresh uncertain point (new sites) into the dataset's space.
uncertain::UncertainPoint MakeInsertPoint(metric::EuclideanSpace* space,
                                          size_t dim, size_t z, Rng& rng) {
  std::vector<uncertain::Location> locations;
  const size_t count = 1 + rng.Next() % z;
  std::vector<double> weights(count);
  double total = 0.0;
  for (double& w : weights) {
    w = rng.UniformDouble(0.1, 1.0);
    total += w;
  }
  std::vector<double> coords(dim);
  for (size_t l = 0; l < count; ++l) {
    for (size_t d = 0; d < dim; ++d) {
      coords[d] = rng.UniformDouble(-10.0, 10.0);
    }
    locations.push_back(
        uncertain::Location{space->AddCoords(coords.data()), weights[l] / total});
  }
  return std::move(uncertain::UncertainPoint::Build(std::move(locations)))
      .value();
}

// The tentpole property: a randomized insert/delete/solve trajectory
// through ApplyDatasetEdit matches a fresh full-rebuild evaluator
// bitwise at every round, across dimensions and thread counts — and
// the threads=1 fast run is the cross-thread reference.
TEST(CostChurnTest, ChurnTrajectoriesMatchFullRebuildBitwise) {
  constexpr size_t kRounds = 6;
  uint64_t seed = 9000;
  for (size_t dim : {1u, 2u, 3u, 8u}) {
    ++seed;
    std::vector<std::vector<double>> reference_rounds;  // threads=1 run.
    for (int threads : kThreadCounts) {
      auto dataset = MakeCostDataset(40, dim, 3, seed);
      metric::EuclideanSpace* space = dataset.euclidean();
      ASSERT_NE(space, nullptr);
      const auto sites = dataset.LocationSites();
      auto gonzalez = solver::Gonzalez(dataset.space(), sites, 3);
      ASSERT_TRUE(gonzalez.ok());
      std::vector<SiteId> centers = gonzalez->centers;
      std::vector<SiteId> pool;
      for (size_t i = 0; i < 10; ++i) {
        pool.push_back(sites[(i * 131) % sites.size()]);
      }
      cost::ParallelCandidateEvaluator incremental(CostOptions(threads, true));
      // Same seed for every thread count: the trajectory (inserted
      // points, delete victims) must be identical for the cross-thread
      // comparison to be meaningful.
      Rng rng(seed * 31);
      for (size_t round = 0; round < kRounds; ++round) {
        // Reference: a FRESH evaluator with the incremental paths off —
        // a from-scratch rebuild on the post-edit dataset every round.
        cost::ParallelCandidateEvaluator reference(CostOptions(threads, false));
        auto expected = reference.SwapCostMatrix(dataset, centers, pool);
        auto actual = incremental.SwapCostMatrix(dataset, centers, pool);
        ASSERT_TRUE(expected.ok()) << expected.status();
        ASSERT_TRUE(actual.ok()) << actual.status();
        ASSERT_EQ(actual->size(), expected->size());
        for (size_t v = 0; v < expected->size(); ++v) {
          ASSERT_EQ((*actual)[v], (*expected)[v])
              << "dim=" << dim << " threads=" << threads
              << " round=" << round << " swap=" << v;
        }
        if (threads == 1) {
          reference_rounds.push_back(*actual);
        } else {
          ASSERT_LT(round, reference_rounds.size());
          ASSERT_EQ(*actual, reference_rounds[round])
              << "thread-count variance: dim=" << dim
              << " threads=" << threads << " round=" << round;
        }
        ApplyBestSwap(*actual, pool, &centers);

        // Mutate the dataset: alternate inserts and deletes so the
        // instance keeps churning without shrinking away.
        cost::DatasetEdit edit;
        if (round % 2 == 0) {
          const auto point = MakeInsertPoint(space, dim, 3, rng);
          edit.is_insert = true;
          edit.point = static_cast<uint32_t>(dataset.n());
          edit.location_begin = dataset.total_locations();
          edit.location_end = edit.location_begin + point.num_locations();
          ASSERT_TRUE(dataset.AppendPoint(point).ok());
        } else {
          const size_t victim = rng.Next() % dataset.n();
          edit.is_insert = false;
          edit.point = static_cast<uint32_t>(victim);
          edit.location_begin = dataset.offsets()[victim];
          edit.location_end = dataset.offsets()[victim + 1];
          ASSERT_TRUE(dataset.RemovePoint(victim).ok());
        }
        ASSERT_TRUE(incremental.ApplyDatasetEdit(dataset, edit).ok());
      }
    }
  }
}

// White-box: ApplyDatasetEdit must actually roll the cache over — the
// next SwapCostMatrix call is a rollover HIT, not a rebuild miss.
TEST(CostChurnTest, AppliedEditKeepsTheRolloverCacheHot) {
  auto dataset = MakeCostDataset(30, 2, 2, 4242);
  metric::EuclideanSpace* space = dataset.euclidean();
  ASSERT_NE(space, nullptr);
  const auto sites = dataset.LocationSites();
  auto gonzalez = solver::Gonzalez(dataset.space(), sites, 3);
  ASSERT_TRUE(gonzalez.ok());
  std::vector<SiteId> pool(sites.begin(), sites.begin() + 8);
  obs::Counter* hits = obs::MetricsRegistry::Default().GetCounter(
      "ukc_swap_rollover_total", "Swap-table rollover checks by outcome",
      {{"outcome", "hit"}});
  cost::ParallelCandidateEvaluator evaluator(CostOptions(1, true));
  ASSERT_TRUE(
      evaluator.SwapCostMatrix(dataset, gonzalez->centers, pool).ok());

  Rng rng(5);
  const auto point = MakeInsertPoint(space, 2, 2, rng);
  cost::DatasetEdit edit;
  edit.is_insert = true;
  edit.point = static_cast<uint32_t>(dataset.n());
  edit.location_begin = dataset.total_locations();
  edit.location_end = edit.location_begin + point.num_locations();
  ASSERT_TRUE(dataset.AppendPoint(point).ok());
  ASSERT_TRUE(evaluator.ApplyDatasetEdit(dataset, edit).ok());

  const uint64_t hits_before = hits->Value();
  ASSERT_TRUE(
      evaluator.SwapCostMatrix(dataset, gonzalez->centers, pool).ok());
  EXPECT_EQ(hits->Value(), hits_before + 1)
      << "the edited dataset missed the rollover cache";
}

// An edit against an evaluator with no published state is a no-op, and
// a dataset changed in any OTHER way than the declared edit still
// invalidates the cache (the post-edit fingerprint only matches the
// dataset the edit produced).
TEST(CostChurnTest, EditWithoutStateIsANoOpAndForeignChangesStillMiss) {
  auto dataset = MakeCostDataset(25, 2, 2, 777);
  metric::EuclideanSpace* space = dataset.euclidean();
  ASSERT_NE(space, nullptr);
  const auto sites = dataset.LocationSites();
  auto gonzalez = solver::Gonzalez(dataset.space(), sites, 3);
  ASSERT_TRUE(gonzalez.ok());
  std::vector<SiteId> pool(sites.begin(), sites.begin() + 8);

  // No prior SwapCostMatrix: nothing to roll, and the later call works.
  cost::ParallelCandidateEvaluator cold(CostOptions(1, true));
  Rng rng(6);
  const auto point = MakeInsertPoint(space, 2, 2, rng);
  cost::DatasetEdit edit;
  edit.is_insert = true;
  edit.point = static_cast<uint32_t>(dataset.n());
  edit.location_begin = dataset.total_locations();
  edit.location_end = edit.location_begin + point.num_locations();
  ASSERT_TRUE(dataset.AppendPoint(point).ok());
  ASSERT_TRUE(cold.ApplyDatasetEdit(dataset, edit).ok());
  auto cold_result = cold.SwapCostMatrix(dataset, gonzalez->centers, pool);
  ASSERT_TRUE(cold_result.ok()) << cold_result.status();

  // Warm the cache, then mutate WITHOUT declaring the edit: the next
  // call must agree with a fresh evaluator (fingerprint miss, full
  // rebuild), not serve stale rolled tables.
  cost::ParallelCandidateEvaluator warm(CostOptions(1, true));
  ASSERT_TRUE(warm.SwapCostMatrix(dataset, gonzalez->centers, pool).ok());
  const size_t victim = 3;
  ASSERT_TRUE(dataset.RemovePoint(victim).ok());
  cost::ParallelCandidateEvaluator fresh(CostOptions(1, false));
  auto expected = fresh.SwapCostMatrix(dataset, gonzalez->centers, pool);
  auto actual = warm.SwapCostMatrix(dataset, gonzalez->centers, pool);
  ASSERT_TRUE(expected.ok()) << expected.status();
  ASSERT_TRUE(actual.ok()) << actual.status();
  EXPECT_EQ(*actual, *expected);
}

// --- Serve churn ------------------------------------------------------------

// One deterministic single-point batch (deletes replay these).
uncertain::UncertainPointBatch MakeOnePointBatch(Rng& rng, size_t dim) {
  uncertain::UncertainPointBatch batch;
  batch.dim = dim;
  batch.norm = metric::Norm::kL2;
  batch.offsets.push_back(0);
  const size_t locations = 1 + rng.Next() % 3;
  std::vector<double> weights(locations);
  double total = 0.0;
  for (double& w : weights) {
    w = rng.UniformDouble(0.1, 1.0);
    total += w;
  }
  for (size_t l = 0; l < locations; ++l) {
    for (size_t d = 0; d < dim; ++d) {
      batch.coords.push_back(rng.UniformDouble(-10.0, 10.0));
    }
    batch.probabilities.push_back(weights[l] / total);
  }
  batch.offsets.push_back(locations);
  return batch;
}

// Concatenates single-point batches into one multi-point batch.
uncertain::UncertainPointBatch ConcatBatches(
    const std::vector<uncertain::UncertainPointBatch>& parts, size_t begin,
    size_t end) {
  uncertain::UncertainPointBatch batch;
  batch.dim = parts[begin].dim;
  batch.norm = parts[begin].norm;
  batch.offsets.push_back(0);
  for (size_t i = begin; i < end; ++i) {
    batch.coords.insert(batch.coords.end(), parts[i].coords.begin(),
                        parts[i].coords.end());
    batch.probabilities.insert(batch.probabilities.end(),
                               parts[i].probabilities.begin(),
                               parts[i].probabilities.end());
    batch.offsets.push_back(batch.offsets.back() + parts[i].offsets.back());
  }
  return batch;
}

TenantConfig WindowedConfig(uint64_t window, bool deletes) {
  TenantConfig config;
  config.dim = 2;
  config.norm = metric::Norm::kL2;
  config.k = 3;
  config.coreset.max_cells = 32;
  config.coreset.base_cell_width = 1e-3;
  config.snapshot_every_appends = 0;
  config.window_points = window;
  config.allow_deletes = deletes;
  return config;
}

void ExpectTenantCellsEqual(const Tenant& a, const Tenant& b) {
  const auto cells_a = a.ExtractCells();
  const auto cells_b = b.ExtractCells();
  ASSERT_EQ(cells_a.size(), cells_b.size());
  for (size_t c = 0; c < cells_a.size(); ++c) {
    EXPECT_EQ(cells_a[c].min_index, cells_b[c].min_index);
    EXPECT_EQ(cells_a[c].count, cells_b[c].count);
    EXPECT_EQ(cells_a[c].max_spread, cells_b[c].max_spread);
    EXPECT_EQ(cells_a[c].representative, cells_b[c].representative);
  }
}

// Window expiry runs per acked POINT, so how the stream is cut into
// batches cannot change the coreset — only the op count (epoch) moves.
TEST(ServeChurnTest, WindowedAppendsAreBatchSplitInvariant) {
  const size_t kPoints = 150;
  std::vector<uncertain::UncertainPointBatch> parts;
  Rng rng(321);
  for (size_t i = 0; i < kPoints; ++i) parts.push_back(MakeOnePointBatch(rng, 2));

  Tenant one_by_one("t", WindowedConfig(/*window=*/40, /*deletes=*/false));
  for (const auto& part : parts) {
    ASSERT_TRUE(one_by_one.Append(part).ok());
  }
  Tenant chunked("t", WindowedConfig(/*window=*/40, /*deletes=*/false));
  for (size_t begin = 0; begin < kPoints;) {
    const size_t end = std::min(kPoints, begin + 7);
    ASSERT_TRUE(chunked.Append(ConcatBatches(parts, begin, end)).ok());
    begin = end;
  }
  Tenant single_batch("t", WindowedConfig(/*window=*/40, /*deletes=*/false));
  ASSERT_TRUE(single_batch.Append(ConcatBatches(parts, 0, kPoints)).ok());

  EXPECT_GT(one_by_one.expired_points(), 0u);
  EXPECT_EQ(one_by_one.expired_points(), chunked.expired_points());
  EXPECT_EQ(one_by_one.expired_points(), single_batch.expired_points());
  EXPECT_EQ(one_by_one.next_index(), chunked.next_index());
  ExpectTenantCellsEqual(one_by_one, chunked);
  ExpectTenantCellsEqual(one_by_one, single_batch);
}

// Two registries acking the same append/delete sequence stay bitwise
// identical: same epochs, same content fingerprint, same cells.
TEST(ServeChurnTest, DeleteReplicasStayBitwiseIdentical) {
  serve::RegistryOptions options;
  options.queue_capacity = 512;
  options.threads = 1;
  obs::MetricsRegistry metrics_a;
  obs::MetricsRegistry metrics_b;
  options.metrics = &metrics_a;
  TenantRegistry a(options);
  options.metrics = &metrics_b;
  TenantRegistry b(options);
  ASSERT_TRUE(a.CreateTenant("t", WindowedConfig(0, /*deletes=*/true)).ok());
  ASSERT_TRUE(b.CreateTenant("t", WindowedConfig(0, /*deletes=*/true)).ok());

  std::vector<uncertain::UncertainPointBatch> parts;
  Rng rng(55);
  for (size_t i = 0; i < 60; ++i) parts.push_back(MakeOnePointBatch(rng, 2));
  // Interleaved ops: appends with a delete of an earlier index every
  // fourth op. Registry A drains every op, registry B only at the end —
  // the queue preserves submission order either way.
  size_t appended = 0;
  std::vector<uint64_t> deleted;
  for (size_t op = 0; op < parts.size(); ++op) {
    ASSERT_TRUE(a.SubmitAppend("t", parts[op]).ok());
    ASSERT_TRUE(b.SubmitAppend("t", parts[op]).ok());
    ++appended;
    a.Drain();
    if (op % 4 == 3) {
      const uint64_t index = op / 2;  // An already-appended index.
      if (std::find(deleted.begin(), deleted.end(), index) == deleted.end()) {
        deleted.push_back(index);
        ASSERT_TRUE(a.SubmitDelete("t", index, parts[index]).ok());
        ASSERT_TRUE(b.SubmitDelete("t", index, parts[index]).ok());
        a.Drain();
      }
    }
  }
  const auto drained = b.Drain();
  EXPECT_EQ(drained.applied, appended + deleted.size());
  Tenant* ta = a.FindTenant("t");
  Tenant* tb = b.FindTenant("t");
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  EXPECT_EQ(ta->epoch(), tb->epoch());
  EXPECT_EQ(ta->next_index(), tb->next_index());
  EXPECT_EQ(ta->content_fingerprint(), tb->content_fingerprint());
  ExpectTenantCellsEqual(*ta, *tb);
  EXPECT_EQ(a.stats().deletes_applied, deleted.size());
  EXPECT_EQ(b.stats().deletes_applied, deleted.size());
}

// The serve.delete site fires before any mutation: an injected failure
// is counted and leaves the tenant bitwise unchanged.
TEST(ServeChurnTest, DeleteFaultIsAllOrNothing) {
  serve::RegistryOptions options;
  options.threads = 1;
  options.degrade_after_failures = 100;  // Keep the watchdog out of the way.
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  TenantRegistry registry(options);
  ASSERT_TRUE(
      registry.CreateTenant("t", WindowedConfig(0, /*deletes=*/true)).ok());
  std::vector<uncertain::UncertainPointBatch> parts;
  Rng rng(91);
  for (size_t i = 0; i < 10; ++i) {
    parts.push_back(MakeOnePointBatch(rng, 2));
    ASSERT_TRUE(registry.SubmitAppend("t", parts.back()).ok());
  }
  registry.Drain();
  Tenant* tenant = registry.FindTenant("t");
  ASSERT_NE(tenant, nullptr);
  const uint64_t epoch = tenant->epoch();
  const uint64_t fingerprint = tenant->content_fingerprint();
  const auto cells = tenant->ExtractCells();
  {
    FaultPlan plan;
    plan.rules.push_back(
        FaultRule{"serve.delete", {0}, 0.0, StatusCode::kInternal, 0});
    ScopedFaultInjection scope(plan);
    ASSERT_TRUE(registry.SubmitDelete("t", 4, parts[4]).ok());
    const auto result = registry.Drain();
    EXPECT_EQ(result.failed, 1u);
  }
  EXPECT_EQ(registry.stats().delete_failures, 1u);
  EXPECT_EQ(tenant->epoch(), epoch);
  EXPECT_EQ(tenant->content_fingerprint(), fingerprint);
  const auto cells_after = tenant->ExtractCells();
  ASSERT_EQ(cells_after.size(), cells.size());
  for (size_t c = 0; c < cells.size(); ++c) {
    EXPECT_EQ(cells_after[c].representative, cells[c].representative);
  }
  // The boundary cleared: the same delete now applies.
  ASSERT_TRUE(registry.SubmitDelete("t", 4, parts[4]).ok());
  EXPECT_EQ(registry.Drain().applied, 1u);
  EXPECT_EQ(tenant->epoch(), epoch + 1);
}

// Append + expiry is one all-or-nothing unit: an injected stream.expire
// fault fails the whole append with nothing acked and nothing expired.
TEST(ServeChurnTest, ExpireFaultIsAtomicWithItsAppend) {
  Tenant tenant("t", WindowedConfig(/*window=*/8, /*deletes=*/false));
  Rng rng(47);
  std::vector<uncertain::UncertainPointBatch> parts;
  for (size_t i = 0; i < 20; ++i) {
    parts.push_back(MakeOnePointBatch(rng, 2));
    ASSERT_TRUE(tenant.Append(parts.back()).ok());
  }
  const uint64_t epoch = tenant.epoch();
  const uint64_t next_index = tenant.next_index();
  const uint64_t expired = tenant.expired_points();
  const uint64_t fingerprint = tenant.content_fingerprint();
  {
    FaultPlan plan;
    plan.rules.push_back(
        FaultRule{"stream.expire", {0}, 0.0, StatusCode::kInternal, 0});
    ScopedFaultInjection scope(plan);
    const auto next = MakeOnePointBatch(rng, 2);
    EXPECT_EQ(tenant.Append(next).code(), StatusCode::kInternal);
  }
  EXPECT_EQ(tenant.epoch(), epoch);
  EXPECT_EQ(tenant.next_index(), next_index);
  EXPECT_EQ(tenant.expired_points(), expired);
  EXPECT_EQ(tenant.content_fingerprint(), fingerprint);
}

// Deletes are an explicit opt-in; submitting one anywhere else is a
// counted kFailedPrecondition, not a silent drop.
TEST(ServeChurnTest, DeleteRequiresOptIn) {
  serve::RegistryOptions options;
  options.threads = 1;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  TenantRegistry registry(options);
  ASSERT_TRUE(
      registry.CreateTenant("t", WindowedConfig(0, /*deletes=*/false)).ok());
  Rng rng(3);
  const auto part = MakeOnePointBatch(rng, 2);
  ASSERT_TRUE(registry.SubmitAppend("t", part).ok());
  registry.Drain();
  EXPECT_EQ(registry.SubmitDelete("t", 0, part).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.stats().deletes_refused, 1u);
  EXPECT_EQ(registry.SubmitDelete("missing", 0, part).code(),
            StatusCode::kNotFound);
}

// A windowed tenant's config fingerprint differs from an unbounded
// one's: a windowed snapshot must never restore into (or be restored
// from) a tenant that would keep every point.
TEST(ServeChurnTest, WindowConfigIsFingerprinted) {
  Tenant unbounded("t", WindowedConfig(0, false));
  Tenant windowed("t", WindowedConfig(64, false));
  Tenant deletes("t", WindowedConfig(0, true));
  EXPECT_NE(unbounded.ConfigFingerprint(), windowed.ConfigFingerprint());
  EXPECT_NE(unbounded.ConfigFingerprint(), deletes.ConfigFingerprint());
  EXPECT_NE(windowed.ConfigFingerprint(), deletes.ConfigFingerprint());
  // The effective config is visible: deletes forced member tracking.
  EXPECT_TRUE(deletes.config().coreset.track_members);
  EXPECT_GT(deletes.config().coreset.churn_bucket, 0u);
  EXPECT_EQ(windowed.config().coreset.churn_bucket, 64u / 16u);
}

// --- Checkpoint versioning --------------------------------------------------

// Serializes a sidecar in the RETIRED v1 layout (no window fields) with
// a valid checksum, exactly as the pre-churn writer produced it.
std::string SerializeV1Checkpoint() {
  std::string buffer;
  const char magic[8] = {'u', 'k', 'c', 'c', 'k', 'p', 't', '\0'};
  buffer.append(magic, sizeof(magic));
  const uint32_t version = 1;
  buffer.append(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t zeros[5] = {0, 0, 0, 0, 0};  // Fingerprints + cursor.
  buffer.append(reinterpret_cast<const char*>(zeros), sizeof(zeros));
  const uint8_t has_offset = 0;
  buffer.append(reinterpret_cast<const char*>(&has_offset), 1);
  const uint64_t tail[3] = {0, 0, 0};  // Offset, window hash, image size.
  buffer.append(reinterpret_cast<const char*>(tail), sizeof(tail));
  const uint64_t checksum = HashBytes(kHashSeed, buffer.data(), buffer.size());
  buffer.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return buffer;
}

// A v1 sidecar — even with a valid checksum — is rejected wholesale at
// load; its fields are never interpreted.
TEST(CheckpointVersionTest, V1SidecarIsRejectedAtLoad) {
  const std::string path = TempPath("v1_sidecar.ckpt");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::string bytes = SerializeV1Checkpoint();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = stream::LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("unknown version"),
            std::string::npos)
      << loaded.status();
  std::remove(path.c_str());
}

// The ingest layer degrades the rejected sidecar to a counted full
// re-ingest that still lands on the bitwise-correct coreset.
TEST(CheckpointVersionTest, V1SidecarForcesCountedFullReingest) {
  const std::string checkpoint_path = TempPath("v1_reingest.ckpt");
  std::remove(checkpoint_path.c_str());
  const auto points = MakeChurnStream(120, 2, 29);
  const auto make_factory_source = [&]() {
    size_t cursor = 0;
    return [&points, cursor]() mutable
           -> Result<std::optional<uncertain::UncertainPointBatch>> {
      if (cursor >= points.size()) return std::optional<uncertain::UncertainPointBatch>();
      uncertain::UncertainPointBatch batch;
      batch.dim = 2;
      batch.norm = metric::Norm::kL2;
      batch.offsets = {0, 1};
      batch.coords = points[cursor].coords;
      batch.probabilities = {1.0};
      ++cursor;
      return std::optional<uncertain::UncertainPointBatch>(std::move(batch));
    };
  };
  (void)make_factory_source;

  stream::IngestOptions options;
  options.shards = 2;
  options.checkpoint.path = checkpoint_path;
  options.checkpoint.every_n_batches = 4;
  options.checkpoint.sync = false;
  options.coreset = ChurnOptions(0, false);

  // Build the stream as a dataset file so the resumable factory idiom
  // from the crash-recovery suite applies directly.
  std::vector<uncertain::UncertainPoint> dataset_points;
  auto space = std::make_shared<metric::EuclideanSpace>(2, metric::Norm::kL2);
  for (const ChurnPoint& p : points) {
    dataset_points.push_back(
        std::move(uncertain::UncertainPoint::Build(
                      {uncertain::Location{space->AddCoords(p.coords.data()),
                                           1.0}}))
            .value());
  }
  auto dataset =
      std::move(uncertain::UncertainDataset::Build(space,
                                                   std::move(dataset_points)))
          .value();
  const auto factory = stream::ResumableDatasetFactory(&dataset, 16);
  ThreadPool pool(2);

  stream::IngestStats first_stats;
  auto first = stream::IngestCoreset(2, factory, options, &pool, &first_stats);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first_stats.checkpoint_rejected);
  const auto baseline = first->ExtractCells();

  // Replace the (valid v2) sidecar with the retired v1 layout.
  {
    std::ofstream out(checkpoint_path, std::ios::binary | std::ios::trunc);
    const std::string bytes = SerializeV1Checkpoint();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  stream::IngestStats second_stats;
  auto second = stream::IngestCoreset(2, factory, options, &pool, &second_stats);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second_stats.checkpoint_rejected);
  EXPECT_FALSE(second_stats.restored);
  const auto recovered = second->ExtractCells();
  ASSERT_EQ(recovered.size(), baseline.size());
  for (size_t c = 0; c < baseline.size(); ++c) {
    EXPECT_EQ(recovered[c].min_index, baseline[c].min_index);
    EXPECT_EQ(recovered[c].count, baseline[c].count);
    EXPECT_EQ(recovered[c].max_spread, baseline[c].max_spread);
    EXPECT_EQ(recovered[c].representative, baseline[c].representative);
  }
  std::remove(checkpoint_path.c_str());
}

}  // namespace
}  // namespace ukc
