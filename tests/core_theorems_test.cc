// Executable versions of the paper's Theorems 2.1–2.7: each test runs
// the corresponding pipeline configuration and checks the certified
// factor against a reference optimum.
//
// Reference optima: exact enumeration over a dense candidate set (the
// true optimum in finite metrics, where centers must be sites of the
// space; an upper bound on the Euclidean optimum, which only makes the
// checks *stricter* in the denominator... see EXPERIMENTS.md for the
// full discussion). All checks are implied by the theorems, so a
// failure is a real bug.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_tiny.h"
#include "core/line_solver.h"
#include "core/surrogates.h"
#include "core/uncertain_kcenter.h"
#include "cost/expected_cost.h"
#include "uncertain/generators.h"

namespace ukc {
namespace core {
namespace {

using metric::SiteId;
using uncertain::UncertainDataset;

UncertainDataset TinyEuclidean(uint64_t seed, size_t n = 5, size_t z = 3) {
  uncertain::EuclideanInstanceOptions options;
  options.n = n;
  options.z = z;
  options.dim = 2;
  options.spread = 0.8;
  options.seed = seed;
  return std::move(uncertain::GenerateClusteredInstance(options, 2)).value();
}

UncertainDataset TinyMetric(uint64_t seed, size_t n = 5, size_t z = 3) {
  auto graph = uncertain::GenerateGridGraph(4, 4, 0.5, 2.0, seed * 7 + 5);
  return std::move(uncertain::GenerateMetricInstance(
                       *graph, n, z, 2.0,
                       uncertain::ProbabilityShape::kRandom, seed))
      .value();
}

class TheoremSweep : public ::testing::TestWithParam<int> {};

// Theorem 2.1: Ecost(P̄_1) <= 2 Ecost(c*) for the 1-center problem in a
// Euclidean space. The reference c* is refined by convex compass search,
// whose value upper-bounds the true optimum — making the check valid.
TEST_P(TheoremSweep, Theorem21ExpectedPointIsTwoApproxOneCenter) {
  UncertainDataset dataset =
      TinyEuclidean(static_cast<uint64_t>(GetParam()) + 1000, 6);
  auto p_bar = ExpectedPointOneCenter(&dataset, 0);
  ASSERT_TRUE(p_bar.ok());
  auto algorithm_cost = cost::ExactUnassignedCost(dataset, {*p_bar});
  ASSERT_TRUE(algorithm_cost.ok());

  // Reference: best candidate site, refined continuously.
  auto candidates = DefaultCandidateSites(&dataset);
  ASSERT_TRUE(candidates.ok());
  double best = 1e300;
  SiteId best_site = (*candidates)[0];
  for (SiteId c : *candidates) {
    auto value = cost::ExactUnassignedCost(dataset, {c});
    ASSERT_TRUE(value.ok());
    if (*value < best) {
      best = *value;
      best_site = c;
    }
  }
  auto refined = RefineOneCenterContinuous(
      dataset, dataset.euclidean()->point(best_site), /*initial_step=*/1.0);
  ASSERT_TRUE(refined.ok());
  auto refined_value = OneCenterObjectiveAt(dataset, *refined);
  ASSERT_TRUE(refined_value.ok());
  const double reference = std::min(best, *refined_value);

  EXPECT_LE(*algorithm_cost, 2.0 * reference + 1e-9);
}

// Theorem 2.2 (ED): the P̄ pipeline with an f-approximate certain
// solver satisfies Ecost_ED <= (4+f) * opt_restricted_ED.
TEST_P(TheoremSweep, Theorem22ExpectedDistanceBound) {
  UncertainDataset dataset =
      TinyEuclidean(static_cast<uint64_t>(GetParam()) + 2000);
  UncertainKCenterOptions options;
  options.k = 2;
  options.rule = cost::AssignmentRule::kExpectedDistance;
  options.certain.kind = solver::CertainSolverKind::kExact;  // f = 1.
  auto solution = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(solution.ok());

  auto candidates = DefaultCandidateSites(&dataset);
  ASSERT_TRUE(candidates.ok());
  auto reference = ExactRestrictedAssigned(
      &dataset, 2, cost::AssignmentRule::kExpectedDistance, *candidates);
  ASSERT_TRUE(reference.ok());
  EXPECT_LE(solution->expected_cost,
            (4.0 + 1.0) * reference->expected_cost + 1e-9);
}

// Theorem 2.2 (EP): Ecost_EP <= (2+f) * opt_restricted_EP.
TEST_P(TheoremSweep, Theorem22ExpectedPointBound) {
  UncertainDataset dataset =
      TinyEuclidean(static_cast<uint64_t>(GetParam()) + 3000);
  UncertainKCenterOptions options;
  options.k = 2;
  options.rule = cost::AssignmentRule::kExpectedPoint;
  options.certain.kind = solver::CertainSolverKind::kExact;
  auto solution = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(solution.ok());

  auto candidates = DefaultCandidateSites(&dataset);
  ASSERT_TRUE(candidates.ok());
  auto reference = ExactRestrictedAssigned(
      &dataset, 2, cost::AssignmentRule::kExpectedPoint, *candidates);
  ASSERT_TRUE(reference.ok());
  EXPECT_LE(solution->expected_cost,
            (2.0 + 1.0) * reference->expected_cost + 1e-9);
}

// Theorem 2.3: the optimal restricted-ED cost is at most 3x the optimal
// unrestricted cost. Checked exactly in a finite metric, where the
// candidate set (all sites) makes both enumerations the true optima.
TEST_P(TheoremSweep, Theorem23RestrictedEDWithinThreeOfUnrestricted) {
  UncertainDataset dataset =
      TinyMetric(static_cast<uint64_t>(GetParam()) + 4000, 4);
  auto candidates = DefaultCandidateSites(&dataset);
  ASSERT_TRUE(candidates.ok());
  auto restricted = ExactRestrictedAssigned(
      &dataset, 2, cost::AssignmentRule::kExpectedDistance, *candidates);
  auto unrestricted = ExactUnrestrictedAssigned(&dataset, 2, *candidates);
  ASSERT_TRUE(restricted.ok());
  ASSERT_TRUE(unrestricted.ok());
  EXPECT_GE(restricted->expected_cost, unrestricted->expected_cost - 1e-9);
  EXPECT_LE(restricted->expected_cost,
            3.0 * unrestricted->expected_cost + 1e-9);
}

// Theorems 2.4 / 2.5: Euclidean unrestricted bounds, (4+f) for ED and
// (2+f) for EP, against the exact unrestricted optimum over the dense
// candidate set.
TEST_P(TheoremSweep, Theorem24And25UnrestrictedBounds) {
  for (auto rule : {cost::AssignmentRule::kExpectedDistance,
                    cost::AssignmentRule::kExpectedPoint}) {
    UncertainDataset dataset =
        TinyEuclidean(static_cast<uint64_t>(GetParam()) + 5000, 4);
    UncertainKCenterOptions options;
    options.k = 2;
    options.rule = rule;
    options.certain.kind = solver::CertainSolverKind::kExact;
    auto solution = SolveUncertainKCenter(&dataset, options);
    ASSERT_TRUE(solution.ok());

    auto candidates = DefaultCandidateSites(&dataset);
    ASSERT_TRUE(candidates.ok());
    auto reference = ExactUnrestrictedAssigned(&dataset, 2, *candidates);
    ASSERT_TRUE(reference.ok());
    const double factor =
        rule == cost::AssignmentRule::kExpectedDistance ? 5.0 : 3.0;
    EXPECT_LE(solution->expected_cost,
              factor * reference->expected_cost + 1e-9)
        << cost::AssignmentRuleToString(rule);
  }
}

// Theorems 2.6 / 2.7: metric-space unrestricted bounds with the P̃
// surrogate, (5+2f) for ED and (3+2f) for OC, against the exact
// unrestricted optimum (true optimum in a finite metric).
TEST_P(TheoremSweep, Theorem26And27MetricBounds) {
  for (auto rule : {cost::AssignmentRule::kExpectedDistance,
                    cost::AssignmentRule::kOneCenter}) {
    UncertainDataset dataset =
        TinyMetric(static_cast<uint64_t>(GetParam()) + 6000, 4);
    UncertainKCenterOptions options;
    options.k = 2;
    options.rule = rule;
    options.surrogate = SurrogateKind::kOneCenter;
    options.certain.kind = solver::CertainSolverKind::kExact;
    auto solution = SolveUncertainKCenter(&dataset, options);
    ASSERT_TRUE(solution.ok());

    auto candidates = DefaultCandidateSites(&dataset);
    ASSERT_TRUE(candidates.ok());
    auto reference = ExactUnrestrictedAssigned(&dataset, 2, *candidates);
    ASSERT_TRUE(reference.ok());
    const double factor =
        rule == cost::AssignmentRule::kExpectedDistance ? 7.0 : 5.0;
    EXPECT_LE(solution->expected_cost,
              factor * reference->expected_cost + 1e-9)
        << cost::AssignmentRuleToString(rule);
  }
}

// Gonzalez-plugged versions (f = 2): Table 1's factors 6 and 4.
TEST_P(TheoremSweep, GonzalezPluggedFactors) {
  for (auto [rule, factor] :
       {std::pair{cost::AssignmentRule::kExpectedDistance, 6.0},
        std::pair{cost::AssignmentRule::kExpectedPoint, 4.0}}) {
    UncertainDataset dataset =
        TinyEuclidean(static_cast<uint64_t>(GetParam()) + 7000, 4);
    UncertainKCenterOptions options;
    options.k = 2;
    options.rule = rule;
    options.certain.kind = solver::CertainSolverKind::kGonzalez;
    auto solution = SolveUncertainKCenter(&dataset, options);
    ASSERT_TRUE(solution.ok());
    auto candidates = DefaultCandidateSites(&dataset);
    ASSERT_TRUE(candidates.ok());
    auto reference = ExactRestrictedAssigned(&dataset, 2, rule, *candidates);
    ASSERT_TRUE(reference.ok());
    EXPECT_LE(solution->expected_cost, factor * reference->expected_cost + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremSweep, ::testing::Range(0, 6));

// The R^1 chain (Table 1 row 8): the line solver's restricted-ED cost is
// within 3x of the exact unrestricted optimum (Theorem 2.3), since the
// solver optimizes the restricted-ED objective (numerically) exactly.
class LineChainSweep : public ::testing::TestWithParam<int> {};

TEST_P(LineChainSweep, LineSolverWithinThreeOfUnrestricted) {
  auto dataset = uncertain::GenerateLineInstance(
      5, 3, 20.0, 2.0, uncertain::ProbabilityShape::kRandom,
      static_cast<uint64_t>(GetParam()) + 8000);
  ASSERT_TRUE(dataset.ok());
  LineSolverOptions options;
  options.k = 2;
  auto solution = SolveLineKCenterED(&dataset.value(), options);
  ASSERT_TRUE(solution.ok());

  auto candidates = DefaultCandidateSites(&dataset.value());
  ASSERT_TRUE(candidates.ok());
  auto reference = ExactUnrestrictedAssigned(&dataset.value(), 2, *candidates);
  ASSERT_TRUE(reference.ok());
  EXPECT_LE(solution->expected_cost, 3.0 * reference->expected_cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineChainSweep, ::testing::Range(0, 6));


// The grid (1+eps) plug: Theorem 2.2's (4+f) factor with f = 1+eps
// certified end to end by a genuine (1+eps) solver.
class GridPlugSweep : public ::testing::TestWithParam<int> {};

TEST_P(GridPlugSweep, Theorem22WithGridEpsilonPlug) {
  const double eps = 0.25;
  UncertainDataset dataset =
      TinyEuclidean(static_cast<uint64_t>(GetParam()) + 9000);
  UncertainKCenterOptions options;
  options.k = 2;
  options.rule = cost::AssignmentRule::kExpectedDistance;
  options.certain.kind = solver::CertainSolverKind::kGridEpsilon;
  options.certain.epsilon = eps;
  auto solution = SolveUncertainKCenter(&dataset, options);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_DOUBLE_EQ(solution->certain_factor, 1.0 + eps);

  auto candidates = DefaultCandidateSites(&dataset);
  ASSERT_TRUE(candidates.ok());
  auto reference = ExactRestrictedAssigned(
      &dataset, 2, cost::AssignmentRule::kExpectedDistance, *candidates);
  ASSERT_TRUE(reference.ok());
  EXPECT_LE(solution->expected_cost,
            (4.0 + 1.0 + eps) * reference->expected_cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridPlugSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace core
}  // namespace ukc
