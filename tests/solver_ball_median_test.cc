// Tests for the continuous 1-center substrate: circumscribed balls,
// Welzl's exact minimum enclosing ball, Bădoiu–Clarkson, the exact
// partition k-center, and the weighted geometric median.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geometry/point.h"
#include "metric/euclidean_space.h"
#include "solver/brute_force.h"
#include "solver/enclosing_ball.h"
#include "solver/geometric_median.h"
#include "solver/partition_exact.h"

namespace ukc {
namespace solver {
namespace {

using geometry::Point;

std::vector<Point> RandomPoints(size_t n, size_t dim, uint64_t seed,
                                double scale = 10.0) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point p(dim);
    for (size_t a = 0; a < dim; ++a) p[a] = rng.UniformDouble(0.0, scale);
    points.push_back(std::move(p));
  }
  return points;
}

// --- CircumscribedBall ---

TEST(CircumscribedBallTest, SinglePoint) {
  auto ball = CircumscribedBall({Point{1.0, 2.0}});
  ASSERT_TRUE(ball.ok());
  EXPECT_EQ(ball->center, (Point{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(ball->radius, 0.0);
}

TEST(CircumscribedBallTest, TwoPointsMidpoint) {
  auto ball = CircumscribedBall({Point{0.0, 0.0}, Point{2.0, 0.0}});
  ASSERT_TRUE(ball.ok());
  EXPECT_EQ(ball->center, (Point{1.0, 0.0}));
  EXPECT_DOUBLE_EQ(ball->radius, 1.0);
}

TEST(CircumscribedBallTest, RightTriangleHypotenuse) {
  // Circumcenter of a right triangle is the hypotenuse midpoint.
  auto ball = CircumscribedBall(
      {Point{0.0, 0.0}, Point{4.0, 0.0}, Point{0.0, 3.0}});
  ASSERT_TRUE(ball.ok());
  EXPECT_NEAR(ball->center[0], 2.0, 1e-9);
  EXPECT_NEAR(ball->center[1], 1.5, 1e-9);
  EXPECT_NEAR(ball->radius, 2.5, 1e-9);
}

TEST(CircumscribedBallTest, EquidistantFromAllSupport) {
  Rng rng(1);
  for (size_t dim : {2u, 3u, 5u}) {
    const auto support = RandomPoints(dim + 1, dim, 100 + dim);
    auto ball = CircumscribedBall(support);
    ASSERT_TRUE(ball.ok());
    for (const Point& p : support) {
      EXPECT_NEAR(geometry::Distance(ball->center, p), ball->radius, 1e-6);
    }
  }
}

TEST(CircumscribedBallTest, RejectsDegenerateSupport) {
  // Three collinear points have no circumscribed circle.
  auto ball = CircumscribedBall(
      {Point{0.0, 0.0}, Point{1.0, 0.0}, Point{2.0, 0.0}});
  EXPECT_FALSE(ball.ok());
  EXPECT_FALSE(CircumscribedBall({}).ok());
  EXPECT_FALSE(
      CircumscribedBall({Point{0.0}, Point{1.0}, Point{2.0}}).ok());  // > d+1.
}

// --- Welzl ---

TEST(WelzlTest, RejectsBadInput) {
  Rng rng(2);
  EXPECT_FALSE(WelzlMinBall({}, rng).ok());
  EXPECT_FALSE(WelzlMinBall({Point{0.0}, Point{0.0, 1.0}}, rng).ok());
}

TEST(WelzlTest, SinglePoint) {
  Rng rng(3);
  auto ball = WelzlMinBall({Point{5.0, 5.0}}, rng);
  ASSERT_TRUE(ball.ok());
  EXPECT_DOUBLE_EQ(ball->radius, 0.0);
}

TEST(WelzlTest, TwoPoints) {
  Rng rng(4);
  auto ball = WelzlMinBall({Point{0.0, 0.0}, Point{0.0, 6.0}}, rng);
  ASSERT_TRUE(ball.ok());
  EXPECT_NEAR(ball->radius, 3.0, 1e-9);
  EXPECT_NEAR(ball->center[1], 3.0, 1e-9);
}

TEST(WelzlTest, InteriorPointsDoNotMatter) {
  Rng rng(5);
  std::vector<Point> points = {Point{0.0, 0.0}, Point{10.0, 0.0}};
  for (int i = 1; i < 10; ++i) {
    points.push_back(Point{static_cast<double>(i), 0.1});
  }
  auto ball = WelzlMinBall(points, rng);
  ASSERT_TRUE(ball.ok());
  EXPECT_NEAR(ball->radius, 5.0, 1e-6);
}

TEST(WelzlTest, ObtuseTriangleUsesLongestEdge) {
  Rng rng(6);
  auto ball = WelzlMinBall(
      {Point{0.0, 0.0}, Point{10.0, 0.0}, Point{5.0, 0.5}}, rng);
  ASSERT_TRUE(ball.ok());
  EXPECT_NEAR(ball->radius, 5.0, 1e-9);  // Diametral pair dominates.
}

TEST(WelzlTest, ContainsAllPointsAndIsMinimal) {
  for (uint64_t seed = 10; seed < 20; ++seed) {
    for (size_t dim : {1u, 2u, 3u, 4u}) {
      Rng rng(seed);
      const auto points = RandomPoints(40, dim, seed * 13 + dim);
      auto ball = WelzlMinBall(points, rng);
      ASSERT_TRUE(ball.ok());
      double farthest = 0.0;
      for (const Point& p : points) {
        farthest =
            std::max(farthest, geometry::Distance(ball->center, p));
      }
      // Containment (radius equals the farthest distance).
      EXPECT_NEAR(ball->radius, farthest, 1e-7);
      // Minimality via a universal lower bound: no enclosing ball can be
      // smaller than half the diameter.
      double diameter = 0.0;
      for (size_t i = 0; i < points.size(); ++i) {
        for (size_t j = i + 1; j < points.size(); ++j) {
          diameter = std::max(diameter,
                              geometry::Distance(points[i], points[j]));
        }
      }
      EXPECT_GE(ball->radius, diameter / 2.0 - 1e-9);
    }
  }
}

TEST(WelzlTest, DeterministicGivenSeedAndAgreesAcrossShuffles) {
  const auto points = RandomPoints(60, 2, 777);
  Rng rng_a(1);
  Rng rng_b(2);
  auto ball_a = WelzlMinBall(points, rng_a);
  auto ball_b = WelzlMinBall(points, rng_b);
  ASSERT_TRUE(ball_a.ok());
  ASSERT_TRUE(ball_b.ok());
  // The minimum enclosing ball is unique: different shuffles agree.
  EXPECT_NEAR(ball_a->radius, ball_b->radius, 1e-7);
  EXPECT_NEAR(geometry::Distance(ball_a->center, ball_b->center), 0.0, 1e-6);
}

TEST(WelzlTest, DuplicatedPointsHandled) {
  Rng rng(7);
  std::vector<Point> points(5, Point{3.0, 4.0});
  points.push_back(Point{5.0, 4.0});
  auto ball = WelzlMinBall(points, rng);
  ASSERT_TRUE(ball.ok());
  EXPECT_NEAR(ball->radius, 1.0, 1e-9);
}

// --- Bădoiu–Clarkson ---

TEST(BadoiuClarksonTest, RejectsBadInput) {
  EXPECT_FALSE(BadoiuClarkson({}, 0.1).ok());
  EXPECT_FALSE(BadoiuClarkson({Point{0.0}}, 0.0).ok());
  EXPECT_FALSE(BadoiuClarkson({Point{0.0}}, 1.5).ok());
}

TEST(BadoiuClarksonTest, WithinOnePlusEpsOfWelzl) {
  const double eps = 0.1;
  for (uint64_t seed = 30; seed < 36; ++seed) {
    const auto points = RandomPoints(80, 3, seed);
    Rng rng(seed);
    auto exact = WelzlMinBall(points, rng);
    auto approx = BadoiuClarkson(points, eps);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(approx.ok());
    EXPECT_GE(approx->radius, exact->radius - 1e-9);
    EXPECT_LE(approx->radius, (1.0 + eps) * exact->radius + 1e-9);
  }
}

TEST(BadoiuClarksonTest, HighDimension) {
  const auto points = RandomPoints(50, 16, 41);
  auto approx = BadoiuClarkson(points, 0.2);
  ASSERT_TRUE(approx.ok());
  double farthest = 0.0;
  for (const Point& p : points) {
    farthest = std::max(farthest, geometry::Distance(approx->center, p));
  }
  EXPECT_NEAR(approx->radius, farthest, 1e-9);
}

// --- Exact partition k-center ---

TEST(PartitionCountTest, KnownValues) {
  EXPECT_EQ(PartitionCount(3, 3), 5u);   // Bell(3).
  EXPECT_EQ(PartitionCount(4, 2), 8u);   // S(4,1)+S(4,2)=1+7.
  EXPECT_EQ(PartitionCount(5, 1), 1u);
  EXPECT_EQ(PartitionCount(10, 3), 1u + 511u + 9330u);
}

TEST(PartitionExactTest, RejectsBadInput) {
  EXPECT_FALSE(ExactPartitionKCenter({}, 1).ok());
  EXPECT_FALSE(ExactPartitionKCenter({Point{0.0}}, 0).ok());
  PartitionExactOptions tight;
  tight.max_partitions = 1;
  EXPECT_FALSE(
      ExactPartitionKCenter(RandomPoints(10, 2, 1), 3, tight).ok());
}

TEST(PartitionExactTest, SingleClusterEqualsWelzl) {
  const auto points = RandomPoints(10, 2, 50);
  auto partition = ExactPartitionKCenter(points, 1);
  Rng rng(50);
  auto ball = WelzlMinBall(points, rng);
  ASSERT_TRUE(partition.ok());
  ASSERT_TRUE(ball.ok());
  EXPECT_NEAR(partition->radius, ball->radius, 1e-9);
}

TEST(PartitionExactTest, SeparatedClustersFoundExactly) {
  std::vector<Point> points = {Point{0.0, 0.0}, Point{2.0, 0.0},
                               Point{100.0, 0.0}, Point{102.0, 0.0}};
  auto solution = ExactPartitionKCenter(points, 2);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->radius, 1.0, 1e-9);
  EXPECT_EQ(solution->cluster_of[0], solution->cluster_of[1]);
  EXPECT_EQ(solution->cluster_of[2], solution->cluster_of[3]);
  EXPECT_NE(solution->cluster_of[0], solution->cluster_of[2]);
}

TEST(PartitionExactTest, NeverWorseThanAnyDiscreteSolution) {
  for (uint64_t seed = 60; seed < 66; ++seed) {
    const auto points = RandomPoints(9, 2, seed);
    auto continuous = ExactPartitionKCenter(points, 2);
    ASSERT_TRUE(continuous.ok());
    // The continuous optimum is no worse than centers at input points.
    metric::EuclideanSpace space(2, points);
    std::vector<metric::SiteId> sites;
    for (size_t i = 0; i < points.size(); ++i) {
      sites.push_back(static_cast<metric::SiteId>(i));
    }
    auto discrete = ExactDiscreteKCenter(space, sites, sites, 2);
    ASSERT_TRUE(discrete.ok());
    EXPECT_LE(continuous->radius, discrete->radius + 1e-9);
    // And at least half of it (any metric k-center argument).
    EXPECT_GE(continuous->radius, discrete->radius / 2.0 - 1e-9);
  }
}

// --- Weighted geometric median ---

TEST(GeometricMedianTest, RejectsBadInput) {
  EXPECT_FALSE(WeightedGeometricMedian({}, {}).ok());
  EXPECT_FALSE(WeightedGeometricMedian({Point{0.0}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(WeightedGeometricMedian({Point{0.0}}, {0.0}).ok());
  EXPECT_FALSE(WeightedGeometricMedian({Point{0.0}}, {-1.0}).ok());
}

TEST(GeometricMedianTest, SinglePoint) {
  auto median = WeightedGeometricMedian({Point{2.0, 3.0}}, {1.0});
  ASSERT_TRUE(median.ok());
  EXPECT_EQ(median->median, (Point{2.0, 3.0}));
  EXPECT_DOUBLE_EQ(median->objective, 0.0);
}

TEST(GeometricMedianTest, TwoPointsAnyPointOnSegmentIsOptimal) {
  auto median =
      WeightedGeometricMedian({Point{0.0, 0.0}, Point{4.0, 0.0}}, {1.0, 1.0});
  ASSERT_TRUE(median.ok());
  EXPECT_NEAR(median->objective, 4.0, 1e-9);
}

TEST(GeometricMedianTest, HeavyWeightPullsToAnchor) {
  // With w0 dominating (w0 >= sum of others), the optimum is p0 itself.
  auto median = WeightedGeometricMedian(
      {Point{0.0, 0.0}, Point{1.0, 0.0}, Point{0.0, 1.0}}, {10.0, 1.0, 1.0});
  ASSERT_TRUE(median.ok());
  EXPECT_NEAR(geometry::Distance(median->median, Point{0.0, 0.0}), 0.0, 1e-6);
}

TEST(GeometricMedianTest, EquilateralTriangleCentroid) {
  // For an equilateral triangle with equal weights, the geometric
  // median is the centroid.
  std::vector<Point> points = {Point{0.0, 0.0}, Point{1.0, 0.0},
                               Point{0.5, std::sqrt(3.0) / 2.0}};
  auto median = WeightedGeometricMedian(points, {1.0, 1.0, 1.0});
  ASSERT_TRUE(median.ok());
  const Point centroid = geometry::Centroid(points);
  EXPECT_NEAR(geometry::Distance(median->median, centroid), 0.0, 1e-7);
}

TEST(GeometricMedianTest, FirstOrderOptimalityOnRandomInstances) {
  // At the optimum, the objective cannot be improved by small steps in
  // any coordinate direction.
  for (uint64_t seed = 70; seed < 76; ++seed) {
    const auto points = RandomPoints(12, 3, seed);
    Rng rng(seed);
    std::vector<double> weights(points.size());
    for (double& w : weights) w = rng.UniformDouble(0.1, 2.0);
    auto median = WeightedGeometricMedian(points, weights);
    ASSERT_TRUE(median.ok());
    auto objective = [&](const Point& q) {
      double total = 0.0;
      for (size_t i = 0; i < points.size(); ++i) {
        total += weights[i] * geometry::Distance(points[i], q);
      }
      return total;
    };
    const double h = 1e-5;
    for (size_t axis = 0; axis < 3; ++axis) {
      for (double sign : {+1.0, -1.0}) {
        Point trial = median->median;
        trial[axis] += sign * h;
        EXPECT_GE(objective(trial), median->objective - 1e-7)
            << "seed=" << seed << " axis=" << axis;
      }
    }
  }
}

TEST(GeometricMedianTest, ObjectiveMatchesDefinition) {
  const auto points = RandomPoints(5, 2, 80);
  std::vector<double> weights = {1.0, 2.0, 0.5, 1.5, 3.0};
  auto median = WeightedGeometricMedian(points, weights);
  ASSERT_TRUE(median.ok());
  double recomputed = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    recomputed += weights[i] * geometry::Distance(points[i], median->median);
  }
  EXPECT_NEAR(median->objective, recomputed, 1e-12);
}

}  // namespace
}  // namespace solver
}  // namespace ukc
