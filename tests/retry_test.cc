// Retry layer (common/retry.h): transient-only classification, the
// deterministic exponential backoff schedule (asserted through a
// recording sleeper, no wall-clock waits), exhaustion annotation, and
// stat accounting.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"

namespace ukc {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

TEST(BackoffTest, DoublesFromBaseAndCaps) {
  RetryOptions options;
  options.base_backoff = milliseconds(1);
  options.max_backoff = milliseconds(100);
  EXPECT_EQ(BackoffForRetry(options, 1), nanoseconds(milliseconds(1)));
  EXPECT_EQ(BackoffForRetry(options, 2), nanoseconds(milliseconds(2)));
  EXPECT_EQ(BackoffForRetry(options, 3), nanoseconds(milliseconds(4)));
  EXPECT_EQ(BackoffForRetry(options, 7), nanoseconds(milliseconds(64)));
  EXPECT_EQ(BackoffForRetry(options, 8), nanoseconds(milliseconds(100)));
  EXPECT_EQ(BackoffForRetry(options, 60), nanoseconds(milliseconds(100)));
  // Degenerate inputs.
  EXPECT_EQ(BackoffForRetry(options, 0), nanoseconds(0));
  options.base_backoff = nanoseconds(0);
  EXPECT_EQ(BackoffForRetry(options, 3), nanoseconds(0));
}

TEST(RetryTest, SuccessOnFirstTryDoesNotSleep) {
  RetryOptions options;
  int sleeps = 0;
  options.sleeper = [&](nanoseconds) { ++sleeps; };
  RetryStats stats;
  EXPECT_TRUE(
      RetryTransient(options, [] { return Status::OK(); }, &stats).ok());
  EXPECT_EQ(sleeps, 0);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(RetryTest, TransientFailuresRetryUntilSuccess) {
  RetryOptions options;
  options.max_attempts = 5;
  std::vector<nanoseconds> schedule;
  options.sleeper = [&](nanoseconds d) { schedule.push_back(d); };
  int calls = 0;
  RetryStats stats;
  const Status status = RetryTransient(
      options,
      [&] {
        ++calls;
        return calls < 3 ? Status::Unavailable("hiccup") : Status::OK();
      },
      &stats);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  // Two retries: backoff 1ms then 2ms (the deterministic schedule).
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[0], nanoseconds(milliseconds(1)));
  EXPECT_EQ(schedule[1], nanoseconds(milliseconds(2)));
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(RetryTest, PermanentErrorsAreNeverRetried) {
  RetryOptions options;
  options.max_attempts = 5;
  int sleeps = 0;
  options.sleeper = [&](nanoseconds) { ++sleeps; };
  int calls = 0;
  RetryStats stats;
  const Status status = RetryTransient(
      options,
      [&] {
        ++calls;
        return Status::InvalidArgument("malformed record");
      },
      &stats);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sleeps, 0);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(RetryTest, ExhaustionKeepsTheCodeAndAnnotatesTheMessage) {
  RetryOptions options;
  options.max_attempts = 3;
  options.sleeper = [](nanoseconds) {};
  int calls = 0;
  RetryStats stats;
  const Status status = RetryTransient(
      options,
      [&] {
        ++calls;
        return Status::Unavailable("disk flaky");
      },
      &stats);
  EXPECT_EQ(calls, 3);
  // Still transient-coded (callers can tell it was an I/O problem),
  // with the attempt count in the message.
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("3 attempts"), std::string::npos);
  EXPECT_NE(status.message().find("disk flaky"), std::string::npos);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.exhausted, 1u);
}

TEST(RetryTest, MaxAttemptsOneMeansNoRetry) {
  RetryOptions options;
  options.max_attempts = 1;
  int calls = 0;
  const Status status = RetryTransient(options, [&] {
    ++calls;
    return Status::Unavailable("x");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(status.ok());
}

TEST(RetryTest, CustomPredicateOverridesTheDefaultClassification) {
  // retry_if replaces IsTransientError entirely: here it retries
  // kInternal (default: permanent) and refuses kUnavailable (default:
  // transient). The serve layer uses exactly this hook to exempt
  // load-sheds from retry while still retrying other kUnavailable.
  RetryOptions options;
  options.max_attempts = 4;
  options.sleeper = [](std::chrono::nanoseconds) {};
  options.retry_if = [](const Status& status) {
    return status.code() == StatusCode::kInternal;
  };

  int calls = 0;
  RetryStats stats;
  const Status cleared = RetryTransient(
      options,
      [&] { return ++calls < 3 ? Status::Internal("flaky") : Status::OK(); },
      &stats);
  EXPECT_TRUE(cleared.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.retries, 2u);

  calls = 0;
  const Status refused = RetryTransient(
      options,
      [&] {
        ++calls;
        return Status::Unavailable("would retry under the default");
      },
      &stats);
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 1);  // The predicate declined: no second attempt.
}

TEST(RetryTest, PredicateNeverSeesAnOkStatus) {
  RetryOptions options;
  options.retry_if = [](const Status&) {
    ADD_FAILURE() << "retry_if consulted for an OK status";
    return true;
  };
  EXPECT_TRUE(RetryTransient(options, [] { return Status::OK(); }).ok());
}

TEST(RetryTest, NullPredicateKeepsTheTransientDefault) {
  RetryOptions options;
  options.max_attempts = 3;
  options.sleeper = [](std::chrono::nanoseconds) {};
  options.retry_if = nullptr;
  int calls = 0;
  const Status status = RetryTransient(options, [&] {
    return ++calls == 1 ? Status::Unavailable("once") : Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, StatsAccumulateAcrossCalls) {
  RetryOptions options;
  options.max_attempts = 2;
  options.sleeper = [](nanoseconds) {};
  RetryStats stats;
  int calls = 0;
  // First loop: one transient then success. Second loop: clean.
  ASSERT_TRUE(RetryTransient(options,
                             [&] {
                               return ++calls == 1
                                          ? Status::Unavailable("once")
                                          : Status::OK();
                             },
                             &stats)
                  .ok());
  ASSERT_TRUE(RetryTransient(options, [] { return Status::OK(); }, &stats).ok());
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.exhausted, 0u);
}

// Every loop also meters ukc_retry_{attempts,retries,exhausted}_total
// into its RetryOptions::metrics registry, labeled by metrics_site —
// the counts must mirror RetryStats exactly.
TEST(RetryTest, EmitsCountersThroughTheMetricsRegistry) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with UKC_OBS=OFF";
  obs::MetricsRegistry registry;
  RetryOptions options;
  options.max_attempts = 3;
  options.sleeper = [](nanoseconds) {};
  options.metrics = &registry;
  options.metrics_site = "test.pull";

  // Loop 1: one transient, then success. Loop 2: every attempt fails
  // transiently — the budget exhausts.
  RetryStats stats;
  int calls = 0;
  ASSERT_TRUE(RetryTransient(options,
                             [&] {
                               return ++calls == 1
                                          ? Status::Unavailable("once")
                                          : Status::OK();
                             },
                             &stats)
                  .ok());
  EXPECT_FALSE(
      RetryTransient(options, [] { return Status::Unavailable("always"); },
                     &stats)
          .ok());

  const obs::RegistrySnapshot snapshot = registry.Snapshot();
  const obs::LabelList site = {{"site", "test.pull"}};
  const obs::MetricSnapshot* attempts =
      snapshot.Find("ukc_retry_attempts_total", site);
  const obs::MetricSnapshot* retries =
      snapshot.Find("ukc_retry_retries_total", site);
  const obs::MetricSnapshot* exhausted =
      snapshot.Find("ukc_retry_exhausted_total", site);
  ASSERT_NE(attempts, nullptr);
  ASSERT_NE(retries, nullptr);
  ASSERT_NE(exhausted, nullptr);
  EXPECT_EQ(attempts->counter_value, stats.attempts);
  EXPECT_EQ(retries->counter_value, stats.retries);
  EXPECT_EQ(exhausted->counter_value, stats.exhausted);
  EXPECT_EQ(attempts->counter_value, 5u);  // 2 + 3.
  EXPECT_EQ(retries->counter_value, 3u);   // 1 + 2.
  EXPECT_EQ(exhausted->counter_value, 1u);
}

}  // namespace
}  // namespace ukc
