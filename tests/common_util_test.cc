#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table.h"

namespace ukc {
namespace {

// --- RunningStats ---

TEST(RunningStatsTest, Empty) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(4.0);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_DOUBLE_EQ(stats.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 4.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 4.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.Variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
}

TEST(RunningStatsTest, StdError) {
  RunningStats stats;
  for (int i = 0; i < 100; ++i) stats.Add(static_cast<double>(i % 2));
  EXPECT_NEAR(stats.StdError(), stats.StdDev() / 10.0, 1e-12);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    all.Add(x);
    (i < 20 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.Min(), all.Min());
  EXPECT_DOUBLE_EQ(left.Max(), all.Max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats stats;
  stats.Add(1.0);
  stats.Add(3.0);
  RunningStats empty;
  stats.Merge(empty);
  EXPECT_EQ(stats.count(), 2);
  empty.Merge(stats);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.Mean(), 2.0);
}

// --- KahanSum ---

TEST(KahanSumTest, CompensatesSmallTerms) {
  KahanSum sum;
  sum.Add(1.0);
  for (int i = 0; i < 1000000; ++i) sum.Add(1e-16);
  EXPECT_NEAR(sum.Total(), 1.0 + 1e-10, 1e-13);
}

TEST(KahanSumTest, MatchesExactForIntegers) {
  KahanSum sum;
  for (int i = 1; i <= 100; ++i) sum.Add(i);
  EXPECT_DOUBLE_EQ(sum.Total(), 5050.0);
}

// --- Strings ---

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"a"}, ", "), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringsTest, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("xy", ','), (std::vector<std::string>{"xy"}));
}

TEST(StringsTest, StrTrim) {
  EXPECT_EQ(StrTrim("  abc \t\n"), "abc");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("inner space kept"), "inner space kept");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("ukc-dataset", "ukc"));
  EXPECT_FALSE(StartsWith("ukc", "ukc-dataset"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

// --- TablePrinter ---

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22.5"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, FormatsValues) {
  EXPECT_EQ(TablePrinter::FormatCell(3), "3");
  EXPECT_EQ(TablePrinter::FormatCell(2.5), "2.5");
  EXPECT_EQ(TablePrinter::FormatCell(0.33333333), "0.3333");
  EXPECT_EQ(TablePrinter::FormatCell("text"), "text");
}

TEST(TablePrinterTest, AddRowValues) {
  TablePrinter table({"a", "b", "c"});
  table.AddRowValues("row", 7, 0.25);
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TablePrinterTest, CsvEscaping) {
  TablePrinter table({"x", "y"});
  table.AddRow({"has,comma", "has\"quote"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "x,y\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST(TablePrinterDeathTest, WrongArityAborts) {
  TablePrinter table({"only"});
  EXPECT_DEATH(table.AddRow({"a", "b"}), "CHECK failed");
}

// --- FlagParser ---

TEST(FlagParserTest, ParsesAllTypes) {
  FlagParser flags;
  int64_t n = 10;
  double eps = 0.5;
  bool verbose = false;
  std::string name = "default";
  flags.AddInt("n", &n, "count");
  flags.AddDouble("eps", &eps, "tolerance");
  flags.AddBool("verbose", &verbose, "chatty");
  flags.AddString("name", &name, "label");
  const char* argv[] = {"prog", "--n=42", "--eps", "0.25", "--verbose",
                        "--name=bench"};
  ASSERT_TRUE(flags.Parse(6, argv).ok());
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(eps, 0.25);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(name, "bench");
}

TEST(FlagParserTest, DefaultsSurviveWhenAbsent) {
  FlagParser flags;
  int64_t n = 10;
  flags.AddInt("n", &n, "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(n, 10);
}

TEST(FlagParserTest, UnknownFlagFails) {
  FlagParser flags;
  const char* argv[] = {"prog", "--mystery=1"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagParserTest, MalformedIntFails) {
  FlagParser flags;
  int64_t n = 0;
  flags.AddInt("n", &n, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagParserTest, MissingValueFails) {
  FlagParser flags;
  int64_t n = 0;
  flags.AddInt("n", &n, "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagParserTest, BoolExplicitFalse) {
  FlagParser flags;
  bool flag = true;
  flags.AddBool("flag", &flag, "f");
  const char* argv[] = {"prog", "--flag=false"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_FALSE(flag);
}

TEST(FlagParserTest, CollectsPositional) {
  FlagParser flags;
  const char* argv[] = {"prog", "input.txt", "more"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.txt", "more"}));
}

TEST(FlagParserTest, UsageListsFlags) {
  FlagParser flags;
  int64_t n = 3;
  flags.AddInt("n", &n, "number of points");
  const std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("number of points"), std::string::npos);
}

// --- Stopwatch ---

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch stopwatch;
  EXPECT_GE(stopwatch.ElapsedSeconds(), 0.0);
  EXPECT_GE(stopwatch.ElapsedMillis(), 0.0);
  EXPECT_GE(stopwatch.ElapsedMicros(), 0.0);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch stopwatch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double before = stopwatch.ElapsedSeconds();
  stopwatch.Reset();
  EXPECT_LE(stopwatch.ElapsedSeconds(), before + 1.0);
}

TEST(StopwatchTest, PauseFreezesTheTotal) {
  Stopwatch stopwatch;
  EXPECT_TRUE(stopwatch.IsRunning());
  stopwatch.Pause();
  EXPECT_FALSE(stopwatch.IsRunning());
  const double frozen = stopwatch.ElapsedSeconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  // Paused time must not accumulate.
  EXPECT_DOUBLE_EQ(stopwatch.ElapsedSeconds(), frozen);
  stopwatch.Pause();  // Idempotent.
  EXPECT_DOUBLE_EQ(stopwatch.ElapsedSeconds(), frozen);
}

TEST(StopwatchTest, ResumeAccumulatesAcrossSegments) {
  Stopwatch stopwatch;
  stopwatch.Pause();
  const double first_segment = stopwatch.ElapsedSeconds();
  stopwatch.Resume();
  EXPECT_TRUE(stopwatch.IsRunning());
  stopwatch.Resume();  // Idempotent.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  stopwatch.Pause();
  // The second segment adds on top of the frozen first one.
  EXPECT_GE(stopwatch.ElapsedSeconds(), first_segment);
  // Reset clears the accumulation and leaves the watch running.
  stopwatch.Reset();
  EXPECT_TRUE(stopwatch.IsRunning());
  EXPECT_LT(stopwatch.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace ukc
