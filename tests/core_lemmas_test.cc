// Executable versions of the paper's Lemmas 3.1–3.6, checked on random
// instances with random centers and random assignments. These are the
// building blocks of every approximation guarantee; each test states
// the inequality it verifies.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/surrogates.h"
#include "cost/assignment.h"
#include "cost/expected_cost.h"
#include "solver/types.h"
#include "uncertain/generators.h"

namespace ukc {
namespace core {
namespace {

using metric::SiteId;
using uncertain::UncertainDataset;

struct LemmaCase {
  UncertainDataset dataset;
  std::vector<SiteId> centers;
  cost::Assignment assignment;
};

// Builds a random instance plus random centers (from the location
// sites) and a random assignment.
LemmaCase RandomEuclideanCase(uint64_t seed, size_t n = 8, size_t k = 3) {
  uncertain::EuclideanInstanceOptions options;
  options.n = n;
  options.z = 3;
  options.dim = 2;
  options.spread = 1.0;
  options.seed = seed;
  LemmaCase out{
      std::move(uncertain::GenerateClusteredInstance(options, k)).value(),
      {},
      {}};
  Rng rng(seed * 17 + 1);
  const auto sites = out.dataset.LocationSites();
  for (size_t c = 0; c < k; ++c) {
    out.centers.push_back(
        sites[static_cast<size_t>(rng.UniformInt(0, sites.size() - 1))]);
  }
  for (size_t i = 0; i < out.dataset.n(); ++i) {
    out.assignment.push_back(
        out.centers[static_cast<size_t>(rng.UniformInt(0, k - 1))]);
  }
  return out;
}

LemmaCase RandomMetricCase(uint64_t seed, size_t n = 8, size_t k = 3) {
  auto graph = uncertain::GenerateGridGraph(5, 5, 0.5, 2.0, seed * 3 + 1);
  LemmaCase out{std::move(uncertain::GenerateMetricInstance(
                              *graph, n, 3, 2.0,
                              uncertain::ProbabilityShape::kRandom, seed))
                    .value(),
                {},
                {}};
  Rng rng(seed * 19 + 2);
  const SiteId num_sites = out.dataset.space().num_sites();
  for (size_t c = 0; c < k; ++c) {
    out.centers.push_back(static_cast<SiteId>(rng.UniformInt(0, num_sites - 1)));
  }
  for (size_t i = 0; i < out.dataset.n(); ++i) {
    out.assignment.push_back(
        out.centers[static_cast<size_t>(rng.UniformInt(0, k - 1))]);
  }
  return out;
}

// E[max_i d(P̂_i, target_i)] where target_i is the per-point site in
// `targets` (e.g. each point's own surrogate).
double ExpectedMaxToPerPointSites(const UncertainDataset& dataset,
                                  const std::vector<SiteId>& targets) {
  auto value = cost::ExactAssignedCost(dataset, targets);
  return value.value();
}

class LemmaSweep : public ::testing::TestWithParam<int> {};

// Lemma 3.1: d(P̄, Q) <= E[d(P, Q)] for every uncertain point and any Q.
TEST_P(LemmaSweep, Lemma31ExpectedPointBeatsExpectedDistance) {
  LemmaCase c = RandomEuclideanCase(static_cast<uint64_t>(GetParam()) + 100);
  SurrogateOptions options;
  options.kind = SurrogateKind::kExpectedPoint;
  auto surrogates = BuildSurrogates(&c.dataset, options);
  ASSERT_TRUE(surrogates.ok());
  Rng rng(GetParam());
  const metric::MetricSpace& space = c.dataset.space();
  for (size_t i = 0; i < c.dataset.n(); ++i) {
    for (int trial = 0; trial < 5; ++trial) {
      const SiteId q =
          static_cast<SiteId>(rng.UniformInt(0, space.num_sites() - 1));
      EXPECT_LE(space.Distance((*surrogates)[i], q),
                c.dataset.point(i).ExpectedDistanceTo(space, q) + 1e-9);
    }
  }
}

// Lemma 3.2: EcostA >= Σ_{P̂_i} prob(P̂_i) d(P̂_i, A(P_i)) for every i.
TEST_P(LemmaSweep, Lemma32PerPointExpectedDistanceLowerBoundsCost) {
  LemmaCase c = RandomEuclideanCase(static_cast<uint64_t>(GetParam()) + 200);
  auto cost_value = cost::ExactAssignedCost(c.dataset, c.assignment);
  ASSERT_TRUE(cost_value.ok());
  for (size_t i = 0; i < c.dataset.n(); ++i) {
    const double per_point = c.dataset.point(i).ExpectedDistanceTo(
        c.dataset.space(), c.assignment[i]);
    EXPECT_LE(per_point, *cost_value + 1e-9) << "point " << i;
  }
}

// Lemma 3.3: E[max_i d(P̂_i, P̄_i)] <= 2 EcostA for ANY centers and
// assignment (Euclidean).
TEST_P(LemmaSweep, Lemma33SurrogateDriftAtMostTwiceCost) {
  LemmaCase c = RandomEuclideanCase(static_cast<uint64_t>(GetParam()) + 300);
  SurrogateOptions options;
  options.kind = SurrogateKind::kExpectedPoint;
  auto surrogates = BuildSurrogates(&c.dataset, options);
  ASSERT_TRUE(surrogates.ok());
  const double drift = ExpectedMaxToPerPointSites(c.dataset, *surrogates);
  auto cost_value = cost::ExactAssignedCost(c.dataset, c.assignment);
  ASSERT_TRUE(cost_value.ok());
  EXPECT_LE(drift, 2.0 * *cost_value + 1e-9);
}

// Lemma 3.4: cost(c_1..c_k) on the expected points <= EcostA(c_1..c_k)
// for the same centers, any assignment (Euclidean).
TEST_P(LemmaSweep, Lemma34CertainCostOfExpectedPointsLowerBounds) {
  LemmaCase c = RandomEuclideanCase(static_cast<uint64_t>(GetParam()) + 400);
  SurrogateOptions options;
  options.kind = SurrogateKind::kExpectedPoint;
  auto surrogates = BuildSurrogates(&c.dataset, options);
  ASSERT_TRUE(surrogates.ok());
  const double certain_cost =
      solver::CoveringRadius(c.dataset.space(), *surrogates, c.centers);
  auto cost_value = cost::ExactAssignedCost(c.dataset, c.assignment);
  ASSERT_TRUE(cost_value.ok());
  EXPECT_LE(certain_cost, *cost_value + 1e-9);
}

// Lemma 3.5: E[max_i d(P̂_i, P̃_i)] <= 3 EcostA in any metric space.
TEST_P(LemmaSweep, Lemma35OneCenterDriftAtMostThriceCost) {
  LemmaCase c = RandomMetricCase(static_cast<uint64_t>(GetParam()) + 500);
  SurrogateOptions options;
  options.kind = SurrogateKind::kOneCenter;
  options.candidates = OneCenterCandidates::kAllSites;
  auto surrogates = BuildSurrogates(&c.dataset, options);
  ASSERT_TRUE(surrogates.ok());
  const double drift = ExpectedMaxToPerPointSites(c.dataset, *surrogates);
  auto cost_value = cost::ExactAssignedCost(c.dataset, c.assignment);
  ASSERT_TRUE(cost_value.ok());
  EXPECT_LE(drift, 3.0 * *cost_value + 1e-9);
}

// Lemma 3.6: cost(c_1..c_k) on the 1-centers <= 2 EcostA(c_1..c_k).
TEST_P(LemmaSweep, Lemma36CertainCostOfOneCentersLowerBounds) {
  LemmaCase c = RandomMetricCase(static_cast<uint64_t>(GetParam()) + 600);
  SurrogateOptions options;
  options.kind = SurrogateKind::kOneCenter;
  options.candidates = OneCenterCandidates::kAllSites;
  auto surrogates = BuildSurrogates(&c.dataset, options);
  ASSERT_TRUE(surrogates.ok());
  const double certain_cost =
      solver::CoveringRadius(c.dataset.space(), *surrogates, c.centers);
  auto cost_value = cost::ExactAssignedCost(c.dataset, c.assignment);
  ASSERT_TRUE(cost_value.ok());
  EXPECT_LE(certain_cost, 2.0 * *cost_value + 1e-9);
}

// Lemma 3.1 holds for the L1 and L-infinity norms too (the proof only
// needs the triangle inequality of a norm), which the ablation uses.
TEST_P(LemmaSweep, Lemma31HoldsForOtherNorms) {
  for (metric::Norm norm : {metric::Norm::kL1, metric::Norm::kLInf}) {
    Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 31);
    auto space = std::make_shared<metric::EuclideanSpace>(2, norm);
    std::vector<SiteId> sites;
    for (int i = 0; i < 6; ++i) {
      sites.push_back(space->AddPoint(
          geometry::Point{rng.Gaussian(0.0, 3.0), rng.Gaussian(0.0, 3.0)}));
    }
    std::vector<uncertain::UncertainPoint> points;
    points.push_back(*uncertain::UncertainPoint::Build(
        {{sites[0], 0.2}, {sites[1], 0.3}, {sites[2], 0.5}}));
    auto dataset = UncertainDataset::Build(space, std::move(points));
    ASSERT_TRUE(dataset.ok());
    SurrogateOptions options;
    options.kind = SurrogateKind::kExpectedPoint;
    auto surrogates = BuildSurrogates(&dataset.value(), options);
    ASSERT_TRUE(surrogates.ok());
    for (SiteId q : sites) {
      EXPECT_LE(dataset->space().Distance((*surrogates)[0], q),
                dataset->point(0).ExpectedDistanceTo(dataset->space(), q) +
                    1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace core
}  // namespace ukc
