// Tests for the streaming subsystem (stream/): the chunked dataset
// reader, the mergeable doubling-grid coreset, the sharded ingestion
// layer, and the StreamingUncertainKCenter facade.
//
// The two load-bearing claims are asserted the hard way:
//  * bitwise determinism — the extracted coreset, the chosen centers,
//    and every reported cost are EXPECT_EQ-identical (no tolerance)
//    across threads ∈ {1, 2, 8} × chunk sizes × shard counts;
//  * the approximation bound — with the Gonzalez solver (factor 2) the
//    streamed solution's exact cost obeys
//      Ecost_stream <= 2 · Ecost_direct + 2 · coreset.error_bound(),
//    the guarantee derived in stream/coreset.h, and the verification
//    bracket [lower, upper] contains the exact evaluator cost.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/unassigned.h"
#include "core/uncertain_kcenter.h"
#include "exper/instances.h"
#include "stream/checkpoint.h"
#include "stream/coreset.h"
#include "stream/ingest.h"
#include "stream/pipeline.h"
#include "uncertain/io.h"

namespace ukc {
namespace {

using metric::SiteId;

const int kThreadCounts[] = {1, 2, 8};
const size_t kChunkSizes[] = {1, 7, 64, 4096};
const int kShardCounts[] = {1, 3, 8};

uncertain::UncertainDataset MakeDataset(size_t n, uint64_t seed,
                                        size_t z = 3, double spread = 0.5) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kClustered;
  spec.n = n;
  spec.z = z;
  spec.dim = 2;
  spec.k = 4;
  spec.spread = spread;
  spec.seed = seed;
  return std::move(exper::MakeInstance(spec)).value();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- Chunked reader ---------------------------------------------------------

TEST(DatasetReaderTest, ChunkedRoundTripMatchesFlatLoad) {
  auto dataset = MakeDataset(37, 5);
  const std::string path = TempPath("roundtrip.ukc");
  ASSERT_TRUE(uncertain::SaveDatasetToFile(dataset, path).ok());

  const metric::EuclideanSpace* space = dataset.euclidean();
  const size_t dim = space->dim();
  for (size_t chunk_size : {size_t{1}, size_t{5}, size_t{64}}) {
    auto reader = uncertain::DatasetReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status();
    EXPECT_EQ(reader->dim(), dim);
    EXPECT_EQ(reader->num_points(), dataset.n());

    // Reassemble the stream and compare to the dataset's flat arrays.
    std::vector<double> coords;
    std::vector<double> probabilities;
    std::vector<size_t> locations_per_point;
    uncertain::UncertainPointBatch batch;
    uint64_t expected_start = 0;
    while (true) {
      auto produced = reader->ReadChunk(chunk_size, &batch);
      ASSERT_TRUE(produced.ok()) << produced.status();
      if (*produced == 0) break;
      EXPECT_EQ(batch.start_index, expected_start);
      EXPECT_EQ(batch.n(), *produced);
      expected_start += *produced;
      coords.insert(coords.end(), batch.coords.begin(), batch.coords.end());
      probabilities.insert(probabilities.end(), batch.probabilities.begin(),
                           batch.probabilities.end());
      for (size_t i = 0; i < batch.n(); ++i) {
        locations_per_point.push_back(batch.locations_of(i));
      }
    }
    EXPECT_EQ(reader->num_read(), dataset.n());
    ASSERT_EQ(locations_per_point.size(), dataset.n());
    ASSERT_EQ(probabilities.size(), dataset.total_locations());

    size_t l = 0;
    for (size_t i = 0; i < dataset.n(); ++i) {
      EXPECT_EQ(locations_per_point[i], dataset.num_locations(i));
      const auto view = dataset.point(i);
      for (size_t j = 0; j < view.num_locations(); ++j, ++l) {
        EXPECT_EQ(probabilities[l], view.probability(j));
        const double* site_coords = space->coords(view.site(j));
        for (size_t a = 0; a < dim; ++a) {
          // The writer emits 17 significant digits, so text round-trips
          // reproduce every bit.
          EXPECT_EQ(coords[l * dim + a], site_coords[a]);
        }
      }
    }
  }
}

TEST(DatasetReaderTest, NormRoundTripsThroughTheHeader) {
  // An L1 dataset must come back as L1 — both through LoadDataset and
  // through the chunked reader — so the streaming bracket is computed
  // under the metric the data was written in.
  auto space = std::make_shared<metric::EuclideanSpace>(2, metric::Norm::kL1);
  std::vector<uncertain::UncertainPoint> points;
  for (int i = 0; i < 5; ++i) {
    const metric::SiteId site = space->AddPoint(
        geometry::Point{static_cast<double>(i), static_cast<double>(-i)});
    points.push_back(uncertain::UncertainPoint::Certain(site));
  }
  auto dataset =
      std::move(uncertain::UncertainDataset::Build(space, std::move(points)))
          .value();
  const std::string path = TempPath("l1.ukc");
  ASSERT_TRUE(uncertain::SaveDatasetToFile(dataset, path).ok());

  auto reader = uncertain::DatasetReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->norm(), metric::Norm::kL1);

  auto loaded = uncertain::LoadDatasetFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->euclidean()->norm(), metric::Norm::kL1);

  // Files written before the norm line default to L2.
  std::ofstream legacy(TempPath("legacy.ukc"));
  legacy << "ukc-dataset 1\ndim 1\nn 1\npoint 1\n1.0 0.5\n";
  legacy.close();
  auto legacy_reader = uncertain::DatasetReader::Open(TempPath("legacy.ukc"));
  ASSERT_TRUE(legacy_reader.ok()) << legacy_reader.status();
  EXPECT_EQ(legacy_reader->norm(), metric::Norm::kL2);
}

TEST(DatasetReaderTest, RejectsTruncatedFile) {
  auto dataset = MakeDataset(10, 6);
  const std::string full = TempPath("full.ukc");
  ASSERT_TRUE(uncertain::SaveDatasetToFile(dataset, full).ok());
  std::ifstream in(full);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::string cut = TempPath("cut.ukc");
  std::ofstream(cut) << text.substr(0, text.size() * 2 / 3);

  auto reader = uncertain::DatasetReader::Open(cut);
  ASSERT_TRUE(reader.ok()) << reader.status();
  uncertain::UncertainPointBatch batch;
  Status error = Status::OK();
  while (true) {
    auto produced = reader->ReadChunk(4, &batch);
    if (!produced.ok()) {
      error = produced.status();
      break;
    }
    if (*produced == 0) break;
  }
  EXPECT_FALSE(error.ok());
}

TEST(DatasetReaderTest, TruncationErrorCarriesRecordAndByteOffset) {
  // A file cut mid-record: point 1 claims two locations but the stream
  // ends after one. The error must name the failing record and the
  // byte offset where it starts — the operator's pointer into a
  // multi-gigabyte file.
  const std::string text =
      "ukc-dataset 1\ndim 1\nn 2\npoint 2\n0.5 0.0\n0.5 1.0\npoint 2\n0.5 2.0\n";
  const std::string path = TempPath("midrecord.ukc");
  std::ofstream(path) << text;

  auto reader = uncertain::DatasetReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  uncertain::UncertainPointBatch batch;
  auto produced = reader->ReadChunk(16, &batch);
  ASSERT_FALSE(produced.ok());
  EXPECT_EQ(produced.status().code(), StatusCode::kInvalidArgument);
  const std::string& message = produced.status().message();
  EXPECT_NE(message.find("record 1"), std::string::npos) << message;
  // The reported offset is exactly where the truncated record begins.
  const size_t record_start = text.rfind("point 2");
  EXPECT_NE(message.find("byte offset " + std::to_string(record_start)),
            std::string::npos)
      << message;
}

TEST(DatasetReaderTest, TellAndSeekResumeMidStream) {
  auto dataset = MakeDataset(30, 8);
  const std::string path = TempPath("seek.ukc");
  ASSERT_TRUE(uncertain::SaveDatasetToFile(dataset, path).ok());

  // Reference: one serial pass.
  std::vector<double> all_coords;
  {
    auto reader = uncertain::DatasetReader::Open(path);
    ASSERT_TRUE(reader.ok());
    uncertain::UncertainPointBatch batch;
    while (true) {
      auto produced = reader->ReadChunk(7, &batch);
      ASSERT_TRUE(produced.ok());
      if (*produced == 0) break;
      all_coords.insert(all_coords.end(), batch.coords.begin(),
                        batch.coords.end());
    }
  }

  // Read 14 points, capture the cursor, and resume a fresh reader
  // there: the tail must be bit-identical to the serial pass.
  auto first = uncertain::DatasetReader::Open(path);
  ASSERT_TRUE(first.ok());
  uncertain::UncertainPointBatch batch;
  std::vector<double> coords;
  ASSERT_TRUE(first->ReadChunk(7, &batch).ok());
  coords.insert(coords.end(), batch.coords.begin(), batch.coords.end());
  ASSERT_TRUE(first->ReadChunk(7, &batch).ok());
  coords.insert(coords.end(), batch.coords.begin(), batch.coords.end());
  const auto cursor = first->TellByteOffset();
  ASSERT_TRUE(cursor.has_value());

  auto resumed = uncertain::DatasetReader::Open(path);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->SeekTo(*cursor, 14).ok());
  uint64_t expected_start = 14;
  while (true) {
    auto produced = resumed->ReadChunk(7, &batch);
    ASSERT_TRUE(produced.ok()) << produced.status();
    if (*produced == 0) break;
    EXPECT_EQ(batch.start_index, expected_start);
    expected_start += *produced;
    coords.insert(coords.end(), batch.coords.begin(), batch.coords.end());
  }
  EXPECT_EQ(resumed->num_read(), dataset.n());
  EXPECT_EQ(coords, all_coords);

  // A cursor that lands mid-record must be rejected structurally, not
  // read through.
  auto stale = uncertain::DatasetReader::Open(path);
  ASSERT_TRUE(stale.ok());
  EXPECT_FALSE(stale->SeekTo(*cursor + 1, 14).ok());
  // And a points_read beyond the header's n is malformed outright.
  auto bad = uncertain::DatasetReader::Open(path);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->SeekTo(*cursor, dataset.n() + 1).ok());
}

// --- Coreset ----------------------------------------------------------------

TEST(StreamingCoresetTest, CapacityAndExtractionInvariants) {
  auto dataset = MakeDataset(1000, 7);
  stream::IngestOptions options;
  options.chunk_size = 128;
  options.coreset.max_cells = 64;
  ThreadPool pool(1);
  auto source = stream::MakeDatasetBatchSource(&dataset, options.chunk_size);
  ASSERT_TRUE(source.ok());
  stream::IngestStats stats;
  auto coreset =
      stream::BuildCoresetFromSource(2, *source, options, &pool, &stats);
  ASSERT_TRUE(coreset.ok()) << coreset.status();

  EXPECT_LE(coreset->num_cells(), options.coreset.max_cells);
  EXPECT_EQ(coreset->num_points(), dataset.n());
  EXPECT_EQ(stats.points, dataset.n());
  EXPECT_EQ(stats.locations, dataset.total_locations());
  EXPECT_GT(coreset->diameter(), 0.0);
  EXPECT_GE(coreset->error_bound(), coreset->max_spread());

  const auto cells = coreset->ExtractCells();
  ASSERT_EQ(cells.size(), coreset->num_cells());
  uint64_t members = 0;
  for (size_t c = 0; c < cells.size(); ++c) {
    members += cells[c].count;
    EXPECT_EQ(cells[c].representative.size(), 2u);
    if (c > 0) EXPECT_LT(cells[c - 1].min_index, cells[c].min_index);
  }
  EXPECT_EQ(members, dataset.n());
}

TEST(StreamingCoresetTest, BitwisePartitionInvariance) {
  auto dataset = MakeDataset(500, 11);
  stream::CoresetOptions coreset_options;
  coreset_options.max_cells = 128;

  // Baseline: one shard, one thread, one chunk size.
  auto build = [&](int threads, size_t chunk_size, int shards) {
    ThreadPool pool(threads);
    stream::IngestOptions options;
    options.chunk_size = chunk_size;
    options.shards = shards;
    options.coreset = coreset_options;
    auto source = stream::MakeDatasetBatchSource(&dataset, chunk_size);
    EXPECT_TRUE(source.ok());
    auto coreset = stream::BuildCoresetFromSource(2, *source, options, &pool);
    EXPECT_TRUE(coreset.ok()) << coreset.status();
    return std::move(*coreset);
  };
  const stream::StreamingCoreset baseline = build(1, 500, 1);
  const auto baseline_cells = baseline.ExtractCells();
  ASSERT_GT(baseline_cells.size(), 1u);

  for (int threads : kThreadCounts) {
    for (size_t chunk_size : kChunkSizes) {
      for (int shards : kShardCounts) {
        const stream::StreamingCoreset coreset =
            build(threads, chunk_size, shards);
        SCOPED_TRACE(::testing::Message() << "threads=" << threads
                                          << " chunk=" << chunk_size
                                          << " shards=" << shards);
        EXPECT_EQ(coreset.level(), baseline.level());
        const auto cells = coreset.ExtractCells();
        ASSERT_EQ(cells.size(), baseline_cells.size());
        for (size_t c = 0; c < cells.size(); ++c) {
          EXPECT_EQ(cells[c].min_index, baseline_cells[c].min_index);
          EXPECT_EQ(cells[c].count, baseline_cells[c].count);
          EXPECT_EQ(cells[c].max_spread, baseline_cells[c].max_spread);
          EXPECT_EQ(cells[c].representative, baseline_cells[c].representative);
        }
      }
    }
  }
}

TEST(StreamingCoresetTest, MemoryBoundedByCellsNotInput) {
  stream::CoresetOptions coreset_options;
  coreset_options.max_cells = 256;
  // A generous fixed budget for 256 cells in 2-d — the point is that it
  // does not move when n grows 10x.
  const size_t kBudget = 256 * 1024;
  for (size_t n : {size_t{2000}, size_t{20000}}) {
    auto dataset = MakeDataset(n, 13);
    ThreadPool pool(1);
    stream::IngestOptions options;
    options.chunk_size = 512;
    options.coreset = coreset_options;
    auto source = stream::MakeDatasetBatchSource(&dataset, options.chunk_size);
    ASSERT_TRUE(source.ok());
    auto coreset = stream::BuildCoresetFromSource(2, *source, options, &pool);
    ASSERT_TRUE(coreset.ok());
    EXPECT_LE(coreset->num_cells(), coreset_options.max_cells);
    EXPECT_LE(coreset->ApproxMemoryBytes(), kBudget) << "n=" << n;
  }
}

TEST(StreamingIngestTest, BuildCoresetFromSourceRejectsCheckpointing) {
  // A bare BatchSource cannot be re-opened, so it cannot honor the
  // resume-or-fall-back contract; asking for a checkpoint must be an
  // explicit error, not a silent no-op.
  auto dataset = MakeDataset(50, 3);
  ThreadPool pool(1);
  stream::IngestOptions options;
  options.checkpoint.path = TempPath("rejected.ckpt");
  auto source = stream::MakeDatasetBatchSource(&dataset, 16);
  ASSERT_TRUE(source.ok());
  auto coreset = stream::BuildCoresetFromSource(2, *source, options, &pool);
  ASSERT_FALSE(coreset.ok());
  EXPECT_EQ(coreset.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamingIngestTest, CheckpointedIngestMatchesPlainIngest) {
  // Checkpointing on a healthy run must not change the coreset (the
  // content fingerprinting and periodic saves are pure observers).
  auto dataset = MakeDataset(300, 23);
  const std::string path = TempPath("healthy.ukc");
  ASSERT_TRUE(uncertain::SaveDatasetToFile(dataset, path).ok());

  auto run = [&](const std::string& checkpoint_path) {
    ThreadPool pool(2);
    stream::IngestOptions options;
    options.chunk_size = 32;
    options.shards = 3;
    options.coreset.max_cells = 128;
    options.checkpoint.path = checkpoint_path;
    options.checkpoint.every_n_batches = 2;
    options.checkpoint.sync = false;
    stream::IngestStats stats;
    auto coreset =
        stream::IngestCoreset(2, stream::ResumableFileFactory(path, 32),
                              options, &pool, &stats);
    EXPECT_TRUE(coreset.ok()) << coreset.status();
    return std::make_pair(coreset->ExtractCells(), stats);
  };

  const auto [plain_cells, plain_stats] = run("");
  EXPECT_EQ(plain_stats.checkpoint_saves, 0u);
  const std::string sidecar = TempPath("healthy.ckpt");
  std::remove(sidecar.c_str());
  const auto [ckpt_cells, ckpt_stats] = run(sidecar);
  EXPECT_GT(ckpt_stats.checkpoint_saves, 0u);
  EXPECT_FALSE(ckpt_stats.restored);

  ASSERT_EQ(ckpt_cells.size(), plain_cells.size());
  for (size_t c = 0; c < ckpt_cells.size(); ++c) {
    EXPECT_EQ(ckpt_cells[c].min_index, plain_cells[c].min_index);
    EXPECT_EQ(ckpt_cells[c].count, plain_cells[c].count);
    EXPECT_EQ(ckpt_cells[c].max_spread, plain_cells[c].max_spread);
    EXPECT_EQ(ckpt_cells[c].representative, plain_cells[c].representative);
  }
  // The sidecar left behind is itself valid.
  EXPECT_TRUE(stream::LoadCheckpoint(sidecar).ok());
}

// --- Streaming pipeline -----------------------------------------------------

stream::StreamingOptions PipelineOptions(int threads, size_t chunk_size,
                                         int shards) {
  stream::StreamingOptions options;
  options.k = 4;
  options.threads = threads;
  options.ingest.chunk_size = chunk_size;
  options.ingest.shards = shards;
  options.ingest.coreset.max_cells = 512;
  return options;
}

TEST(StreamingPipelineTest, BitwiseDeterminismAcrossConfigurations) {
  auto dataset = MakeDataset(800, 17);
  stream::StreamingUncertainKCenter baseline_solver(PipelineOptions(1, 800, 1));
  auto baseline = baseline_solver.SolveDataset(&dataset);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_EQ(baseline->k, 4u);
  ASSERT_FALSE(std::isnan(baseline->verified_lower));

  for (int threads : kThreadCounts) {
    for (size_t chunk_size : kChunkSizes) {
      for (int shards : kShardCounts) {
        SCOPED_TRACE(::testing::Message() << "threads=" << threads
                                          << " chunk=" << chunk_size
                                          << " shards=" << shards);
        stream::StreamingUncertainKCenter solver(
            PipelineOptions(threads, chunk_size, shards));
        auto solution = solver.SolveDataset(&dataset);
        ASSERT_TRUE(solution.ok()) << solution.status();
        EXPECT_EQ(solution->center_coords, baseline->center_coords);
        EXPECT_EQ(solution->coreset_cells, baseline->coreset_cells);
        EXPECT_EQ(solution->coreset_cost, baseline->coreset_cost);
        EXPECT_EQ(solution->coreset_radius, baseline->coreset_radius);
        EXPECT_EQ(solution->verified_lower, baseline->verified_lower);
        EXPECT_EQ(solution->verified_upper, baseline->verified_upper);
        EXPECT_EQ(solution->max_expected_distance,
                  baseline->max_expected_distance);
        EXPECT_EQ(solution->verified_exact, baseline->verified_exact);
      }
    }
  }
}

TEST(StreamingPipelineTest, BracketContainsExactCostAndIsTight) {
  auto dataset = MakeDataset(600, 19);
  stream::StreamingUncertainKCenter solver(PipelineOptions(2, 97, 3));
  auto solution = solver.SolveDataset(&dataset);
  ASSERT_TRUE(solution.ok()) << solution.status();

  ASSERT_FALSE(std::isnan(solution->verified_exact));
  // The bracket is rigorous up to double-rounding of the final sums.
  const double slack = 1e-9 * (1.0 + solution->verified_upper);
  EXPECT_LE(solution->verified_lower, solution->verified_exact + slack);
  EXPECT_GE(solution->verified_upper, solution->verified_exact - slack);
  // max-of-expectations lower-bounds the expected max.
  EXPECT_LE(solution->max_expected_distance,
            solution->verified_exact + slack);
  // Grid resolution: the bracket is no wider than a few grid cells.
  EXPECT_LT(solution->verified_upper - solution->verified_lower,
            0.05 * solution->verified_upper + 1e-9);
}

TEST(StreamingPipelineTest, ApproximationBoundAgainstDirectSolve) {
  for (uint64_t seed : {23u, 29u, 31u}) {
    auto dataset = MakeDataset(600, seed, /*z=*/3, /*spread=*/0.3);

    core::UncertainKCenterOptions direct_options;
    direct_options.k = 4;
    auto direct = core::SolveUncertainKCenter(&dataset, direct_options);
    ASSERT_TRUE(direct.ok()) << direct.status();

    stream::StreamingOptions stream_options = PipelineOptions(2, 128, 2);
    stream_options.ingest.coreset.max_cells = 1024;
    stream::StreamingUncertainKCenter solver(stream_options);
    auto solution = solver.SolveDataset(&dataset);
    ASSERT_TRUE(solution.ok()) << solution.status();

    // The guarantee from stream/coreset.h with the factor-2 Gonzalez
    // solver: Ecost_stream <= 2 Ecost_direct + 2 (diameter + spread).
    const double bound = 2.0 * direct->expected_cost +
                         2.0 * solution->coreset_error_bound + 1e-9;
    EXPECT_LE(solution->verified_exact, bound) << "seed=" << seed;
    EXPECT_LE(solution->verified_upper,
              bound + (solution->verified_upper - solution->verified_lower))
        << "seed=" << seed;
  }
}

TEST(StreamingPipelineTest, FileAndDatasetPathsAgreeBitwise) {
  auto dataset = MakeDataset(300, 37);
  const std::string path = TempPath("stream_solve.ukc");
  ASSERT_TRUE(uncertain::SaveDatasetToFile(dataset, path).ok());

  stream::StreamingUncertainKCenter solver(PipelineOptions(2, 64, 2));
  auto from_file = solver.SolveFile(path);
  ASSERT_TRUE(from_file.ok()) << from_file.status();
  auto from_dataset = solver.SolveDataset(&dataset);
  ASSERT_TRUE(from_dataset.ok()) << from_dataset.status();

  EXPECT_EQ(from_file->center_coords, from_dataset->center_coords);
  EXPECT_EQ(from_file->coreset_cells, from_dataset->coreset_cells);
  EXPECT_EQ(from_file->verified_lower, from_dataset->verified_lower);
  EXPECT_EQ(from_file->verified_upper, from_dataset->verified_upper);
  // Only the dataset path can report the exact evaluator cost.
  EXPECT_TRUE(std::isnan(from_file->verified_exact));
  EXPECT_FALSE(std::isnan(from_dataset->verified_exact));
}

TEST(StreamingPipelineTest, CheckpointedSolveFileMatchesPlain) {
  auto dataset = MakeDataset(300, 39);
  const std::string path = TempPath("ckpt_solve.ukc");
  ASSERT_TRUE(uncertain::SaveDatasetToFile(dataset, path).ok());

  stream::StreamingUncertainKCenter plain(PipelineOptions(2, 32, 2));
  auto want = plain.SolveFile(path);
  ASSERT_TRUE(want.ok()) << want.status();

  stream::StreamingOptions options = PipelineOptions(2, 32, 2);
  options.ingest.checkpoint.path = TempPath("ckpt_solve.ckpt");
  options.ingest.checkpoint.every_n_batches = 2;
  options.ingest.checkpoint.sync = false;
  std::remove(options.ingest.checkpoint.path.c_str());
  stream::StreamingUncertainKCenter checkpointed(options);
  auto got = checkpointed.SolveFile(path);
  ASSERT_TRUE(got.ok()) << got.status();

  EXPECT_EQ(got->center_coords, want->center_coords);
  EXPECT_EQ(got->verified_lower, want->verified_lower);
  EXPECT_EQ(got->verified_upper, want->verified_upper);
  EXPECT_GT(got->ingest_stats.checkpoint_saves, 0u);
}

// Regression for the SolveFile double header-parse: the header probe's
// reader must seed pass 1 instead of the factory reopening the file.
// Deleting the file right after the probe is the open-counting proof on
// POSIX: the already-open reader keeps working (so the first factory
// call consumed the probe — one open, one header parse for probe +
// pass 1 combined), while any *further* pass must reopen and fails
// NotFound.
TEST(StreamingPipelineTest, SeededFileFactoryReusesProbeReader) {
  const auto dataset = MakeDataset(50, 41);
  const std::string path = TempPath("stream_seeded.ukc");
  ASSERT_TRUE(uncertain::SaveDatasetToFile(dataset, path).ok());

  auto probe = uncertain::DatasetReader::Open(path);
  ASSERT_TRUE(probe.ok()) << probe.status();
  ASSERT_EQ(std::remove(path.c_str()), 0);

  auto factory =
      stream::SeededFileBatchFactory(std::move(*probe), path, 16);
  auto first = factory();
  ASSERT_TRUE(first.ok()) << first.status();
  uncertain::UncertainPointBatch batch;
  size_t points = 0;
  while (true) {
    auto more = (*first)(&batch);
    ASSERT_TRUE(more.ok()) << more.status();
    if (!*more) break;
    points += batch.n();
  }
  EXPECT_EQ(points, dataset.n());  // Full pass off the probe reader.

  auto second = factory();
  EXPECT_FALSE(second.ok());  // Later passes reopen the (gone) file.
}

// Read accounting of the pipeline: with verification off the stream is
// opened exactly once; with it on, exactly twice. (SolveFile's pass 1
// additionally rides the probe reader — see the test above.)
TEST(StreamingPipelineTest, SolveOpensTheStreamOncePerPass) {
  auto dataset = MakeDataset(200, 43);
  for (bool verify : {false, true}) {
    stream::StreamingOptions options = PipelineOptions(1, 64, 1);
    options.verify = verify;
    stream::StreamingUncertainKCenter solver(options);
    size_t factory_calls = 0;
    auto factory = [&]() -> Result<stream::BatchSource> {
      ++factory_calls;
      return stream::MakeDatasetBatchSource(&dataset, 64);
    };
    auto solution = solver.SolveSource(2, factory);
    ASSERT_TRUE(solution.ok()) << solution.status();
    EXPECT_EQ(factory_calls, verify ? 2u : 1u);
  }
}

TEST(StreamingPipelineTest, ProducerSourceMatchesDataset) {
  // A deterministic synthetic stream: point i is a 2-location uncertain
  // point derived from Rng::Fork(i), emitted twice (once per pass)
  // through the producer adapter.
  const size_t n = 400;
  const size_t dim = 2;
  auto make_factory = [&]() -> stream::BatchSourceFactory {
    return [n]() -> Result<stream::BatchSource> {
      auto index = std::make_shared<size_t>(0);
      return stream::MakeProducerBatchSource(
          2,
          [n, index](std::vector<double>* coords,
                     std::vector<double>* probabilities) {
            if (*index >= n) return false;
            Rng rng(1234);
            Rng point_rng = rng.Fork(*index);
            const double cx = point_rng.UniformDouble(0.0, 10.0);
            const double cy = point_rng.UniformDouble(0.0, 10.0);
            for (int l = 0; l < 2; ++l) {
              coords->push_back(cx + point_rng.Gaussian(0.0, 0.2));
              coords->push_back(cy + point_rng.Gaussian(0.0, 0.2));
            }
            probabilities->push_back(0.25);
            probabilities->push_back(0.75);
            ++*index;
            return true;
          },
          64);
    };
  };

  // The same points as a materialized dataset.
  auto factory = make_factory();
  auto space = std::make_shared<metric::EuclideanSpace>(dim);
  std::vector<uncertain::UncertainPoint> points;
  {
    auto one_pass = factory();
    ASSERT_TRUE(one_pass.ok());
    uncertain::UncertainPointBatch batch;
    while (true) {
      auto more = (*one_pass)(&batch);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      for (size_t i = 0; i < batch.n(); ++i) {
        std::vector<uncertain::Location> locations;
        for (size_t l = batch.offsets[i]; l < batch.offsets[i + 1]; ++l) {
          locations.push_back(uncertain::Location{
              space->AddCoords(batch.location_coords(l)),
              batch.probabilities[l]});
        }
        points.push_back(
            std::move(uncertain::UncertainPoint::Build(std::move(locations)))
                .value());
      }
    }
  }
  auto dataset =
      std::move(uncertain::UncertainDataset::Build(space, std::move(points)))
          .value();
  ASSERT_EQ(dataset.n(), n);

  stream::StreamingOptions options = PipelineOptions(2, 64, 2);
  options.k = 3;
  stream::StreamingUncertainKCenter solver(options);
  auto via_producer = solver.SolveSource(dim, make_factory());
  ASSERT_TRUE(via_producer.ok()) << via_producer.status();
  auto via_dataset = solver.SolveDataset(&dataset);
  ASSERT_TRUE(via_dataset.ok()) << via_dataset.status();

  EXPECT_EQ(via_producer->center_coords, via_dataset->center_coords);
  EXPECT_EQ(via_producer->verified_lower, via_dataset->verified_lower);
  EXPECT_EQ(via_producer->verified_upper, via_dataset->verified_upper);
  EXPECT_EQ(via_producer->ingest_stats.points, n);
}

// --- Shared-pool plumbing ---------------------------------------------------

TEST(SharedPoolTest, PipelineMatchesPrivatePools) {
  auto dataset_private = MakeDataset(250, 41);
  auto dataset_shared = MakeDataset(250, 41);

  core::UncertainKCenterOptions options;
  options.k = 3;
  options.threads = 2;
  auto with_private = core::SolveUncertainKCenter(&dataset_private, options);
  ASSERT_TRUE(with_private.ok());

  ThreadPool pool(2);
  options.pool = &pool;
  auto with_shared = core::SolveUncertainKCenter(&dataset_shared, options);
  ASSERT_TRUE(with_shared.ok());

  EXPECT_EQ(with_private->centers, with_shared->centers);
  EXPECT_EQ(with_private->surrogates, with_shared->surrogates);
  EXPECT_EQ(with_private->expected_cost, with_shared->expected_cost);
  EXPECT_EQ(with_private->assignment, with_shared->assignment);
}

TEST(SharedPoolTest, LocalSearchMatchesPrivatePools) {
  auto dataset_private = MakeDataset(120, 43);
  auto dataset_shared = MakeDataset(120, 43);

  core::UnassignedSearchOptions options;
  options.k = 3;
  options.threads = 2;
  options.max_swaps = 4;
  auto with_private = core::LocalSearchUnassigned(&dataset_private, options);
  ASSERT_TRUE(with_private.ok());

  ThreadPool pool(2);
  options.pool = &pool;
  auto with_shared = core::LocalSearchUnassigned(&dataset_shared, options);
  ASSERT_TRUE(with_shared.ok());

  EXPECT_EQ(with_private->centers, with_shared->centers);
  EXPECT_EQ(with_private->expected_cost, with_shared->expected_cost);
  EXPECT_EQ(with_private->swaps, with_shared->swaps);
}

}  // namespace
}  // namespace ukc
