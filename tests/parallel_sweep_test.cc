// Parity suite for the parallel segmented exact-sweep engine and the
// compacted snapshot ladder (PR 5). Everything here is EXPECT_EQ on
// doubles — no tolerance anywhere:
//  * the segmented sweep (parallel radix sort + per-variable CDF
//    trajectories + ordered serial combine) must be bitwise identical
//    to the plain serial sort-sweep reference
//    (Options::parallel_sweep = false) at every thread count;
//  * the compacted ladder (rung 0 + deepest rung resident, the
//    intermediate rungs re-derived on escalation by replaying
//    events[deepest.index, rung.index)) must be bitwise identical to
//    the full 7-rung reference, including on swap matrices whose
//    candidates force escalations;
//  * double-buffered streaming ingestion must extract the bitwise
//    identical coreset as the serial read/process alternation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "cost/expected_cost_evaluator.h"
#include "cost/parallel_evaluator.h"
#include "exper/instances.h"
#include "metric/euclidean_space.h"
#include "solver/gonzalez.h"
#include "stream/ingest.h"
#include "uncertain/dataset.h"
#include "uncertain/uncertain_point.h"

namespace ukc {
namespace {

using metric::SiteId;

const int kThreadCounts[] = {1, 2, 8};

uncertain::UncertainDataset MakeDataset(size_t n, size_t dim, size_t z,
                                        uint64_t seed,
                                        exper::Family family =
                                            exper::Family::kClustered) {
  exper::InstanceSpec spec;
  spec.family = family;
  spec.n = n;
  spec.z = z;
  spec.dim = dim;
  spec.k = 4;
  spec.seed = seed;
  return std::move(exper::MakeInstance(spec)).value();
}

// A dataset with a dominant near-origin cluster plus a small tight far
// cluster: with centers inside the near cluster, the far points are the
// sweep's bottleneck, and a candidate inside the far cluster improves
// every one of them below rung 0 — the exact shape that forces ladder
// escalations.
uncertain::UncertainDataset MakeBottleneckDataset(size_t near_points,
                                                  size_t far_points, size_t z,
                                                  uint64_t seed) {
  auto space = std::make_shared<metric::EuclideanSpace>(2);
  Rng rng(seed);
  std::vector<uncertain::UncertainPoint> points;
  const auto add_point = [&](double cx, double cy, double spread) {
    std::vector<uncertain::Location> locations;
    double remaining = 1.0;
    for (size_t l = 0; l < z; ++l) {
      const double coords[2] = {cx + spread * (rng.UniformDouble() - 0.5),
                                cy + spread * (rng.UniformDouble() - 0.5)};
      const double p = l + 1 == z ? remaining : remaining * 0.5;
      remaining -= p;
      locations.push_back({space->AddCoords(coords), p});
    }
    points.push_back(std::move(uncertain::UncertainPoint::Build(
                                   std::move(locations)))
                         .value());
  };
  for (size_t i = 0; i < near_points; ++i) add_point(0.0, 0.0, 2.0);
  for (size_t i = 0; i < far_points; ++i) add_point(100.0, 100.0, 0.5);
  return std::move(uncertain::UncertainDataset::Build(space,
                                                      std::move(points)))
      .value();
}

std::vector<SiteId> SomeCenters(const uncertain::UncertainDataset& dataset,
                                size_t k) {
  const auto sites = dataset.LocationSites();
  return std::move(solver::Gonzalez(dataset.space(), sites, k)).value().centers;
}

// The segmented engine vs the serial reference, over random instances
// across dimensions, (k, z) shapes, and thread counts. Exercises both
// the sub-radix (std::sort) and radix sort regimes via the instance
// sizes, and the parallel radix via the pool.
TEST(ParallelSweepTest, SegmentedSweepMatchesSerialBitwise) {
  struct Shape {
    size_t n;
    size_t k;
    size_t z;
  };
  const Shape shapes[] = {{60, 3, 2}, {150, 8, 4}, {700, 5, 8}};
  uint64_t seed = 500;
  for (size_t dim : {1u, 2u, 3u, 8u}) {
    for (const Shape& shape : shapes) {
      ++seed;
      const auto dataset = MakeDataset(shape.n, dim, shape.z, seed);
      const auto centers = SomeCenters(dataset, shape.k);
      cost::Assignment assignment(dataset.n(), centers[0]);

      cost::ExpectedCostEvaluator::Options serial_options;
      serial_options.parallel_sweep = false;
      cost::ExpectedCostEvaluator serial(serial_options);
      const double serial_unassigned =
          *serial.UnassignedCost(dataset, centers);
      const double serial_assigned =
          *serial.AssignedCost(dataset, assignment);

      for (int threads : kThreadCounts) {
        ThreadPool pool(threads);
        cost::ExpectedCostEvaluator::Options segmented_options;
        segmented_options.parallel_sweep = true;
        segmented_options.parallel_sweep_cutover = 1;  // Force the engine.
        segmented_options.sweep_pool = &pool;
        cost::ExpectedCostEvaluator segmented(segmented_options);
        EXPECT_EQ(serial_unassigned, *segmented.UnassignedCost(dataset, centers))
            << "dim=" << dim << " n=" << shape.n << " threads=" << threads;
        EXPECT_EQ(serial_assigned, *segmented.AssignedCost(dataset, assignment))
            << "dim=" << dim << " n=" << shape.n << " threads=" << threads;
      }
    }
  }
}

// Above the radix cutover the engine's parallel LSD sort takes over;
// at the default options the large sweep must still match the serial
// reference bit for bit.
TEST(ParallelSweepTest, LargeSweepMatchesAtDefaultCutover) {
  const auto dataset = MakeDataset(9000, 2, 4, 77);  // 36000 events.
  const auto centers = SomeCenters(dataset, 8);
  cost::ExpectedCostEvaluator::Options serial_options;
  serial_options.parallel_sweep = false;
  cost::ExpectedCostEvaluator serial(serial_options);
  const double reference = *serial.UnassignedCost(dataset, centers);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    cost::ExpectedCostEvaluator::Options options;  // Defaults: engine on.
    options.sweep_pool = &pool;
    cost::ExpectedCostEvaluator segmented(options);
    ASSERT_GE(dataset.total_locations(), options.parallel_sweep_cutover);
    EXPECT_EQ(reference, *segmented.UnassignedCost(dataset, centers))
        << "threads=" << threads;
  }
}

// Segment/boundary edge cases: a stream with every key equal (one
// distinct value, maximal ties), a single event, and a one-point
// dataset. Ties are where an unstable sort would diverge — the engine
// must still reproduce the serial reference exactly.
TEST(ParallelSweepTest, EdgeCaseStreamsMatch) {
  auto space = std::make_shared<metric::EuclideanSpace>(2);
  const auto make = [&](size_t n, size_t z, bool identical) {
    Rng rng(11 + n * 31 + z);
    std::vector<uncertain::UncertainPoint> points;
    for (size_t i = 0; i < n; ++i) {
      std::vector<uncertain::Location> locations;
      double remaining = 1.0;
      for (size_t l = 0; l < z; ++l) {
        const double coords[2] = {
            identical ? 3.0 : rng.UniformDouble(),
            identical ? 4.0 : rng.UniformDouble()};
        const double p = l + 1 == z ? remaining : remaining / 2.0;
        remaining -= p;
        locations.push_back({space->AddCoords(coords), p});
      }
      points.push_back(std::move(uncertain::UncertainPoint::Build(
                                     std::move(locations)))
                           .value());
    }
    return std::move(uncertain::UncertainDataset::Build(space,
                                                        std::move(points)))
        .value();
  };
  struct Case {
    size_t n;
    size_t z;
    bool identical;
  };
  const Case cases[] = {
      {40, 3, true},   // All-equal keys: one distinct value.
      {1, 1, false},   // Single event.
      {1, 5, false},   // One variable, several events.
      {25, 4, false},  // Small mixed stream.
  };
  for (const Case& c : cases) {
    const auto dataset = make(c.n, c.z, c.identical);
    const double origin[2] = {0.0, 0.0};
    std::vector<SiteId> centers = {
        dataset.euclidean()->AddCoords(origin)};
    cost::ExpectedCostEvaluator::Options serial_options;
    serial_options.parallel_sweep = false;
    cost::ExpectedCostEvaluator serial(serial_options);
    const double reference = *serial.UnassignedCost(dataset, centers);
    for (int threads : kThreadCounts) {
      ThreadPool pool(threads);
      cost::ExpectedCostEvaluator::Options options;
      options.parallel_sweep_cutover = 1;
      options.sweep_pool = &pool;
      cost::ExpectedCostEvaluator segmented(options);
      EXPECT_EQ(reference, *segmented.UnassignedCost(dataset, centers))
          << "n=" << c.n << " z=" << c.z << " identical=" << c.identical
          << " threads=" << threads;
    }
  }
}

// The generic ExpectedMaxOfIndependent entry point (non-CSR fill, its
// own variable offsets), including heavy cross-variable ties.
TEST(ParallelSweepTest, ExpectedMaxOfIndependentMatches) {
  Rng rng(321);
  std::vector<cost::DiscreteDistribution> distributions;
  for (size_t i = 0; i < 120; ++i) {
    cost::DiscreteDistribution d;
    const size_t support = 1 + static_cast<size_t>(rng.UniformDouble() * 5.0);
    double remaining = 1.0;
    for (size_t s = 0; s < support; ++s) {
      // Quantized values: plenty of exact ties within and across
      // variables.
      const double value = std::floor(rng.UniformDouble() * 8.0) / 4.0;
      const double p = s + 1 == support ? remaining : remaining / 2.0;
      remaining -= p;
      d.emplace_back(value, p);
    }
    distributions.push_back(std::move(d));
  }
  cost::ExpectedCostEvaluator::Options serial_options;
  serial_options.parallel_sweep = false;
  cost::ExpectedCostEvaluator serial(serial_options);
  const double reference = serial.ExpectedMaxOfIndependent(distributions);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    cost::ExpectedCostEvaluator::Options options;
    options.parallel_sweep_cutover = 1;
    options.sweep_pool = &pool;
    cost::ExpectedCostEvaluator segmented(options);
    EXPECT_EQ(reference, segmented.ExpectedMaxOfIndependent(distributions))
        << "threads=" << threads;
  }
}

cost::ParallelCandidateEvaluator::Options LadderOptions(int threads,
                                                        bool compact) {
  cost::ParallelCandidateEvaluator::Options options;
  options.threads = threads;
  options.evaluator.compact_swap_ladder = compact;
  return options;
}

// Compacted vs full-resident ladder over a swap matrix whose
// bottleneck-covering candidates force escalations: every value must
// match bit for bit, at every thread count, and the compact run must
// actually have exercised the replay path.
TEST(ParallelSweepTest, LadderCompactionEscalationParity) {
  const auto dataset = MakeBottleneckDataset(260, 24, 3, 909);
  const auto centers = SomeCenters(dataset, 3);
  // Candidates: a site inside the far (bottleneck) cluster plus a
  // spread of ordinary sites.
  const auto sites = dataset.LocationSites();
  std::vector<SiteId> pool;
  const double far_coords[2] = {100.0, 100.0};
  pool.push_back(dataset.euclidean()->AddCoords(far_coords));
  for (size_t i = 0; i < 10; ++i) {
    pool.push_back(sites[(i * 173) % sites.size()]);
  }

  cost::ParallelCandidateEvaluator reference(
      LadderOptions(/*threads=*/1, /*compact=*/false));
  const auto want = *reference.SwapCostMatrix(dataset, centers, pool);
  for (int threads : kThreadCounts) {
    cost::ParallelCandidateEvaluator compact(LadderOptions(threads, true));
    const auto got = *compact.SwapCostMatrix(dataset, centers, pool);
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i], got[i]) << "task " << i << " threads=" << threads;
    }
    EXPECT_GT(compact.LadderEscalations(), 0u) << "threads=" << threads;
  }
}

// A multi-round trajectory (round r's accepted argmin feeds round r+1)
// through the compacted ladder must track the full-ladder reference
// bitwise — a single diverging replay would compound into different
// center sets.
TEST(ParallelSweepTest, LadderCompactionTrajectoryParity) {
  constexpr size_t kRounds = 3;
  const auto dataset = MakeBottleneckDataset(200, 16, 2, 414);
  const auto sites = dataset.LocationSites();
  std::vector<SiteId> pool;
  const double far_coords[2] = {100.0, 100.0};
  pool.push_back(dataset.euclidean()->AddCoords(far_coords));
  for (size_t i = 0; i < 8; ++i) pool.push_back(sites[(i * 211) % sites.size()]);

  const auto run = [&](bool compact) {
    cost::ParallelCandidateEvaluator evaluator(LadderOptions(1, compact));
    auto centers = SomeCenters(dataset, 3);
    std::vector<std::vector<double>> rounds;
    for (size_t round = 0; round < kRounds; ++round) {
      auto values = *evaluator.SwapCostMatrix(dataset, centers, pool);
      rounds.push_back(values);
      double best = std::numeric_limits<double>::infinity();
      size_t best_position = 0;
      SiteId best_candidate = metric::kInvalidSite;
      for (size_t p = 0; p < centers.size(); ++p) {
        for (size_t c = 0; c < pool.size(); ++c) {
          if (pool[c] == centers[p]) continue;
          const double value = values[p * pool.size() + c];
          if (value < best) {
            best = value;
            best_position = p;
            best_candidate = pool[c];
          }
        }
      }
      EXPECT_NE(best_candidate, metric::kInvalidSite);
      if (best_candidate == metric::kInvalidSite) return rounds;
      centers[best_position] = best_candidate;
    }
    return rounds;
  };
  const auto reference = run(/*compact=*/false);
  const auto compact = run(/*compact=*/true);
  ASSERT_EQ(reference.size(), compact.size());
  for (size_t r = 0; r < reference.size(); ++r) {
    ASSERT_EQ(reference[r].size(), compact[r].size()) << "round " << r;
    for (size_t i = 0; i < reference[r].size(); ++i) {
      EXPECT_EQ(reference[r][i], compact[r][i])
          << "round " << r << " task " << i;
    }
  }
}

// The acceptance criterion in numbers: at a clustered instance the
// compacted ladder's resident bytes drop at least 3x versus the
// 7-rung reference.
TEST(ParallelSweepTest, LadderMemoryDropsAtLeast3x) {
  const auto dataset = MakeDataset(2000, 2, 4, 31);
  const auto centers = SomeCenters(dataset, 8);
  const auto sites = dataset.LocationSites();
  std::vector<SiteId> pool;
  for (size_t i = 0; i < 8; ++i) pool.push_back(sites[(i * 977) % sites.size()]);

  cost::ParallelCandidateEvaluator full(LadderOptions(1, /*compact=*/false));
  ASSERT_TRUE(full.SwapCostMatrix(dataset, centers, pool).ok());
  cost::ParallelCandidateEvaluator compact(LadderOptions(1, /*compact=*/true));
  ASSERT_TRUE(compact.SwapCostMatrix(dataset, centers, pool).ok());

  const size_t full_bytes = full.SwapLadderBytes();
  const size_t compact_bytes = compact.SwapLadderBytes();
  EXPECT_GE(full_bytes, 3 * compact_bytes)
      << "full=" << full_bytes << " compact=" << compact_bytes;
}

// ReserveScratch arms the no-shrink contract and survives a batch of
// evaluations without being lost.
TEST(ParallelSweepTest, ScratchReservationPersists) {
  const auto dataset = MakeDataset(300, 2, 4, 5);
  const auto centers = SomeCenters(dataset, 4);
  cost::ExpectedCostEvaluator evaluator;
  evaluator.ReserveScratch(dataset.n(), dataset.total_locations());
  EXPECT_EQ(evaluator.reserved_scratch(), dataset.total_locations());
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(evaluator.UnassignedCost(dataset, centers).ok());
  }
  EXPECT_EQ(evaluator.reserved_scratch(), dataset.total_locations());
}

// Double-buffered ingestion (read group r+1 while group r is
// processed) must hand the shards the exact same batch sequence:
// the extracted coreset is bitwise identical to the serial
// read-then-process reference, for every (threads, chunk, shards)
// combination tried.
TEST(ParallelSweepTest, DoubleBufferedIngestMatchesSerial) {
  const auto dataset = MakeDataset(1200, 2, 3, 88);
  const auto run = [&](bool double_buffer, int threads, size_t chunk,
                       int shards) {
    ThreadPool pool(threads);
    stream::IngestOptions options;
    options.chunk_size = chunk;
    options.shards = shards;
    options.double_buffer = double_buffer;
    options.coreset.max_cells = 64;
    options.coreset.base_cell_width = 0.25;
    auto source = *stream::MakeDatasetBatchSource(&dataset, chunk);
    stream::IngestStats stats;
    auto coreset = *stream::BuildCoresetFromSource(
        2, source, options, &pool, &stats);
    return std::make_pair(coreset.ExtractCells(), stats);
  };
  for (int threads : kThreadCounts) {
    for (size_t chunk : {7u, 64u, 4096u}) {
      for (int shards : {1, 3, 8}) {
        const auto [want, want_stats] = run(false, threads, chunk, shards);
        const auto [got, got_stats] = run(true, threads, chunk, shards);
        EXPECT_EQ(want_stats.points, got_stats.points);
        EXPECT_EQ(want_stats.batches, got_stats.batches);
        ASSERT_EQ(want.size(), got.size())
            << "threads=" << threads << " chunk=" << chunk
            << " shards=" << shards;
        for (size_t c = 0; c < want.size(); ++c) {
          EXPECT_EQ(want[c].count, got[c].count);
          EXPECT_EQ(want[c].max_spread, got[c].max_spread);
          ASSERT_EQ(want[c].representative.size(),
                    got[c].representative.size());
          for (size_t a = 0; a < want[c].representative.size(); ++a) {
            EXPECT_EQ(want[c].representative[a], got[c].representative[a]);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace ukc
