// The public entry point: the paper's surrogate pipeline for the
// uncertain k-center problem.
//
//   1. Replace each uncertain point with a certain surrogate
//      (P̄ in Euclidean space, P̃ in a general metric).
//   2. Run a deterministic k-center solver on the surrogates.
//   3. Serve the uncertain points with the resulting centers under the
//      configured assignment rule (ED / EP / OC).
//   4. Evaluate the exact expected cost and report the theorem-certified
//      guarantee for the configuration.

#ifndef UKC_CORE_UNCERTAIN_KCENTER_H_
#define UKC_CORE_UNCERTAIN_KCENTER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "core/bounds.h"
#include "core/surrogates.h"
#include "cost/assignment.h"
#include "solver/certain_solver.h"
#include "uncertain/dataset.h"

namespace ukc {

class ThreadPool;

namespace core {

/// Configuration of the pipeline.
struct UncertainKCenterOptions {
  size_t k = 1;
  /// Which assignment rule serves the uncertain points.
  cost::AssignmentRule rule = cost::AssignmentRule::kExpectedDistance;
  /// Surrogate choice. When unset, picks the paper's default: P̄ for
  /// Euclidean instances, P̃ for general metrics.
  std::optional<SurrogateKind> surrogate;
  /// P̃ candidate policy in finite metrics (see surrogates.h).
  OneCenterCandidates one_center_candidates = OneCenterCandidates::kAllSites;
  /// The plugged deterministic k-center solver.
  solver::CertainSolverOptions certain;
  /// Also evaluate the unassigned cost E[max_i d(P̂_i, C)] (the min is
  /// taken inside the expectation). Costs one extra exact sweep.
  bool evaluate_unassigned = false;
  /// Workers sharding the surrogate construction and the ED assignment
  /// (<= 0 = hardware threads). The solution does not depend on this.
  int threads = 1;
  /// Borrowed shared worker pool. When set, `threads` is ignored and
  /// every stage of the run (surrogates, assignment) shares this pool
  /// instead of constructing private ones — the hook the streaming
  /// pipeline (stream/pipeline.h) uses to pay worker spawn once.
  ThreadPool* pool = nullptr;
  /// Cancellation/budget token checked between pipeline phases
  /// (surrogates → clustering → assignment → evaluation) and inside
  /// the exact evaluations. Expiry aborts the run with
  /// kDeadlineExceeded; the dataset is left valid (at most surrogate
  /// sites were minted, which later runs reuse or ignore). Default:
  /// never expires.
  Deadline deadline;
};

/// Timing breakdown of one pipeline run, in seconds.
struct PipelineTimings {
  double surrogate_seconds = 0.0;
  double clustering_seconds = 0.0;
  double assignment_seconds = 0.0;
  double evaluation_seconds = 0.0;

  double TotalSeconds() const {
    return surrogate_seconds + clustering_seconds + assignment_seconds +
           evaluation_seconds;
  }
};

/// Full output of the pipeline.
struct UncertainKCenterSolution {
  /// The k chosen centers (site ids in the dataset's space).
  std::vector<metric::SiteId> centers;
  /// assignment[i] = the center serving uncertain point i.
  cost::Assignment assignment;
  /// Exact assigned expected cost EcostA of (centers, assignment).
  double expected_cost = 0.0;
  /// Exact unassigned expected cost; NaN unless evaluate_unassigned.
  double unassigned_cost = 0.0;
  /// The surrogate site of each uncertain point.
  std::vector<metric::SiteId> surrogates;
  /// Covering radius of the deterministic surrogate clustering.
  double certain_radius = 0.0;
  /// Name of the deterministic solver that ran.
  std::string certain_algorithm;
  /// The certain solver's factor f (the paper's 1+ε slot).
  double certain_factor = 0.0;
  /// Theorem-certified guarantees for this configuration (may be empty
  /// for baseline configurations).
  std::vector<BoundClaim> bounds;
  PipelineTimings timings;
};

/// Runs the pipeline. The dataset is mutated only by minting surrogate
/// sites into its (Euclidean) space; the uncertain points themselves
/// are untouched. Fails on invalid configurations, e.g. the EP rule or
/// P̄ surrogate on a non-Euclidean dataset, or k == 0.
Result<UncertainKCenterSolution> SolveUncertainKCenter(
    uncertain::UncertainDataset* dataset, const UncertainKCenterOptions& options);

}  // namespace core
}  // namespace ukc

#endif  // UKC_CORE_UNCERTAIN_KCENTER_H_
