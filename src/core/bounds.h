// Approximation-guarantee bookkeeping: for each (surrogate, assignment
// rule, certain-solver factor) configuration, which theorem applies and
// what factor it certifies, against which reference optimum.
//
// All factors are stated in terms of the plugged certain-solver factor
// f (the paper's 1+ε):
//
//   Euclidean, P̄ surrogate:
//     ED rule: Ecost_ED <= (4+f)·opt   (Thm 2.2 vs opt_ED; Thm 2.4 vs
//                                       unrestricted OPT)
//     EP rule: Ecost_EP <= (2+f)·opt   (Thm 2.2 vs opt_EP; Thm 2.5 vs
//                                       unrestricted OPT)
//   Any metric, P̃ surrogate:
//     ED rule: Ecost_ED <= (5+2f)·OPT  (Thm 2.6)
//     OC rule: Ecost_OC <= (3+2f)·OPT  (Thm 2.7)
//
// With f = 1+ε these give the paper's 5+ε, 3+ε, 7+2ε, 5+2ε; with the
// Gonzalez factor f = 2 they give Table 1's 6, 4, —, —.

#ifndef UKC_CORE_BOUNDS_H_
#define UKC_CORE_BOUNDS_H_

#include <string>
#include <vector>

#include "cost/assignment.h"
#include "core/surrogates.h"

namespace ukc {
namespace core {

/// What the guaranteed factor is measured against.
enum class BoundReference {
  /// The optimal restricted-assigned cost under the same rule.
  kRestrictedOptimum,
  /// The optimal unrestricted-assigned cost (centers and assignment
  /// both free).
  kUnrestrictedOptimum,
};

std::string BoundReferenceToString(BoundReference reference);

/// One certified guarantee.
struct BoundClaim {
  double factor = 0.0;
  BoundReference reference = BoundReference::kUnrestrictedOptimum;
  std::string theorem;  // e.g. "Theorem 2.4".
};

/// The guarantees the paper provides for a configuration. `euclidean`
/// selects the Euclidean theorems; `certain_factor` is the plugged
/// solver's factor f; `median_factor` m is the approximation quality of
/// the P̃ construction (1 when P̃ exactly minimizes the expected
/// distance, 2 for the own-locations shortcut; the metric-theorem
/// constants generalize to 2+3m+f(1+m) for ED and 2+m+f(1+m) for OC).
/// Unsupported combinations (e.g. expected-point surrogate outside
/// Euclidean space, modal surrogate) return an empty list — the
/// pipeline still runs but certifies nothing.
std::vector<BoundClaim> BoundsFor(bool euclidean, SurrogateKind surrogate,
                                  cost::AssignmentRule rule,
                                  double certain_factor,
                                  double median_factor = 1.0);

}  // namespace core
}  // namespace ukc

#endif  // UKC_CORE_BOUNDS_H_
