// The R^1 pipeline (Table 1, row 8): minimize the restricted-assigned
// expected cost under the ED rule for uncertain points on the line, and
// thereby (via Theorem 2.3) obtain a 3-approximation for the
// unrestricted assigned problem in R^1.
//
// The paper delegates this step to Wang–Zhang [26]. Their combinatorial
// algorithm is specific to their cost formulation; this reproduction
// solves the same optimization directly, exploiting two structural
// facts that make the line tractable:
//
//  1. For a *fixed assignment*, EcostA(c_1..c_k) is convex in each
//     center coordinate (an expectation of maxima of |x - c| terms), so
//     each center is optimized exactly by ternary search on a convex
//     function.
//  2. Re-deriving the ED assignment from improved centers never
//     increases the cost of the ED objective's inner evaluation, so
//     alternating assignment/recenter converges; multi-start (seeded by
//     the exact deterministic 1D k-center over all locations, plus
//     random restarts) escapes poor basins.
//
// Exactness is not guaranteed in theory (the alternation may stop at a
// local optimum) but is validated against exhaustive enumeration on
// tiny instances in the test suite; EXPERIMENTS.md documents this
// substitution.

#ifndef UKC_CORE_LINE_SOLVER_H_
#define UKC_CORE_LINE_SOLVER_H_

#include <cstdint>

#include "common/result.h"
#include "cost/assignment.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace core {

/// Options for SolveLineKCenterED.
struct LineSolverOptions {
  size_t k = 1;
  /// Random restarts beyond the deterministic seeding.
  size_t restarts = 6;
  /// Alternation rounds per start.
  size_t max_rounds = 40;
  /// Ternary-search iterations per center optimization.
  size_t ternary_iterations = 120;
  uint64_t seed = 29;
};

/// Output of the line solver.
struct LineSolution {
  /// Optimized center coordinates, ascending.
  std::vector<double> center_coordinates;
  /// The same centers minted as sites of the dataset's space.
  std::vector<metric::SiteId> centers;
  /// ED assignment under those centers.
  cost::Assignment assignment;
  /// Exact expected cost EcostED.
  double expected_cost = 0.0;
};

/// Runs the solver. The dataset must be Euclidean with dim == 1.
Result<LineSolution> SolveLineKCenterED(uncertain::UncertainDataset* dataset,
                                        const LineSolverOptions& options);

}  // namespace core
}  // namespace ukc

#endif  // UKC_CORE_LINE_SOLVER_H_
