// The unassigned version of the uncertain k-center problem (the third
// variant in the paper's taxonomy):
//
//   Ecost(C) = E_R[ max_i min_{c in C} d(P̂_i, c) ]
//
// The paper proves no algorithm for it (Huang & Li give a PTAS for
// constant k and d; Guha–Munagala an O(1) factor) but its Theorems
// 2.4–2.7 imply a baseline: any assigned solution upper-bounds the
// unassigned objective (fixing an assignment can only hurt), and the
// unrestricted optimum upper... lower-bounds it from the other side:
//
//   OPT_unassigned <= OPT_unrestricted <= EcostA(pipeline)
//
// so the pipeline's centers are a (3+eps)/(5+2eps)-style approximation
// for the unassigned objective as well whenever OPT_unassigned is
// within a constant of OPT_unrestricted. This module provides:
//
//  * ExactUnassignedTiny — exhaustive center enumeration (the true
//    optimum over a candidate set; exact in finite metrics).
//  * LocalSearchUnassigned — pipeline seeding plus swap local search
//    evaluating the exact unassigned objective; never worse than the
//    seed, typically much better on spread instances.

#ifndef UKC_CORE_UNASSIGNED_H_
#define UKC_CORE_UNASSIGNED_H_

#include <cstdint>

#include "common/result.h"
#include "core/uncertain_kcenter.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace core {

/// Result of an unassigned-objective solver.
struct UnassignedSolution {
  std::vector<metric::SiteId> centers;
  /// Exact unassigned expected cost E[max_i d(P̂_i, C)].
  double expected_cost = 0.0;
  /// Number of improving swaps the local search applied (0 for exact).
  size_t swaps = 0;
};

/// Exhaustive enumeration of k-subsets of `candidates` minimizing the
/// exact unassigned cost. True optimum over the candidate set. The
/// enumeration itself shards over the worker pool: each task unranks
/// the start of its contiguous rank range (solver::CombinationFromRank)
/// and advances the combination odometer locally, so no serial
/// enumerator feeds the workers. Per-task minima are reduced in rank
/// order with a strict <, so the selected subset — including on cost
/// ties, where the lexicographically first subset wins — and the
/// returned cost are bitwise independent of `threads` (<= 0 = hardware
/// threads) and identical to a serial scan. `pool`, when set, is
/// borrowed and `threads` is ignored (see ScopedPool).
Result<UnassignedSolution> ExactUnassignedTiny(
    const uncertain::UncertainDataset& dataset, size_t k,
    const std::vector<metric::SiteId>& candidates,
    uint64_t max_subsets = 2'000'000, int threads = 1,
    ThreadPool* pool = nullptr);

/// Options for LocalSearchUnassigned.
struct UnassignedSearchOptions {
  size_t k = 1;
  /// Candidate pool for swaps; empty = the dataset's location sites
  /// plus the pipeline's surrogates.
  std::vector<metric::SiteId> candidates;
  size_t max_swaps = 200;
  /// Workers scoring the swap candidates of each round (<= 0 =
  /// hardware threads). The chosen swaps do not depend on this.
  int threads = 1;
  /// Borrowed shared worker pool; when set, `threads` is ignored and no
  /// private pool is constructed (see ScopedPool in common/thread_pool.h).
  /// Also forwarded to the seeding pipeline unless it sets its own.
  ThreadPool* pool = nullptr;
  /// Score swap rounds through the reference paths (full table rebuild
  /// every round, full O(N) candidate scans) instead of the incremental
  /// rollover + kd-pruned engine. The trajectory is bitwise identical
  /// either way (tests/incremental_sweep_test.cc asserts it); this knob
  /// exists for those assertions and for benchmarking the engine.
  bool reference_swap_paths = false;
  /// Cancellation/budget token checked before the seed solve and at
  /// every swap round (plus per candidate inside the evaluators it is
  /// forwarded to). Expiry returns kDeadlineExceeded — the
  /// partially-improved trajectory is discarded rather than returned,
  /// so callers never mistake a truncated search for a converged one.
  /// Default: never expires.
  Deadline deadline;
  /// Options for the seeding pipeline run.
  UncertainKCenterOptions pipeline;
};

/// Seeds with the paper's pipeline, then best-improvement single swaps
/// under the exact unassigned objective.
Result<UnassignedSolution> LocalSearchUnassigned(
    uncertain::UncertainDataset* dataset, const UnassignedSearchOptions& options);

}  // namespace core
}  // namespace ukc

#endif  // UKC_CORE_UNASSIGNED_H_
