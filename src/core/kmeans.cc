#include "core/kmeans.h"

#include <algorithm>
#include <vector>

#include "common/strings.h"
#include "core/surrogates.h"
#include "geometry/point_view.h"

namespace ukc {
namespace core {

using geometry::Point;
using metric::SiteId;

Result<double> ExactKMeansCost(const uncertain::UncertainDataset& dataset,
                               const cost::Assignment& assignment) {
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument("ExactKMeansCost: assignment size mismatch");
  }
  const metric::MetricSpace& space = dataset.space();
  double total = 0.0;
  for (size_t i = 0; i < dataset.n(); ++i) {
    if (assignment[i] < 0 || assignment[i] >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("ExactKMeansCost: assignment[%zu]=%d out of range", i,
                    assignment[i]));
    }
    for (const uncertain::Location& loc : dataset.point(i).locations()) {
      const double d = space.Distance(loc.site, assignment[i]);
      total += loc.probability * d * d;
    }
  }
  return total;
}

Result<double> KMeansVarianceFloor(const uncertain::UncertainDataset& dataset) {
  const metric::EuclideanSpace* space = dataset.euclidean();
  if (space == nullptr) {
    return Status::FailedPrecondition(
        "KMeansVarianceFloor: requires a Euclidean dataset");
  }
  const size_t dim = space->dim();
  double total = 0.0;
  std::vector<double> mean(dim);
  const metric::SiteId* sites = dataset.flat_sites().data();
  const double* probabilities = dataset.flat_probabilities().data();
  const size_t* offsets = dataset.offsets().data();
  for (size_t i = 0; i < dataset.n(); ++i) {
    std::fill(mean.begin(), mean.end(), 0.0);
    for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
      const double* coords = space->coords(sites[l]);
      for (size_t a = 0; a < dim; ++a) mean[a] += coords[a] * probabilities[l];
    }
    for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
      total += probabilities[l] *
               geometry::SquaredDistanceKernel(space->coords(sites[l]),
                                               mean.data(), dim);
    }
  }
  return total;
}

Result<UncertainKMeansSolution> SolveUncertainKMeans(
    uncertain::UncertainDataset* dataset,
    const UncertainKMeansOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("SolveUncertainKMeans: null dataset");
  }
  metric::EuclideanSpace* space = dataset->euclidean();
  if (space == nullptr) {
    return Status::FailedPrecondition(
        "SolveUncertainKMeans: the lossless reduction requires a Euclidean "
        "dataset");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("SolveUncertainKMeans: k must be >= 1");
  }

  // Expected points, computed straight into one flat row-major buffer —
  // no boxed Points anywhere between the arena and the Lloyd loops.
  const size_t n = dataset->n();
  const size_t dim = space->dim();
  std::vector<double> expected(n * dim, 0.0);
  const metric::SiteId* sites = dataset->flat_sites().data();
  const double* probabilities = dataset->flat_probabilities().data();
  const size_t* offsets = dataset->offsets().data();
  for (size_t i = 0; i < n; ++i) {
    double* mean = expected.data() + i * dim;
    for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
      const double* coords = space->coords(sites[l]);
      for (size_t a = 0; a < dim; ++a) mean[a] += coords[a] * probabilities[l];
    }
  }
  const std::vector<double> unit_weights(n, 1.0);
  UKC_ASSIGN_OR_RETURN(solver::KMeansFlatSolution certain,
                       solver::WeightedKMeansFlat(expected, n, dim,
                                                  unit_weights, options.k,
                                                  options.lloyd));

  UncertainKMeansSolution solution;
  solution.surrogate_objective = certain.objective;
  solution.centers.reserve(options.k);
  for (size_t c = 0; c < options.k; ++c) {
    solution.centers.push_back(space->AddCoords(certain.centers.data() + c * dim));
  }
  solution.assignment.resize(n);
  for (size_t i = 0; i < n; ++i) {
    solution.assignment[i] = solution.centers[certain.cluster_of[i]];
  }
  UKC_ASSIGN_OR_RETURN(solution.variance_floor, KMeansVarianceFloor(*dataset));
  UKC_ASSIGN_OR_RETURN(solution.expected_cost,
                       ExactKMeansCost(*dataset, solution.assignment));
  return solution;
}

}  // namespace core
}  // namespace ukc
