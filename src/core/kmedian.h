// Uncertain k-median — the extension the paper's conclusion announces
// as future work ("we intend to use our approach to study the k-median
// and the k-mean problems").
//
// Objective (assigned version, mirroring the paper's k-center cost):
//
//   EcostA = E_R[ Σ_i d(P̂_i, A(P_i)) ] = Σ_i E[ d(P̂_i, A(P_i)) ]
//
// Unlike the k-center max, the sum commutes with the expectation, which
// yields two pleasant structural facts this module implements and the
// tests verify:
//
//  1. For fixed centers, the optimal assignment is exactly the paper's
//     ED rule (each point to its minimum-expected-distance center) —
//     restricted-ED and unrestricted coincide for k-median.
//  2. Over a finite candidate-facility set, the uncertain problem
//     *reduces exactly* to deterministic k-median with the cost matrix
//     cost[i][f] = E[d(P̂_i, f)]: no surrogate approximation loss at
//     all. The surrogate pipeline is still offered for comparison (it
//     is faster: it shrinks the clustering input from Σz_i to n).

#ifndef UKC_CORE_KMEDIAN_H_
#define UKC_CORE_KMEDIAN_H_

#include "common/result.h"
#include "cost/assignment.h"
#include "solver/kmedian_local_search.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace core {

/// How the uncertain k-median is solved.
enum class KMedianMethod {
  /// Exact reduction: local search on the expected-distance matrix.
  kExpectedMatrixLocalSearch,
  /// Exact reduction + exhaustive subset enumeration (tiny only).
  kExpectedMatrixExact,
  /// Surrogate pipeline: deterministic k-median on the P̃ surrogates,
  /// then ED assignment — the paper's k-center recipe transplanted.
  kSurrogateLocalSearch,
};

/// Options for SolveUncertainKMedian.
struct UncertainKMedianOptions {
  size_t k = 1;
  KMedianMethod method = KMedianMethod::kExpectedMatrixLocalSearch;
  solver::KMedianOptions local_search;
  uint64_t max_exact_subsets = 2'000'000;
};

/// Output of the uncertain k-median solver.
struct UncertainKMedianSolution {
  std::vector<metric::SiteId> centers;
  cost::Assignment assignment;
  /// Exact expected sum-of-distances cost.
  double expected_cost = 0.0;
};

/// Exact expected k-median cost of an assignment (sum objective).
Result<double> ExactKMedianCost(const uncertain::UncertainDataset& dataset,
                                const cost::Assignment& assignment);

/// Solves over the given candidate facility sites (defaults used by the
/// benches: the dataset's location sites; callers may pass any site
/// set, e.g. DefaultCandidateSites).
Result<UncertainKMedianSolution> SolveUncertainKMedian(
    uncertain::UncertainDataset* dataset,
    const std::vector<metric::SiteId>& candidates,
    const UncertainKMedianOptions& options);

}  // namespace core
}  // namespace ukc

#endif  // UKC_CORE_KMEDIAN_H_
