#include "core/unassigned.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"
#include "cost/expected_cost.h"
#include "cost/parallel_evaluator.h"
#include "solver/brute_force.h"

namespace ukc {
namespace core {

using metric::SiteId;

Result<UnassignedSolution> ExactUnassignedTiny(
    const uncertain::UncertainDataset& dataset, size_t k,
    const std::vector<SiteId>& candidates, uint64_t max_subsets, int threads,
    ThreadPool* pool) {
  if (k == 0 || k > candidates.size()) {
    return Status::InvalidArgument(
        "ExactUnassignedTiny: need 1 <= k <= |candidates|");
  }
  const uint64_t subsets = solver::BinomialCount(candidates.size(), k);
  if (subsets > max_subsets) {
    return Status::InvalidArgument(
        StrFormat("ExactUnassignedTiny: %llu subsets exceeds the cap",
                  static_cast<unsigned long long>(subsets)));
  }

  // The enumeration shards over the pool: task t covers the contiguous
  // rank range [t·kRanksPerTask, ...), unranks its start once and walks
  // the odometer from there — no serial enumerator feeds the workers,
  // and each task is a pure function of its index. Each task keeps its
  // first strict minimum; the tasks are then reduced in rank order with
  // the same strict <, which reproduces a serial first-minimum scan
  // exactly (ties resolve to the lowest rank).
  cost::ParallelCandidateEvaluator::Options parallel_options;
  parallel_options.threads = threads;
  parallel_options.pool = pool;
  cost::ParallelCandidateEvaluator parallel(parallel_options);
  constexpr uint64_t kRanksPerTask = 256;
  const size_t tasks = static_cast<size_t>((subsets + kRanksPerTask - 1) /
                                           kRanksPerTask);
  struct TaskBest {
    double value = std::numeric_limits<double>::infinity();
    uint64_t rank = 0;
  };
  std::vector<TaskBest> bests(tasks);
  UKC_RETURN_IF_ERROR(parallel.ForEachTask(
      tasks, [&](cost::ExpectedCostEvaluator& evaluator, size_t t) -> Status {
        const uint64_t begin = static_cast<uint64_t>(t) * kRanksPerTask;
        const uint64_t end = std::min(subsets, begin + kRanksPerTask);
        std::vector<size_t> index;
        solver::CombinationFromRank(begin, candidates.size(), k, &index);
        std::vector<SiteId> centers(k);
        for (uint64_t rank = begin; rank < end; ++rank) {
          for (size_t i = 0; i < k; ++i) centers[i] = candidates[index[i]];
          UKC_ASSIGN_OR_RETURN(double value,
                               evaluator.UnassignedCost(dataset, centers));
          if (value < bests[t].value) {
            bests[t].value = value;
            bests[t].rank = rank;
          }
          if (rank + 1 < end) {
            UKC_CHECK(solver::NextCombination(&index, candidates.size()));
          }
        }
        return Status::OK();
      }));

  UnassignedSolution best;
  best.expected_cost = std::numeric_limits<double>::infinity();
  uint64_t best_rank = 0;
  for (const TaskBest& task : bests) {
    if (task.value < best.expected_cost) {
      best.expected_cost = task.value;
      best_rank = task.rank;
    }
  }
  std::vector<size_t> index;
  solver::CombinationFromRank(best_rank, candidates.size(), k, &index);
  best.centers.resize(k);
  for (size_t i = 0; i < k; ++i) best.centers[i] = candidates[index[i]];
  return best;
}

Result<UnassignedSolution> LocalSearchUnassigned(
    uncertain::UncertainDataset* dataset,
    const UnassignedSearchOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("LocalSearchUnassigned: null dataset");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("LocalSearchUnassigned: k must be >= 1");
  }

  // Seed with the paper's pipeline under the given configuration,
  // sharing the caller's worker pool unless the pipeline brings its own.
  UncertainKCenterOptions pipeline_options = options.pipeline;
  pipeline_options.k = options.k;
  if (pipeline_options.pool == nullptr) pipeline_options.pool = options.pool;
  if (pipeline_options.deadline.infinite()) {
    pipeline_options.deadline = options.deadline;
  }
  if (!dataset->is_euclidean() &&
      pipeline_options.rule == cost::AssignmentRule::kExpectedPoint) {
    pipeline_options.rule = cost::AssignmentRule::kOneCenter;
  }
  UKC_ASSIGN_OR_RETURN(UncertainKCenterSolution seed,
                       SolveUncertainKCenter(dataset, pipeline_options));

  // Candidate pool: caller-provided, or locations + surrogates.
  std::vector<SiteId> pool = options.candidates;
  if (pool.empty()) {
    pool = dataset->LocationSites();
    pool.insert(pool.end(), seed.surrogates.begin(), seed.surrogates.end());
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  }

  UnassignedSolution solution;
  solution.centers = seed.centers;
  // Every round scores all |centers| * |pool| one-center swaps through
  // the swap-structure batch: O(N) per swap instead of O(N k), sharded
  // over the worker pool. The kd path is disabled for the scalar
  // evaluations too, so the running cost and the swap values come from
  // identical (linear-path) arithmetic.
  cost::ParallelCandidateEvaluator::Options parallel_options;
  parallel_options.threads = options.threads;
  parallel_options.pool = options.pool;
  parallel_options.incremental_rollover = !options.reference_swap_paths;
  parallel_options.kd_prune = !options.reference_swap_paths;
  parallel_options.evaluator.kdtree_cutover =
      std::numeric_limits<size_t>::max();
  parallel_options.evaluator.deadline = options.deadline;
  cost::ParallelCandidateEvaluator parallel(parallel_options);
  cost::ExpectedCostEvaluator::Options scalar_options;
  scalar_options.kdtree_cutover = std::numeric_limits<size_t>::max();
  scalar_options.deadline = options.deadline;
  // The scalar seed evaluation runs at top level, so its segmented
  // sweep may borrow the caller's pool (never re-entered from a job).
  scalar_options.sweep_pool = options.pool;
  cost::ExpectedCostEvaluator evaluator(scalar_options);
  UKC_ASSIGN_OR_RETURN(solution.expected_cost,
                       evaluator.UnassignedCost(*dataset, solution.centers));

  for (size_t round = 0; round < options.max_swaps; ++round) {
    UKC_RETURN_IF_ERROR(
        options.deadline.Check("LocalSearchUnassigned[round]"));
    UKC_ASSIGN_OR_RETURN(
        std::vector<double> values,
        parallel.SwapCostMatrix(*dataset, solution.centers, pool));
    // Deterministic argmin in (position, candidate) order — the same
    // order the serial nested loops scanned.
    double best_value = solution.expected_cost;
    size_t best_position = solution.centers.size();
    SiteId best_replacement = metric::kInvalidSite;
    for (size_t position = 0; position < solution.centers.size(); ++position) {
      for (size_t c = 0; c < pool.size(); ++c) {
        if (pool[c] == solution.centers[position]) continue;
        const double value = values[position * pool.size() + c];
        if (value < best_value) {
          best_value = value;
          best_position = position;
          best_replacement = pool[c];
        }
      }
    }
    if (best_replacement == metric::kInvalidSite ||
        solution.expected_cost - best_value <
            1e-12 * std::max(1.0, solution.expected_cost)) {
      break;
    }
    solution.centers[best_position] = best_replacement;
    solution.expected_cost = best_value;
    ++solution.swaps;
  }
  return solution;
}

}  // namespace core
}  // namespace ukc
