#include "core/unassigned.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"
#include "cost/expected_cost.h"
#include "solver/brute_force.h"

namespace ukc {
namespace core {

using metric::SiteId;

Result<UnassignedSolution> ExactUnassignedTiny(
    const uncertain::UncertainDataset& dataset, size_t k,
    const std::vector<SiteId>& candidates, uint64_t max_subsets) {
  if (k == 0 || k > candidates.size()) {
    return Status::InvalidArgument(
        "ExactUnassignedTiny: need 1 <= k <= |candidates|");
  }
  const uint64_t subsets = solver::BinomialCount(candidates.size(), k);
  if (subsets > max_subsets) {
    return Status::InvalidArgument(
        StrFormat("ExactUnassignedTiny: %llu subsets exceeds the cap",
                  static_cast<unsigned long long>(subsets)));
  }
  UnassignedSolution best;
  best.expected_cost = std::numeric_limits<double>::infinity();
  std::vector<size_t> index(k);
  for (size_t i = 0; i < k; ++i) index[i] = i;
  std::vector<SiteId> centers(k);
  // One evaluator scores every subset: the event buffer and CDF scratch
  // are allocated once for the whole enumeration.
  cost::ExpectedCostEvaluator evaluator;
  while (true) {
    for (size_t i = 0; i < k; ++i) centers[i] = candidates[index[i]];
    UKC_ASSIGN_OR_RETURN(double value, evaluator.UnassignedCost(dataset, centers));
    if (value < best.expected_cost) {
      best.expected_cost = value;
      best.centers = centers;
    }
    size_t i = k;
    bool done = true;
    while (i-- > 0) {
      if (index[i] + (k - i) < candidates.size()) {
        ++index[i];
        for (size_t j = i + 1; j < k; ++j) index[j] = index[j - 1] + 1;
        done = false;
        break;
      }
    }
    if (done) break;
  }
  return best;
}

Result<UnassignedSolution> LocalSearchUnassigned(
    uncertain::UncertainDataset* dataset,
    const UnassignedSearchOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("LocalSearchUnassigned: null dataset");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("LocalSearchUnassigned: k must be >= 1");
  }

  // Seed with the paper's pipeline under the given configuration.
  UncertainKCenterOptions pipeline_options = options.pipeline;
  pipeline_options.k = options.k;
  if (!dataset->is_euclidean() &&
      pipeline_options.rule == cost::AssignmentRule::kExpectedPoint) {
    pipeline_options.rule = cost::AssignmentRule::kOneCenter;
  }
  UKC_ASSIGN_OR_RETURN(UncertainKCenterSolution seed,
                       SolveUncertainKCenter(dataset, pipeline_options));

  // Candidate pool: caller-provided, or locations + surrogates.
  std::vector<SiteId> pool = options.candidates;
  if (pool.empty()) {
    pool = dataset->LocationSites();
    pool.insert(pool.end(), seed.surrogates.begin(), seed.surrogates.end());
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  }

  UnassignedSolution solution;
  solution.centers = seed.centers;
  // The swap search evaluates |centers| * |pool| candidate sets per
  // round; one evaluator amortizes all exact-sweep scratch across them.
  cost::ExpectedCostEvaluator evaluator;
  UKC_ASSIGN_OR_RETURN(solution.expected_cost,
                       evaluator.UnassignedCost(*dataset, solution.centers));

  for (size_t round = 0; round < options.max_swaps; ++round) {
    double best_value = solution.expected_cost;
    size_t best_position = solution.centers.size();
    SiteId best_replacement = metric::kInvalidSite;
    std::vector<SiteId> trial = solution.centers;
    for (size_t position = 0; position < solution.centers.size(); ++position) {
      const SiteId saved = trial[position];
      for (SiteId candidate : pool) {
        if (candidate == saved) continue;
        trial[position] = candidate;
        UKC_ASSIGN_OR_RETURN(double value,
                             evaluator.UnassignedCost(*dataset, trial));
        if (value < best_value) {
          best_value = value;
          best_position = position;
          best_replacement = candidate;
        }
      }
      trial[position] = saved;
    }
    if (best_replacement == metric::kInvalidSite ||
        solution.expected_cost - best_value <
            1e-12 * std::max(1.0, solution.expected_cost)) {
      break;
    }
    solution.centers[best_position] = best_replacement;
    solution.expected_cost = best_value;
    ++solution.swaps;
  }
  return solution;
}

}  // namespace core
}  // namespace ukc
