#include "core/unassigned.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"
#include "cost/expected_cost.h"
#include "cost/parallel_evaluator.h"
#include "solver/brute_force.h"

namespace ukc {
namespace core {

using metric::SiteId;

Result<UnassignedSolution> ExactUnassignedTiny(
    const uncertain::UncertainDataset& dataset, size_t k,
    const std::vector<SiteId>& candidates, uint64_t max_subsets, int threads) {
  if (k == 0 || k > candidates.size()) {
    return Status::InvalidArgument(
        "ExactUnassignedTiny: need 1 <= k <= |candidates|");
  }
  const uint64_t subsets = solver::BinomialCount(candidates.size(), k);
  if (subsets > max_subsets) {
    return Status::InvalidArgument(
        StrFormat("ExactUnassignedTiny: %llu subsets exceeds the cap",
                  static_cast<unsigned long long>(subsets)));
  }
  UnassignedSolution best;
  best.expected_cost = std::numeric_limits<double>::infinity();
  std::vector<size_t> index(k);
  for (size_t i = 0; i < k; ++i) index[i] = i;
  std::vector<SiteId> centers(k);

  // Subsets are enumerated into fixed-size chunks and scored through
  // the batch path: per-worker evaluators amortize all exact-sweep
  // scratch, and the argmin scan in enumeration order keeps the result
  // independent of the thread count (strict < keeps the first minimum).
  cost::ParallelCandidateEvaluator::Options parallel_options;
  parallel_options.threads = threads;
  cost::ParallelCandidateEvaluator parallel(parallel_options);
  constexpr size_t kChunk = 1024;
  std::vector<std::vector<SiteId>> chunk;
  chunk.reserve(kChunk);
  auto flush = [&]() -> Status {
    if (chunk.empty()) return Status::OK();
    UKC_ASSIGN_OR_RETURN(std::vector<double> values,
                         parallel.UnassignedCostBatch(dataset, chunk));
    for (size_t s = 0; s < chunk.size(); ++s) {
      if (values[s] < best.expected_cost) {
        best.expected_cost = values[s];
        best.centers = chunk[s];
      }
    }
    chunk.clear();
    return Status::OK();
  };
  while (true) {
    for (size_t i = 0; i < k; ++i) centers[i] = candidates[index[i]];
    chunk.push_back(centers);
    if (chunk.size() == kChunk) UKC_RETURN_IF_ERROR(flush());
    size_t i = k;
    bool done = true;
    while (i-- > 0) {
      if (index[i] + (k - i) < candidates.size()) {
        ++index[i];
        for (size_t j = i + 1; j < k; ++j) index[j] = index[j - 1] + 1;
        done = false;
        break;
      }
    }
    if (done) break;
  }
  UKC_RETURN_IF_ERROR(flush());
  return best;
}

Result<UnassignedSolution> LocalSearchUnassigned(
    uncertain::UncertainDataset* dataset,
    const UnassignedSearchOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("LocalSearchUnassigned: null dataset");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("LocalSearchUnassigned: k must be >= 1");
  }

  // Seed with the paper's pipeline under the given configuration,
  // sharing the caller's worker pool unless the pipeline brings its own.
  UncertainKCenterOptions pipeline_options = options.pipeline;
  pipeline_options.k = options.k;
  if (pipeline_options.pool == nullptr) pipeline_options.pool = options.pool;
  if (!dataset->is_euclidean() &&
      pipeline_options.rule == cost::AssignmentRule::kExpectedPoint) {
    pipeline_options.rule = cost::AssignmentRule::kOneCenter;
  }
  UKC_ASSIGN_OR_RETURN(UncertainKCenterSolution seed,
                       SolveUncertainKCenter(dataset, pipeline_options));

  // Candidate pool: caller-provided, or locations + surrogates.
  std::vector<SiteId> pool = options.candidates;
  if (pool.empty()) {
    pool = dataset->LocationSites();
    pool.insert(pool.end(), seed.surrogates.begin(), seed.surrogates.end());
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  }

  UnassignedSolution solution;
  solution.centers = seed.centers;
  // Every round scores all |centers| * |pool| one-center swaps through
  // the swap-structure batch: O(N) per swap instead of O(N k), sharded
  // over the worker pool. The kd path is disabled for the scalar
  // evaluations too, so the running cost and the swap values come from
  // identical (linear-path) arithmetic.
  cost::ParallelCandidateEvaluator::Options parallel_options;
  parallel_options.threads = options.threads;
  parallel_options.pool = options.pool;
  parallel_options.evaluator.kdtree_cutover =
      std::numeric_limits<size_t>::max();
  cost::ParallelCandidateEvaluator parallel(parallel_options);
  cost::ExpectedCostEvaluator::Options scalar_options;
  scalar_options.kdtree_cutover = std::numeric_limits<size_t>::max();
  cost::ExpectedCostEvaluator evaluator(scalar_options);
  UKC_ASSIGN_OR_RETURN(solution.expected_cost,
                       evaluator.UnassignedCost(*dataset, solution.centers));

  for (size_t round = 0; round < options.max_swaps; ++round) {
    UKC_ASSIGN_OR_RETURN(
        std::vector<double> values,
        parallel.SwapCostMatrix(*dataset, solution.centers, pool));
    // Deterministic argmin in (position, candidate) order — the same
    // order the serial nested loops scanned.
    double best_value = solution.expected_cost;
    size_t best_position = solution.centers.size();
    SiteId best_replacement = metric::kInvalidSite;
    for (size_t position = 0; position < solution.centers.size(); ++position) {
      for (size_t c = 0; c < pool.size(); ++c) {
        if (pool[c] == solution.centers[position]) continue;
        const double value = values[position * pool.size() + c];
        if (value < best_value) {
          best_value = value;
          best_position = position;
          best_replacement = pool[c];
        }
      }
    }
    if (best_replacement == metric::kInvalidSite ||
        solution.expected_cost - best_value <
            1e-12 * std::max(1.0, solution.expected_cost)) {
      break;
    }
    solution.centers[best_position] = best_replacement;
    solution.expected_cost = best_value;
    ++solution.swaps;
  }
  return solution;
}

}  // namespace core
}  // namespace ukc
