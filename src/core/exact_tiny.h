// Exact (and near-exact) reference optima for tiny instances.
//
// The paper's guarantees compare against optima that are NP-hard to
// compute, so the experiment harness measures ratios against:
//
//  * ExactRestrictedAssigned   — optimal centers among a candidate site
//    set under a fixed assignment rule (exhaustive subset enumeration).
//  * ExactUnrestrictedAssigned — optimal centers among candidates AND
//    optimal assignment (subset × assignment enumeration). In a finite
//    metric with candidates = all sites this is the true optimum; in
//    Euclidean space it is exact up to the candidate discretization,
//    which DefaultCandidateSites makes dense (locations, expected
//    points, per-point medians, exact cluster centers).
//  * RefineOneCenterContinuous — convex minimization of the k = 1
//    objective E[max_i d(P̂_i, q)] over q ∈ R^d by compass search
//    (the objective is convex, so this converges to the optimum).

#ifndef UKC_CORE_EXACT_TINY_H_
#define UKC_CORE_EXACT_TINY_H_

#include <cstdint>

#include "common/result.h"
#include "cost/assignment.h"
#include "geometry/point.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace core {

/// An exact reference solution.
struct ExactUncertainSolution {
  std::vector<metric::SiteId> centers;
  cost::Assignment assignment;
  double expected_cost = 0.0;
};

/// Enumeration caps.
struct ExactTinyOptions {
  uint64_t max_center_subsets = 2'000'000;
  uint64_t max_assignments = 2'000'000;
};

/// Builds a dense candidate-center set for exact enumeration: every
/// location site, plus (for Euclidean instances) each point's expected
/// point and weighted geometric median, minted into the space. In a
/// finite metric, returns every site of the space.
Result<std::vector<metric::SiteId>> DefaultCandidateSites(
    uncertain::UncertainDataset* dataset);

/// Optimal centers among `candidates` under the fixed assignment rule.
Result<ExactUncertainSolution> ExactRestrictedAssigned(
    uncertain::UncertainDataset* dataset, size_t k, cost::AssignmentRule rule,
    const std::vector<metric::SiteId>& candidates,
    const ExactTinyOptions& options = {});

/// Optimal centers among `candidates` and optimal assignment (all k^n
/// assignments enumerated per subset).
Result<ExactUncertainSolution> ExactUnrestrictedAssigned(
    uncertain::UncertainDataset* dataset, size_t k,
    const std::vector<metric::SiteId>& candidates,
    const ExactTinyOptions& options = {});

/// Evaluates the 1-center objective E[max_i d(P̂_i, q)] at a free point
/// q (Euclidean datasets only), without minting q into the space.
Result<double> OneCenterObjectiveAt(const uncertain::UncertainDataset& dataset,
                                    const geometry::Point& q);

/// Convex minimization of the 1-center objective by compass search from
/// `start`. Returns the refined point; the objective at the result is
/// within ~tolerance of the continuous optimum.
Result<geometry::Point> RefineOneCenterContinuous(
    const uncertain::UncertainDataset& dataset, const geometry::Point& start,
    double initial_step, double tolerance = 1e-9, size_t max_evals = 200'000);

}  // namespace core
}  // namespace ukc

#endif  // UKC_CORE_EXACT_TINY_H_
