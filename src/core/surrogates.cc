#include "core/surrogates.h"

#include <limits>

#include "common/thread_pool.h"
#include "geometry/point.h"
#include "solver/geometric_median.h"

namespace ukc {
namespace core {

using metric::SiteId;

std::string SurrogateKindToString(SurrogateKind kind) {
  switch (kind) {
    case SurrogateKind::kExpectedPoint:
      return "expected-point";
    case SurrogateKind::kOneCenter:
      return "one-center";
    case SurrogateKind::kModal:
      return "modal";
  }
  return "?";
}

namespace {

// P̄_i = Σ_j p_ij P_ij, written into out[0..dim). Streams the dataset's
// flat location arrays against the coordinate arena.
void ExpectedPointCoords(const uncertain::UncertainDataset& dataset,
                         const metric::EuclideanSpace& space, size_t i,
                         double* out) {
  const size_t dim = space.dim();
  std::fill(out, out + dim, 0.0);
  const metric::SiteId* sites = dataset.flat_sites().data();
  const double* probabilities = dataset.flat_probabilities().data();
  const size_t* offsets = dataset.offsets().data();
  for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
    const double* coords = space.coords(sites[l]);
    const double p = probabilities[l];
    for (size_t a = 0; a < dim; ++a) out[a] += coords[a] * p;
  }
}

// P̃_i for a Euclidean space, written into out[0..dim): the weighted
// geometric median. The location coordinates are gathered into flat
// scratch and fed to the allocation-free Weiszfeld core.
Status EuclideanOneCenterCoords(const uncertain::UncertainDataset& dataset,
                                const metric::EuclideanSpace& space, size_t i,
                                std::vector<double>* coords,
                                std::vector<double>* weights, double* out) {
  const size_t dim = space.dim();
  const uncertain::UncertainPointView p = dataset.point(i);
  coords->clear();
  coords->reserve(p.num_locations() * dim);
  for (metric::SiteId site : p.sites()) {
    const double* site_coords = space.coords(site);
    coords->insert(coords->end(), site_coords, site_coords + dim);
  }
  weights->assign(p.probabilities().begin(), p.probabilities().end());
  UKC_ASSIGN_OR_RETURN(
      solver::GeometricMedianResult median,
      solver::WeightedGeometricMedianFlat(coords->data(), p.num_locations(),
                                          dim, weights->data()));
  for (size_t a = 0; a < dim; ++a) out[a] = median.median[a];
  return Status::OK();
}

// P̃_i for a finite metric: argmin over candidate sites of the expected
// distance.
SiteId FiniteOneCenterSite(const uncertain::UncertainDataset& dataset, size_t i,
                           OneCenterCandidates candidates) {
  const metric::MetricSpace& space = dataset.space();
  const uncertain::UncertainPointView p = dataset.point(i);
  SiteId best = metric::kInvalidSite;
  double best_value = std::numeric_limits<double>::infinity();
  auto consider = [&](SiteId q) {
    const double value = p.ExpectedDistanceTo(space, q);
    if (value < best_value) {
      best_value = value;
      best = q;
    }
  };
  if (candidates == OneCenterCandidates::kAllSites) {
    for (SiteId q = 0; q < space.num_sites(); ++q) consider(q);
  } else {
    for (SiteId site : p.sites()) consider(site);
  }
  return best;
}

}  // namespace

Result<std::vector<SiteId>> BuildSurrogates(uncertain::UncertainDataset* dataset,
                                            const SurrogateOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("BuildSurrogates: null dataset");
  }
  const size_t n = dataset->n();
  metric::EuclideanSpace* euclidean = dataset->euclidean();
  if (options.kind == SurrogateKind::kExpectedPoint && euclidean == nullptr) {
    return Status::FailedPrecondition(
        "expected-point surrogate requires a Euclidean space");
  }
  ScopedPool pool(options.pool, options.threads);

  // Euclidean surrogates are new points: compute every point's
  // coordinates in parallel (pure reads of the arena), then mint them
  // serially in point order — the arena may reallocate while growing,
  // so no reader can run concurrently with AddCoords. Serial minting
  // also keeps the produced site ids thread-count independent.
  const bool euclidean_coords =
      euclidean != nullptr && (options.kind == SurrogateKind::kExpectedPoint ||
                               options.kind == SurrogateKind::kOneCenter);
  if (euclidean_coords) {
    const size_t dim = euclidean->dim();
    std::vector<double> surrogate_coords(n * dim);
    std::vector<Status> statuses(n);
    // Weiszfeld gather scratch, one pair per worker, reused across all
    // of that worker's points.
    std::vector<std::vector<double>> coord_scratch(pool->num_threads());
    std::vector<std::vector<double>> weight_scratch(pool->num_threads());
    pool->ParallelFor(n, [&](int worker, size_t i) {
      double* out = surrogate_coords.data() + i * dim;
      if (options.kind == SurrogateKind::kExpectedPoint) {
        ExpectedPointCoords(*dataset, *euclidean, i, out);
      } else {
        statuses[i] = EuclideanOneCenterCoords(*dataset, *euclidean, i,
                                               &coord_scratch[worker],
                                               &weight_scratch[worker], out);
      }
    });
    for (Status& status : statuses) {
      if (!status.ok()) return std::move(status);
    }
    std::vector<SiteId> surrogates;
    surrogates.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      surrogates.push_back(
          euclidean->AddCoords(surrogate_coords.data() + i * dim));
    }
    return surrogates;
  }

  // Finite-metric / modal surrogates are existing sites: fully parallel.
  std::vector<SiteId> surrogates(n, metric::kInvalidSite);
  pool->ParallelFor(n, [&](int, size_t i) {
    switch (options.kind) {
      case SurrogateKind::kOneCenter:
        surrogates[i] = FiniteOneCenterSite(*dataset, i, options.candidates);
        break;
      case SurrogateKind::kModal:
        surrogates[i] = dataset->point(i).ModalLocation().site;
        break;
      case SurrogateKind::kExpectedPoint:
        break;  // Handled above.
    }
  });
  return surrogates;
}

Result<SiteId> ExpectedPointOneCenter(uncertain::UncertainDataset* dataset,
                                      size_t point_index) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("ExpectedPointOneCenter: null dataset");
  }
  if (point_index >= dataset->n()) {
    return Status::InvalidArgument("ExpectedPointOneCenter: index out of range");
  }
  metric::EuclideanSpace* space = dataset->euclidean();
  if (space == nullptr) {
    return Status::FailedPrecondition(
        "expected-point surrogate requires a Euclidean space");
  }
  std::vector<double> coords(space->dim());
  ExpectedPointCoords(*dataset, *space, point_index, coords.data());
  return space->AddCoords(coords.data());
}

}  // namespace core
}  // namespace ukc
