#include "core/surrogates.h"

#include <limits>

#include "geometry/point.h"
#include "solver/geometric_median.h"

namespace ukc {
namespace core {

using metric::SiteId;

std::string SurrogateKindToString(SurrogateKind kind) {
  switch (kind) {
    case SurrogateKind::kExpectedPoint:
      return "expected-point";
    case SurrogateKind::kOneCenter:
      return "one-center";
    case SurrogateKind::kModal:
      return "modal";
  }
  return "?";
}

namespace {

// P̄_i = Σ_j p_ij P_ij, minted into the Euclidean space. `scratch` holds
// the accumulating mean so the per-point loop never allocates.
Result<SiteId> ExpectedPointSite(uncertain::UncertainDataset* dataset,
                                 size_t i, std::vector<double>* scratch) {
  metric::EuclideanSpace* space = dataset->euclidean();
  if (space == nullptr) {
    return Status::FailedPrecondition(
        "expected-point surrogate requires a Euclidean space");
  }
  const size_t dim = space->dim();
  scratch->assign(dim, 0.0);
  const uncertain::UncertainPoint& p = dataset->point(i);
  for (const uncertain::Location& loc : p.locations()) {
    const double* coords = space->coords(loc.site);
    for (size_t a = 0; a < dim; ++a) {
      (*scratch)[a] += coords[a] * loc.probability;
    }
  }
  return space->AddCoords(scratch->data());
}

// P̃_i for a Euclidean space: the weighted geometric median. The
// location coordinates are gathered into flat scratch and fed to the
// allocation-free Weiszfeld core.
Result<SiteId> EuclideanOneCenterSite(uncertain::UncertainDataset* dataset,
                                      size_t i, std::vector<double>* coords,
                                      std::vector<double>* weights) {
  metric::EuclideanSpace* space = dataset->euclidean();
  UKC_CHECK(space != nullptr);
  const size_t dim = space->dim();
  const uncertain::UncertainPoint& p = dataset->point(i);
  coords->clear();
  weights->clear();
  coords->reserve(p.num_locations() * dim);
  weights->reserve(p.num_locations());
  for (const uncertain::Location& loc : p.locations()) {
    const double* site_coords = space->coords(loc.site);
    coords->insert(coords->end(), site_coords, site_coords + dim);
    weights->push_back(loc.probability);
  }
  UKC_ASSIGN_OR_RETURN(
      solver::GeometricMedianResult median,
      solver::WeightedGeometricMedianFlat(coords->data(), p.num_locations(),
                                          dim, weights->data()));
  return space->AddPoint(median.median);
}

// P̃_i for a finite metric: argmin over candidate sites of the expected
// distance.
SiteId FiniteOneCenterSite(const uncertain::UncertainDataset& dataset, size_t i,
                           OneCenterCandidates candidates) {
  const metric::MetricSpace& space = dataset.space();
  const uncertain::UncertainPoint& p = dataset.point(i);
  SiteId best = metric::kInvalidSite;
  double best_value = std::numeric_limits<double>::infinity();
  auto consider = [&](SiteId q) {
    const double value = p.ExpectedDistanceTo(space, q);
    if (value < best_value) {
      best_value = value;
      best = q;
    }
  };
  if (candidates == OneCenterCandidates::kAllSites) {
    for (SiteId q = 0; q < space.num_sites(); ++q) consider(q);
  } else {
    for (const uncertain::Location& loc : p.locations()) consider(loc.site);
  }
  return best;
}

}  // namespace

Result<std::vector<SiteId>> BuildSurrogates(uncertain::UncertainDataset* dataset,
                                            const SurrogateOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("BuildSurrogates: null dataset");
  }
  std::vector<SiteId> surrogates;
  surrogates.reserve(dataset->n());
  std::vector<double> coord_scratch;
  std::vector<double> weight_scratch;
  for (size_t i = 0; i < dataset->n(); ++i) {
    switch (options.kind) {
      case SurrogateKind::kExpectedPoint: {
        UKC_ASSIGN_OR_RETURN(SiteId site,
                             ExpectedPointSite(dataset, i, &coord_scratch));
        surrogates.push_back(site);
        break;
      }
      case SurrogateKind::kOneCenter: {
        if (dataset->is_euclidean()) {
          UKC_ASSIGN_OR_RETURN(
              SiteId site, EuclideanOneCenterSite(dataset, i, &coord_scratch,
                                                  &weight_scratch));
          surrogates.push_back(site);
        } else {
          surrogates.push_back(
              FiniteOneCenterSite(*dataset, i, options.candidates));
        }
        break;
      }
      case SurrogateKind::kModal: {
        surrogates.push_back(dataset->point(i).ModalLocation().site);
        break;
      }
    }
  }
  return surrogates;
}

Result<SiteId> ExpectedPointOneCenter(uncertain::UncertainDataset* dataset,
                                      size_t point_index) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("ExpectedPointOneCenter: null dataset");
  }
  if (point_index >= dataset->n()) {
    return Status::InvalidArgument("ExpectedPointOneCenter: index out of range");
  }
  std::vector<double> scratch;
  return ExpectedPointSite(dataset, point_index, &scratch);
}

}  // namespace core
}  // namespace ukc
