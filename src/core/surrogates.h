// Surrogate construction — the heart of the paper's approach.
//
// Each uncertain point P_i is replaced by one *certain* point:
//   P̄_i  (expected point)      = Σ_j p_ij · P_ij          (Euclidean)
//   P̃_i  (single-point 1-center) = argmin_q E[d(P̂_i, q)]  (any metric)
// The deterministic k-center of the surrogates then drives all of the
// paper's approximation guarantees.
//
// Note P̃_i minimizes the *expected distance*: for a single uncertain
// point, Ecost(q) = Σ_j p_ij d(P_ij, q), so its "1-center" is its
// weighted 1-median (geometric median in Euclidean space; best site in
// a finite metric).

#ifndef UKC_CORE_SURROGATES_H_
#define UKC_CORE_SURROGATES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "uncertain/dataset.h"

namespace ukc {

class ThreadPool;

namespace core {

/// Which certain point stands in for each uncertain point.
enum class SurrogateKind {
  /// P̄_i, Euclidean only. O(z) per point (Theorem 2.1's object).
  kExpectedPoint,
  /// P̃_i. Euclidean: weighted geometric median via Weiszfeld.
  /// Finite metric: the site minimizing the expected distance.
  kOneCenter,
  /// The most-probable location (baseline; carries no guarantee).
  kModal,
};

/// Short stable name for reports.
std::string SurrogateKindToString(SurrogateKind kind);

/// How P̃ candidates are searched in a finite metric space.
enum class OneCenterCandidates {
  /// Every site of the space — the true minimizer, as the theorems
  /// assume. O(|X| z) per point.
  kAllSites,
  /// Only the point's own locations. 2-approximate minimizer (the
  /// median-to-vertex argument); weakens Lemma 3.5's constant from 3 to
  /// 4 but is z/|X| times cheaper. Exposed for the ablation bench.
  kOwnLocations,
};

/// Options for BuildSurrogates.
struct SurrogateOptions {
  SurrogateKind kind = SurrogateKind::kExpectedPoint;
  OneCenterCandidates candidates = OneCenterCandidates::kAllSites;
  /// Workers sharding the per-point surrogate computation (<= 0 =
  /// hardware threads). Surrogates are computed in parallel but minted
  /// into the space serially in point order, so the produced site ids
  /// and coordinates do not depend on the thread count.
  int threads = 1;
  /// Borrowed shared worker pool; when set, `threads` is ignored and no
  /// private pool is constructed (see ScopedPool in common/thread_pool.h).
  ThreadPool* pool = nullptr;
};

/// Computes one surrogate site per uncertain point. Euclidean surrogate
/// points (P̄, geometric medians) are minted into the dataset's space,
/// which therefore grows; finite-metric surrogates are existing sites.
Result<std::vector<metric::SiteId>> BuildSurrogates(
    uncertain::UncertainDataset* dataset, const SurrogateOptions& options);

/// Theorem 2.1: the expected point of any one uncertain point (the
/// first by convention) is a 2-approximate 1-center for the whole
/// instance. This helper returns that site (Euclidean only).
Result<metric::SiteId> ExpectedPointOneCenter(uncertain::UncertainDataset* dataset,
                                              size_t point_index = 0);

}  // namespace core
}  // namespace ukc

#endif  // UKC_CORE_SURROGATES_H_
