#include "core/exact_tiny.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/strings.h"
#include "cost/expected_cost.h"
#include "core/surrogates.h"
#include "solver/brute_force.h"
#include "solver/geometric_median.h"

namespace ukc {
namespace core {

using metric::SiteId;

Result<std::vector<SiteId>> DefaultCandidateSites(
    uncertain::UncertainDataset* dataset) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("DefaultCandidateSites: null dataset");
  }
  if (!dataset->is_euclidean()) {
    // Finite metric: centers may be any site of the space, so every
    // site is a candidate and the enumeration below is truly exact.
    std::vector<SiteId> all(static_cast<size_t>(dataset->space().num_sites()));
    for (size_t s = 0; s < all.size(); ++s) all[s] = static_cast<SiteId>(s);
    return all;
  }
  std::vector<SiteId> candidates = dataset->LocationSites();
  SurrogateOptions expected_options;
  expected_options.kind = SurrogateKind::kExpectedPoint;
  UKC_ASSIGN_OR_RETURN(std::vector<SiteId> expected,
                       BuildSurrogates(dataset, expected_options));
  candidates.insert(candidates.end(), expected.begin(), expected.end());
  SurrogateOptions median_options;
  median_options.kind = SurrogateKind::kOneCenter;
  UKC_ASSIGN_OR_RETURN(std::vector<SiteId> medians,
                       BuildSurrogates(dataset, median_options));
  candidates.insert(candidates.end(), medians.begin(), medians.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

namespace {

// Calls visit(centers) for every k-subset of candidates; stops early if
// visit returns a non-OK status.
Status ForEachSubset(const std::vector<SiteId>& candidates, size_t k,
                     const std::function<Status(const std::vector<SiteId>&)>& visit) {
  std::vector<size_t> index(k);
  for (size_t i = 0; i < k; ++i) index[i] = i;
  std::vector<SiteId> centers(k);
  while (true) {
    for (size_t i = 0; i < k; ++i) centers[i] = candidates[index[i]];
    UKC_RETURN_IF_ERROR(visit(centers));
    if (!solver::NextCombination(&index, candidates.size())) {
      return Status::OK();
    }
  }
}

}  // namespace

Result<ExactUncertainSolution> ExactRestrictedAssigned(
    uncertain::UncertainDataset* dataset, size_t k, cost::AssignmentRule rule,
    const std::vector<SiteId>& candidates, const ExactTinyOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("ExactRestrictedAssigned: null dataset");
  }
  if (k == 0 || k > candidates.size()) {
    return Status::InvalidArgument(
        "ExactRestrictedAssigned: need 1 <= k <= |candidates|");
  }
  const uint64_t subsets = solver::BinomialCount(candidates.size(), k);
  if (subsets > options.max_center_subsets) {
    return Status::InvalidArgument(
        StrFormat("ExactRestrictedAssigned: %llu center subsets exceeds cap",
                  static_cast<unsigned long long>(subsets)));
  }

  // Prebuild the surrogate sites the rule needs, once.
  std::vector<SiteId> rule_surrogates;
  if (rule == cost::AssignmentRule::kExpectedPoint ||
      rule == cost::AssignmentRule::kOneCenter) {
    SurrogateOptions surrogate_options;
    surrogate_options.kind = rule == cost::AssignmentRule::kExpectedPoint
                                 ? SurrogateKind::kExpectedPoint
                                 : SurrogateKind::kOneCenter;
    UKC_ASSIGN_OR_RETURN(rule_surrogates,
                         BuildSurrogates(dataset, surrogate_options));
  }

  ExactUncertainSolution best;
  best.expected_cost = std::numeric_limits<double>::infinity();
  Status status = ForEachSubset(
      candidates, k, [&](const std::vector<SiteId>& centers) -> Status {
        Result<cost::Assignment> assignment =
            rule == cost::AssignmentRule::kExpectedDistance
                ? cost::AssignExpectedDistance(*dataset, centers)
                : cost::AssignBySurrogate(*dataset, rule_surrogates, centers);
        UKC_RETURN_IF_ERROR(assignment.status());
        UKC_ASSIGN_OR_RETURN(double value,
                             cost::ExactAssignedCost(*dataset, assignment.value()));
        if (value < best.expected_cost) {
          best.expected_cost = value;
          best.centers = centers;
          best.assignment = std::move(assignment).value();
        }
        return Status::OK();
      });
  UKC_RETURN_IF_ERROR(status);
  return best;
}

Result<ExactUncertainSolution> ExactUnrestrictedAssigned(
    uncertain::UncertainDataset* dataset, size_t k,
    const std::vector<SiteId>& candidates, const ExactTinyOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("ExactUnrestrictedAssigned: null dataset");
  }
  if (k == 0 || k > candidates.size()) {
    return Status::InvalidArgument(
        "ExactUnrestrictedAssigned: need 1 <= k <= |candidates|");
  }
  const size_t n = dataset->n();
  const uint64_t subsets = solver::BinomialCount(candidates.size(), k);
  if (subsets > options.max_center_subsets) {
    return Status::InvalidArgument(
        StrFormat("ExactUnrestrictedAssigned: %llu center subsets exceeds cap",
                  static_cast<unsigned long long>(subsets)));
  }
  // k^n assignments per subset.
  double assignments_log = static_cast<double>(n) * std::log2(static_cast<double>(k));
  if (assignments_log > 62 ||
      static_cast<uint64_t>(std::pow(static_cast<double>(k), static_cast<double>(n))) >
          options.max_assignments) {
    return Status::InvalidArgument(
        "ExactUnrestrictedAssigned: k^n assignments exceeds cap");
  }

  ExactUncertainSolution best;
  best.expected_cost = std::numeric_limits<double>::infinity();
  Status status = ForEachSubset(
      candidates, k, [&](const std::vector<SiteId>& centers) -> Status {
        cost::Assignment assignment(n, centers[0]);
        std::vector<size_t> choice(n, 0);
        while (true) {
          UKC_ASSIGN_OR_RETURN(double value,
                               cost::ExactAssignedCost(*dataset, assignment));
          if (value < best.expected_cost) {
            best.expected_cost = value;
            best.centers = centers;
            best.assignment = assignment;
          }
          size_t i = 0;
          for (; i < n; ++i) {
            if (++choice[i] < k) {
              assignment[i] = centers[choice[i]];
              break;
            }
            choice[i] = 0;
            assignment[i] = centers[0];
          }
          if (i == n) break;
        }
        return Status::OK();
      });
  UKC_RETURN_IF_ERROR(status);
  return best;
}

Result<double> OneCenterObjectiveAt(const uncertain::UncertainDataset& dataset,
                                    const geometry::Point& q) {
  const metric::EuclideanSpace* space = dataset.euclidean();
  if (space == nullptr) {
    return Status::FailedPrecondition(
        "OneCenterObjectiveAt: requires a Euclidean dataset");
  }
  std::vector<cost::DiscreteDistribution> distributions(dataset.n());
  for (size_t i = 0; i < dataset.n(); ++i) {
    const uncertain::UncertainPointView p = dataset.point(i);
    distributions[i].reserve(p.num_locations());
    for (const uncertain::Location& loc : p.locations()) {
      distributions[i].emplace_back(space->DistanceToPoint(loc.site, q),
                                    loc.probability);
    }
  }
  return cost::ExpectedMaxOfIndependent(std::move(distributions));
}

Result<geometry::Point> RefineOneCenterContinuous(
    const uncertain::UncertainDataset& dataset, const geometry::Point& start,
    double initial_step, double tolerance, size_t max_evals) {
  if (!(initial_step > 0.0)) {
    return Status::InvalidArgument(
        "RefineOneCenterContinuous: initial_step must be positive");
  }
  geometry::Point current = start;
  UKC_ASSIGN_OR_RETURN(double value, OneCenterObjectiveAt(dataset, current));
  double step = initial_step;
  size_t evals = 0;
  const size_t dim = current.dim();
  while (step > tolerance && evals < max_evals) {
    bool improved = false;
    for (size_t axis = 0; axis < dim && evals < max_evals; ++axis) {
      for (double sign : {+1.0, -1.0}) {
        geometry::Point trial = current;
        trial[axis] += sign * step;
        UKC_ASSIGN_OR_RETURN(double trial_value,
                             OneCenterObjectiveAt(dataset, trial));
        ++evals;
        if (trial_value < value) {
          value = trial_value;
          current = trial;
          improved = true;
          break;
        }
      }
    }
    if (!improved) step /= 2.0;
  }
  return current;
}

}  // namespace core
}  // namespace ukc
