#include "core/bounds.h"

namespace ukc {
namespace core {

std::string BoundReferenceToString(BoundReference reference) {
  switch (reference) {
    case BoundReference::kRestrictedOptimum:
      return "restricted-optimum";
    case BoundReference::kUnrestrictedOptimum:
      return "unrestricted-optimum";
  }
  return "?";
}

std::vector<BoundClaim> BoundsFor(bool euclidean, SurrogateKind surrogate,
                                  cost::AssignmentRule rule,
                                  double certain_factor, double median_factor) {
  const double f = certain_factor;
  const double m = median_factor;
  std::vector<BoundClaim> claims;
  if (f <= 0.0) return claims;

  if (surrogate == SurrogateKind::kExpectedPoint && euclidean) {
    if (rule == cost::AssignmentRule::kExpectedDistance) {
      claims.push_back(BoundClaim{4.0 + f, BoundReference::kRestrictedOptimum,
                                  "Theorem 2.2 (ED)"});
      claims.push_back(BoundClaim{4.0 + f, BoundReference::kUnrestrictedOptimum,
                                  "Theorem 2.4"});
    } else if (rule == cost::AssignmentRule::kExpectedPoint) {
      claims.push_back(BoundClaim{2.0 + f, BoundReference::kRestrictedOptimum,
                                  "Theorem 2.2 (EP)"});
      claims.push_back(BoundClaim{2.0 + f, BoundReference::kUnrestrictedOptimum,
                                  "Theorem 2.5"});
    }
    return claims;
  }

  if (surrogate == SurrogateKind::kOneCenter) {
    // The metric theorems hold in every metric space, Euclidean included.
    if (rule == cost::AssignmentRule::kExpectedDistance) {
      claims.push_back(BoundClaim{2.0 + 3.0 * m + f * (1.0 + m),
                                  BoundReference::kUnrestrictedOptimum,
                                  "Theorem 2.6"});
    } else if (rule == cost::AssignmentRule::kOneCenter) {
      claims.push_back(BoundClaim{2.0 + m + f * (1.0 + m),
                                  BoundReference::kUnrestrictedOptimum,
                                  "Theorem 2.7"});
    }
    return claims;
  }

  return claims;
}

}  // namespace core
}  // namespace ukc
