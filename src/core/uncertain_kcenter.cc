#include "core/uncertain_kcenter.h"

#include <cmath>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "cost/expected_cost.h"

namespace ukc {
namespace core {

Result<UncertainKCenterSolution> SolveUncertainKCenter(
    uncertain::UncertainDataset* dataset,
    const UncertainKCenterOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("SolveUncertainKCenter: null dataset");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("SolveUncertainKCenter: k must be >= 1");
  }
  const bool euclidean = dataset->is_euclidean();
  const SurrogateKind surrogate_kind = options.surrogate.value_or(
      euclidean ? SurrogateKind::kExpectedPoint : SurrogateKind::kOneCenter);
  if (surrogate_kind == SurrogateKind::kExpectedPoint && !euclidean) {
    return Status::InvalidArgument(
        "SolveUncertainKCenter: the expected-point surrogate requires a "
        "Euclidean space");
  }
  if (options.rule == cost::AssignmentRule::kExpectedPoint && !euclidean) {
    return Status::InvalidArgument(
        "SolveUncertainKCenter: the EP assignment rule requires a Euclidean "
        "space");
  }

  UncertainKCenterSolution solution;
  solution.unassigned_cost = std::nan("");

  // One worker pool for the whole run: borrowed from the caller when
  // options.pool is set, otherwise constructed once here and shared by
  // the surrogate and assignment stages (threads = 1 stays a zero-cost
  // inline pool).
  ScopedPool pool(options.pool, options.threads);

  // 1. Surrogates.
  UKC_RETURN_IF_ERROR(options.deadline.Check("SolveUncertainKCenter[surrogates]"));
  Stopwatch stopwatch;
  SurrogateOptions surrogate_options;
  surrogate_options.kind = surrogate_kind;
  surrogate_options.candidates = options.one_center_candidates;
  surrogate_options.pool = pool.get();
  UKC_ASSIGN_OR_RETURN(solution.surrogates,
                       BuildSurrogates(dataset, surrogate_options));
  solution.timings.surrogate_seconds = stopwatch.ElapsedSeconds();

  // 2. Deterministic k-center on the surrogates, sharing the run's
  // pool with solvers that parallelize (gonzalez-refined).
  UKC_RETURN_IF_ERROR(options.deadline.Check("SolveUncertainKCenter[cluster]"));
  stopwatch.Reset();
  metric::MetricSpace* space = dataset->shared_space().get();
  solver::CertainSolverOptions certain_options = options.certain;
  if (certain_options.pool == nullptr) certain_options.pool = pool.get();
  UKC_ASSIGN_OR_RETURN(
      solver::KCenterSolution certain,
      solver::SolveCertainKCenter(space, solution.surrogates, options.k,
                                  certain_options));
  solution.centers = certain.centers;
  solution.certain_radius = certain.radius;
  solution.certain_algorithm = certain.algorithm;
  solution.certain_factor = certain.approx_factor;
  solution.timings.clustering_seconds = stopwatch.ElapsedSeconds();

  // 3. Assignment rule.
  UKC_RETURN_IF_ERROR(options.deadline.Check("SolveUncertainKCenter[assign]"));
  stopwatch.Reset();
  switch (options.rule) {
    case cost::AssignmentRule::kExpectedDistance: {
      UKC_ASSIGN_OR_RETURN(
          solution.assignment,
          cost::AssignExpectedDistance(*dataset, solution.centers,
                                       options.threads, pool.get()));
      break;
    }
    case cost::AssignmentRule::kExpectedPoint: {
      // EP assigns by the expected point, which must be built even when
      // another surrogate drives the clustering.
      std::vector<metric::SiteId> expected_points;
      if (surrogate_kind == SurrogateKind::kExpectedPoint) {
        expected_points = solution.surrogates;
      } else {
        SurrogateOptions ep_options;
        ep_options.kind = SurrogateKind::kExpectedPoint;
        ep_options.pool = pool.get();
        UKC_ASSIGN_OR_RETURN(expected_points,
                             BuildSurrogates(dataset, ep_options));
      }
      UKC_ASSIGN_OR_RETURN(
          solution.assignment,
          cost::AssignBySurrogate(*dataset, expected_points, solution.centers));
      break;
    }
    case cost::AssignmentRule::kOneCenter: {
      std::vector<metric::SiteId> one_centers;
      if (surrogate_kind == SurrogateKind::kOneCenter) {
        one_centers = solution.surrogates;
      } else {
        SurrogateOptions oc_options;
        oc_options.kind = SurrogateKind::kOneCenter;
        oc_options.candidates = options.one_center_candidates;
        oc_options.pool = pool.get();
        UKC_ASSIGN_OR_RETURN(one_centers, BuildSurrogates(dataset, oc_options));
      }
      UKC_ASSIGN_OR_RETURN(
          solution.assignment,
          cost::AssignBySurrogate(*dataset, one_centers, solution.centers));
      break;
    }
  }
  solution.timings.assignment_seconds = stopwatch.ElapsedSeconds();

  // 4. Exact evaluation (one evaluator shares scratch across both
  // objectives; its segmented sweep borrows the run's shared pool).
  stopwatch.Reset();
  cost::ExpectedCostEvaluator::Options evaluator_options;
  evaluator_options.sweep_pool = pool.get();
  evaluator_options.deadline = options.deadline;
  cost::ExpectedCostEvaluator evaluator(evaluator_options);
  UKC_ASSIGN_OR_RETURN(solution.expected_cost,
                       evaluator.AssignedCost(*dataset, solution.assignment));
  if (options.evaluate_unassigned) {
    UKC_ASSIGN_OR_RETURN(solution.unassigned_cost,
                         evaluator.UnassignedCost(*dataset, solution.centers));
  }
  solution.timings.evaluation_seconds = stopwatch.ElapsedSeconds();

  // Guarantee bookkeeping. The own-locations P̃ shortcut weakens the
  // median factor to 2 (see bounds.h); the Euclidean Weiszfeld P̃ and
  // the all-sites finite-metric P̃ are exact minimizers (m = 1).
  const double median_factor =
      (!euclidean && surrogate_kind == SurrogateKind::kOneCenter &&
       options.one_center_candidates == OneCenterCandidates::kOwnLocations)
          ? 2.0
          : 1.0;
  solution.bounds = BoundsFor(euclidean, surrogate_kind, options.rule,
                              solution.certain_factor, median_factor);
  return solution;
}

}  // namespace core
}  // namespace ukc
