// Uncertain k-means — the second extension the paper's conclusion
// announces as future work.
//
// Objective (assigned version, squared distances):
//
//   EcostA = E_R[ Σ_i d(P̂_i, A(P_i))² ] = Σ_i E[ d(P̂_i, A(P_i))² ]
//
// In Euclidean space the paper's expected-point surrogate is *lossless*
// for this objective, by the bias–variance identity
//
//   E||P̂_i − c||² = ||P̄_i − c||² + V_i,   V_i := E||P̂_i − P̄_i||²
//
// so the uncertain k-means cost equals the deterministic k-means cost
// of the expected points plus the constant Σ_i V_i: the optimal
// centers, the optimal assignment (nearest center to P̄_i), and even
// the cost gap to optimal all transfer exactly. This module implements
// the reduction (Lloyd + k-means++ on P̄), the exact cost evaluator the
// tests validate the identity with, and a tiny-instance exact
// enumeration.

#ifndef UKC_CORE_KMEANS_H_
#define UKC_CORE_KMEANS_H_

#include "common/result.h"
#include "cost/assignment.h"
#include "solver/lloyd.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace core {

/// Options for SolveUncertainKMeans.
struct UncertainKMeansOptions {
  size_t k = 1;
  solver::KMeansOptions lloyd;
};

/// Output of the uncertain k-means solver.
struct UncertainKMeansSolution {
  /// Centers, minted as sites of the dataset's space.
  std::vector<metric::SiteId> centers;
  cost::Assignment assignment;
  /// Exact expected sum-of-squared-distances cost.
  double expected_cost = 0.0;
  /// The irreducible variance term Σ_i E||P̂_i − P̄_i||²: no choice of
  /// centers can push the cost below it.
  double variance_floor = 0.0;
  /// The deterministic k-means objective on the expected points
  /// (expected_cost == surrogate_objective + variance_floor).
  double surrogate_objective = 0.0;
};

/// Exact expected k-means cost of an assignment (sum of per-point
/// expected squared distances; linearity of expectation).
Result<double> ExactKMeansCost(const uncertain::UncertainDataset& dataset,
                               const cost::Assignment& assignment);

/// Σ_i E||P̂_i − P̄_i||², the additive constant of the reduction.
Result<double> KMeansVarianceFloor(const uncertain::UncertainDataset& dataset);

/// Solves uncertain k-means by the lossless expected-point reduction
/// (Euclidean datasets only). Lloyd's local-optimum caveat carries over
/// unchanged from the deterministic problem — the *reduction* is exact,
/// the plugged k-means solver is the usual heuristic.
Result<UncertainKMeansSolution> SolveUncertainKMeans(
    uncertain::UncertainDataset* dataset, const UncertainKMeansOptions& options);

}  // namespace core
}  // namespace ukc

#endif  // UKC_CORE_KMEANS_H_
