#include "core/line_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "cost/expected_cost.h"
#include "solver/kcenter_1d.h"

namespace ukc {
namespace core {

namespace {

// Evaluates EcostA for center coordinates and a fixed cluster labeling
// (label[i] = which center serves point i), without minting sites.
double EvaluateLabeled(const uncertain::UncertainDataset& dataset,
                       const metric::EuclideanSpace& space,
                       const std::vector<double>& centers,
                       const std::vector<size_t>& label) {
  std::vector<cost::DiscreteDistribution> distributions(dataset.n());
  for (size_t i = 0; i < dataset.n(); ++i) {
    const uncertain::UncertainPointView p = dataset.point(i);
    const double c = centers[label[i]];
    distributions[i].reserve(p.num_locations());
    for (const uncertain::Location& loc : p.locations()) {
      distributions[i].emplace_back(std::abs(space.coords(loc.site)[0] - c),
                                    loc.probability);
    }
  }
  return cost::ExpectedMaxOfIndependent(std::move(distributions));
}

// ED labeling: point -> center with minimal expected |x - c|.
std::vector<size_t> EDLabels(const uncertain::UncertainDataset& dataset,
                             const metric::EuclideanSpace& space,
                             const std::vector<double>& centers) {
  std::vector<size_t> label(dataset.n(), 0);
  for (size_t i = 0; i < dataset.n(); ++i) {
    const uncertain::UncertainPointView p = dataset.point(i);
    double best = std::numeric_limits<double>::infinity();
    for (size_t g = 0; g < centers.size(); ++g) {
      double expected = 0.0;
      for (const uncertain::Location& loc : p.locations()) {
        expected += loc.probability * std::abs(space.coords(loc.site)[0] - centers[g]);
      }
      if (expected < best) {
        best = expected;
        label[i] = g;
      }
    }
  }
  return label;
}

// Ternary search for the gth center on a convex objective (others
// fixed).
double OptimizeCenter(const uncertain::UncertainDataset& dataset,
                      const metric::EuclideanSpace& space,
                      std::vector<double>* centers,
                      const std::vector<size_t>& label, size_t g, double lo,
                      double hi, size_t iterations) {
  auto objective = [&](double c) {
    const double saved = (*centers)[g];
    (*centers)[g] = c;
    const double value = EvaluateLabeled(dataset, space, *centers, label);
    (*centers)[g] = saved;
    return value;
  };
  for (size_t it = 0; it < iterations; ++it) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (objective(m1) <= objective(m2)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  const double best = (lo + hi) / 2.0;
  (*centers)[g] = best;
  return EvaluateLabeled(dataset, space, *centers, label);
}

}  // namespace

Result<LineSolution> SolveLineKCenterED(uncertain::UncertainDataset* dataset,
                                        const LineSolverOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("SolveLineKCenterED: null dataset");
  }
  metric::EuclideanSpace* space = dataset->euclidean();
  if (space == nullptr || space->dim() != 1) {
    return Status::InvalidArgument(
        "SolveLineKCenterED: requires a 1-dimensional Euclidean dataset");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("SolveLineKCenterED: k must be >= 1");
  }

  // All location coordinates; bounds for the ternary searches.
  std::vector<double> coordinates;
  coordinates.reserve(dataset->total_locations());
  for (size_t i = 0; i < dataset->n(); ++i) {
    for (const uncertain::Location& loc : dataset->point(i).locations()) {
      coordinates.push_back(space->coords(loc.site)[0]);
    }
  }
  const double lo = *std::min_element(coordinates.begin(), coordinates.end());
  const double hi = *std::max_element(coordinates.begin(), coordinates.end());

  // Starting center sets: the exact deterministic 1D k-center over all
  // locations, then random restarts.
  std::vector<std::vector<double>> starts;
  UKC_ASSIGN_OR_RETURN(solver::KCenter1DSolution deterministic,
                       solver::KCenter1D(coordinates, options.k));
  std::vector<double> seed_centers = deterministic.centers;
  seed_centers.resize(options.k, (lo + hi) / 2.0);  // Pad if < k clusters.
  starts.push_back(seed_centers);
  Rng rng(options.seed);
  for (size_t r = 0; r < options.restarts; ++r) {
    std::vector<double> random_centers(options.k);
    for (double& c : random_centers) c = rng.UniformDouble(lo, hi);
    starts.push_back(std::move(random_centers));
  }

  std::vector<double> best_centers;
  std::vector<size_t> best_labels;
  double best_cost = std::numeric_limits<double>::infinity();
  for (auto& centers : starts) {
    std::vector<size_t> label = EDLabels(*dataset, *space, centers);
    double cost = EvaluateLabeled(*dataset, *space, centers, label);
    for (size_t round = 0; round < options.max_rounds; ++round) {
      // Recenter each cluster by convex 1D minimization.
      for (size_t g = 0; g < centers.size(); ++g) {
        cost = OptimizeCenter(*dataset, *space, &centers, label, g, lo, hi,
                              options.ternary_iterations);
      }
      // Refresh the ED assignment.
      std::vector<size_t> next_label = EDLabels(*dataset, *space, centers);
      const double next_cost =
          EvaluateLabeled(*dataset, *space, centers, next_label);
      const bool label_changed = next_label != label;
      label = std::move(next_label);
      const double improvement = cost - next_cost;
      cost = next_cost;
      if (!label_changed && improvement < 1e-13 * std::max(1.0, cost)) break;
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_centers = centers;
      best_labels = label;
    }
  }

  LineSolution solution;
  std::sort(best_centers.begin(), best_centers.end());
  solution.center_coordinates = best_centers;
  solution.centers.reserve(best_centers.size());
  for (double c : best_centers) {
    solution.centers.push_back(space->AddPoint(geometry::Point{c}));
  }
  UKC_ASSIGN_OR_RETURN(solution.assignment,
                       cost::AssignExpectedDistance(*dataset, solution.centers));
  UKC_ASSIGN_OR_RETURN(solution.expected_cost,
                       cost::ExactAssignedCost(*dataset, solution.assignment));
  return solution;
}

}  // namespace core
}  // namespace ukc
