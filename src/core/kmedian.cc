#include "core/kmedian.h"

#include "common/strings.h"
#include "core/surrogates.h"

namespace ukc {
namespace core {

using metric::SiteId;

Result<double> ExactKMedianCost(const uncertain::UncertainDataset& dataset,
                                const cost::Assignment& assignment) {
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument("ExactKMedianCost: assignment size mismatch");
  }
  const metric::MetricSpace& space = dataset.space();
  double total = 0.0;
  for (size_t i = 0; i < dataset.n(); ++i) {
    if (assignment[i] < 0 || assignment[i] >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("ExactKMedianCost: assignment[%zu]=%d out of range", i,
                    assignment[i]));
    }
    // Linearity of expectation: the sum objective is the sum of the
    // per-point expected distances.
    total += dataset.point(i).ExpectedDistanceTo(space, assignment[i]);
  }
  return total;
}

namespace {

// cost[i][f] = E[d(P̂_i, candidates[f])].
std::vector<std::vector<double>> ExpectedDistanceMatrix(
    const uncertain::UncertainDataset& dataset,
    const std::vector<SiteId>& candidates) {
  std::vector<std::vector<double>> cost(dataset.n());
  for (size_t i = 0; i < dataset.n(); ++i) {
    cost[i].reserve(candidates.size());
    for (SiteId f : candidates) {
      cost[i].push_back(dataset.point(i).ExpectedDistanceTo(dataset.space(), f));
    }
  }
  return cost;
}

Result<UncertainKMedianSolution> FromMatrixSolution(
    const uncertain::UncertainDataset& dataset,
    const std::vector<SiteId>& candidates,
    const solver::KMedianSolution& matrix_solution) {
  UncertainKMedianSolution solution;
  solution.centers.reserve(matrix_solution.facilities.size());
  for (size_t f : matrix_solution.facilities) {
    solution.centers.push_back(candidates[f]);
  }
  solution.assignment.resize(dataset.n());
  for (size_t i = 0; i < dataset.n(); ++i) {
    solution.assignment[i] = candidates[matrix_solution.assignment[i]];
  }
  UKC_ASSIGN_OR_RETURN(solution.expected_cost,
                       ExactKMedianCost(dataset, solution.assignment));
  return solution;
}

}  // namespace

Result<UncertainKMedianSolution> SolveUncertainKMedian(
    uncertain::UncertainDataset* dataset, const std::vector<SiteId>& candidates,
    const UncertainKMedianOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("SolveUncertainKMedian: null dataset");
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("SolveUncertainKMedian: no candidates");
  }
  if (options.k == 0 || options.k > candidates.size()) {
    return Status::InvalidArgument(
        "SolveUncertainKMedian: need 1 <= k <= |candidates|");
  }

  switch (options.method) {
    case KMedianMethod::kExpectedMatrixLocalSearch: {
      const auto cost = ExpectedDistanceMatrix(*dataset, candidates);
      UKC_ASSIGN_OR_RETURN(
          solver::KMedianSolution matrix_solution,
          solver::KMedianLocalSearch(cost, options.k, options.local_search));
      return FromMatrixSolution(*dataset, candidates, matrix_solution);
    }
    case KMedianMethod::kExpectedMatrixExact: {
      const auto cost = ExpectedDistanceMatrix(*dataset, candidates);
      UKC_ASSIGN_OR_RETURN(
          solver::KMedianSolution matrix_solution,
          solver::KMedianExact(cost, options.k, options.max_exact_subsets));
      return FromMatrixSolution(*dataset, candidates, matrix_solution);
    }
    case KMedianMethod::kSurrogateLocalSearch: {
      // The paper's recipe: cluster the P̃ surrogates, assign by ED.
      SurrogateOptions surrogate_options;
      surrogate_options.kind = SurrogateKind::kOneCenter;
      UKC_ASSIGN_OR_RETURN(std::vector<SiteId> surrogates,
                           BuildSurrogates(dataset, surrogate_options));
      // Deterministic k-median of the surrogates over the candidates.
      std::vector<std::vector<double>> cost(surrogates.size());
      for (size_t i = 0; i < surrogates.size(); ++i) {
        cost[i].reserve(candidates.size());
        for (SiteId f : candidates) {
          cost[i].push_back(dataset->space().Distance(surrogates[i], f));
        }
      }
      UKC_ASSIGN_OR_RETURN(
          solver::KMedianSolution matrix_solution,
          solver::KMedianLocalSearch(cost, options.k, options.local_search));
      UncertainKMedianSolution solution;
      for (size_t f : matrix_solution.facilities) {
        solution.centers.push_back(candidates[f]);
      }
      // ED assignment is optimal for the sum objective given centers.
      UKC_ASSIGN_OR_RETURN(
          solution.assignment,
          cost::AssignExpectedDistance(*dataset, solution.centers));
      UKC_ASSIGN_OR_RETURN(solution.expected_cost,
                           ExactKMedianCost(*dataset, solution.assignment));
      return solution;
    }
  }
  return Status::Internal("SolveUncertainKMedian: unknown method");
}

}  // namespace core
}  // namespace ukc
