#include "uncertain/dataset.h"

#include <algorithm>

#include "common/strings.h"

namespace ukc {
namespace uncertain {

Result<UncertainDataset> UncertainDataset::Build(
    std::shared_ptr<metric::MetricSpace> space,
    std::vector<UncertainPoint> points) {
  if (space == nullptr) {
    return Status::InvalidArgument("UncertainDataset: null metric space");
  }
  if (points.empty()) {
    return Status::InvalidArgument("UncertainDataset: no uncertain points");
  }
  const metric::SiteId num_sites = space->num_sites();
  for (size_t i = 0; i < points.size(); ++i) {
    for (const Location& loc : points[i].locations()) {
      if (loc.site < 0 || loc.site >= num_sites) {
        return Status::InvalidArgument(
            StrFormat("UncertainDataset: point %zu references site %d, but the "
                      "space has %d sites",
                      i, loc.site, num_sites));
      }
    }
  }
  return UncertainDataset(std::move(space), points);
}

UncertainDataset::UncertainDataset(std::shared_ptr<metric::MetricSpace> space,
                                   const std::vector<UncertainPoint>& points)
    : space_(std::move(space)) {
  euclidean_ = dynamic_cast<metric::EuclideanSpace*>(space_.get());
  size_t total = 0;
  for (const UncertainPoint& p : points) total += p.num_locations();
  sites_.reserve(total);
  probabilities_.reserve(total);
  offsets_.reserve(points.size() + 1);
  offsets_.push_back(0);
  for (const UncertainPoint& p : points) {
    for (const Location& loc : p.locations()) {
      sites_.push_back(loc.site);
      probabilities_.push_back(loc.probability);
    }
    offsets_.push_back(sites_.size());
    max_locations_ = std::max(max_locations_, p.num_locations());
  }
}

std::vector<metric::SiteId> UncertainDataset::LocationSites() const {
  std::vector<metric::SiteId> sites(sites_.begin(), sites_.end());
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  return sites;
}

double UncertainDataset::MaxSupportDiameter() const {
  double worst = 0.0;
  for (size_t i = 0; i < n(); ++i) {
    worst = std::max(worst, point(i).SupportDiameter(*space_));
  }
  return worst;
}

std::string UncertainDataset::ToString() const {
  return StrFormat("UncertainDataset(n=%zu, z=%zu, space=%s)", n(),
                   max_locations(), space_->Name().c_str());
}

}  // namespace uncertain
}  // namespace ukc
