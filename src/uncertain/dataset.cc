#include "uncertain/dataset.h"

#include <algorithm>

#include "common/strings.h"

namespace ukc {
namespace uncertain {

Result<UncertainDataset> UncertainDataset::Build(
    std::shared_ptr<metric::MetricSpace> space,
    std::vector<UncertainPoint> points) {
  if (space == nullptr) {
    return Status::InvalidArgument("UncertainDataset: null metric space");
  }
  if (points.empty()) {
    return Status::InvalidArgument("UncertainDataset: no uncertain points");
  }
  const metric::SiteId num_sites = space->num_sites();
  for (size_t i = 0; i < points.size(); ++i) {
    for (const Location& loc : points[i].locations()) {
      if (loc.site < 0 || loc.site >= num_sites) {
        return Status::InvalidArgument(
            StrFormat("UncertainDataset: point %zu references site %d, but the "
                      "space has %d sites",
                      i, loc.site, num_sites));
      }
    }
  }
  return UncertainDataset(std::move(space), std::move(points));
}

UncertainDataset::UncertainDataset(std::shared_ptr<metric::MetricSpace> space,
                                   std::vector<UncertainPoint> points)
    : space_(std::move(space)), points_(std::move(points)) {
  euclidean_ = dynamic_cast<metric::EuclideanSpace*>(space_.get());
}

size_t UncertainDataset::max_locations() const {
  size_t z = 0;
  for (const auto& p : points_) z = std::max(z, p.num_locations());
  return z;
}

size_t UncertainDataset::total_locations() const {
  size_t total = 0;
  for (const auto& p : points_) total += p.num_locations();
  return total;
}

std::vector<metric::SiteId> UncertainDataset::LocationSites() const {
  std::vector<metric::SiteId> sites;
  sites.reserve(total_locations());
  for (const auto& p : points_) {
    for (const Location& loc : p.locations()) sites.push_back(loc.site);
  }
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  return sites;
}

double UncertainDataset::MaxSupportDiameter() const {
  double worst = 0.0;
  for (const auto& p : points_) {
    worst = std::max(worst, p.SupportDiameter(*space_));
  }
  return worst;
}

std::string UncertainDataset::ToString() const {
  return StrFormat("UncertainDataset(n=%zu, z=%zu, space=%s)", n(),
                   max_locations(), space_->Name().c_str());
}

}  // namespace uncertain
}  // namespace ukc
