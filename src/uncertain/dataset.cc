#include "uncertain/dataset.h"

#include <algorithm>

#include "common/strings.h"

namespace ukc {
namespace uncertain {

Result<UncertainDataset> UncertainDataset::Build(
    std::shared_ptr<metric::MetricSpace> space,
    std::vector<UncertainPoint> points) {
  if (space == nullptr) {
    return Status::InvalidArgument("UncertainDataset: null metric space");
  }
  if (points.empty()) {
    return Status::InvalidArgument("UncertainDataset: no uncertain points");
  }
  const metric::SiteId num_sites = space->num_sites();
  for (size_t i = 0; i < points.size(); ++i) {
    for (const Location& loc : points[i].locations()) {
      if (loc.site < 0 || loc.site >= num_sites) {
        return Status::InvalidArgument(
            StrFormat("UncertainDataset: point %zu references site %d, but the "
                      "space has %d sites",
                      i, loc.site, num_sites));
      }
    }
  }
  return UncertainDataset(std::move(space), points);
}

UncertainDataset::UncertainDataset(std::shared_ptr<metric::MetricSpace> space,
                                   const std::vector<UncertainPoint>& points)
    : space_(std::move(space)) {
  euclidean_ = dynamic_cast<metric::EuclideanSpace*>(space_.get());
  size_t total = 0;
  for (const UncertainPoint& p : points) total += p.num_locations();
  sites_.reserve(total);
  probabilities_.reserve(total);
  offsets_.reserve(points.size() + 1);
  offsets_.push_back(0);
  for (const UncertainPoint& p : points) {
    for (const Location& loc : p.locations()) {
      sites_.push_back(loc.site);
      probabilities_.push_back(loc.probability);
    }
    offsets_.push_back(sites_.size());
    max_locations_ = std::max(max_locations_, p.num_locations());
  }
}

Status UncertainDataset::AppendPoint(const UncertainPoint& point) {
  if (point.num_locations() == 0) {
    return Status::InvalidArgument("AppendPoint: point has no locations");
  }
  const metric::SiteId num_sites = space_->num_sites();
  for (const Location& loc : point.locations()) {
    if (loc.site < 0 || loc.site >= num_sites) {
      return Status::InvalidArgument(
          StrFormat("AppendPoint: point references site %d, but the space "
                    "has %d sites",
                    loc.site, num_sites));
    }
  }
  for (const Location& loc : point.locations()) {
    sites_.push_back(loc.site);
    probabilities_.push_back(loc.probability);
  }
  offsets_.push_back(sites_.size());
  max_locations_ = std::max(max_locations_, point.num_locations());
  return Status::OK();
}

Status UncertainDataset::RemovePoint(size_t i) {
  if (i >= n()) {
    return Status::InvalidArgument(
        StrFormat("RemovePoint: point %zu out of range (n=%zu)", i, n()));
  }
  if (n() == 1) {
    return Status::FailedPrecondition(
        "RemovePoint: the dataset cannot become empty");
  }
  const size_t begin = offsets_[i];
  const size_t end = offsets_[i + 1];
  const size_t span = end - begin;
  sites_.erase(sites_.begin() + begin, sites_.begin() + end);
  probabilities_.erase(probabilities_.begin() + begin,
                       probabilities_.begin() + end);
  offsets_.erase(offsets_.begin() + i + 1);
  for (size_t j = i + 1; j < offsets_.size(); ++j) offsets_[j] -= span;
  // z is a max over points — removal can lower it, so recompute exactly
  // (O(n), negligible next to the caller's per-edit cost work).
  max_locations_ = 0;
  for (size_t j = 0; j < n(); ++j) {
    max_locations_ = std::max(max_locations_, offsets_[j + 1] - offsets_[j]);
  }
  return Status::OK();
}

std::vector<metric::SiteId> UncertainDataset::LocationSites() const {
  std::vector<metric::SiteId> sites(sites_.begin(), sites_.end());
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  return sites;
}

double UncertainDataset::MaxSupportDiameter() const {
  double worst = 0.0;
  for (size_t i = 0; i < n(); ++i) {
    worst = std::max(worst, point(i).SupportDiameter(*space_));
  }
  return worst;
}

std::string UncertainDataset::ToString() const {
  return StrFormat("UncertainDataset(n=%zu, z=%zu, space=%s)", n(),
                   max_locations(), space_->Name().c_str());
}

}  // namespace uncertain
}  // namespace ukc
