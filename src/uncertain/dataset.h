// An uncertain k-center instance: a metric space plus n independent
// uncertain points over its sites.
//
// Storage is flat (SoA): every location of every point lives in two
// contiguous parallel arrays (flat_sites / flat_probabilities) with a
// CSR-style offsets array delimiting the points, so the event-fill and
// sampling hot loops stream straight through both arrays with no
// per-location indirection. UncertainPoint is the *build-time* boundary
// type only; point(i) hands out an UncertainPointView over the arrays.

#ifndef UKC_UNCERTAIN_DATASET_H_
#define UKC_UNCERTAIN_DATASET_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "metric/euclidean_space.h"
#include "metric/metric_space.h"
#include "uncertain/uncertain_point.h"

namespace ukc {
namespace uncertain {

/// Owns the metric space and the uncertain points. The space is held by
/// shared_ptr because algorithms mint new sites (expected points,
/// candidate centers) into Euclidean spaces; site ids are append-only so
/// existing ids stay valid.
class UncertainDataset {
 public:
  /// Validates that every referenced site exists in the space, then
  /// flattens the points into the parallel location arrays.
  static Result<UncertainDataset> Build(std::shared_ptr<metric::MetricSpace> space,
                                        std::vector<UncertainPoint> points);

  /// Number of uncertain points (the paper's n).
  size_t n() const { return offsets_.size() - 1; }

  /// The paper's z = max_i z_i.
  size_t max_locations() const { return max_locations_; }

  /// Total number of location records Σ_i z_i.
  size_t total_locations() const { return sites_.size(); }

  /// View of point i over the flat arrays. Cheap; returned by value.
  UncertainPointView point(size_t i) const {
    UKC_DCHECK_LT(i, n());
    return UncertainPointView(sites_.data() + offsets_[i],
                              probabilities_.data() + offsets_[i],
                              offsets_[i + 1] - offsets_[i]);
  }

  /// Number of locations of point i (z_i).
  size_t num_locations(size_t i) const {
    UKC_DCHECK_LT(i, n());
    return offsets_[i + 1] - offsets_[i];
  }

  /// The flat location arrays. Locations of point i occupy the index
  /// range [offsets()[i], offsets()[i+1]); offsets() has n()+1 entries.
  std::span<const metric::SiteId> flat_sites() const { return sites_; }
  std::span<const double> flat_probabilities() const { return probabilities_; }
  std::span<const size_t> offsets() const { return offsets_; }

  const metric::MetricSpace& space() const { return *space_; }
  const std::shared_ptr<metric::MetricSpace>& shared_space() const {
    return space_;
  }

  /// The space as a mutable EuclideanSpace, or nullptr when the instance
  /// lives in a non-Euclidean metric. Euclidean-only algorithms
  /// (expected point, Weiszfeld refinement) require this.
  metric::EuclideanSpace* euclidean() const { return euclidean_; }

  /// True iff the space is Euclidean (more precisely, a normed R^d).
  bool is_euclidean() const { return euclidean_ != nullptr; }

  /// Appends one uncertain point at the END of the instance (churn
  /// insert). Validates the point's sites against the space, then
  /// extends the flat arrays in place: the new point gets index n()-1
  /// and the flat location range [old total_locations(), new
  /// total_locations()) — ids larger than every existing one, which is
  /// what makes the incremental swap-table merge order-exact (see
  /// cost/expected_cost_evaluator.h EditSwapBase). Existing views and
  /// spans are invalidated.
  Status AppendPoint(const UncertainPoint& point);

  /// Removes point i compactly (churn delete): later points shift down
  /// by one index, the flat arrays close the gap, and retained
  /// site/probability values are untouched — so the renumbering of
  /// retained flat ids is strictly monotone, the property the
  /// incremental swap-table compaction relies on. The dataset can never
  /// become empty (kFailedPrecondition). max_locations() is recomputed
  /// exactly. Existing views and spans are invalidated.
  Status RemovePoint(size_t i);

  /// The deduplicated union of all location sites, sorted ascending.
  /// This is the natural candidate-center set for discrete solvers.
  std::vector<metric::SiteId> LocationSites() const;

  /// max_i SupportDiameter(P_i): how "spread out" the uncertainty is.
  double MaxSupportDiameter() const;

  std::string ToString() const;

 private:
  UncertainDataset(std::shared_ptr<metric::MetricSpace> space,
                   const std::vector<UncertainPoint>& points);

  std::shared_ptr<metric::MetricSpace> space_;
  metric::EuclideanSpace* euclidean_ = nullptr;  // Borrowed from space_.

  // Flat location storage: parallel site/probability arrays plus the
  // CSR offsets (n + 1 entries).
  std::vector<metric::SiteId> sites_;
  std::vector<double> probabilities_;
  std::vector<size_t> offsets_;
  size_t max_locations_ = 0;
};

}  // namespace uncertain
}  // namespace ukc

#endif  // UKC_UNCERTAIN_DATASET_H_
