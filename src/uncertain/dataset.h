// An uncertain k-center instance: a metric space plus n independent
// uncertain points over its sites.

#ifndef UKC_UNCERTAIN_DATASET_H_
#define UKC_UNCERTAIN_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "metric/euclidean_space.h"
#include "metric/metric_space.h"
#include "uncertain/uncertain_point.h"

namespace ukc {
namespace uncertain {

/// Owns the metric space and the uncertain points. The space is held by
/// shared_ptr because algorithms mint new sites (expected points,
/// candidate centers) into Euclidean spaces; site ids are append-only so
/// existing ids stay valid.
class UncertainDataset {
 public:
  /// Validates that every referenced site exists in the space.
  static Result<UncertainDataset> Build(std::shared_ptr<metric::MetricSpace> space,
                                        std::vector<UncertainPoint> points);

  /// Number of uncertain points (the paper's n).
  size_t n() const { return points_.size(); }

  /// The paper's z = max_i z_i; 0 for an empty dataset.
  size_t max_locations() const;

  /// Total number of location records Σ_i z_i.
  size_t total_locations() const;

  const UncertainPoint& point(size_t i) const {
    UKC_DCHECK_LT(i, points_.size());
    return points_[i];
  }
  const std::vector<UncertainPoint>& points() const { return points_; }

  const metric::MetricSpace& space() const { return *space_; }
  const std::shared_ptr<metric::MetricSpace>& shared_space() const {
    return space_;
  }

  /// The space as a mutable EuclideanSpace, or nullptr when the instance
  /// lives in a non-Euclidean metric. Euclidean-only algorithms
  /// (expected point, Weiszfeld refinement) require this.
  metric::EuclideanSpace* euclidean() const { return euclidean_; }

  /// True iff the space is Euclidean (more precisely, a normed R^d).
  bool is_euclidean() const { return euclidean_ != nullptr; }

  /// The deduplicated union of all location sites, sorted ascending.
  /// This is the natural candidate-center set for discrete solvers.
  std::vector<metric::SiteId> LocationSites() const;

  /// max_i SupportDiameter(P_i): how "spread out" the uncertainty is.
  double MaxSupportDiameter() const;

  std::string ToString() const;

 private:
  UncertainDataset(std::shared_ptr<metric::MetricSpace> space,
                   std::vector<UncertainPoint> points);

  std::shared_ptr<metric::MetricSpace> space_;
  metric::EuclideanSpace* euclidean_ = nullptr;  // Borrowed from space_.
  std::vector<UncertainPoint> points_;
};

}  // namespace uncertain
}  // namespace ukc

#endif  // UKC_UNCERTAIN_DATASET_H_
