#include "uncertain/uncertain_point.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/strings.h"

namespace ukc {
namespace uncertain {

Status ValidateDistribution(std::span<const double> probabilities) {
  if (probabilities.empty()) {
    return Status::InvalidArgument("distribution has no locations");
  }
  double total = 0.0;
  for (size_t j = 0; j < probabilities.size(); ++j) {
    const double p = probabilities[j];
    if (!(p > 0.0) || std::isinf(p)) {
      return Status::InvalidArgument(
          StrFormat("location %zu has probability %g; probabilities must be "
                    "positive and finite",
                    j, p));
    }
    total += p;
  }
  if (std::abs(total - 1.0) > UncertainPoint::kProbabilityTolerance) {
    return Status::InvalidArgument(
        StrFormat("probabilities sum to %.12g, want 1", total));
  }
  return Status::OK();
}

Location UncertainPointView::ModalLocation() const {
  size_t best = 0;
  for (size_t j = 1; j < count_; ++j) {
    if (probabilities_[j] > probabilities_[best]) best = j;
  }
  return Location{sites_[best], probabilities_[best]};
}

double UncertainPointView::ExpectedDistanceTo(const metric::MetricSpace& space,
                                              metric::SiteId q) const {
  double total = 0.0;
  for (size_t j = 0; j < count_; ++j) {
    total += probabilities_[j] * space.Distance(sites_[j], q);
  }
  return total;
}

metric::SiteId UncertainPointView::MinExpectedDistanceSite(
    const metric::MetricSpace& space,
    const std::vector<metric::SiteId>& candidates, double* min_expected) const {
  metric::SiteId best = metric::kInvalidSite;
  double best_value = std::numeric_limits<double>::infinity();
  for (metric::SiteId c : candidates) {
    const double value = ExpectedDistanceTo(space, c);
    if (value < best_value) {
      best_value = value;
      best = c;
    }
  }
  if (min_expected != nullptr) *min_expected = best_value;
  return best;
}

double UncertainPointView::SupportDiameter(
    const metric::MetricSpace& space) const {
  double worst = 0.0;
  for (size_t a = 0; a < count_; ++a) {
    for (size_t b = a + 1; b < count_; ++b) {
      worst = std::max(worst, space.Distance(sites_[a], sites_[b]));
    }
  }
  return worst;
}

std::string UncertainPointView::ToString() const {
  std::string out = "{";
  for (size_t j = 0; j < count_; ++j) {
    if (j > 0) out += ", ";
    out += StrFormat("site %d: %.4g", sites_[j], probabilities_[j]);
  }
  out += "}";
  return out;
}

Result<UncertainPoint> UncertainPoint::Build(std::vector<Location> locations) {
  if (locations.empty()) {
    return Status::InvalidArgument("UncertainPoint: no locations");
  }
  std::vector<double> raw_probabilities;
  raw_probabilities.reserve(locations.size());
  for (size_t j = 0; j < locations.size(); ++j) {
    if (locations[j].site < 0) {
      return Status::InvalidArgument(
          StrFormat("UncertainPoint: location %zu has invalid site %d", j,
                    locations[j].site));
    }
    raw_probabilities.push_back(locations[j].probability);
  }
  UKC_RETURN_IF_ERROR(
      ValidateDistribution(raw_probabilities).WithPrefix("UncertainPoint"));
  // Merge duplicate sites.
  std::map<metric::SiteId, double> merged;
  for (const Location& loc : locations) {
    merged[loc.site] += loc.probability;
  }
  std::vector<metric::SiteId> sites;
  std::vector<double> probabilities;
  sites.reserve(merged.size());
  probabilities.reserve(merged.size());
  for (const auto& [site, prob] : merged) {
    sites.push_back(site);
    probabilities.push_back(prob);
  }
  return UncertainPoint(std::move(sites), std::move(probabilities));
}

UncertainPoint UncertainPoint::Certain(metric::SiteId site) {
  UKC_CHECK_GE(site, 0);
  return UncertainPoint({site}, {1.0});
}

}  // namespace uncertain
}  // namespace ukc
