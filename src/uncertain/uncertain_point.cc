#include "uncertain/uncertain_point.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/strings.h"

namespace ukc {
namespace uncertain {

Location UncertainPointView::ModalLocation() const {
  size_t best = 0;
  for (size_t j = 1; j < count_; ++j) {
    if (probabilities_[j] > probabilities_[best]) best = j;
  }
  return Location{sites_[best], probabilities_[best]};
}

double UncertainPointView::ExpectedDistanceTo(const metric::MetricSpace& space,
                                              metric::SiteId q) const {
  double total = 0.0;
  for (size_t j = 0; j < count_; ++j) {
    total += probabilities_[j] * space.Distance(sites_[j], q);
  }
  return total;
}

metric::SiteId UncertainPointView::MinExpectedDistanceSite(
    const metric::MetricSpace& space,
    const std::vector<metric::SiteId>& candidates, double* min_expected) const {
  metric::SiteId best = metric::kInvalidSite;
  double best_value = std::numeric_limits<double>::infinity();
  for (metric::SiteId c : candidates) {
    const double value = ExpectedDistanceTo(space, c);
    if (value < best_value) {
      best_value = value;
      best = c;
    }
  }
  if (min_expected != nullptr) *min_expected = best_value;
  return best;
}

double UncertainPointView::SupportDiameter(
    const metric::MetricSpace& space) const {
  double worst = 0.0;
  for (size_t a = 0; a < count_; ++a) {
    for (size_t b = a + 1; b < count_; ++b) {
      worst = std::max(worst, space.Distance(sites_[a], sites_[b]));
    }
  }
  return worst;
}

std::string UncertainPointView::ToString() const {
  std::string out = "{";
  for (size_t j = 0; j < count_; ++j) {
    if (j > 0) out += ", ";
    out += StrFormat("site %d: %.4g", sites_[j], probabilities_[j]);
  }
  out += "}";
  return out;
}

Result<UncertainPoint> UncertainPoint::Build(std::vector<Location> locations) {
  if (locations.empty()) {
    return Status::InvalidArgument("UncertainPoint: no locations");
  }
  // Merge duplicate sites, validating as we go.
  std::map<metric::SiteId, double> merged;
  double total = 0.0;
  for (size_t j = 0; j < locations.size(); ++j) {
    const Location& loc = locations[j];
    if (loc.site < 0) {
      return Status::InvalidArgument(
          StrFormat("UncertainPoint: location %zu has invalid site %d", j,
                    loc.site));
    }
    if (!(loc.probability > 0.0) || std::isinf(loc.probability)) {
      return Status::InvalidArgument(
          StrFormat("UncertainPoint: location %zu has probability %g; "
                    "probabilities must be positive and finite",
                    j, loc.probability));
    }
    merged[loc.site] += loc.probability;
    total += loc.probability;
  }
  if (std::abs(total - 1.0) > kProbabilityTolerance) {
    return Status::InvalidArgument(
        StrFormat("UncertainPoint: probabilities sum to %.12g, want 1", total));
  }
  std::vector<metric::SiteId> sites;
  std::vector<double> probabilities;
  sites.reserve(merged.size());
  probabilities.reserve(merged.size());
  for (const auto& [site, prob] : merged) {
    sites.push_back(site);
    probabilities.push_back(prob);
  }
  return UncertainPoint(std::move(sites), std::move(probabilities));
}

UncertainPoint UncertainPoint::Certain(metric::SiteId site) {
  UKC_CHECK_GE(site, 0);
  return UncertainPoint({site}, {1.0});
}

}  // namespace uncertain
}  // namespace ukc
