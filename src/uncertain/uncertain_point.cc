#include "uncertain/uncertain_point.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/strings.h"

namespace ukc {
namespace uncertain {

Result<UncertainPoint> UncertainPoint::Build(std::vector<Location> locations) {
  if (locations.empty()) {
    return Status::InvalidArgument("UncertainPoint: no locations");
  }
  // Merge duplicate sites, validating as we go.
  std::map<metric::SiteId, double> merged;
  double total = 0.0;
  for (size_t j = 0; j < locations.size(); ++j) {
    const Location& loc = locations[j];
    if (loc.site < 0) {
      return Status::InvalidArgument(
          StrFormat("UncertainPoint: location %zu has invalid site %d", j,
                    loc.site));
    }
    if (!(loc.probability > 0.0) || std::isinf(loc.probability)) {
      return Status::InvalidArgument(
          StrFormat("UncertainPoint: location %zu has probability %g; "
                    "probabilities must be positive and finite",
                    j, loc.probability));
    }
    merged[loc.site] += loc.probability;
    total += loc.probability;
  }
  if (std::abs(total - 1.0) > kProbabilityTolerance) {
    return Status::InvalidArgument(
        StrFormat("UncertainPoint: probabilities sum to %.12g, want 1", total));
  }
  std::vector<Location> clean;
  clean.reserve(merged.size());
  for (const auto& [site, prob] : merged) {
    clean.push_back(Location{site, prob});
  }
  return UncertainPoint(std::move(clean));
}

UncertainPoint UncertainPoint::Certain(metric::SiteId site) {
  UKC_CHECK_GE(site, 0);
  return UncertainPoint({Location{site, 1.0}});
}

const Location& UncertainPoint::ModalLocation() const {
  size_t best = 0;
  for (size_t j = 1; j < locations_.size(); ++j) {
    if (locations_[j].probability > locations_[best].probability) best = j;
  }
  return locations_[best];
}

double UncertainPoint::ExpectedDistanceTo(const metric::MetricSpace& space,
                                          metric::SiteId q) const {
  double total = 0.0;
  for (const Location& loc : locations_) {
    total += loc.probability * space.Distance(loc.site, q);
  }
  return total;
}

metric::SiteId UncertainPoint::MinExpectedDistanceSite(
    const metric::MetricSpace& space,
    const std::vector<metric::SiteId>& candidates, double* min_expected) const {
  metric::SiteId best = metric::kInvalidSite;
  double best_value = std::numeric_limits<double>::infinity();
  for (metric::SiteId c : candidates) {
    const double value = ExpectedDistanceTo(space, c);
    if (value < best_value) {
      best_value = value;
      best = c;
    }
  }
  if (min_expected != nullptr) *min_expected = best_value;
  return best;
}

double UncertainPoint::SupportDiameter(const metric::MetricSpace& space) const {
  double worst = 0.0;
  for (size_t a = 0; a < locations_.size(); ++a) {
    for (size_t b = a + 1; b < locations_.size(); ++b) {
      worst = std::max(worst,
                       space.Distance(locations_[a].site, locations_[b].site));
    }
  }
  return worst;
}

std::string UncertainPoint::ToString() const {
  std::string out = "{";
  for (size_t j = 0; j < locations_.size(); ++j) {
    if (j > 0) out += ", ";
    out += StrFormat("site %d: %.4g", locations_[j].site,
                     locations_[j].probability);
  }
  out += "}";
  return out;
}

}  // namespace uncertain
}  // namespace ukc
