// Sampling realizations R = (P̂_1, ..., P̂_n) of an uncertain dataset.
// Backed by per-point alias tables, so each realization costs O(n).

#ifndef UKC_UNCERTAIN_SAMPLER_H_
#define UKC_UNCERTAIN_SAMPLER_H_

#include <vector>

#include "common/alias_table.h"
#include "common/rng.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace uncertain {

/// A realization assigns each uncertain point the index of the location
/// it materialized at (index into UncertainPoint::locations()).
using Realization = std::vector<size_t>;

/// Draws independent realizations of a dataset.
class RealizationSampler {
 public:
  /// Precomputes alias tables. The dataset must outlive the sampler.
  explicit RealizationSampler(const UncertainDataset& dataset);

  /// Draws a fresh realization.
  Realization Sample(Rng& rng) const;

  /// Draws into an existing buffer (resized to n), avoiding allocation
  /// in Monte-Carlo loops.
  void SampleInto(Rng& rng, Realization* out) const;

  /// Draws the location index of point i alone. The building block for
  /// callers that fold over points without materializing a Realization
  /// (e.g. the Monte-Carlo estimator's max-over-points loop).
  size_t SamplePoint(Rng& rng, size_t i) const {
    UKC_DCHECK_LT(i, tables_.size());
    return tables_[i].Sample(rng);
  }

  /// Translates a realization into the concrete site of point i.
  metric::SiteId SiteOf(const Realization& realization, size_t i) const;

 private:
  const UncertainDataset& dataset_;
  std::vector<AliasTable> tables_;
};

}  // namespace uncertain
}  // namespace ukc

#endif  // UKC_UNCERTAIN_SAMPLER_H_
