#include "uncertain/generators.h"

#include <cmath>

#include "geometry/point.h"
#include "metric/euclidean_space.h"

namespace ukc {
namespace uncertain {

namespace {

using geometry::Point;
using metric::EuclideanSpace;
using metric::SiteId;

Point RandomPointInBox(Rng& rng, size_t dim, double extent) {
  Point p(dim);
  for (size_t i = 0; i < dim; ++i) p[i] = rng.UniformDouble(0.0, extent);
  return p;
}

Point GaussianAround(Rng& rng, const Point& center, double stddev) {
  Point p(center.dim());
  for (size_t i = 0; i < center.dim(); ++i) {
    p[i] = rng.Gaussian(center[i], stddev);
  }
  return p;
}

// Builds the uncertain point for a list of freshly minted sites.
Result<UncertainPoint> MakePoint(const std::vector<SiteId>& sites,
                                 const std::vector<double>& probabilities) {
  std::vector<Location> locations;
  locations.reserve(sites.size());
  for (size_t j = 0; j < sites.size(); ++j) {
    locations.push_back(Location{sites[j], probabilities[j]});
  }
  return UncertainPoint::Build(std::move(locations));
}

}  // namespace

std::vector<double> MakeProbabilities(size_t z, ProbabilityShape shape,
                                      Rng& rng) {
  UKC_CHECK_GE(z, 1u);
  std::vector<double> probabilities(z, 0.0);
  switch (shape) {
    case ProbabilityShape::kUniform: {
      for (double& p : probabilities) p = 1.0 / static_cast<double>(z);
      break;
    }
    case ProbabilityShape::kRandom: {
      double total = 0.0;
      for (double& p : probabilities) {
        p = rng.Exponential(1.0);
        total += p;
      }
      for (double& p : probabilities) p /= total;
      break;
    }
    case ProbabilityShape::kSpiky: {
      if (z == 1) {
        probabilities[0] = 1.0;
        break;
      }
      const double dominant = 0.9;
      const size_t star = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(z) - 1));
      double total = 0.0;
      for (size_t j = 0; j < z; ++j) {
        if (j == star) continue;
        probabilities[j] = rng.Exponential(1.0);
        total += probabilities[j];
      }
      for (size_t j = 0; j < z; ++j) {
        if (j == star) {
          probabilities[j] = dominant;
        } else {
          probabilities[j] *= (1.0 - dominant) / total;
        }
      }
      break;
    }
  }
  // Fix any rounding drift exactly: scale so the sum is 1.
  double total = 0.0;
  for (double p : probabilities) total += p;
  for (double& p : probabilities) p /= total;
  return probabilities;
}

Result<UncertainDataset> GenerateUniformInstance(
    const EuclideanInstanceOptions& options, double extent) {
  Rng rng(options.seed);
  auto space = std::make_shared<EuclideanSpace>(options.dim);
  std::vector<UncertainPoint> points;
  points.reserve(options.n);
  for (size_t i = 0; i < options.n; ++i) {
    const Point home = RandomPointInBox(rng, options.dim, extent);
    std::vector<SiteId> sites;
    sites.reserve(options.z);
    for (size_t j = 0; j < options.z; ++j) {
      sites.push_back(space->AddPoint(GaussianAround(rng, home, options.spread)));
    }
    const std::vector<double> probabilities =
        MakeProbabilities(options.z, options.shape, rng);
    UKC_ASSIGN_OR_RETURN(UncertainPoint point, MakePoint(sites, probabilities));
    points.push_back(std::move(point));
  }
  return UncertainDataset::Build(std::move(space), std::move(points));
}

Result<UncertainDataset> GenerateClusteredInstance(
    const EuclideanInstanceOptions& options, size_t num_clusters,
    double cluster_stddev, double extent) {
  if (num_clusters == 0) {
    return Status::InvalidArgument("GenerateClusteredInstance: num_clusters = 0");
  }
  Rng rng(options.seed);
  auto space = std::make_shared<EuclideanSpace>(options.dim);
  std::vector<Point> cluster_centers;
  cluster_centers.reserve(num_clusters);
  for (size_t c = 0; c < num_clusters; ++c) {
    cluster_centers.push_back(RandomPointInBox(rng, options.dim, extent));
  }
  std::vector<UncertainPoint> points;
  points.reserve(options.n);
  for (size_t i = 0; i < options.n; ++i) {
    const size_t c = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(num_clusters) - 1));
    const Point home = GaussianAround(rng, cluster_centers[c], cluster_stddev);
    std::vector<SiteId> sites;
    sites.reserve(options.z);
    for (size_t j = 0; j < options.z; ++j) {
      sites.push_back(space->AddPoint(GaussianAround(rng, home, options.spread)));
    }
    const std::vector<double> probabilities =
        MakeProbabilities(options.z, options.shape, rng);
    UKC_ASSIGN_OR_RETURN(UncertainPoint point, MakePoint(sites, probabilities));
    points.push_back(std::move(point));
  }
  return UncertainDataset::Build(std::move(space), std::move(points));
}

Result<UncertainDataset> GenerateOutlierInstance(
    const EuclideanInstanceOptions& options, size_t num_clusters,
    double outlier_probability, double outlier_distance, double extent) {
  if (options.z < 2) {
    return Status::InvalidArgument(
        "GenerateOutlierInstance: needs z >= 2 (core + outlier location)");
  }
  if (!(outlier_probability > 0.0) || outlier_probability >= 1.0) {
    return Status::InvalidArgument(
        "GenerateOutlierInstance: outlier_probability must be in (0,1)");
  }
  Rng rng(options.seed);
  auto space = std::make_shared<EuclideanSpace>(options.dim);
  std::vector<Point> cluster_centers;
  for (size_t c = 0; c < num_clusters; ++c) {
    cluster_centers.push_back(RandomPointInBox(rng, options.dim, extent));
  }
  std::vector<UncertainPoint> points;
  points.reserve(options.n);
  for (size_t i = 0; i < options.n; ++i) {
    const size_t c = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(num_clusters) - 1));
    const Point home = GaussianAround(rng, cluster_centers[c], 0.5);
    std::vector<SiteId> sites;
    // z-1 core locations near home.
    for (size_t j = 0; j + 1 < options.z; ++j) {
      sites.push_back(space->AddPoint(GaussianAround(rng, home, options.spread)));
    }
    // One far location: home + random direction * outlier_distance.
    Point direction(options.dim);
    double norm = 0.0;
    while (norm < 1e-12) {
      for (size_t a = 0; a < options.dim; ++a) direction[a] = rng.Gaussian();
      norm = direction.Norm();
    }
    direction *= outlier_distance / norm;
    sites.push_back(space->AddPoint(home + direction));

    // Core probabilities share 1 - outlier_probability.
    std::vector<double> probabilities =
        MakeProbabilities(options.z - 1, options.shape, rng);
    for (double& p : probabilities) p *= (1.0 - outlier_probability);
    probabilities.push_back(outlier_probability);
    UKC_ASSIGN_OR_RETURN(UncertainPoint point, MakePoint(sites, probabilities));
    points.push_back(std::move(point));
  }
  return UncertainDataset::Build(std::move(space), std::move(points));
}

Result<UncertainDataset> GenerateLineInstance(size_t n, size_t z, double length,
                                              double spread,
                                              ProbabilityShape shape,
                                              uint64_t seed) {
  Rng rng(seed);
  auto space = std::make_shared<EuclideanSpace>(1);
  std::vector<UncertainPoint> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double home = rng.UniformDouble(0.0, length);
    std::vector<SiteId> sites;
    sites.reserve(z);
    for (size_t j = 0; j < z; ++j) {
      const double x = home + rng.UniformDouble(-spread / 2.0, spread / 2.0);
      sites.push_back(space->AddPoint(Point{x}));
    }
    const std::vector<double> probabilities = MakeProbabilities(z, shape, rng);
    UKC_ASSIGN_OR_RETURN(UncertainPoint point, MakePoint(sites, probabilities));
    points.push_back(std::move(point));
  }
  return UncertainDataset::Build(std::move(space), std::move(points));
}

Result<std::shared_ptr<metric::GraphSpace>> GenerateGridGraph(
    int rows, int cols, double min_weight, double max_weight, uint64_t seed) {
  if (rows < 1 || cols < 1) {
    return Status::InvalidArgument("GenerateGridGraph: rows/cols must be >= 1");
  }
  if (!(min_weight > 0.0) || min_weight > max_weight) {
    return Status::InvalidArgument(
        "GenerateGridGraph: need 0 < min_weight <= max_weight");
  }
  Rng rng(seed);
  std::vector<metric::Edge> edges;
  auto vertex = [cols](int r, int c) {
    return static_cast<SiteId>(r * cols + c);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.push_back(metric::Edge{vertex(r, c), vertex(r, c + 1),
                                     rng.UniformDouble(min_weight, max_weight)});
      }
      if (r + 1 < rows) {
        edges.push_back(metric::Edge{vertex(r, c), vertex(r + 1, c),
                                     rng.UniformDouble(min_weight, max_weight)});
      }
    }
  }
  return metric::GraphSpace::Build(static_cast<SiteId>(rows * cols), edges);
}

Result<UncertainDataset> GenerateMetricInstance(
    std::shared_ptr<metric::MetricSpace> space, size_t n, size_t z,
    double locality_scale, ProbabilityShape shape, uint64_t seed) {
  if (space == nullptr) {
    return Status::InvalidArgument("GenerateMetricInstance: null space");
  }
  if (!(locality_scale > 0.0)) {
    return Status::InvalidArgument(
        "GenerateMetricInstance: locality_scale must be positive");
  }
  const SiteId num_sites = space->num_sites();
  if (static_cast<size_t>(num_sites) < z) {
    return Status::InvalidArgument(
        "GenerateMetricInstance: space has fewer sites than z");
  }
  Rng rng(seed);
  std::vector<UncertainPoint> points;
  points.reserve(n);
  std::vector<double> weights(static_cast<size_t>(num_sites));
  for (size_t i = 0; i < n; ++i) {
    const SiteId home = static_cast<SiteId>(rng.UniformInt(0, num_sites - 1));
    for (SiteId v = 0; v < num_sites; ++v) {
      weights[static_cast<size_t>(v)] =
          std::exp(-space->Distance(home, v) / locality_scale);
    }
    // Sample z distinct sites without replacement.
    std::vector<double> remaining = weights;
    std::vector<SiteId> sites;
    sites.reserve(z);
    for (size_t j = 0; j < z; ++j) {
      const size_t pick = rng.Discrete(remaining);
      sites.push_back(static_cast<SiteId>(pick));
      remaining[pick] = 0.0;
    }
    const std::vector<double> probabilities = MakeProbabilities(z, shape, rng);
    UKC_ASSIGN_OR_RETURN(UncertainPoint point, MakePoint(sites, probabilities));
    points.push_back(std::move(point));
  }
  return UncertainDataset::Build(std::move(space), std::move(points));
}

}  // namespace uncertain
}  // namespace ukc
