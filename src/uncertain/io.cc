#include "uncertain/io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "metric/euclidean_space.h"

namespace ukc {
namespace uncertain {

namespace {

constexpr char kMagic[] = "ukc-dataset";
constexpr int kVersion = 1;

// Reads the next non-comment, non-empty line into a token stream.
bool NextLine(std::istream& is, std::istringstream* line) {
  std::string text;
  while (std::getline(is, text)) {
    const size_t hash = text.find('#');
    if (hash != std::string::npos) text.resize(hash);
    const std::string_view trimmed = StrTrim(text);
    if (trimmed.empty()) continue;
    line->clear();
    line->str(std::string(trimmed));
    return true;
  }
  return false;
}

Status ParseNorm(const std::string& name, metric::Norm* out) {
  if (name == "L2") {
    *out = metric::Norm::kL2;
  } else if (name == "L1") {
    *out = metric::Norm::kL1;
  } else if (name == "LInf") {
    *out = metric::Norm::kLInf;
  } else {
    return Status::InvalidArgument("ukc-dataset: unknown norm " + name);
  }
  return Status::OK();
}

// Parses the "ukc-dataset <version> / dim <d> / [norm <name>] / n
// <count>" header — the shared front of LoadDataset and DatasetReader.
// The norm line is optional (files written before it was recorded are
// L2), which keeps the version stable.
Status ParseHeader(std::istream& is, size_t* dim, metric::Norm* norm,
                   size_t* n) {
  std::istringstream line;
  if (!NextLine(is, &line)) {
    return Status::InvalidArgument("ukc-dataset: empty input");
  }
  std::string magic;
  int version = 0;
  line >> magic >> version;
  if (magic != kMagic || version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("ukc-dataset: bad header '%s %d'", magic.c_str(), version));
  }
  auto read_keyed_size = [&](const char* key, size_t* out) -> Status {
    if (!NextLine(is, &line)) {
      return Status::InvalidArgument(
          StrFormat("ukc-dataset: missing '%s'", key));
    }
    std::string word;
    long long value = -1;
    line >> word >> value;
    if (word != key || value < 0 || line.fail()) {
      return Status::InvalidArgument(
          StrFormat("ukc-dataset: expected '%s <count>', got '%s'", key,
                    line.str().c_str()));
    }
    *out = static_cast<size_t>(value);
    return Status::OK();
  };
  UKC_RETURN_IF_ERROR(read_keyed_size("dim", dim));
  // Either "norm <name>" followed by "n <count>", or "n <count>" alone.
  *norm = metric::Norm::kL2;
  if (!NextLine(is, &line)) {
    return Status::InvalidArgument("ukc-dataset: missing 'n'");
  }
  std::string word;
  line >> word;
  if (word == "norm") {
    std::string name;
    line >> name;
    if (line.fail()) {
      return Status::InvalidArgument("ukc-dataset: malformed norm line");
    }
    UKC_RETURN_IF_ERROR(ParseNorm(name, norm));
    UKC_RETURN_IF_ERROR(read_keyed_size("n", n));
  } else {
    long long value = -1;
    line >> value;
    if (word != "n" || value < 0 || line.fail()) {
      return Status::InvalidArgument(
          StrFormat("ukc-dataset: expected 'n <count>', got '%s'",
                    line.str().c_str()));
    }
    *n = static_cast<size_t>(value);
  }
  if (*dim == 0) {
    return Status::InvalidArgument("ukc-dataset: dim must be >= 1");
  }
  if (*n == 0) return Status::InvalidArgument("ukc-dataset: n must be >= 1");
  return Status::OK();
}

}  // namespace

Status SaveDataset(const UncertainDataset& dataset, std::ostream& os) {
  const metric::EuclideanSpace* space = dataset.euclidean();
  if (space == nullptr) {
    return Status::FailedPrecondition(
        "SaveDataset: only Euclidean datasets are serializable");
  }
  os << kMagic << " " << kVersion << "\n";
  os << "dim " << space->dim() << "\n";
  // L2 files omit the norm line and stay byte-compatible with readers
  // that predate it; non-L2 files were silently reloaded as L2 before
  // the line existed, so a hard parse error there is strictly better.
  if (space->norm() != metric::Norm::kL2) {
    os << "norm " << metric::NormToString(space->norm()) << "\n";
  }
  os << "n " << dataset.n() << "\n";
  os.precision(17);
  for (size_t i = 0; i < dataset.n(); ++i) {
    const UncertainPointView p = dataset.point(i);
    os << "point " << p.num_locations() << "\n";
    for (const Location& loc : p.locations()) {
      os << loc.probability;
      const geometry::Point& point = space->point(loc.site);
      for (size_t a = 0; a < point.dim(); ++a) os << " " << point[a];
      os << "\n";
    }
  }
  if (!os.good()) return Status::Internal("SaveDataset: write failure");
  return Status::OK();
}

Status SaveDatasetToFile(const UncertainDataset& dataset,
                         const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("SaveDatasetToFile: cannot open " + path);
  }
  return SaveDataset(dataset, file);
}

Result<UncertainDataset> LoadDataset(std::istream& is) {
  // One parser for the format: pull chunks off the streaming reader
  // and materialize them (one fresh site per location line, exactly as
  // the chunked path sees them).
  UKC_ASSIGN_OR_RETURN(DatasetReader reader, DatasetReader::FromStream(is));
  auto space =
      std::make_shared<metric::EuclideanSpace>(reader.dim(), reader.norm());
  std::vector<UncertainPoint> points;
  points.reserve(reader.num_points());
  UncertainPointBatch batch;
  while (true) {
    UKC_ASSIGN_OR_RETURN(size_t produced, reader.ReadChunk(4096, &batch));
    if (produced == 0) break;
    for (size_t i = 0; i < batch.n(); ++i) {
      std::vector<Location> locations;
      locations.reserve(batch.locations_of(i));
      for (size_t l = batch.offsets[i]; l < batch.offsets[i + 1]; ++l) {
        locations.push_back(Location{space->AddCoords(batch.location_coords(l)),
                                     batch.probabilities[l]});
      }
      auto point = UncertainPoint::Build(std::move(locations));
      if (!point.ok()) {
        return point.status().WithPrefix(
            StrFormat("LoadDataset: point %zu", batch.start_index + i));
      }
      points.push_back(std::move(point).value());
    }
  }
  return UncertainDataset::Build(std::move(space), std::move(points));
}

Result<UncertainDataset> LoadDatasetFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("LoadDatasetFromFile: cannot open " + path);
  }
  return LoadDataset(file);
}

Result<DatasetReader> DatasetReader::Open(const std::string& path) {
  DatasetReader reader;
  reader.file_.open(path);
  if (!reader.file_.is_open()) {
    return Status::NotFound("DatasetReader: cannot open " + path);
  }
  UKC_RETURN_IF_ERROR(
      ParseHeader(reader.file_, &reader.dim_, &reader.norm_, &reader.n_));
  return reader;
}

Result<DatasetReader> DatasetReader::FromStream(std::istream& is) {
  DatasetReader reader;
  reader.borrowed_ = &is;
  UKC_RETURN_IF_ERROR(ParseHeader(is, &reader.dim_, &reader.norm_, &reader.n_));
  return reader;
}

Result<size_t> DatasetReader::ReadChunk(size_t max_points,
                                        UncertainPointBatch* batch) {
  if (batch == nullptr) {
    return Status::InvalidArgument("ReadChunk: null batch");
  }
  if (max_points == 0) {
    return Status::InvalidArgument("ReadChunk: max_points must be >= 1");
  }
  // Simulated read error of the chunked parser ("short read" at the
  // stream level): fires before any input is consumed, so a retry of
  // the pull re-reads the same chunk.
  UKC_INJECT_FAULT("io.read_chunk");
  batch->Clear();
  batch->dim = dim_;
  batch->norm = norm_;
  batch->start_index = read_;
  batch->offsets.push_back(0);

  std::istringstream line;
  size_t produced = 0;
  while (produced < max_points && read_ < n_) {
    // Record boundary: where this point's 'point <z>' line starts —
    // the offset a truncation error reports back to the caller.
    const std::optional<uint64_t> record_offset = TellByteOffset();
    const long long offset_detail =
        record_offset.has_value() ? static_cast<long long>(*record_offset) : -1;
    if (!NextLine(in(), &line)) {
      return Status::InvalidArgument(StrFormat(
          "ReadChunk: truncated after %zu of %zu points (record %zu, byte "
          "offset %lld)",
          read_, n_, read_, offset_detail));
    }
    std::string word;
    long long z = -1;
    line >> word >> z;
    if (word != "point" || z <= 0 || line.fail()) {
      return Status::InvalidArgument(StrFormat(
          "ReadChunk: expected 'point <z>' for point %zu, got '%s' (byte "
          "offset %lld)",
          read_, line.str().c_str(), offset_detail));
    }
    const size_t point_begin = batch->probabilities.size();
    for (long long j = 0; j < z; ++j) {
      if (!NextLine(in(), &line)) {
        return Status::InvalidArgument(StrFormat(
            "ReadChunk: truncated at point %zu location %lld (record %zu, "
            "byte offset %lld)",
            read_, j, read_, offset_detail));
      }
      // The probability token goes through strtod, not operator>>:
      // istreams refuse "nan", but a NaN probability must reach the
      // shared ValidateDistribution below so every entry point rejects
      // it with the same error.
      std::string probability_token;
      line >> probability_token;
      char* token_end = nullptr;
      const double probability =
          std::strtod(probability_token.c_str(), &token_end);
      const bool probability_parsed =
          !probability_token.empty() &&
          token_end == probability_token.c_str() + probability_token.size();
      const size_t base = batch->coords.size();
      batch->coords.resize(base + dim_);
      for (size_t a = 0; a < dim_; ++a) line >> batch->coords[base + a];
      if (!probability_parsed || line.fail()) {
        return Status::InvalidArgument(
            StrFormat("ReadChunk: malformed location line for point %zu: '%s'",
                      read_, line.str().c_str()));
      }
      batch->probabilities.push_back(probability);
    }
    // The shared invariant, via the same helper as UncertainPoint::Build
    // and the producer source — identical rejects, identical messages.
    UKC_RETURN_IF_ERROR(
        ValidateDistribution(
            std::span<const double>(batch->probabilities.data() + point_begin,
                                    batch->probabilities.size() - point_begin))
            .WithPrefix(StrFormat("ReadChunk: point %zu", read_)));
    batch->offsets.push_back(batch->probabilities.size());
    ++read_;
    ++produced;
  }
  return produced;
}

std::optional<uint64_t> DatasetReader::TellByteOffset() {
  std::istream& is = in();
  if (is.bad() || is.fail()) return std::nullopt;
  // tellg on an eof stream fails; the position "end of input" is still
  // well-defined, so clear the flag first and restore nothing — eof is
  // re-discovered by the next read anyway.
  if (is.eof()) is.clear();
  const std::streampos pos = is.tellg();
  if (pos < 0) return std::nullopt;
  return static_cast<uint64_t>(pos);
}

Status DatasetReader::SeekTo(uint64_t byte_offset, uint64_t points_read) {
  if (points_read > n_) {
    return Status::InvalidArgument(
        StrFormat("SeekTo: points_read %llu exceeds declared n %zu",
                  static_cast<unsigned long long>(points_read), n_));
  }
  std::istream& is = in();
  is.clear();
  is.seekg(static_cast<std::streamoff>(byte_offset));
  if (!is.good()) {
    return Status::OutOfRange(
        StrFormat("SeekTo: cannot seek to byte offset %llu",
                  static_cast<unsigned long long>(byte_offset)));
  }
  if (points_read < n_) {
    // Peek-validate: the next non-comment line must start a record. A
    // stale or corrupt cursor lands mid-record (a location line) or
    // past the end, and both fail this parse.
    std::istringstream line;
    std::string word;
    long long z = -1;
    if (!NextLine(is, &line)) {
      return Status::OutOfRange(StrFormat(
          "SeekTo: no record at byte offset %llu (stream exhausted, %llu of "
          "%zu points consumed)",
          static_cast<unsigned long long>(byte_offset),
          static_cast<unsigned long long>(points_read), n_));
    }
    line >> word >> z;
    if (word != "point" || z <= 0 || line.fail()) {
      return Status::InvalidArgument(StrFormat(
          "SeekTo: byte offset %llu is not a record boundary (got '%s')",
          static_cast<unsigned long long>(byte_offset), line.str().c_str()));
    }
    is.clear();
    is.seekg(static_cast<std::streamoff>(byte_offset));
    if (!is.good()) {
      return Status::OutOfRange(
          StrFormat("SeekTo: cannot re-seek to byte offset %llu",
                    static_cast<unsigned long long>(byte_offset)));
    }
  }
  read_ = points_read;
  return Status::OK();
}

}  // namespace uncertain
}  // namespace ukc
