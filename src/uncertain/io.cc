#include "uncertain/io.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "metric/euclidean_space.h"

namespace ukc {
namespace uncertain {

namespace {

constexpr char kMagic[] = "ukc-dataset";
constexpr int kVersion = 1;

// Reads the next non-comment, non-empty line into a token stream.
bool NextLine(std::istream& is, std::istringstream* line) {
  std::string text;
  while (std::getline(is, text)) {
    const size_t hash = text.find('#');
    if (hash != std::string::npos) text.resize(hash);
    const std::string_view trimmed = StrTrim(text);
    if (trimmed.empty()) continue;
    line->clear();
    line->str(std::string(trimmed));
    return true;
  }
  return false;
}

}  // namespace

Status SaveDataset(const UncertainDataset& dataset, std::ostream& os) {
  const metric::EuclideanSpace* space = dataset.euclidean();
  if (space == nullptr) {
    return Status::FailedPrecondition(
        "SaveDataset: only Euclidean datasets are serializable");
  }
  os << kMagic << " " << kVersion << "\n";
  os << "dim " << space->dim() << "\n";
  os << "n " << dataset.n() << "\n";
  os.precision(17);
  for (size_t i = 0; i < dataset.n(); ++i) {
    const UncertainPointView p = dataset.point(i);
    os << "point " << p.num_locations() << "\n";
    for (const Location& loc : p.locations()) {
      os << loc.probability;
      const geometry::Point& point = space->point(loc.site);
      for (size_t a = 0; a < point.dim(); ++a) os << " " << point[a];
      os << "\n";
    }
  }
  if (!os.good()) return Status::Internal("SaveDataset: write failure");
  return Status::OK();
}

Status SaveDatasetToFile(const UncertainDataset& dataset,
                         const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("SaveDatasetToFile: cannot open " + path);
  }
  return SaveDataset(dataset, file);
}

Result<UncertainDataset> LoadDataset(std::istream& is) {
  std::istringstream line;
  if (!NextLine(is, &line)) {
    return Status::InvalidArgument("LoadDataset: empty input");
  }
  std::string magic;
  int version = 0;
  line >> magic >> version;
  if (magic != kMagic || version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("LoadDataset: bad header '%s %d'", magic.c_str(), version));
  }

  auto read_keyed_size = [&](const char* key, size_t* out) -> Status {
    if (!NextLine(is, &line)) {
      return Status::InvalidArgument(StrFormat("LoadDataset: missing '%s'", key));
    }
    std::string word;
    long long value = -1;
    line >> word >> value;
    if (word != key || value < 0 || line.fail()) {
      return Status::InvalidArgument(
          StrFormat("LoadDataset: expected '%s <count>', got '%s'", key,
                    line.str().c_str()));
    }
    *out = static_cast<size_t>(value);
    return Status::OK();
  };

  size_t dim = 0;
  size_t n = 0;
  UKC_RETURN_IF_ERROR(read_keyed_size("dim", &dim));
  UKC_RETURN_IF_ERROR(read_keyed_size("n", &n));
  if (dim == 0) return Status::InvalidArgument("LoadDataset: dim must be >= 1");
  if (n == 0) return Status::InvalidArgument("LoadDataset: n must be >= 1");

  auto space = std::make_shared<metric::EuclideanSpace>(dim);
  std::vector<UncertainPoint> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t z = 0;
    UKC_RETURN_IF_ERROR(read_keyed_size("point", &z));
    if (z == 0) {
      return Status::InvalidArgument(
          StrFormat("LoadDataset: point %zu has no locations", i));
    }
    std::vector<Location> locations;
    locations.reserve(z);
    for (size_t j = 0; j < z; ++j) {
      if (!NextLine(is, &line)) {
        return Status::InvalidArgument(
            StrFormat("LoadDataset: truncated at point %zu location %zu", i, j));
      }
      double probability = 0.0;
      line >> probability;
      std::vector<double> coords(dim, 0.0);
      for (size_t a = 0; a < dim; ++a) line >> coords[a];
      if (line.fail()) {
        return Status::InvalidArgument(
            StrFormat("LoadDataset: malformed location line for point %zu: '%s'",
                      i, line.str().c_str()));
      }
      const metric::SiteId site =
          space->AddPoint(geometry::Point(std::move(coords)));
      locations.push_back(Location{site, probability});
    }
    auto point = UncertainPoint::Build(std::move(locations));
    if (!point.ok()) {
      return point.status().WithPrefix(StrFormat("LoadDataset: point %zu", i));
    }
    points.push_back(std::move(point).value());
  }
  return UncertainDataset::Build(std::move(space), std::move(points));
}

Result<UncertainDataset> LoadDatasetFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("LoadDatasetFromFile: cannot open " + path);
  }
  return LoadDataset(file);
}

}  // namespace uncertain
}  // namespace ukc
