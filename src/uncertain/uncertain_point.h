// The paper's input object: an uncertain point, i.e. an independent
// discrete distribution over finitely many locations of a metric space.
//
// Two representations live here:
//   - UncertainPoint: the owning boundary type used to *build* datasets
//     (validates probabilities, merges duplicate sites). It holds its
//     own AoS location vector.
//   - UncertainPointView: a non-owning view over the dataset's flat
//     parallel arrays (site_ids[] / probabilities[]). Once a dataset is
//     built, all access goes through views; hot loops should stream the
//     dataset's flat arrays directly instead of iterating per point.

#ifndef UKC_UNCERTAIN_UNCERTAIN_POINT_H_
#define UKC_UNCERTAIN_UNCERTAIN_POINT_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "metric/metric_space.h"

namespace ukc {
namespace uncertain {

/// One possible location of an uncertain point, with its probability.
struct Location {
  metric::SiteId site = metric::kInvalidSite;
  double probability = 0.0;
};

/// The shared per-point distribution invariant enforced by every
/// ingestion entry point (UncertainPoint::Build, the chunked
/// uncertain::DatasetReader, and stream::MakeProducerBatchSource):
/// at least one location, every probability positive and finite (NaN
/// and ±inf both fail), and the total within
/// UncertainPoint::kProbabilityTolerance of 1. Callers add their own
/// provenance via Status::WithPrefix; the core message is produced
/// here, once, so the entry points cannot drift apart in what they
/// accept or how they report it.
Status ValidateDistribution(std::span<const double> probabilities);

/// Iterates Location values zipped on the fly from a pair of parallel
/// (site, probability) arrays. Self-contained: it copies the raw
/// pointers, so it stays valid after the view that produced it is gone
/// (the pointed-to arrays must outlive it, as with any span).
class LocationRange {
 public:
  class Iterator {
   public:
    using value_type = Location;
    using difference_type = std::ptrdiff_t;

    Iterator(const metric::SiteId* site, const double* probability)
        : site_(site), probability_(probability) {}

    Location operator*() const { return Location{*site_, *probability_}; }
    Iterator& operator++() {
      ++site_;
      ++probability_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator copy = *this;
      ++*this;
      return copy;
    }
    bool operator==(const Iterator& other) const = default;

   private:
    const metric::SiteId* site_;
    const double* probability_;
  };

  LocationRange(const metric::SiteId* sites, const double* probabilities,
                size_t count)
      : sites_(sites), probabilities_(probabilities), count_(count) {}

  Iterator begin() const { return Iterator(sites_, probabilities_); }
  Iterator end() const { return Iterator(sites_ + count_, probabilities_ + count_); }
  size_t size() const { return count_; }
  Location operator[](size_t j) const {
    UKC_DCHECK_LT(j, count_);
    return Location{sites_[j], probabilities_[j]};
  }

 private:
  const metric::SiteId* sites_;
  const double* probabilities_;
  size_t count_;
};

/// A lightweight view of one uncertain point inside a flat
/// UncertainDataset: two spans over the dataset's parallel site /
/// probability arrays. Cheap to copy; valid while the dataset lives.
class UncertainPointView {
 public:
  UncertainPointView(const metric::SiteId* sites, const double* probabilities,
                     size_t count)
      : sites_(sites), probabilities_(probabilities), count_(count) {}

  /// Number of locations (the paper's z_i).
  size_t num_locations() const { return count_; }

  metric::SiteId site(size_t j) const {
    UKC_DCHECK_LT(j, count_);
    return sites_[j];
  }
  double probability(size_t j) const {
    UKC_DCHECK_LT(j, count_);
    return probabilities_[j];
  }
  Location location(size_t j) const {
    UKC_DCHECK_LT(j, count_);
    return Location{sites_[j], probabilities_[j]};
  }

  /// Iterable Location values (materialized on the fly from the flat
  /// arrays). Prefer sites()/probabilities() in hot loops.
  LocationRange locations() const {
    return LocationRange(sites_, probabilities_, count_);
  }

  /// Direct access to the underlying parallel arrays.
  std::span<const metric::SiteId> sites() const { return {sites_, count_}; }
  std::span<const double> probabilities() const {
    return {probabilities_, count_};
  }

  /// The location with the largest probability (ties: first).
  Location ModalLocation() const;

  /// Expected distance E[d(P̂, q)] = Σ_j p_j d(site_j, q).
  double ExpectedDistanceTo(const metric::MetricSpace& space,
                            metric::SiteId q) const;

  /// Expected distance to the nearest of several candidate sites, i.e.
  /// min_c E[d(P̂, c)] together with the argmin (the paper's ED rule).
  /// Returns kInvalidSite for an empty candidate list.
  metric::SiteId MinExpectedDistanceSite(
      const metric::MetricSpace& space,
      const std::vector<metric::SiteId>& candidates,
      double* min_expected = nullptr) const;

  /// Largest pairwise distance within the support; 0 for one location.
  double SupportDiameter(const metric::MetricSpace& space) const;

  std::string ToString() const;

 private:
  const metric::SiteId* sites_;
  const double* probabilities_;
  size_t count_;
};

/// A discrete distribution over sites of a metric space. Immutable once
/// built; Build() validates that probabilities are positive and sum to 1
/// (within kProbabilityTolerance) and that sites are non-negative.
/// Stores its locations as parallel site/probability arrays (the same
/// layout the dataset flattens into) and implements every query by
/// delegating to a view over them — one implementation, two owners.
class UncertainPoint {
 public:
  /// Tolerance on |sum(p) - 1|.
  static constexpr double kProbabilityTolerance = 1e-9;

  /// Validates and constructs. Locations with duplicate sites are
  /// allowed (their probabilities are merged).
  static Result<UncertainPoint> Build(std::vector<Location> locations);

  /// A certain point: one location with probability 1.
  static UncertainPoint Certain(metric::SiteId site);

  /// A view over this point's parallel arrays; valid while the point
  /// lives.
  UncertainPointView view() const {
    return UncertainPointView(sites_.data(), probabilities_.data(),
                              sites_.size());
  }

  /// Number of distinct locations (the paper's z_i).
  size_t num_locations() const { return sites_.size(); }

  /// Location access.
  Location location(size_t j) const { return view().location(j); }
  LocationRange locations() const { return view().locations(); }

  metric::SiteId site(size_t j) const { return view().site(j); }
  double probability(size_t j) const { return view().probability(j); }

  /// The location with the largest probability (ties: first).
  Location ModalLocation() const { return view().ModalLocation(); }

  /// Expected distance E[d(P̂, q)] = Σ_j p_j d(site_j, q).
  double ExpectedDistanceTo(const metric::MetricSpace& space,
                            metric::SiteId q) const {
    return view().ExpectedDistanceTo(space, q);
  }

  /// Expected distance to the nearest of several candidate sites, i.e.
  /// min_c E[d(P̂, c)] together with the argmin (the paper's ED rule).
  /// Returns kInvalidSite for an empty candidate list.
  metric::SiteId MinExpectedDistanceSite(const metric::MetricSpace& space,
                                         const std::vector<metric::SiteId>& candidates,
                                         double* min_expected = nullptr) const {
    return view().MinExpectedDistanceSite(space, candidates, min_expected);
  }

  /// Largest pairwise distance within the support (the point's own
  /// diameter); 0 for a single location.
  double SupportDiameter(const metric::MetricSpace& space) const {
    return view().SupportDiameter(space);
  }

  std::string ToString() const { return view().ToString(); }

 private:
  UncertainPoint(std::vector<metric::SiteId> sites,
                 std::vector<double> probabilities)
      : sites_(std::move(sites)), probabilities_(std::move(probabilities)) {}

  std::vector<metric::SiteId> sites_;
  std::vector<double> probabilities_;
};

}  // namespace uncertain
}  // namespace ukc

#endif  // UKC_UNCERTAIN_UNCERTAIN_POINT_H_
