// The paper's input object: an uncertain point, i.e. an independent
// discrete distribution over finitely many locations of a metric space.

#ifndef UKC_UNCERTAIN_UNCERTAIN_POINT_H_
#define UKC_UNCERTAIN_UNCERTAIN_POINT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "metric/metric_space.h"

namespace ukc {
namespace uncertain {

/// One possible location of an uncertain point, with its probability.
struct Location {
  metric::SiteId site = metric::kInvalidSite;
  double probability = 0.0;
};

/// A discrete distribution over sites of a metric space. Immutable once
/// built; Build() validates that probabilities are positive and sum to 1
/// (within kProbabilityTolerance) and that sites are non-negative.
class UncertainPoint {
 public:
  /// Tolerance on |sum(p) - 1|.
  static constexpr double kProbabilityTolerance = 1e-9;

  /// Validates and constructs. Locations with duplicate sites are
  /// allowed (their probabilities are merged).
  static Result<UncertainPoint> Build(std::vector<Location> locations);

  /// A certain point: one location with probability 1.
  static UncertainPoint Certain(metric::SiteId site);

  /// Number of distinct locations (the paper's z_i).
  size_t num_locations() const { return locations_.size(); }

  /// Location access.
  const Location& location(size_t j) const {
    UKC_DCHECK_LT(j, locations_.size());
    return locations_[j];
  }
  const std::vector<Location>& locations() const { return locations_; }

  metric::SiteId site(size_t j) const { return location(j).site; }
  double probability(size_t j) const { return location(j).probability; }

  /// The location with the largest probability (ties: first).
  const Location& ModalLocation() const;

  /// Expected distance E[d(P̂, q)] = Σ_j p_j d(site_j, q).
  double ExpectedDistanceTo(const metric::MetricSpace& space,
                            metric::SiteId q) const;

  /// Expected distance to the nearest of several candidate sites, i.e.
  /// min_c E[d(P̂, c)] together with the argmin (the paper's ED rule).
  /// Returns kInvalidSite for an empty candidate list.
  metric::SiteId MinExpectedDistanceSite(const metric::MetricSpace& space,
                                         const std::vector<metric::SiteId>& candidates,
                                         double* min_expected = nullptr) const;

  /// Largest pairwise distance within the support (the point's own
  /// diameter); 0 for a single location.
  double SupportDiameter(const metric::MetricSpace& space) const;

  std::string ToString() const;

 private:
  explicit UncertainPoint(std::vector<Location> locations)
      : locations_(std::move(locations)) {}

  std::vector<Location> locations_;
};

}  // namespace uncertain
}  // namespace ukc

#endif  // UKC_UNCERTAIN_UNCERTAIN_POINT_H_
