// A flat, space-free batch of Euclidean uncertain points — the unit of
// chunked ingestion.
//
// Unlike UncertainDataset, a batch does not reference a metric space:
// location coordinates are stored inline (location-major, `dim` doubles
// per location), so a producer can emit batches without minting sites
// into any arena and a consumer can stream a file larger than RAM one
// batch at a time. The CSR layout mirrors the dataset's flat storage:
// locations of point i occupy [offsets[i], offsets[i+1]).

#ifndef UKC_UNCERTAIN_CHUNK_H_
#define UKC_UNCERTAIN_CHUNK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "metric/euclidean_space.h"

namespace ukc {
namespace uncertain {

/// One chunk of a (possibly unbounded) stream of uncertain points.
struct UncertainPointBatch {
  /// Ambient dimension of the coordinates; fixed across a stream.
  size_t dim = 0;
  /// Norm the coordinates are measured under.
  metric::Norm norm = metric::Norm::kL2;
  /// Global index of the first point of this batch within the stream.
  uint64_t start_index = 0;
  /// CSR offsets into coords/probabilities: n() + 1 entries, first 0.
  std::vector<size_t> offsets;
  /// Location coordinates, location-major (`dim` doubles each).
  std::vector<double> coords;
  /// Location probabilities, parallel to the location axis of coords.
  std::vector<double> probabilities;

  size_t n() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  size_t num_locations() const { return probabilities.size(); }

  /// Locations of point i (batch-local index).
  size_t locations_of(size_t i) const {
    UKC_DCHECK_LT(i + 1, offsets.size());
    return offsets[i + 1] - offsets[i];
  }
  const double* location_coords(size_t l) const {
    UKC_DCHECK_LT(l, probabilities.size());
    return coords.data() + l * dim;
  }

  /// Resets to an empty batch (keeps dim/norm and the capacity).
  void Clear() {
    start_index = 0;
    offsets.clear();
    coords.clear();
    probabilities.clear();
  }
};

}  // namespace uncertain
}  // namespace ukc

#endif  // UKC_UNCERTAIN_CHUNK_H_
