// Plain-text serialization of Euclidean uncertain datasets.
//
// Format (whitespace separated, '#' starts a comment):
//
//   ukc-dataset 1
//   dim <d>
//   n <num_points>
//   point <z>
//   <prob> <x_1> ... <x_d>     (z such lines)
//   ...
//
// Only Euclidean datasets are serializable; finite metric spaces carry
// their own provenance (matrix or graph) and are rebuilt from it.

#ifndef UKC_UNCERTAIN_IO_H_
#define UKC_UNCERTAIN_IO_H_

#include <fstream>
#include <iosfwd>
#include <optional>
#include <string>

#include "common/result.h"
#include "uncertain/chunk.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace uncertain {

/// Writes a Euclidean dataset. Fails on non-Euclidean datasets.
Status SaveDataset(const UncertainDataset& dataset, std::ostream& os);

/// Convenience: save to a file path.
Status SaveDatasetToFile(const UncertainDataset& dataset,
                         const std::string& path);

/// Parses a dataset written by SaveDataset.
Result<UncertainDataset> LoadDataset(std::istream& is);

/// Convenience: load from a file path.
Result<UncertainDataset> LoadDatasetFromFile(const std::string& path);

/// Streams a dataset written by SaveDataset chunk by chunk, without
/// materializing the whole input: Open/FromStream parse the header,
/// each ReadChunk call parses the next `max_points` point records into
/// a flat UncertainPointBatch (coordinates inline — no space, no site
/// minting). Peak memory is one chunk, independent of n. This is the
/// single parser of the format: the ingestion path of the streaming
/// coreset layer (stream/ingest.h) pulls chunks directly, and
/// LoadDataset materializes a dataset from the same chunks.
class DatasetReader {
 public:
  /// Opens `path` (owning the file handle) and parses the header.
  static Result<DatasetReader> Open(const std::string& path);

  /// Parses the header off a borrowed stream, which must outlive the
  /// reader.
  static Result<DatasetReader> FromStream(std::istream& is);

  DatasetReader(DatasetReader&&) = default;
  DatasetReader& operator=(DatasetReader&&) = default;

  /// Ambient dimension declared by the header.
  size_t dim() const { return dim_; }
  /// Norm declared by the header (L2 for files predating the norm
  /// line).
  metric::Norm norm() const { return norm_; }
  /// Total point count declared by the header.
  size_t num_points() const { return n_; }
  /// Points consumed by ReadChunk calls so far.
  size_t num_read() const { return read_; }

  /// Replaces *batch with the next <= max_points points (max_points >=
  /// 1). Returns the number of points read: 0 exactly at the clean end
  /// of the stream, an error on malformed or truncated input. The
  /// batch's start_index is the stream index of its first point.
  /// Truncation and parse errors carry the record index and the byte
  /// offset of the offending record, so a caller can report exactly
  /// where a torn input broke off.
  Result<size_t> ReadChunk(size_t max_points, UncertainPointBatch* batch);

  /// Byte offset of the read position — a record boundary whenever it
  /// is taken between ReadChunk calls. nullopt when the underlying
  /// stream cannot report positions. The checkpoint layer persists
  /// this as the ingestion cursor (stream/checkpoint.h).
  std::optional<uint64_t> TellByteOffset();

  /// Repositions the reader to a (byte_offset, points_read) pair
  /// previously captured via TellByteOffset/num_read — the checkpoint
  /// restore fast path: the prefix is skipped by one seek instead of
  /// being re-parsed. Validates that a record actually starts at the
  /// offset (or that the stream is cleanly exhausted); on any failure
  /// the reader must not be used further.
  Status SeekTo(uint64_t byte_offset, uint64_t points_read);

 private:
  DatasetReader() = default;

  // The input is either the owned file or a borrowed stream; in() hides
  // which, keeping the default move semantics valid (the borrowed
  // pointer never aims at a member).
  std::istream& in() { return borrowed_ != nullptr ? *borrowed_ : file_; }

  std::ifstream file_;
  std::istream* borrowed_ = nullptr;
  size_t dim_ = 0;
  metric::Norm norm_ = metric::Norm::kL2;
  size_t n_ = 0;
  size_t read_ = 0;
};

}  // namespace uncertain
}  // namespace ukc

#endif  // UKC_UNCERTAIN_IO_H_
