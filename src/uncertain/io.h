// Plain-text serialization of Euclidean uncertain datasets.
//
// Format (whitespace separated, '#' starts a comment):
//
//   ukc-dataset 1
//   dim <d>
//   n <num_points>
//   point <z>
//   <prob> <x_1> ... <x_d>     (z such lines)
//   ...
//
// Only Euclidean datasets are serializable; finite metric spaces carry
// their own provenance (matrix or graph) and are rebuilt from it.

#ifndef UKC_UNCERTAIN_IO_H_
#define UKC_UNCERTAIN_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace uncertain {

/// Writes a Euclidean dataset. Fails on non-Euclidean datasets.
Status SaveDataset(const UncertainDataset& dataset, std::ostream& os);

/// Convenience: save to a file path.
Status SaveDatasetToFile(const UncertainDataset& dataset,
                         const std::string& path);

/// Parses a dataset written by SaveDataset.
Result<UncertainDataset> LoadDataset(std::istream& is);

/// Convenience: load from a file path.
Result<UncertainDataset> LoadDatasetFromFile(const std::string& path);

}  // namespace uncertain
}  // namespace ukc

#endif  // UKC_UNCERTAIN_IO_H_
