#include "uncertain/sampler.h"

namespace ukc {
namespace uncertain {

RealizationSampler::RealizationSampler(const UncertainDataset& dataset)
    : dataset_(dataset) {
  // Stream the flat probability array: each point's weights are the
  // contiguous slice [offsets[i], offsets[i+1]).
  const std::span<const double> probabilities = dataset.flat_probabilities();
  const std::span<const size_t> offsets = dataset.offsets();
  tables_.reserve(dataset.n());
  std::vector<double> weights;
  for (size_t i = 0; i < dataset.n(); ++i) {
    weights.assign(probabilities.begin() + offsets[i],
                   probabilities.begin() + offsets[i + 1]);
    auto table = AliasTable::Build(weights);
    // Dataset points are validated at Build() time, so this cannot fail.
    UKC_CHECK(table.ok()) << table.status();
    tables_.push_back(std::move(table).value());
  }
}

Realization RealizationSampler::Sample(Rng& rng) const {
  Realization out;
  SampleInto(rng, &out);
  return out;
}

void RealizationSampler::SampleInto(Rng& rng, Realization* out) const {
  UKC_CHECK(out != nullptr);
  out->resize(tables_.size());
  for (size_t i = 0; i < tables_.size(); ++i) {
    (*out)[i] = tables_[i].Sample(rng);
  }
}

metric::SiteId RealizationSampler::SiteOf(const Realization& realization,
                                          size_t i) const {
  UKC_DCHECK_LT(i, realization.size());
  return dataset_.point(i).site(realization[i]);
}

}  // namespace uncertain
}  // namespace ukc
