// Synthetic instance families.
//
// The paper is pure theory and evaluates nothing empirically, so the
// reproduction needs instance families that exercise the regimes its
// analysis distinguishes: tight supports vs wide supports (relative to
// inter-cluster separation), planted cluster structure, heavy-tailed
// outlier locations, the line (for the R^1 exact solver), and general
// graph metrics (for Theorems 2.6/2.7). All generators are
// deterministic in the seed.

#ifndef UKC_UNCERTAIN_GENERATORS_H_
#define UKC_UNCERTAIN_GENERATORS_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "common/rng.h"
#include "metric/graph_space.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace uncertain {

/// How location probabilities are distributed within a point.
enum class ProbabilityShape {
  kUniform,  // All locations equally likely.
  kRandom,   // Random (normalized i.i.d. exponentials).
  kSpiky,    // One dominant location holding ~90% of the mass.
};

/// Common knobs for Euclidean generators.
struct EuclideanInstanceOptions {
  size_t n = 100;        // Number of uncertain points.
  size_t z = 4;          // Locations per point.
  size_t dim = 2;        // Ambient dimension.
  double spread = 0.5;   // Scale of each point's location cloud.
  ProbabilityShape shape = ProbabilityShape::kRandom;
  uint64_t seed = 1;
};

/// Homes uniform in [0, extent]^dim; locations Gaussian around the home
/// with stddev `spread`.
Result<UncertainDataset> GenerateUniformInstance(
    const EuclideanInstanceOptions& options, double extent = 10.0);

/// Homes drawn from `num_clusters` planted Gaussian clusters (centers
/// uniform in [0, extent]^dim, within-cluster stddev `cluster_stddev`);
/// locations Gaussian around the home with stddev `spread`. The planted
/// structure makes the k-center decomposition meaningful.
Result<UncertainDataset> GenerateClusteredInstance(
    const EuclideanInstanceOptions& options, size_t num_clusters,
    double cluster_stddev = 0.5, double extent = 10.0);

/// Like the clustered family, but each point devotes probability
/// `outlier_probability` to one far-away location at distance
/// ~`outlier_distance`. Stress-tests the expectation: modal-location
/// baselines ignore the tail, the paper's surrogates do not.
Result<UncertainDataset> GenerateOutlierInstance(
    const EuclideanInstanceOptions& options, size_t num_clusters,
    double outlier_probability = 0.05, double outlier_distance = 30.0,
    double extent = 10.0);

/// One-dimensional instance (dim forced to 1): homes uniform on
/// [0, length], locations uniform in a window of width `spread` around
/// the home. Feeds the R^1 exact solver (Table 1 row 8).
Result<UncertainDataset> GenerateLineInstance(size_t n, size_t z, double length,
                                              double spread,
                                              ProbabilityShape shape,
                                              uint64_t seed);

/// A rows×cols grid graph with independent uniform edge weights in
/// [min_weight, max_weight] — the general-metric substrate.
Result<std::shared_ptr<metric::GraphSpace>> GenerateGridGraph(
    int rows, int cols, double min_weight, double max_weight, uint64_t seed);

/// An uncertain instance over an arbitrary finite metric space: each
/// point picks a home site uniformly, then z locations sampled from the
/// whole space with probability proportional to exp(-d(home, v)/scale),
/// so supports are local but occasionally stretch far.
Result<UncertainDataset> GenerateMetricInstance(
    std::shared_ptr<metric::MetricSpace> space, size_t n, size_t z,
    double locality_scale, ProbabilityShape shape, uint64_t seed);

/// Fills a probability vector of the given size and shape.
std::vector<double> MakeProbabilities(size_t z, ProbabilityShape shape, Rng& rng);

}  // namespace uncertain
}  // namespace ukc

#endif  // UKC_UNCERTAIN_GENERATORS_H_
