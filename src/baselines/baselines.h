// Comparator algorithms for the benchmark suite.
//
// None of these carries the paper's guarantees; they are the strawmen a
// practitioner would try first, plus a simplified stand-in for the
// Guha–Munagala [14] approach the paper improves on (their exact
// LP-based algorithm is specified for finite metrics with oracle
// access; we reproduce its *spirit* — cluster robust per-point
// summaries that ignore low-probability tails — as a same-API
// comparator; see DESIGN.md §4).

#ifndef UKC_BASELINES_BASELINES_H_
#define UKC_BASELINES_BASELINES_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "cost/assignment.h"
#include "uncertain/dataset.h"

namespace ukc {

class ThreadPool;

namespace baselines {

/// Which baseline to run.
enum class BaselineKind {
  /// Gonzalez over the pooled multiset of all locations (uncertainty
  /// ignored entirely), ED assignment.
  kPooledLocations,
  /// Each point collapsed to its most probable location, Gonzalez,
  /// nearest-modal assignment.
  kModalLocation,
  /// k locations drawn uniformly at random as centers, ED assignment.
  kRandomCenters,
  /// Guha–Munagala-style: truncate each distribution to its
  /// highest-probability core (dropping a delta tail), take the
  /// truncated 1-median as surrogate, Gonzalez, ED assignment.
  kTruncatedMedian,
};

std::string BaselineKindToString(BaselineKind kind);

/// Options for RunBaseline.
struct BaselineOptions {
  size_t k = 1;
  uint64_t seed = 5;
  /// Tail mass dropped by kTruncatedMedian.
  double truncation_delta = 0.25;
  /// Workers sharding the per-point surrogate computation and the ED
  /// assignment (<= 0 = hardware threads). Results do not depend on
  /// this.
  int threads = 1;
  /// Borrowed shared worker pool; when set, `threads` is ignored and no
  /// private pool is constructed (see ScopedPool in common/thread_pool.h).
  ThreadPool* pool = nullptr;
};

/// A baseline's output, mirroring the core pipeline's essentials.
struct BaselineResult {
  std::string name;
  std::vector<metric::SiteId> centers;
  cost::Assignment assignment;
  /// Exact assigned expected cost.
  double expected_cost = 0.0;
};

/// Runs the selected baseline. The dataset's space may grow (surrogate
/// minting), exactly as with the core pipeline.
Result<BaselineResult> RunBaseline(uncertain::UncertainDataset* dataset,
                                   BaselineKind kind,
                                   const BaselineOptions& options);

}  // namespace baselines
}  // namespace ukc

#endif  // UKC_BASELINES_BASELINES_H_
