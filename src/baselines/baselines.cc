#include "baselines/baselines.h"

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/surrogates.h"
#include "cost/expected_cost.h"
#include "solver/geometric_median.h"
#include "solver/gonzalez.h"

namespace ukc {
namespace baselines {

using metric::SiteId;

std::string BaselineKindToString(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kPooledLocations:
      return "pooled-locations";
    case BaselineKind::kModalLocation:
      return "modal-location";
    case BaselineKind::kRandomCenters:
      return "random-centers";
    case BaselineKind::kTruncatedMedian:
      return "truncated-median";
  }
  return "?";
}

namespace {

// Finalizes a baseline: ED assignment + exact evaluation through the
// shared expected-cost engine.
Result<BaselineResult> FinishWithED(const uncertain::UncertainDataset& dataset,
                                    cost::ExpectedCostEvaluator* evaluator,
                                    std::string name,
                                    std::vector<SiteId> centers, int threads,
                                    ThreadPool* shared_pool) {
  BaselineResult result;
  result.name = std::move(name);
  result.centers = std::move(centers);
  UKC_ASSIGN_OR_RETURN(result.assignment,
                       cost::AssignExpectedDistance(dataset, result.centers,
                                                    threads, shared_pool));
  UKC_ASSIGN_OR_RETURN(result.expected_cost,
                       evaluator->AssignedCost(dataset, result.assignment));
  return result;
}

// The highest-probability core of point i: drop the lowest-probability
// locations until just before the removed mass would exceed delta.
std::vector<uncertain::Location> TruncatedCore(
    const uncertain::UncertainDataset& dataset, size_t i, double delta) {
  const uncertain::LocationRange range = dataset.point(i).locations();
  std::vector<uncertain::Location> kept(range.begin(), range.end());
  std::sort(kept.begin(), kept.end(),
            [](const uncertain::Location& a, const uncertain::Location& b) {
              return a.probability > b.probability;
            });
  double removed = 0.0;
  while (kept.size() > 1 && removed + kept.back().probability <= delta) {
    removed += kept.back().probability;
    kept.pop_back();
  }
  return kept;
}

// The truncated-median surrogates of every point. The per-point medians
// are computed in parallel (pure reads); Euclidean surrogates are
// minted into the space serially afterwards, in point order.
Result<std::vector<SiteId>> TruncatedMedianSurrogates(
    uncertain::UncertainDataset* dataset, double delta, int threads,
    ThreadPool* shared_pool) {
  const size_t n = dataset->n();
  ScopedPool pool(shared_pool, threads);
  if (dataset->is_euclidean()) {
    metric::EuclideanSpace* space = dataset->euclidean();
    std::vector<geometry::Point> medians(n);
    std::vector<Status> statuses(n);
    pool->ParallelFor(n, [&](int, size_t i) {
      const auto kept = TruncatedCore(*dataset, i, delta);
      std::vector<geometry::Point> points;
      std::vector<double> weights;
      points.reserve(kept.size());
      weights.reserve(kept.size());
      for (const uncertain::Location& loc : kept) {
        points.push_back(space->point(loc.site));
        weights.push_back(loc.probability);
      }
      auto median = solver::WeightedGeometricMedian(points, weights);
      if (!median.ok()) {
        statuses[i] = median.status();
        return;
      }
      medians[i] = std::move(median->median);
    });
    for (Status& status : statuses) {
      if (!status.ok()) return std::move(status);
    }
    std::vector<SiteId> surrogates;
    surrogates.reserve(n);
    for (geometry::Point& median : medians) {
      surrogates.push_back(space->AddPoint(std::move(median)));
    }
    return surrogates;
  }
  // Finite metric: best own kept location by truncated expected
  // distance; existing sites only, so fully parallel.
  const metric::MetricSpace& space = dataset->space();
  std::vector<SiteId> surrogates(n, metric::kInvalidSite);
  pool->ParallelFor(n, [&](int, size_t i) {
    const auto kept = TruncatedCore(*dataset, i, delta);
    SiteId best = kept[0].site;
    double best_value = std::numeric_limits<double>::infinity();
    for (const uncertain::Location& candidate : kept) {
      double value = 0.0;
      for (const uncertain::Location& loc : kept) {
        value += loc.probability * space.Distance(loc.site, candidate.site);
      }
      if (value < best_value) {
        best_value = value;
        best = candidate.site;
      }
    }
    surrogates[i] = best;
  });
  return surrogates;
}

}  // namespace

Result<BaselineResult> RunBaseline(uncertain::UncertainDataset* dataset,
                                   BaselineKind kind,
                                   const BaselineOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("RunBaseline: null dataset");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("RunBaseline: k must be >= 1");
  }
  metric::MetricSpace& space = *dataset->shared_space();
  cost::ExpectedCostEvaluator evaluator;

  switch (kind) {
    case BaselineKind::kPooledLocations: {
      const std::vector<SiteId> pool = dataset->LocationSites();
      UKC_ASSIGN_OR_RETURN(solver::KCenterSolution certain,
                           solver::Gonzalez(space, pool, options.k));
      return FinishWithED(*dataset, &evaluator, BaselineKindToString(kind),
                          std::move(certain.centers), options.threads,
                          options.pool);
    }
    case BaselineKind::kModalLocation: {
      core::SurrogateOptions surrogate_options;
      surrogate_options.kind = core::SurrogateKind::kModal;
      surrogate_options.threads = options.threads;
      surrogate_options.pool = options.pool;
      UKC_ASSIGN_OR_RETURN(std::vector<SiteId> modal,
                           core::BuildSurrogates(dataset, surrogate_options));
      UKC_ASSIGN_OR_RETURN(solver::KCenterSolution certain,
                           solver::Gonzalez(space, modal, options.k));
      BaselineResult result;
      result.name = BaselineKindToString(kind);
      result.centers = std::move(certain.centers);
      UKC_ASSIGN_OR_RETURN(
          result.assignment,
          cost::AssignBySurrogate(*dataset, modal, result.centers));
      UKC_ASSIGN_OR_RETURN(result.expected_cost,
                           evaluator.AssignedCost(*dataset, result.assignment));
      return result;
    }
    case BaselineKind::kRandomCenters: {
      const std::vector<SiteId> pool = dataset->LocationSites();
      Rng rng(options.seed);
      std::vector<SiteId> shuffled = pool;
      rng.Shuffle(&shuffled);
      shuffled.resize(std::min<size_t>(options.k, shuffled.size()));
      return FinishWithED(*dataset, &evaluator, BaselineKindToString(kind),
                          std::move(shuffled), options.threads, options.pool);
    }
    case BaselineKind::kTruncatedMedian: {
      if (!(options.truncation_delta >= 0.0) || options.truncation_delta >= 1.0) {
        return Status::InvalidArgument(
            "RunBaseline: truncation_delta must be in [0, 1)");
      }
      UKC_ASSIGN_OR_RETURN(
          std::vector<SiteId> surrogates,
          TruncatedMedianSurrogates(dataset, options.truncation_delta,
                                    options.threads, options.pool));
      UKC_ASSIGN_OR_RETURN(solver::KCenterSolution certain,
                           solver::Gonzalez(space, surrogates, options.k));
      return FinishWithED(*dataset, &evaluator, BaselineKindToString(kind),
                          std::move(certain.centers), options.threads,
                          options.pool);
    }
  }
  return Status::Internal("RunBaseline: unknown baseline kind");
}

}  // namespace baselines
}  // namespace ukc
