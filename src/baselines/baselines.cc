#include "baselines/baselines.h"

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "core/surrogates.h"
#include "cost/expected_cost.h"
#include "solver/geometric_median.h"
#include "solver/gonzalez.h"

namespace ukc {
namespace baselines {

using metric::SiteId;

std::string BaselineKindToString(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kPooledLocations:
      return "pooled-locations";
    case BaselineKind::kModalLocation:
      return "modal-location";
    case BaselineKind::kRandomCenters:
      return "random-centers";
    case BaselineKind::kTruncatedMedian:
      return "truncated-median";
  }
  return "?";
}

namespace {

// Finalizes a baseline: ED assignment + exact evaluation through the
// shared expected-cost engine.
Result<BaselineResult> FinishWithED(const uncertain::UncertainDataset& dataset,
                                    cost::ExpectedCostEvaluator* evaluator,
                                    std::string name,
                                    std::vector<SiteId> centers) {
  BaselineResult result;
  result.name = std::move(name);
  result.centers = std::move(centers);
  UKC_ASSIGN_OR_RETURN(result.assignment,
                       cost::AssignExpectedDistance(dataset, result.centers));
  UKC_ASSIGN_OR_RETURN(result.expected_cost,
                       evaluator->AssignedCost(dataset, result.assignment));
  return result;
}

// The truncated surrogate of one point: drop the lowest-probability
// locations until just before the removed mass would exceed delta,
// renormalize, and take the 1-median of what is left.
Result<SiteId> TruncatedMedianSurrogate(uncertain::UncertainDataset* dataset,
                                        size_t i, double delta) {
  const uncertain::UncertainPoint& p = dataset->point(i);
  std::vector<uncertain::Location> kept(p.locations());
  std::sort(kept.begin(), kept.end(),
            [](const uncertain::Location& a, const uncertain::Location& b) {
              return a.probability > b.probability;
            });
  double removed = 0.0;
  while (kept.size() > 1 && removed + kept.back().probability <= delta) {
    removed += kept.back().probability;
    kept.pop_back();
  }

  if (dataset->is_euclidean()) {
    metric::EuclideanSpace* space = dataset->euclidean();
    std::vector<geometry::Point> points;
    std::vector<double> weights;
    for (const uncertain::Location& loc : kept) {
      points.push_back(space->point(loc.site));
      weights.push_back(loc.probability);
    }
    UKC_ASSIGN_OR_RETURN(solver::GeometricMedianResult median,
                         solver::WeightedGeometricMedian(points, weights));
    return space->AddPoint(std::move(median.median));
  }
  // Finite metric: best own kept location by truncated expected distance.
  const metric::MetricSpace& space = dataset->space();
  SiteId best = kept[0].site;
  double best_value = std::numeric_limits<double>::infinity();
  for (const uncertain::Location& candidate : kept) {
    double value = 0.0;
    for (const uncertain::Location& loc : kept) {
      value += loc.probability * space.Distance(loc.site, candidate.site);
    }
    if (value < best_value) {
      best_value = value;
      best = candidate.site;
    }
  }
  return best;
}

}  // namespace

Result<BaselineResult> RunBaseline(uncertain::UncertainDataset* dataset,
                                   BaselineKind kind,
                                   const BaselineOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("RunBaseline: null dataset");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("RunBaseline: k must be >= 1");
  }
  metric::MetricSpace& space = *dataset->shared_space();
  cost::ExpectedCostEvaluator evaluator;

  switch (kind) {
    case BaselineKind::kPooledLocations: {
      const std::vector<SiteId> pool = dataset->LocationSites();
      UKC_ASSIGN_OR_RETURN(solver::KCenterSolution certain,
                           solver::Gonzalez(space, pool, options.k));
      return FinishWithED(*dataset, &evaluator, BaselineKindToString(kind),
                          std::move(certain.centers));
    }
    case BaselineKind::kModalLocation: {
      core::SurrogateOptions surrogate_options;
      surrogate_options.kind = core::SurrogateKind::kModal;
      UKC_ASSIGN_OR_RETURN(std::vector<SiteId> modal,
                           core::BuildSurrogates(dataset, surrogate_options));
      UKC_ASSIGN_OR_RETURN(solver::KCenterSolution certain,
                           solver::Gonzalez(space, modal, options.k));
      BaselineResult result;
      result.name = BaselineKindToString(kind);
      result.centers = std::move(certain.centers);
      UKC_ASSIGN_OR_RETURN(
          result.assignment,
          cost::AssignBySurrogate(*dataset, modal, result.centers));
      UKC_ASSIGN_OR_RETURN(result.expected_cost,
                           evaluator.AssignedCost(*dataset, result.assignment));
      return result;
    }
    case BaselineKind::kRandomCenters: {
      const std::vector<SiteId> pool = dataset->LocationSites();
      Rng rng(options.seed);
      std::vector<SiteId> shuffled = pool;
      rng.Shuffle(&shuffled);
      shuffled.resize(std::min<size_t>(options.k, shuffled.size()));
      return FinishWithED(*dataset, &evaluator, BaselineKindToString(kind),
                          std::move(shuffled));
    }
    case BaselineKind::kTruncatedMedian: {
      if (!(options.truncation_delta >= 0.0) || options.truncation_delta >= 1.0) {
        return Status::InvalidArgument(
            "RunBaseline: truncation_delta must be in [0, 1)");
      }
      std::vector<SiteId> surrogates;
      surrogates.reserve(dataset->n());
      for (size_t i = 0; i < dataset->n(); ++i) {
        UKC_ASSIGN_OR_RETURN(
            SiteId site,
            TruncatedMedianSurrogate(dataset, i, options.truncation_delta));
        surrogates.push_back(site);
      }
      UKC_ASSIGN_OR_RETURN(solver::KCenterSolution certain,
                           solver::Gonzalez(space, surrogates, options.k));
      return FinishWithED(*dataset, &evaluator, BaselineKindToString(kind),
                          std::move(certain.centers));
    }
  }
  return Status::Internal("RunBaseline: unknown baseline kind");
}

}  // namespace baselines
}  // namespace ukc
