#include "common/thread_pool.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/check.h"

namespace ukc {

int ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = HardwareThreads();
  workers_.reserve(threads - 1);
  for (int w = 1; w < threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunJob(int worker) {
  const std::function<void(int, size_t)>& fn = *job_;
  const size_t count = job_count_;
  for (size_t index = next_.fetch_add(1, std::memory_order_relaxed);
       index < count;
       index = next_.fetch_add(1, std::memory_order_relaxed)) {
    if (job_aborted_.load(std::memory_order_relaxed)) return;
    try {
      fn(worker, index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++job_exception_count_;
      if (job_exception_ == nullptr) {
        job_exception_ = std::current_exception();
      }
      job_aborted_.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ready_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
    }
    RunJob(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (++finished_workers_ == workers_.size()) job_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(int, size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // Inline: no synchronization, identical to a plain loop. An
    // exception propagates directly — the borrowing thread IS the
    // executing thread, matching the pooled contract.
    for (size_t index = 0; index < count; ++index) fn(0, index);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    UKC_CHECK(job_ == nullptr) << "ThreadPool jobs do not nest";
    job_ = &fn;
    job_count_ = count;
    next_.store(0, std::memory_order_relaxed);
    finished_workers_ = 0;
    job_aborted_.store(false, std::memory_order_relaxed);
    job_exception_ = nullptr;
    job_exception_count_ = 0;
    ++generation_;
  }
  job_ready_.notify_all();
  RunJob(0);  // The calling thread is worker 0.
  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock, [&] { return finished_workers_ == workers_.size(); });
  job_ = nullptr;
  if (job_exception_ != nullptr) {
    // Every worker has drained (the wait above), so the pool is back
    // in its idle state and stays usable after the rethrow.
    std::exception_ptr exception = job_exception_;
    const size_t exception_count = job_exception_count_;
    job_exception_ = nullptr;
    job_exception_count_ = 0;
    job_aborted_.store(false, std::memory_order_relaxed);
    if (exception_count <= 1) {
      // The common case: one worker failed. Rethrow the original so
      // the caller's catch-by-type still works.
      std::rethrow_exception(exception);
    }
    // Several workers failed in the same batch. Surface the fan-out in
    // the message — callers diagnosing "one flaky worker" vs "every
    // worker hit the same bug" need the count.
    lock.unlock();
    std::string first_message = "<non-standard exception>";
    try {
      std::rethrow_exception(exception);
    } catch (const std::exception& e) {
      first_message = e.what();
    } catch (...) {
    }
    throw std::runtime_error("ThreadPool batch failed with " +
                             std::to_string(exception_count) +
                             " worker exceptions; first: " + first_message);
  }
}

}  // namespace ukc
