// Small string helpers (printf-style formatting, join/split) used across
// the library. Kept minimal: no dependency on absl.

#ifndef UKC_COMMON_STRINGS_H_
#define UKC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ukc {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins the parts with the separator.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace ukc

#endif  // UKC_COMMON_STRINGS_H_
