// Wall-clock stopwatch for benchmark harnesses and stage timers.

#ifndef UKC_COMMON_STOPWATCH_H_
#define UKC_COMMON_STOPWATCH_H_

#include <chrono>

namespace ukc {

/// Measures elapsed wall time. Starts running on construction. A
/// stopwatch can be paused and resumed; elapsed time is CUMULATIVE
/// across running segments (the stage timers of the streaming layer
/// pause across the batches of other stages and resume on their own),
/// which reduces to the original construction-to-now behavior when
/// Pause/Resume are never called.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch: cumulative time drops to zero and it is
  /// running again regardless of prior pause state.
  void Reset() {
    accumulated_ = Duration::zero();
    running_ = true;
    start_ = Clock::now();
  }

  /// Freezes the elapsed total. No-op when already paused.
  void Pause() {
    if (!running_) return;
    accumulated_ += Clock::now() - start_;
    running_ = false;
  }

  /// Continues accumulating after a Pause. No-op when running.
  void Resume() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  /// Whether time is currently accumulating.
  bool IsRunning() const { return running_; }

  /// Cumulative elapsed seconds over every running segment since
  /// construction or the last Reset(), including the currently-running
  /// segment when not paused.
  double ElapsedSeconds() const {
    Duration elapsed = accumulated_;
    if (running_) elapsed += Clock::now() - start_;
    return std::chrono::duration<double>(elapsed).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;
  Clock::time_point start_;
  Duration accumulated_ = Duration::zero();
  bool running_ = true;
};

}  // namespace ukc

#endif  // UKC_COMMON_STOPWATCH_H_
