// Wall-clock stopwatch for benchmark harnesses.

#ifndef UKC_COMMON_STOPWATCH_H_
#define UKC_COMMON_STOPWATCH_H_

#include <chrono>

namespace ukc {

/// Measures elapsed wall time. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ukc

#endif  // UKC_COMMON_STOPWATCH_H_
