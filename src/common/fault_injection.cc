#include "common/fault_injection.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"
#include "common/hash.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace ukc {

namespace {

// The installed injector. Acquire/release pairs with ScopedFaultInjection
// so a worker thread that observes the pointer also observes the plan.
std::atomic<FaultInjector*> g_active{nullptr};

bool SiteMatches(const std::string& pattern, const char* site) {
  if (!pattern.empty() && pattern.back() == '*') {
    return std::string_view(site).substr(0, pattern.size() - 1) ==
           std::string_view(pattern).substr(0, pattern.size() - 1);
  }
  return pattern == site;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rule_fires_(plan_.rules.size(), 0) {
  for (const FaultRule& rule : plan_.rules) {
    UKC_CHECK(rule.probability >= 0.0 && rule.probability <= 1.0)
        << "FaultRule probability must be in [0, 1], got " << rule.probability;
  }
}

Status FaultInjector::OnHit(const char* site) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t hit = site_hits_[site]++;
  for (size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (!SiteMatches(rule.site, site)) continue;
    if (rule.max_fires > 0 && rule_fires_[r] >= rule.max_fires) continue;
    bool fire = std::find(rule.fire_at_hits.begin(), rule.fire_at_hits.end(),
                          hit) != rule.fire_at_hits.end();
    if (!fire && rule.probability > 0.0) {
      // Pure function of (seed, site, hit): the top 53 bits of the
      // mixed key form a uniform double in [0, 1).
      const uint64_t key =
          Mix64(plan_.seed ^ Mix64(HashString(site)) ^ (hit * 0x9e3779b97f4a7c15ULL));
      const double u =
          static_cast<double>(key >> 11) * 0x1.0p-53;
      fire = u < rule.probability;
    }
    if (!fire) continue;
    ++rule_fires_[r];
    ++total_fires_;
    // Observability hook off the fault-site inventory: every injected
    // fire is visible on the same surface as the counters it perturbs
    // (fires are test-only and rare; the registration mutex is fine).
    obs::MetricsRegistry::Default()
        .GetCounter("ukc_fault_fires_total",
                    "Injected fault fires by site (test builds only)",
                    {{"site", site}})
        ->Increment();
    return Status(
        rule.code,
        StrFormat("injected fault at %s (hit %llu, seed %llu)", site,
                  static_cast<unsigned long long>(hit),
                  static_cast<unsigned long long>(plan_.seed)));
  }
  return Status::OK();
}

uint64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = site_hits_.find(site);
  return it == site_hits_.end() ? 0 : it->second;
}

uint64_t FaultInjector::fires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_fires_;
}

FaultInjector* FaultInjector::Active() {
  return g_active.load(std::memory_order_acquire);
}

Status FaultInjector::Check(const char* site) {
  FaultInjector* active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) return Status::OK();
  return active->OnHit(site);
}

ScopedFaultInjection::ScopedFaultInjection(FaultPlan plan)
    : injector_(std::move(plan)) {
  FaultInjector* expected = nullptr;
  UKC_CHECK(g_active.compare_exchange_strong(expected, &injector_,
                                             std::memory_order_release,
                                             std::memory_order_relaxed))
      << "ScopedFaultInjection scopes must not nest or overlap";
}

ScopedFaultInjection::~ScopedFaultInjection() {
  g_active.store(nullptr, std::memory_order_release);
}

std::vector<uint64_t> FaultSeedsFromEnv(const char* variable) {
  std::vector<uint64_t> seeds;
  const char* raw = std::getenv(variable);
  if (raw == nullptr) return seeds;
  std::string token;
  for (const char* p = raw;; ++p) {
    const char c = *p;
    if (c != '\0' && c != ',' && c != ' ') {
      token.push_back(c);
      continue;
    }
    if (!token.empty()) {
      char* end = nullptr;
      const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size()) return {};  // Malformed: all-or-nothing.
      seeds.push_back(static_cast<uint64_t>(value));
      token.clear();
    }
    if (c == '\0') break;
  }
  return seeds;
}

}  // namespace ukc
