// Deterministic, site-keyed fault injection for robustness testing.
//
// Library code marks its fallible external-I/O boundaries with
//
//   UKC_INJECT_FAULT("ingest.read");
//
// inside Status-returning functions. With no injector installed — the
// default, and always in production — the macro costs one relaxed
// atomic load and a predicted branch; built with -DUKC_FAULT_INJECTION=0
// it compiles to nothing. Tests install a FaultPlan via
// ScopedFaultInjection to make chosen sites fail.
//
// Determinism contract: every fire decision is a pure function of
// (plan seed, site name, per-site hit index). Sites on serial paths
// (the batch reader, checkpoint writes) therefore fail at exactly the
// same logical operation run after run for a given seed — the property
// the crash-recovery suite relies on to reproduce a failure. Sites hit
// concurrently still decide deterministically per (site, hit), but
// which logical operation receives which hit index depends on thread
// interleaving; keyed tests should stick to serial sites.
//
// Site naming: dotted lowercase paths, "<subsystem>.<operation>"
// ("ingest.read", "checkpoint.write"). The full inventory lives in
// docs/operations.md; rules may match a site exactly or by prefix with
// a trailing '*' ("checkpoint.*").

#ifndef UKC_COMMON_FAULT_INJECTION_H_
#define UKC_COMMON_FAULT_INJECTION_H_

// Compile-time gate, set by the build (CMake option
// UKC_FAULT_INJECTION, default ON). When off, UKC_INJECT_FAULT is a
// no-op and none of the hook code is emitted.
#ifndef UKC_FAULT_INJECTION
#define UKC_FAULT_INJECTION 1
#endif

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace ukc {

/// One injection rule of a FaultPlan.
struct FaultRule {
  /// Site to match: exact name, or a prefix with a trailing '*'
  /// ("ingest.*" matches every ingest site).
  std::string site;
  /// Fire at exactly these 0-based hit indices of the matched site
  /// (the deterministic "crash at batch N" mode). Independent of
  /// `probability`; either or both may be set.
  std::vector<uint64_t> fire_at_hits;
  /// Per-hit fire probability in [0, 1]. Decisions derive from
  /// (plan seed, site, hit index) — no global RNG state is consumed,
  /// so two runs with one seed fire identically.
  double probability = 0.0;
  /// Code of the injected failure. kUnavailable is transient (the
  /// retry layer may clear it); anything else is permanent.
  StatusCode code = StatusCode::kUnavailable;
  /// Stop firing after this many fires of this rule; 0 = unlimited.
  /// max_fires = 1 with a probability rule models a one-off hiccup a
  /// retry recovers from.
  uint64_t max_fires = 0;
};

/// A seed plus rules: everything a deterministic failure scenario
/// needs. Copyable value type.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;
};

/// Evaluates a FaultPlan hit by hit. Thread-safe: concurrent sites
/// (shard merge) may call OnHit from pool workers.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Decides one hit of `site`: OK, or the injected failure.
  Status OnHit(const char* site);

  /// Observed hit count of a site (0 when never hit).
  uint64_t hits(const std::string& site) const;
  /// Total faults injected so far.
  uint64_t fires() const;

  /// The process-global injector, or nullptr when none is installed.
  static FaultInjector* Active();
  /// OnHit against the active injector; OK when none is installed.
  /// This is the single call UKC_INJECT_FAULT expands to.
  static Status Check(const char* site);

 private:
  friend class ScopedFaultInjection;

  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, uint64_t> site_hits_;
  std::vector<uint64_t> rule_fires_;
  uint64_t total_fires_ = 0;
};

/// RAII installation of the process-global injector. Test-only; scopes
/// must not nest or overlap across threads (checked).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultPlan plan);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
};

/// Parses a comma/space-separated list of uint64 seeds from the
/// environment (default variable UKC_FAULTS) — the CI knob for
/// sweeping crash-recovery seeds deterministically:
///   UKC_FAULTS=1,2,42 ctest -R crash_recovery
/// Returns empty when unset, empty, or malformed.
std::vector<uint64_t> FaultSeedsFromEnv(const char* variable = "UKC_FAULTS");

}  // namespace ukc

#if UKC_FAULT_INJECTION
/// Injects a Status failure at this point when the active plan says
/// so. Must appear inside a function returning Status or Result<T>.
#define UKC_INJECT_FAULT(site) \
  UKC_RETURN_IF_ERROR(::ukc::FaultInjector::Check(site))
#else
#define UKC_INJECT_FAULT(site) \
  do {                         \
  } while (false)
#endif

#endif  // UKC_COMMON_FAULT_INJECTION_H_
