#include "common/status.h"

namespace ukc {

namespace {
const std::string kEmptyString;  // NOLINT(runtime/string)
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

bool IsTransient(StatusCode code) { return code == StatusCode::kUnavailable; }

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_shared<const Rep>(Rep{code, std::move(message)});
  }
}

const std::string& Status::message() const {
  return rep_ == nullptr ? kEmptyString : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithPrefix(std::string_view prefix) const {
  if (ok()) return *this;
  std::string combined(prefix);
  combined += ": ";
  combined += message();
  return Status(code(), std::move(combined));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace ukc
