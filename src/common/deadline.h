// Deadline / cancellation token for bounding query work.
//
// A `Deadline` is a cheap copyable handle threaded by value through
// options structs down into the evaluator kernels. Copies share state:
// cancelling any copy cancels them all, and every copy observes the
// same expiry. The default-constructed token never expires and costs
// nothing to check (null rep, one pointer compare), so hot paths pay
// for deadlines only when a caller actually set one.
//
// Two budget shapes are supported:
//   - Deadline::After(duration): wall-clock (steady_clock) expiry, the
//     production shape.
//   - Deadline::AfterChecks(n): expires on the n-th Check() call. A
//     deterministic countdown for tests — "the query dies at exactly
//     the same kernel checkpoint every run", independent of machine
//     speed, which is what lets deadline tests assert bitwise-stable
//     behavior.
//
// Checks are deliberately coarse-grained (per candidate, per sweep
// phase, per local-search round — not per point) so the unexpired cost
// is a handful of atomic loads per query. Expiry surfaces as
// `kDeadlineExceeded`, which is NOT transient: the retry layer will
// not amplify an expired query (see common/retry.h).

#ifndef UKC_COMMON_DEADLINE_H_
#define UKC_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace ukc {

class Deadline {
 public:
  /// Never expires; Check() is a null-pointer test.
  Deadline() = default;

  /// Expires `budget` from now (steady clock).
  static Deadline After(std::chrono::nanoseconds budget);

  /// Expires on the `checks`-th call to Check()/expired() (1-based:
  /// AfterChecks(1) fails the first check). Deterministic; test-only
  /// by intent. `checks <= 0` behaves as already expired.
  static Deadline AfterChecks(int64_t checks);

  /// Already expired. Every Check() fails.
  static Deadline Expired();

  /// Cancels this token and every copy sharing its state. Safe to call
  /// from any thread, including concurrently with Check(). No-op on a
  /// default (infinite) token.
  void Cancel();

  /// True iff the token can never expire (default-constructed).
  bool infinite() const { return rep_ == nullptr; }

  /// True iff the budget is gone. Consumes a check from an
  /// AfterChecks() countdown, exactly like Check().
  bool expired() const;

  /// OK while the budget lasts, DeadlineExceeded("<what>: ...") after.
  /// `what` names the checkpoint for the error message; it does not
  /// affect the decision.
  Status Check(const char* what) const;

 private:
  struct Rep {
    // Cancelled (or countdown exhausted) flag. Sticky once set so
    // late checks after expiry all agree.
    std::atomic<bool> cancelled{false};
    // Wall-clock expiry; time_point::max() means "no time budget".
    std::chrono::steady_clock::time_point expires_at =
        std::chrono::steady_clock::time_point::max();
    // Remaining Check() calls before expiry; negative means "no
    // countdown". Decremented on every check of every copy.
    std::atomic<int64_t> checks_left{-1};
  };

  // Null for the infinite token; shared so copies observe one state.
  std::shared_ptr<Rep> rep_;
};

}  // namespace ukc

#endif  // UKC_COMMON_DEADLINE_H_
