// Streaming statistics accumulators used by the Monte-Carlo cost
// estimator and the experiment harness.

#ifndef UKC_COMMON_STATS_H_
#define UKC_COMMON_STATS_H_

#include <cstdint>
#include <limits>

namespace ukc {

/// Welford online accumulator: numerically stable mean and variance,
/// plus min/max, in O(1) memory.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations.
  int64_t count() const { return count_; }

  /// Sample mean (0 when empty).
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance (0 when fewer than two observations).
  double Variance() const;

  /// Sample standard deviation.
  double StdDev() const;

  /// Standard error of the mean.
  double StdError() const;

  /// Smallest / largest observation (+inf / -inf when empty).
  double Min() const { return min_; }
  double Max() const { return max_; }

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStats& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Kahan compensated summation, for the exact expected-cost sweep where
/// many small probability increments accumulate.
class KahanSum {
 public:
  /// Adds a term.
  void Add(double x);

  /// The compensated total.
  double Total() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace ukc

#endif  // UKC_COMMON_STATS_H_
