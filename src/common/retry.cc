#include "common/retry.h"

#include <algorithm>
#include <thread>

#include "common/strings.h"

namespace ukc {

std::chrono::nanoseconds BackoffForRetry(const RetryOptions& options,
                                         int retry_number) {
  if (retry_number <= 0 || options.base_backoff.count() <= 0) {
    return std::chrono::nanoseconds(0);
  }
  // Shift saturating well below overflow: 2^62 ns is ~146 years.
  const int shift = std::min(retry_number - 1, 62);
  std::chrono::nanoseconds backoff = options.base_backoff;
  for (int i = 0; i < shift && backoff < options.max_backoff; ++i) {
    backoff += backoff;
  }
  return std::min(backoff, options.max_backoff);
}

Status RetryTransient(const RetryOptions& options,
                      const std::function<Status()>& op, RetryStats* stats) {
  const int attempts = std::max(1, options.max_attempts);
  const auto should_retry = [&options](const Status& status) {
    if (status.ok()) return false;
    if (options.retry_if != nullptr) return options.retry_if(status);
    return status.IsTransientError();
  };
  Status last = Status::OK();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (stats != nullptr) ++stats->attempts;
    last = op();
    if (!should_retry(last)) return last;  // Success or permanent.
    if (attempt == attempts) break;
    if (stats != nullptr) ++stats->retries;
    const std::chrono::nanoseconds backoff = BackoffForRetry(options, attempt);
    if (backoff.count() > 0) {
      if (options.sleeper != nullptr) {
        options.sleeper(backoff);
      } else {
        std::this_thread::sleep_for(backoff);
      }
    }
  }
  if (stats != nullptr) ++stats->exhausted;
  return last.WithPrefix(
      StrFormat("transient failure persisted after %d attempts", attempts));
}

}  // namespace ukc
