#include "common/retry.h"

#include <algorithm>
#include <thread>

#include "common/strings.h"

namespace ukc {

std::chrono::nanoseconds BackoffForRetry(const RetryOptions& options,
                                         int retry_number) {
  if (retry_number <= 0 || options.base_backoff.count() <= 0) {
    return std::chrono::nanoseconds(0);
  }
  // Shift saturating well below overflow: 2^62 ns is ~146 years.
  const int shift = std::min(retry_number - 1, 62);
  std::chrono::nanoseconds backoff = options.base_backoff;
  for (int i = 0; i < shift && backoff < options.max_backoff; ++i) {
    backoff += backoff;
  }
  return std::min(backoff, options.max_backoff);
}

namespace {

// Per-site counter handles of one retry boundary, resolved once per
// RetryTransient call (registration is get-or-create; the adds inside
// the loop are lock-free relaxed increments).
struct RetryCounters {
  obs::Counter* attempts;
  obs::Counter* retries;
  obs::Counter* exhausted;
};

RetryCounters CountersForSite(const RetryOptions& options) {
  obs::MetricsRegistry& registry = options.metrics != nullptr
                                       ? *options.metrics
                                       : obs::MetricsRegistry::Default();
  const obs::LabelList labels = {{"site", options.metrics_site}};
  return RetryCounters{
      registry.GetCounter("ukc_retry_attempts_total",
                          "Operations started under RetryTransient, first "
                          "tries included",
                          labels),
      registry.GetCounter("ukc_retry_retries_total",
                          "Re-tries after a transient failure", labels),
      registry.GetCounter("ukc_retry_exhausted_total",
                          "Retry budgets exhausted (the loop then failed)",
                          labels)};
}

}  // namespace

Status RetryTransient(const RetryOptions& options,
                      const std::function<Status()>& op, RetryStats* stats) {
  const int attempts = std::max(1, options.max_attempts);
  const RetryCounters counters = CountersForSite(options);
  const auto should_retry = [&options](const Status& status) {
    if (status.ok()) return false;
    if (options.retry_if != nullptr) return options.retry_if(status);
    return status.IsTransientError();
  };
  Status last = Status::OK();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (stats != nullptr) ++stats->attempts;
    counters.attempts->Increment();
    last = op();
    if (!should_retry(last)) return last;  // Success or permanent.
    if (attempt == attempts) break;
    if (stats != nullptr) ++stats->retries;
    counters.retries->Increment();
    const std::chrono::nanoseconds backoff = BackoffForRetry(options, attempt);
    if (backoff.count() > 0) {
      if (options.sleeper != nullptr) {
        options.sleeper(backoff);
      } else {
        std::this_thread::sleep_for(backoff);
      }
    }
  }
  if (stats != nullptr) ++stats->exhausted;
  counters.exhausted->Increment();
  return last.WithPrefix(
      StrFormat("transient failure persisted after %d attempts", attempts));
}

}  // namespace ukc
