#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace ukc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  UKC_CHECK(!headers_.empty());
  alignment_.assign(headers_.size(), Align::kRight);
  alignment_[0] = Align::kLeft;
}

void TablePrinter::SetAlignment(std::vector<Align> alignment) {
  UKC_CHECK_EQ(alignment.size(), headers_.size());
  alignment_ = std::move(alignment);
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  UKC_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatCell(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

namespace {

void PrintPadded(std::ostream& os, const std::string& cell, size_t width,
                 Align align) {
  const size_t pad = width > cell.size() ? width - cell.size() : 0;
  if (align == Align::kRight) os << std::string(pad, ' ');
  os << cell;
  if (align == Align::kLeft) os << std::string(pad, ' ');
}

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  if (!title_.empty()) os << title_ << "\n";
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << "  ";
    PrintPadded(os, headers_[c], widths[c], alignment_[c]);
  }
  os << "\n";
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c > 0 ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      PrintPadded(os, row[c], widths[c], alignment_[c]);
    }
    os << "\n";
  }
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << ",";
    os << CsvEscape(headers_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << CsvEscape(row[c]);
    }
    os << "\n";
  }
}

}  // namespace ukc
