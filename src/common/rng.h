// Deterministic, seedable random number generation.
//
// All stochastic components of the library (dataset generators, Monte
// Carlo estimators, randomized solvers) take an explicit `Rng&` so that
// every experiment is reproducible from a single seed. The generator is
// xoshiro256** seeded through SplitMix64, both implemented here so the
// bit streams are stable across platforms and standard libraries
// (std::mt19937 distributions are not portable across stdlibs).

#ifndef UKC_COMMON_RNG_H_
#define UKC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace ukc {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Also a fine standalone generator for hashing-style use.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64 random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: the library-wide pseudo-random generator. Fast, high
/// quality, tiny state, stable output across platforms.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator. Equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Returns the next 64 random bits.
  uint64_t Next();

  // UniformRandomBitGenerator interface so Rng works with <algorithm>.
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }
  uint64_t operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double UniformDouble(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  /// Unbiased (rejection sampling).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (cached spare value).
  double Gaussian();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Gaussian(double mean, double stddev);

  /// Exponential with the given rate (rate > 0).
  double Exponential(double rate);

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index according to the (non-negative, not necessarily
  /// normalized) weights. Requires at least one strictly positive weight.
  /// O(n); use AliasTable for repeated sampling from the same weights.
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    UKC_CHECK(values != nullptr);
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Derives an independent child generator; children with distinct
  /// stream ids are decorrelated from each other and the parent.
  Rng Fork(uint64_t stream);

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace ukc

#endif  // UKC_COMMON_RNG_H_
