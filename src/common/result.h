// Result<T>: a value-or-Status holder (StatusOr analogue).

#ifndef UKC_COMMON_RESULT_H_
#define UKC_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace ukc {

/// Holds either a value of type T or a non-OK Status describing why the
/// value is absent. Accessing the value of an errored Result aborts, so
/// callers must check ok() (or use UKC_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, mirrors StatusOr ergonomics).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Aborts if the status is OK, since
  /// an OK Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    UKC_CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors; abort if !ok().
  const T& value() const& {
    UKC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    UKC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    UKC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ has a value.
  std::optional<T> value_;
};

}  // namespace ukc

#endif  // UKC_COMMON_RESULT_H_
