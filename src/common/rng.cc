#include "common/rng.h"

#include <cmath>

namespace ukc {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 mix(seed);
  for (auto& word : state_) word = mix.Next();
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 high bits -> uniform in [0, 1) with full double resolution.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  UKC_CHECK_LE(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  UKC_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling for an unbiased draw.
  const uint64_t limit = max() - max() % span;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box–Muller; u is kept away from 0 so log() is finite.
  double u = 0.0;
  while (u == 0.0) u = UniformDouble();
  const double v = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u));
  const double angle = 2.0 * M_PI * v;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  UKC_CHECK_GE(stddev, 0.0);
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double rate) {
  UKC_CHECK_GT(rate, 0.0);
  double u = 0.0;
  while (u == 0.0) u = UniformDouble();
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    UKC_CHECK_GE(w, 0.0) << "Discrete() weight must be non-negative";
    total += w;
  }
  UKC_CHECK_GT(total, 0.0) << "Discrete() needs a positive total weight";
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point underflow at the boundary: return the last positive
  // weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t stream) {
  // Mix the child stream id with fresh state from the parent so distinct
  // streams are decorrelated.
  SplitMix64 mix(Next() ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  Rng child(mix.Next());
  return child;
}

}  // namespace ukc
