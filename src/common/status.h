// Lightweight Status error model (no exceptions in library code).
//
// Follows the database-engine idiom (Arrow/RocksDB style): fallible
// operations return `Status` or `Result<T>`; logic errors that indicate
// programmer mistakes use UKC_CHECK from check.h instead.

#ifndef UKC_COMMON_STATUS_H_
#define UKC_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ukc {

/// Canonical error codes, a deliberately small subset of the usual
/// database-engine set.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kUnimplemented = 5,
  kInternal = 6,
  /// A transient external failure (I/O hiccup, resource briefly
  /// unavailable): the one code the retry layer (common/retry.h) is
  /// allowed to retry. Everything else is permanent.
  kUnavailable = 7,
  /// The caller's deadline or cancellation budget expired before the
  /// operation completed. Deliberately NOT transient: retrying an
  /// expired query against the same deadline can only expire again;
  /// the caller must mint a fresh budget first.
  kDeadlineExceeded = 8,
};

/// Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// True iff the code marks a transient failure that a bounded retry
/// may clear (currently exactly kUnavailable). The ingest path uses
/// this to separate "try again" from "give up and surface it".
bool IsTransient(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no
/// allocation); error states carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. A code of
  /// kOk ignores the message.
  Status(StatusCode code, std::string message);

  /// Named constructors, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  /// True iff the error is transient (see IsTransient). OK statuses
  /// are not transient — there is nothing to retry.
  bool IsTransientError() const { return !ok() && IsTransient(code()); }

  /// True iff the status is OK.
  bool ok() const { return rep_ == nullptr; }

  /// The status code (kOk when ok()).
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }

  /// The error message; empty when ok().
  const std::string& message() const;

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `prefix + ": "` prepended to the
  /// message. OK statuses are returned unchanged.
  Status WithPrefix(std::string_view prefix) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null for OK; shared so copies are cheap.
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace ukc

/// Propagates a non-OK Status from the current function.
#define UKC_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::ukc::Status ukc_status_ = (expr);            \
    if (!ukc_status_.ok()) return ukc_status_;     \
  } while (false)

#define UKC_CONCAT_IMPL(a, b) a##b
#define UKC_CONCAT(a, b) UKC_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>), propagates its error, otherwise
/// moves the value into `lhs`.
#define UKC_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  UKC_ASSIGN_OR_RETURN_IMPL(UKC_CONCAT(ukc_result_, __LINE__), lhs, rexpr)

#define UKC_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

#endif  // UKC_COMMON_STATUS_H_
