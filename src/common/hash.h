// Shared 64-bit content hashing: FNV-1a folded 8 bytes at a time, the
// same primitive the incremental swap engine uses for its dataset
// fingerprints (cost/parallel_evaluator.cc) and the checkpoint layer
// uses for its sidecar checksum and stream content fingerprint
// (stream/checkpoint.h). Not cryptographic — it guards against
// corruption and configuration drift, not adversaries.

#ifndef UKC_COMMON_HASH_H_
#define UKC_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace ukc {

/// FNV-1a offset basis: the canonical seed for a fresh hash chain.
inline constexpr uint64_t kHashSeed = 14695981039346656037ULL;

/// Folds `bytes` bytes into `hash` (FNV-1a, 8-byte chunks plus a
/// byte-wise tail). Chain calls to fingerprint multi-part content; the
/// result depends on the concatenated byte stream and the starting
/// hash only.
inline uint64_t HashBytes(uint64_t hash, const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  while (bytes >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    hash = (hash ^ chunk) * 1099511628211ULL;
    p += 8;
    bytes -= 8;
  }
  for (size_t i = 0; i < bytes; ++i) {
    hash = (hash ^ p[i]) * 1099511628211ULL;
  }
  return hash;
}

/// Folds one integral value into `hash`.
inline uint64_t HashValue(uint64_t hash, uint64_t value) {
  return HashBytes(hash, &value, sizeof(value));
}

/// Hash of a string (site names, paths).
inline uint64_t HashString(std::string_view text, uint64_t hash = kHashSeed) {
  return HashBytes(hash, text.data(), text.size());
}

/// splitmix64 finalizer: turns a structured key (seed ^ site ^ counter)
/// into a well-mixed 64-bit value. Used for deterministic per-hit fault
/// decisions (common/fault_injection.h).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace ukc

#endif  // UKC_COMMON_HASH_H_
