#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

#include "common/check.h"

namespace ukc {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  UKC_CHECK_GE(needed, 0);
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StrTrim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\r' ||
          text[begin] == '\n')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t' ||
                         text[end - 1] == '\r' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace ukc
