// UKC_CHECK: fatal assertions for programmer errors (invariants,
// precondition violations that cannot be produced by bad user input).
// User-input validation belongs in Status-returning APIs instead.
//
// All macros support streaming extra context:
//   UKC_CHECK(k > 0) << "k-center needs at least one center, got " << k;

#ifndef UKC_COMMON_CHECK_H_
#define UKC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

namespace ukc {
namespace internal {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via the UKC_CHECK macros.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Turns the streamed CheckFailure expression into void so the ternary
/// in UKC_CHECK type-checks. operator& binds looser than operator<<, so
/// all streaming happens before voidification.
struct Voidify {
  void operator&(CheckFailure&) {}
  void operator&(CheckFailure&&) {}
};

/// Builds the "(lhs vs rhs)" detail string for a failed comparison, or
/// returns nullptr on success. Evaluates the operands exactly once.
template <typename A, typename B, typename Op>
std::unique_ptr<std::string> CheckOpDetail(const A& a, const B& b, Op op) {
  if (op(a, b)) return nullptr;
  std::ostringstream detail;
  detail << " (" << a << " vs " << b << ")";
  return std::make_unique<std::string>(detail.str());
}

}  // namespace internal
}  // namespace ukc

#define UKC_CHECK(condition)                            \
  (condition) ? (void)0                                 \
              : ::ukc::internal::Voidify() &            \
                    ::ukc::internal::CheckFailure(__FILE__, __LINE__, #condition)

// Comparison helpers. The operands are evaluated exactly once; their
// values are included in the failure message. The while-loop body runs
// at most once (CheckFailure's destructor aborts) and supports extra
// streamed context just like UKC_CHECK.
#define UKC_CHECK_OP_IMPL(op, a, b, name)                                 \
  while (auto ukc_detail_ = ::ukc::internal::CheckOpDetail(               \
             (a), (b), [](const auto& x, const auto& y) { return x op y; })) \
  ::ukc::internal::CheckFailure(__FILE__, __LINE__, name) << *ukc_detail_

#define UKC_CHECK_EQ(a, b) UKC_CHECK_OP_IMPL(==, a, b, #a " == " #b)
#define UKC_CHECK_NE(a, b) UKC_CHECK_OP_IMPL(!=, a, b, #a " != " #b)
#define UKC_CHECK_LT(a, b) UKC_CHECK_OP_IMPL(<, a, b, #a " < " #b)
#define UKC_CHECK_LE(a, b) UKC_CHECK_OP_IMPL(<=, a, b, #a " <= " #b)
#define UKC_CHECK_GT(a, b) UKC_CHECK_OP_IMPL(>, a, b, #a " > " #b)
#define UKC_CHECK_GE(a, b) UKC_CHECK_OP_IMPL(>=, a, b, #a " >= " #b)

#ifndef NDEBUG
#define UKC_DCHECK(condition) UKC_CHECK(condition)
#define UKC_DCHECK_EQ(a, b) UKC_CHECK_EQ(a, b)
#define UKC_DCHECK_LT(a, b) UKC_CHECK_LT(a, b)
#define UKC_DCHECK_LE(a, b) UKC_CHECK_LE(a, b)
#else
#define UKC_DCHECK(condition) (void)0
#define UKC_DCHECK_EQ(a, b) (void)0
#define UKC_DCHECK_LT(a, b) (void)0
#define UKC_DCHECK_LE(a, b) (void)0
#endif

#endif  // UKC_COMMON_CHECK_H_
