#include "common/flags.h"

#include <cstdlib>

#include "common/check.h"

namespace ukc {

namespace {

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = parsed;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = parsed;
  return true;
}

bool ParseBool(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text.empty()) {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

void FlagParser::AddInt(const std::string& name, int64_t* value,
                        const std::string& help) {
  UKC_CHECK(value != nullptr);
  flags_[name] = FlagInfo{Type::kInt, value, help, std::to_string(*value)};
}

void FlagParser::AddDouble(const std::string& name, double* value,
                           const std::string& help) {
  UKC_CHECK(value != nullptr);
  flags_[name] = FlagInfo{Type::kDouble, value, help, std::to_string(*value)};
}

void FlagParser::AddBool(const std::string& name, bool* value,
                         const std::string& help) {
  UKC_CHECK(value != nullptr);
  flags_[name] = FlagInfo{Type::kBool, value, help, *value ? "true" : "false"};
}

void FlagParser::AddString(const std::string& name, std::string* value,
                           const std::string& help) {
  UKC_CHECK(value != nullptr);
  flags_[name] = FlagInfo{Type::kString, value, help, *value};
}

Status FlagParser::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  FlagInfo& info = it->second;
  switch (info.type) {
    case Type::kInt:
      if (!ParseInt64(value, static_cast<int64_t*>(info.target))) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value + "'");
      }
      return Status::OK();
    case Type::kDouble:
      if (!ParseDouble(value, static_cast<double*>(info.target))) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value + "'");
      }
      return Status::OK();
    case Type::kBool:
      if (!ParseBool(value, static_cast<bool*>(info.target))) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value + "'");
      }
      return Status::OK();
    case Type::kString:
      *static_cast<std::string*>(info.target) = value;
      return Status::OK();
  }
  return Status::Internal("unreachable flag type");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      auto it = flags_.find(name);
      if (it == flags_.end()) {
        return Status::InvalidArgument("unknown flag --" + name);
      }
      if (it->second.type == Type::kBool) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("flag --" + name + " missing a value");
        }
        value = argv[++i];
      }
    }
    UKC_RETURN_IF_ERROR(SetValue(name, value));
  }
  return Status::OK();
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& [name, info] : flags_) {
    out += "  --" + name + " (default " + info.default_value + "): " + info.help +
           "\n";
  }
  return out;
}

}  // namespace ukc
