#include "common/deadline.h"

#include <string>

namespace ukc {

Deadline Deadline::After(std::chrono::nanoseconds budget) {
  Deadline deadline;
  deadline.rep_ = std::make_shared<Rep>();
  deadline.rep_->expires_at = std::chrono::steady_clock::now() + budget;
  return deadline;
}

Deadline Deadline::AfterChecks(int64_t checks) {
  Deadline deadline;
  deadline.rep_ = std::make_shared<Rep>();
  if (checks <= 0) {
    deadline.rep_->cancelled.store(true, std::memory_order_relaxed);
  } else {
    deadline.rep_->checks_left.store(checks, std::memory_order_relaxed);
  }
  return deadline;
}

Deadline Deadline::Expired() {
  Deadline deadline;
  deadline.rep_ = std::make_shared<Rep>();
  deadline.rep_->cancelled.store(true, std::memory_order_relaxed);
  return deadline;
}

void Deadline::Cancel() {
  if (rep_ != nullptr) {
    rep_->cancelled.store(true, std::memory_order_relaxed);
  }
}

bool Deadline::expired() const {
  if (rep_ == nullptr) return false;
  if (rep_->cancelled.load(std::memory_order_relaxed)) return true;
  const int64_t countdown = rep_->checks_left.load(std::memory_order_relaxed);
  if (countdown >= 0) {
    // The countdown is the budget: each check consumes one unit, and
    // the check that takes it to zero is the one that fails. A
    // concurrent race can only over-consume — expiry can come early
    // under contention, never late — which is the safe direction for
    // a cancellation primitive (and tests run the countdown
    // single-threaded where it is exact).
    if (rep_->checks_left.fetch_sub(1, std::memory_order_relaxed) <= 1) {
      rep_->cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  if (std::chrono::steady_clock::now() >= rep_->expires_at) {
    rep_->cancelled.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

Status Deadline::Check(const char* what) const {
  if (!expired()) return Status::OK();
  return Status::DeadlineExceeded(
      std::string(what) + ": deadline expired before completion");
}

}  // namespace ukc
