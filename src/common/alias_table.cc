#include "common/alias_table.h"

#include <limits>
#include <string>

namespace ukc {

Result<AliasTable> AliasTable::Build(const std::vector<double>& weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("AliasTable: empty weight vector");
  }
  if (weights.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("AliasTable: too many outcomes");
  }
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!(weights[i] >= 0.0)) {  // Also rejects NaN.
      return Status::InvalidArgument("AliasTable: negative or NaN weight at index " +
                                     std::to_string(i));
    }
    total += weights[i];
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("AliasTable: total weight must be positive");
  }

  const size_t n = weights.size();
  AliasTable table;
  table.normalized_.resize(n);
  table.probability_.assign(n, 0.0);
  table.alias_.assign(n, 0);

  // Scaled probabilities: mean 1.0 across slots.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    table.normalized_[i] = weights[i] / total;
    scaled[i] = table.normalized_[i] * static_cast<double>(n);
  }

  // Partition into under-full and over-full slots and pair them up.
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    table.probability_[s] = scaled[s];
    table.alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Remaining slots are exactly full up to rounding.
  for (uint32_t s : small) table.probability_[s] = 1.0;
  for (uint32_t l : large) table.probability_[l] = 1.0;
  return table;
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t slot =
      static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(size()) - 1));
  return rng.UniformDouble() < probability_[slot] ? slot : alias_[slot];
}

double AliasTable::Probability(size_t i) const {
  UKC_CHECK_LT(i, normalized_.size());
  return normalized_[i];
}

}  // namespace ukc
