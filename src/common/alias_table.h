// Walker alias method: O(1) sampling from a fixed discrete distribution
// after O(n) preprocessing. Used by the realization sampler, where each
// uncertain point's location distribution is sampled many times.

#ifndef UKC_COMMON_ALIAS_TABLE_H_
#define UKC_COMMON_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace ukc {

/// Precomputed alias table over indices {0, ..., n-1}.
class AliasTable {
 public:
  /// Builds a table from (not necessarily normalized) non-negative
  /// weights. Fails on empty input, negative weights, or all-zero total.
  static Result<AliasTable> Build(const std::vector<double>& weights);

  /// Draws one index in O(1).
  size_t Sample(Rng& rng) const;

  /// Number of outcomes.
  size_t size() const { return probability_.size(); }

  /// The normalized probability of outcome i (reconstructed from the
  /// table; exact up to floating-point rounding).
  double Probability(size_t i) const;

 private:
  AliasTable() = default;

  std::vector<double> probability_;  // Acceptance threshold per slot.
  std::vector<uint32_t> alias_;      // Fallback outcome per slot.
  std::vector<double> normalized_;   // Original weights / total.
};

}  // namespace ukc

#endif  // UKC_COMMON_ALIAS_TABLE_H_
