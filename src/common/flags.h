// Minimal command-line flag parser for the bench and example binaries.
//
//   FlagParser flags;
//   int n = 200;
//   flags.AddInt("n", &n, "number of uncertain points");
//   UKC_CHECK(flags.Parse(argc, argv).ok());
//
// Accepted forms: --name=value, --name value, and --flag for booleans.

#ifndef UKC_COMMON_FLAGS_H_
#define UKC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace ukc {

/// Registers typed flags and parses argv into them.
class FlagParser {
 public:
  /// Registration. The pointee holds the default and receives the parsed
  /// value; it must outlive Parse().
  void AddInt(const std::string& name, int64_t* value, const std::string& help);
  void AddDouble(const std::string& name, double* value, const std::string& help);
  void AddBool(const std::string& name, bool* value, const std::string& help);
  void AddString(const std::string& name, std::string* value,
                 const std::string& help);

  /// Parses argv (skipping argv[0]). Unknown flags and malformed values
  /// produce InvalidArgument. Positional arguments are collected and
  /// available via positional().
  Status Parse(int argc, const char* const* argv);

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders a usage string listing all registered flags.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct FlagInfo {
    Type type;
    void* target;
    std::string help;
    std::string default_value;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, FlagInfo> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ukc

#endif  // UKC_COMMON_FLAGS_H_
