// A small persistent worker pool for data-parallel loops.
//
// The pool exists because the solvers' inner loop is "evaluate many
// independent candidates" (center sets, swaps, per-point surrogates):
// spawning std::threads per batch costs more than the work for the
// small batches local search produces, so the workers are created once
// and parked on a condition variable between batches.
//
// Design notes:
//   - ParallelFor(count, fn) invokes fn(worker, index) for every index
//     in [0, count), sharding indices over the workers via an atomic
//     cursor, and blocks until all indices are done. `worker` is a
//     stable id in [0, num_threads()): callers key per-thread scratch
//     (e.g. one ExpectedCostEvaluator per worker) off it.
//   - The calling thread participates as worker 0; a pool of T threads
//     spawns only T-1 background workers. With T == 1 ParallelFor runs
//     the loop inline — zero synchronization, bitwise identical to a
//     plain for loop.
//   - fn must not call back into the same pool (jobs do not nest). fn
//     MAY throw: the first exception (in completion order) is
//     captured, the batch is aborted — workers stop pulling new
//     indices, in-flight indices finish — and the exception is
//     rethrown on the borrowing thread once every worker has drained.
//     A throwing batch therefore leaves the pool reusable instead of
//     terminating the process, but makes no promise about which
//     indices ran.
//   - Determinism is the caller's job and is easy: write results by
//     index into a preallocated buffer and do any reduction as an
//     ordered scan afterwards; never reduce in completion order.

#ifndef UKC_COMMON_THREAD_POOL_H_
#define UKC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ukc {

class ThreadPool {
 public:
  /// Creates a pool of `threads` workers (clamped to >= 1); `threads`
  /// <= 0 means HardwareThreads(). The calling thread is worker 0, so
  /// only threads - 1 OS threads are spawned.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count, including the calling thread.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(worker, index) for every index in [0, count); blocks until
  /// every index completed. Must be called from one thread at a time
  /// (the pool owner's); jobs do not nest. If fn throws, the batch is
  /// aborted and the first captured exception is rethrown here, on the
  /// borrowing thread, after the pool has drained. If exactly one
  /// worker threw, the original exception is rethrown with its type
  /// preserved; if several workers threw in the same batch, a
  /// std::runtime_error reporting the exception count and the first
  /// exception's message is thrown instead.
  void ParallelFor(size_t count, const std::function<void(int, size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static int HardwareThreads();

 private:
  void WorkerLoop(int worker);
  // Pulls indices off the shared cursor until the job is drained.
  void RunJob(int worker);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  const std::function<void(int, size_t)>* job_ = nullptr;
  size_t job_count_ = 0;
  uint64_t generation_ = 0;  // Bumped per job so workers see new work.
  std::atomic<size_t> next_{0};
  // Workers that finished the current generation. The caller waits for
  // all of them (not just "none active"), so job_ stays valid until
  // every worker — including ones that wake late to an already-drained
  // cursor — has moved past it.
  size_t finished_workers_ = 0;
  bool stopping_ = false;
  // First exception thrown by the current job's fn, rethrown by
  // ParallelFor on the borrowing thread. job_aborted_ makes workers
  // stop pulling indices so the batch fails fast. When several workers
  // throw in one batch (an abort only stops index *pulls*; in-flight
  // indices can still fail), the count is aggregated into the rethrown
  // error so multi-worker faults are not silently coalesced into one.
  std::atomic<bool> job_aborted_{false};
  std::exception_ptr job_exception_;   // Guarded by mutex_.
  size_t job_exception_count_ = 0;     // Guarded by mutex_.
};

/// Borrow-or-own resolver for the `ThreadPool* pool` hook carried by
/// the option structs (SurrogateOptions, RefineOptions, ...): when the
/// caller supplies a shared pool it is borrowed as-is (its thread count
/// wins and `threads` is ignored), otherwise a private pool of
/// `threads` workers is constructed for the duration of the call. This
/// is how a pipeline pays the worker spawn cost once instead of once
/// per stage. The same nesting rule as ThreadPool applies: a shared
/// pool must not be used from inside one of its own ParallelFor jobs.
class ScopedPool {
 public:
  ScopedPool(ThreadPool* shared, int threads)
      : owned_(shared == nullptr ? std::make_unique<ThreadPool>(threads)
                                 : nullptr),
        pool_(shared != nullptr ? shared : owned_.get()) {}

  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

  ThreadPool& operator*() const { return *pool_; }
  ThreadPool* operator->() const { return pool_; }
  ThreadPool* get() const { return pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_;
};

}  // namespace ukc

#endif  // UKC_COMMON_THREAD_POOL_H_
