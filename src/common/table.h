// Fixed-width text table renderer shared by the benchmark binaries, so
// every reproduced paper table prints in the same aligned format.

#ifndef UKC_COMMON_TABLE_H_
#define UKC_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace ukc {

/// Column alignment for TablePrinter.
enum class Align {
  kLeft,
  kRight,
};

/// Accumulates rows of string cells and renders them with aligned
/// columns, a header rule, and an optional title. Also exports CSV.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Sets a title printed above the table.
  void SetTitle(std::string title) { title_ = std::move(title); }

  /// Sets per-column alignment; default is left for the first column and
  /// right for the rest (the usual "label, numbers..." layout).
  void SetAlignment(std::vector<Align> alignment);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each cell with FormatCell.
  template <typename... Ts>
  void AddRowValues(const Ts&... values) {
    AddRow({FormatCell(values)...});
  }

  /// Renders the aligned table.
  void Print(std::ostream& os) const;

  /// Renders as CSV (no alignment padding).
  void PrintCsv(std::ostream& os) const;

  /// Number of data rows so far.
  size_t num_rows() const { return rows_.size(); }

  /// Formats a value for a cell: doubles with %.4g, strings verbatim.
  static std::string FormatCell(const std::string& value) { return value; }
  static std::string FormatCell(const char* value) { return value; }
  static std::string FormatCell(double value);
  static std::string FormatCell(int value) { return std::to_string(value); }
  static std::string FormatCell(long value) { return std::to_string(value); }
  static std::string FormatCell(long long value) { return std::to_string(value); }
  static std::string FormatCell(unsigned value) { return std::to_string(value); }
  static std::string FormatCell(unsigned long value) { return std::to_string(value); }
  static std::string FormatCell(unsigned long long value) {
    return std::to_string(value);
  }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ukc

#endif  // UKC_COMMON_TABLE_H_
