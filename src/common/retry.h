// Bounded, deterministic retry with exponential backoff for transient
// failures at external-input boundaries (batch sources, file reads).
//
// Classification rides on common/status.h: only IsTransient codes
// (kUnavailable) are retried; every other error propagates on the
// first attempt. The backoff schedule is a pure function of the
// attempt number — base · 2^(attempt-1), capped — so a retried run is
// reproducible; tests substitute the sleeper to record the schedule
// instead of sleeping.
//
// Retrying is only sound when the failed operation did not consume
// input (the injected faults of common/fault_injection.h fire before
// any read; a real mid-record stream failure leaves the stream
// sticky-failed, so the retry re-observes the same permanent error and
// gives up) — callers wrap idempotent pulls, not partial writes.

#ifndef UKC_COMMON_RETRY_H_
#define UKC_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace ukc {

/// Policy of one retry loop.
struct RetryOptions {
  /// Total tries, including the first (>= 1; 1 = no retry).
  int max_attempts = 3;
  /// Backoff before retry r (1-based): base_backoff · 2^(r-1), capped
  /// at max_backoff. The defaults are tuned for local file I/O; see
  /// docs/operations.md for guidance.
  std::chrono::nanoseconds base_backoff = std::chrono::milliseconds(1);
  std::chrono::nanoseconds max_backoff = std::chrono::milliseconds(100);
  /// Sleep hook; null = std::this_thread::sleep_for. Tests inject a
  /// recorder to assert the schedule without wall-clock waits.
  std::function<void(std::chrono::nanoseconds)> sleeper;
  /// Retry-classification hook; null = Status::IsTransientError (the
  /// historical behavior: retry exactly kUnavailable). Call sites that
  /// must not amplify a particular kUnavailable — the serve layer's
  /// load-shed rejection is the motivating case — inject a narrower
  /// predicate here instead of widening the global IsTransient rule.
  /// The predicate is never consulted on OK statuses.
  std::function<bool(const Status&)> retry_if;
  /// Observability: every loop emits ukc_retry_{attempts,retries,
  /// exhausted}_total{site=metrics_site} through `metrics` (null = the
  /// process-wide obs::MetricsRegistry::Default()). The site label
  /// scopes the counters per boundary ("ingest.read", "serve.submit");
  /// callers that hand-counted RetryStats into their own stat structs
  /// keep working, but the registry is the queryable surface.
  std::string metrics_site = "default";
  obs::MetricsRegistry* metrics = nullptr;
};

/// Counters of one retry loop (aggregated into IngestStats by the
/// streaming layer).
struct RetryStats {
  uint64_t attempts = 0;   // Operations started, first tries included.
  uint64_t retries = 0;    // Re-tries after a transient failure.
  uint64_t exhausted = 0;  // Transient failures given up on.
};

/// The deterministic backoff before 1-based retry `retry_number`.
std::chrono::nanoseconds BackoffForRetry(const RetryOptions& options,
                                         int retry_number);

/// Runs `op` up to max_attempts times while it fails transiently.
/// Returns the first success, the first permanent error, or — when
/// every attempt failed transiently — the last error annotated with
/// the attempt count. `stats`, when given, accumulates across calls.
Status RetryTransient(const RetryOptions& options,
                      const std::function<Status()>& op,
                      RetryStats* stats = nullptr);

}  // namespace ukc

#endif  // UKC_COMMON_RETRY_H_
