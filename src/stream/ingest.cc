#include "stream/ingest.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "uncertain/io.h"

namespace ukc {
namespace stream {

Status ValidateBatch(const uncertain::UncertainPointBatch& batch, size_t dim) {
  if (batch.dim != dim) {
    return Status::InvalidArgument(
        StrFormat("ingest: batch dim %zu != stream dim %zu", batch.dim, dim));
  }
  if (batch.offsets.empty() || batch.offsets.front() != 0 ||
      batch.offsets.back() != batch.probabilities.size() ||
      batch.coords.size() != batch.probabilities.size() * dim) {
    return Status::InvalidArgument("ingest: inconsistent batch layout");
  }
  // Every point needs at least one location (strictly increasing
  // offsets) — a zero-location point has no expected point and would
  // read out of bounds downstream.
  for (size_t i = 0; i + 1 < batch.offsets.size(); ++i) {
    if (batch.offsets[i] >= batch.offsets[i + 1]) {
      return Status::InvalidArgument(StrFormat(
          "ingest: batch point %zu is empty or offsets are non-monotone", i));
    }
  }
  return Status::OK();
}

double SummarizeBatchPoint(const uncertain::UncertainPointBatch& batch,
                           size_t i, double* expected) {
  const size_t dim = batch.dim;
  std::fill(expected, expected + dim, 0.0);
  const size_t begin = batch.offsets[i];
  const size_t end = batch.offsets[i + 1];
  for (size_t l = begin; l < end; ++l) {
    const double* coords = batch.location_coords(l);
    const double p = batch.probabilities[l];
    for (size_t a = 0; a < dim; ++a) expected[a] += coords[a] * p;
  }
  double spread = 0.0;
  for (size_t l = begin; l < end; ++l) {
    spread = std::max(spread,
                      metric::NormDistanceKernel(
                          batch.norm, batch.location_coords(l), expected, dim));
  }
  return spread;
}

Result<BatchSource> MakeDatasetBatchSource(
    const uncertain::UncertainDataset* dataset, size_t chunk_size) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("MakeDatasetBatchSource: null dataset");
  }
  if (chunk_size == 0) {
    return Status::InvalidArgument("MakeDatasetBatchSource: chunk_size >= 1");
  }
  const metric::EuclideanSpace* space = dataset->euclidean();
  if (space == nullptr) {
    return Status::FailedPrecondition(
        "MakeDatasetBatchSource: streaming requires a Euclidean dataset");
  }
  auto cursor = std::make_shared<size_t>(0);
  return BatchSource([dataset, space, chunk_size,
                      cursor](uncertain::UncertainPointBatch* batch)
                         -> Result<bool> {
    const size_t n = dataset->n();
    if (*cursor >= n) return false;
    const size_t begin = *cursor;
    const size_t end = std::min(n, begin + chunk_size);
    const size_t dim = space->dim();
    batch->Clear();
    batch->dim = dim;
    batch->norm = space->norm();
    batch->start_index = begin;
    batch->offsets.push_back(0);
    const metric::SiteId* sites = dataset->flat_sites().data();
    const double* probabilities = dataset->flat_probabilities().data();
    const size_t* offsets = dataset->offsets().data();
    for (size_t i = begin; i < end; ++i) {
      for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
        const double* coords = space->coords(sites[l]);
        batch->coords.insert(batch->coords.end(), coords, coords + dim);
        batch->probabilities.push_back(probabilities[l]);
      }
      batch->offsets.push_back(batch->probabilities.size());
    }
    *cursor = end;
    return true;
  });
}

Result<BatchSource> MakeFileBatchSource(const std::string& path,
                                        size_t chunk_size) {
  if (chunk_size == 0) {
    return Status::InvalidArgument("MakeFileBatchSource: chunk_size >= 1");
  }
  UKC_ASSIGN_OR_RETURN(uncertain::DatasetReader reader,
                       uncertain::DatasetReader::Open(path));
  auto shared = std::make_shared<uncertain::DatasetReader>(std::move(reader));
  return BatchSource(
      [shared, chunk_size](uncertain::UncertainPointBatch* batch)
          -> Result<bool> {
        UKC_ASSIGN_OR_RETURN(size_t produced,
                             shared->ReadChunk(chunk_size, batch));
        return produced > 0;
      });
}

Result<BatchSource> MakeProducerBatchSource(size_t dim, PointProducer next,
                                            size_t chunk_size,
                                            metric::Norm norm) {
  if (dim == 0) {
    return Status::InvalidArgument("MakeProducerBatchSource: dim >= 1");
  }
  if (chunk_size == 0) {
    return Status::InvalidArgument("MakeProducerBatchSource: chunk_size >= 1");
  }
  if (next == nullptr) {
    return Status::InvalidArgument("MakeProducerBatchSource: null producer");
  }
  struct State {
    PointProducer next;
    uint64_t index = 0;
    bool drained = false;
    std::vector<double> coords;
    std::vector<double> probabilities;
  };
  auto state = std::make_shared<State>();
  state->next = std::move(next);
  return BatchSource([state, dim, chunk_size, norm](
                         uncertain::UncertainPointBatch* batch) -> Result<bool> {
    if (state->drained) return false;
    batch->Clear();
    batch->dim = dim;
    batch->norm = norm;
    batch->start_index = state->index;
    batch->offsets.push_back(0);
    for (size_t i = 0; i < chunk_size; ++i) {
      state->coords.clear();
      state->probabilities.clear();
      if (!state->next(&state->coords, &state->probabilities)) {
        state->drained = true;
        break;
      }
      if (state->probabilities.empty() ||
          state->coords.size() != state->probabilities.size() * dim) {
        return Status::InvalidArgument(StrFormat(
            "producer batch source: point %llu emitted %zu coords for %zu "
            "probabilities (dim %zu)",
            static_cast<unsigned long long>(state->index),
            state->coords.size(), state->probabilities.size(), dim));
      }
      // The same distribution invariant — via the same helper — as
      // UncertainPoint::Build and DatasetReader::ReadChunk; a producer
      // that broke it would silently void the verified bracket's rigor.
      UKC_RETURN_IF_ERROR(
          uncertain::ValidateDistribution(state->probabilities)
              .WithPrefix(StrFormat(
                  "producer batch source: point %llu",
                  static_cast<unsigned long long>(state->index))));
      batch->coords.insert(batch->coords.end(), state->coords.begin(),
                           state->coords.end());
      batch->probabilities.insert(batch->probabilities.end(),
                                  state->probabilities.begin(),
                                  state->probabilities.end());
      batch->offsets.push_back(batch->probabilities.size());
      ++state->index;
    }
    return batch->n() > 0;
  });
}

BatchSourceFactory DatasetBatchFactory(const uncertain::UncertainDataset* dataset,
                                       size_t chunk_size) {
  return [dataset, chunk_size]() -> Result<BatchSource> {
    return MakeDatasetBatchSource(dataset, chunk_size);
  };
}

BatchSourceFactory FileBatchFactory(const std::string& path, size_t chunk_size) {
  return [path, chunk_size]() -> Result<BatchSource> {
    return MakeFileBatchSource(path, chunk_size);
  };
}

BatchSourceFactory SeededFileBatchFactory(uncertain::DatasetReader&& probe,
                                          const std::string& path,
                                          size_t chunk_size) {
  auto seeded =
      std::make_shared<uncertain::DatasetReader>(std::move(probe));
  auto used = std::make_shared<bool>(false);
  return [seeded, used, path, chunk_size]() -> Result<BatchSource> {
    if (chunk_size == 0) {
      return Status::InvalidArgument("SeededFileBatchFactory: chunk_size >= 1");
    }
    if (!*used) {
      // Pass 1 consumes the probe reader — its header is already
      // parsed, so the file is opened and header-scanned exactly once
      // for probe + first pass combined.
      *used = true;
      return BatchSource(
          [seeded, chunk_size](uncertain::UncertainPointBatch* batch)
              -> Result<bool> {
            UKC_ASSIGN_OR_RETURN(size_t produced,
                                 seeded->ReadChunk(chunk_size, batch));
            return produced > 0;
          });
    }
    return MakeFileBatchSource(path, chunk_size);
  };
}

ResumableSourceFactory AdaptBatchFactory(BatchSourceFactory factory) {
  return [factory](const ResumePoint*,
                   bool* positioned) -> Result<ResumableSource> {
    if (positioned != nullptr) *positioned = false;
    if (factory == nullptr) {
      return Status::InvalidArgument("AdaptBatchFactory: null factory");
    }
    UKC_ASSIGN_OR_RETURN(BatchSource next, factory());
    ResumableSource source;
    source.next = std::move(next);
    return source;
  };
}

namespace {

// Hash of the up-to-kCursorWindowBytes bytes of `path` that END at
// `end_offset` — the change detector stored with (and re-checked
// against) a checkpointed byte offset. nullopt when the window cannot
// be read, which both sides treat as "no usable cursor".
std::optional<uint64_t> HashFileWindow(const std::string& path,
                                       uint64_t end_offset) {
  const uint64_t window = std::min<uint64_t>(kCursorWindowBytes, end_offset);
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return std::nullopt;
  file.seekg(static_cast<std::streamoff>(end_offset - window));
  std::string bytes(static_cast<size_t>(window), '\0');
  file.read(bytes.data(), static_cast<std::streamsize>(window));
  if (file.gcount() != static_cast<std::streamsize>(window)) {
    return std::nullopt;
  }
  return HashBytes(kHashSeed, bytes.data(), bytes.size());
}

// True when the checkpointed cursor still matches the file: the bytes
// before the offset hash to what the checkpoint recorded.
bool CursorWindowMatches(const std::string& path, const ResumePoint& resume) {
  const std::optional<uint64_t> hash =
      HashFileWindow(path, resume.byte_offset);
  return hash.has_value() && *hash == resume.window_hash;
}

// File streams share one reader between the pull and the position
// probe; both are only ever called from the single reading thread.
ResumableSource SourceFromSharedReader(
    std::shared_ptr<uncertain::DatasetReader> reader, std::string path,
    size_t chunk_size) {
  ResumableSource source;
  source.next = [reader, chunk_size](uncertain::UncertainPointBatch* batch)
      -> Result<bool> {
    UKC_ASSIGN_OR_RETURN(size_t produced, reader->ReadChunk(chunk_size, batch));
    return produced > 0;
  };
  source.tell = [reader,
                 path = std::move(path)]() -> std::optional<SourceCursor> {
    const std::optional<uint64_t> offset = reader->TellByteOffset();
    if (!offset.has_value()) return std::nullopt;
    const std::optional<uint64_t> hash = HashFileWindow(path, *offset);
    if (!hash.has_value()) return std::nullopt;
    return SourceCursor{*offset, *hash};
  };
  return source;
}

}  // namespace

ResumableSourceFactory ResumableFileFactory(const std::string& path,
                                            size_t chunk_size) {
  return [path, chunk_size](const ResumePoint* resume,
                            bool* positioned) -> Result<ResumableSource> {
    if (positioned != nullptr) *positioned = false;
    if (chunk_size == 0) {
      return Status::InvalidArgument("ResumableFileFactory: chunk_size >= 1");
    }
    UKC_ASSIGN_OR_RETURN(uncertain::DatasetReader reader,
                         uncertain::DatasetReader::Open(path));
    auto shared = std::make_shared<uncertain::DatasetReader>(std::move(reader));
    if (resume != nullptr && resume->has_byte_offset) {
      if (CursorWindowMatches(path, *resume) &&
          shared->SeekTo(resume->byte_offset, resume->points).ok()) {
        if (positioned != nullptr) *positioned = true;
      } else {
        // Stale or corrupt cursor (the file changed, or the checkpoint
        // came from another file): degrade to a from-the-start stream
        // and let the caller replay-verify instead of failing hard.
        UKC_ASSIGN_OR_RETURN(uncertain::DatasetReader fresh,
                             uncertain::DatasetReader::Open(path));
        *shared = std::move(fresh);
      }
    }
    return SourceFromSharedReader(std::move(shared), path, chunk_size);
  };
}

ResumableSourceFactory ResumableSeededFileFactory(
    uncertain::DatasetReader&& probe, const std::string& path,
    size_t chunk_size) {
  auto seeded = std::make_shared<uncertain::DatasetReader>(std::move(probe));
  auto used = std::make_shared<bool>(false);
  const ResumableSourceFactory reopen = ResumableFileFactory(path, chunk_size);
  return [seeded, used, reopen, path, chunk_size](
             const ResumePoint* resume,
             bool* positioned) -> Result<ResumableSource> {
    if (*used || chunk_size == 0) return reopen(resume, positioned);
    *used = true;
    if (positioned != nullptr) *positioned = false;
    if (resume != nullptr && resume->has_byte_offset) {
      if (CursorWindowMatches(path, *resume) &&
          seeded->SeekTo(resume->byte_offset, resume->points).ok()) {
        if (positioned != nullptr) *positioned = true;
        return SourceFromSharedReader(seeded, path, chunk_size);
      }
      // The probe is now mispositioned; reopen from the start.
      return reopen(nullptr, positioned);
    }
    return SourceFromSharedReader(seeded, path, chunk_size);
  };
}

ResumableSourceFactory ResumableDatasetFactory(
    const uncertain::UncertainDataset* dataset, size_t chunk_size) {
  return AdaptBatchFactory(DatasetBatchFactory(dataset, chunk_size));
}

namespace {

// Folds one consumed batch into the running content fingerprint — the
// value a replay-based resume must reproduce to prove it is reading
// the same stream the checkpoint came from.
uint64_t HashBatch(uint64_t hash, const uncertain::UncertainPointBatch& batch) {
  hash = HashValue(hash, batch.dim);
  hash = HashValue(hash, static_cast<uint64_t>(batch.norm));
  hash = HashValue(hash, batch.start_index);
  hash = HashValue(hash, batch.offsets.size());
  hash = HashBytes(hash, batch.offsets.data(),
                   batch.offsets.size() * sizeof(size_t));
  hash = HashBytes(hash, batch.coords.data(),
                   batch.coords.size() * sizeof(double));
  hash = HashBytes(hash, batch.probabilities.data(),
                   batch.probabilities.size() * sizeof(double));
  return hash;
}

// Hash of everything that determines group boundaries and cell
// geometry. A checkpoint taken under one configuration must never
// resume another: a different shard count regroups the batches and a
// different cell width regrids them — either would void the bitwise
// parity with an uninterrupted run.
uint64_t ConfigFingerprint(size_t dim, const IngestOptions& options,
                           size_t shards) {
  uint64_t hash = kHashSeed;
  hash = HashValue(hash, 1);  // Fingerprint layout version.
  hash = HashValue(hash, dim);
  hash = HashValue(hash, options.chunk_size);
  hash = HashValue(hash, shards);
  hash = HashValue(hash, options.coreset.max_cells);
  uint64_t width_bits = 0;
  std::memcpy(&width_bits, &options.coreset.base_cell_width,
              sizeof(width_bits));
  hash = HashValue(hash, width_bits);
  return hash;
}

// Per-run ingest telemetry handles, resolved once per entry point so
// the per-batch cost stays at relaxed atomic adds (docs/operations.md,
// "Observability"). Stage timers and throughput counters never feed
// the coreset state — bitwise determinism is untouched.
struct IngestMetrics {
  obs::Histogram* read_seconds;
  obs::Histogram* process_seconds;
  obs::Histogram* merge_seconds;
  obs::Histogram* checkpoint_save_seconds;
  obs::Counter* batches_total;
  obs::Counter* points_total;
  obs::Counter* checkpoints_saved;
  obs::Counter* checkpoints_failed;
};

obs::MetricsRegistry& IngestRegistry(const IngestOptions& options) {
  return options.metrics != nullptr ? *options.metrics
                                    : obs::MetricsRegistry::Default();
}

IngestMetrics ResolveIngestMetrics(const IngestOptions& options) {
  obs::MetricsRegistry& m = IngestRegistry(options);
  const char* stage = "ukc_ingest_stage_seconds";
  const char* stage_help = "Wall time of one ingest stage pass";
  const char* saves = "ukc_ingest_checkpoints_total";
  const char* saves_help = "Checkpoint save attempts by outcome";
  return IngestMetrics{
      m.GetHistogram(stage, stage_help, {{"stage", "read"}}),
      m.GetHistogram(stage, stage_help, {{"stage", "process"}}),
      m.GetHistogram(stage, stage_help, {{"stage", "merge"}}),
      m.GetHistogram("ukc_ingest_checkpoint_seconds",
                     "Checkpoint save/restore latency", {{"op", "save"}}),
      m.GetCounter("ukc_ingest_batches_total", "Batches ingested"),
      m.GetCounter("ukc_ingest_points_total", "Uncertain points ingested"),
      m.GetCounter(saves, saves_help, {{"outcome", "saved"}}),
      m.GetCounter(saves, saves_help, {{"outcome", "failed"}})};
}

// The caller's retry policy with the observability site applied:
// retry counters land under site="ingest.read" (unless the caller
// chose a site) and meter into the run's registry.
RetryOptions IngestRetryOptions(const IngestOptions& options) {
  RetryOptions retry = options.retry;
  if (retry.metrics_site == "default") retry.metrics_site = "ingest.read";
  if (retry.metrics == nullptr) retry.metrics = options.metrics;
  return retry;
}

// One retry-wrapped, fault-injectable batch pull. Transient failures
// (kUnavailable — today only injected ones) are retried per
// options.retry; the fault point sits inside the retried op so an
// injected transient hiccup exercises the same path a real one would.
Result<bool> PullBatch(const ResumableSource& source,
                       const RetryOptions& retry,
                       uncertain::UncertainPointBatch* batch,
                       IngestStats* counters) {
  bool more = false;
  RetryStats retry_stats;
  const Status status = RetryTransient(
      retry,
      [&]() -> Status {
        UKC_INJECT_FAULT("ingest.read");
        UKC_ASSIGN_OR_RETURN(more, source.next(batch));
        return Status::OK();
      },
      &retry_stats);
  counters->read_retries += retry_stats.retries;
  counters->read_exhausted += retry_stats.exhausted;
  UKC_RETURN_IF_ERROR(status);
  return more;
}

// What a validated checkpoint contributes to a run: the merged prefix
// coreset (seeded into shard 0) and the fingerprints to carry forward.
struct ResumeState {
  std::optional<StreamingCoreset> restored;
  uint64_t content_fingerprint = kHashSeed;
  uint64_t config_fingerprint = 0;
};

// The sharded group loop shared by BuildCoresetFromSource and
// IngestCoreset. `counters` arrives pre-loaded with the restored
// prefix's totals when resuming.
Result<StreamingCoreset> RunIngest(size_t dim, const ResumableSource& source,
                                   const IngestOptions& options, size_t shards,
                                   ThreadPool* pool, IngestStats& counters,
                                   ResumeState resume) {
  UKC_OBS_SPAN("stream.ingest");
  const bool checkpointing = !options.checkpoint.path.empty();
  const IngestMetrics metric = ResolveIngestMetrics(options);
  const RetryOptions retry = IngestRetryOptions(options);

  // Shard coresets are constructed on the first batch, when the
  // stream's norm is known; a restored prefix pre-latches the norm (a
  // mid-stream switch is rejected the same way either path).
  std::vector<StreamingCoreset> shard_sets;
  metric::Norm stream_norm = metric::Norm::kL2;
  bool norm_latched = false;
  if (resume.restored.has_value()) {
    stream_norm = resume.restored->norm();
    norm_latched = true;
  }
  std::vector<Status> statuses(shards);

  // One batch group: up to `shards` batches pulled serially off the
  // source, plus the read outcome and the stream position after the
  // group (captured here, by the reading thread, because with double
  // buffering the next group has already been prefetched by the time
  // this one is processed — a checkpoint-time tell() would be one
  // group ahead). With double buffering two of these ping-pong between
  // the reader thread and the processing loop.
  struct Group {
    std::vector<uncertain::UncertainPointBatch> batches;
    size_t loaded = 0;
    bool done = false;  // Source drained while filling this group.
    Status status;
    std::optional<SourceCursor> cursor;  // Stream position after this group.
  };
  const auto fill_group = [&source, &retry, &counters, &metric, shards,
                           checkpointing](Group* group) {
    UKC_OBS_TIMER(metric.read_seconds);
    group->loaded = 0;
    group->done = false;
    group->status = Status::OK();
    group->cursor = std::nullopt;
    while (group->loaded < shards) {
      Result<bool> more = PullBatch(source, retry,
                                    &group->batches[group->loaded], &counters);
      if (!more.ok()) {
        group->status = more.status();
        return;
      }
      if (!*more) {
        group->done = true;
        break;
      }
      ++group->loaded;
    }
    // The probe re-reads a window of the file, so only pay for it when
    // a checkpoint may actually be written.
    if (checkpointing && source.tell != nullptr) group->cursor = source.tell();
  };

  // Validates a received group (structure, one norm across the stream)
  // and folds it into the shards: batch g feeds shard g. Every group
  // before the final one is full, so shard s consumes exactly the
  // batches s, s + shards, s + 2·shards, ... in stream order, and
  // workers never contend on a shard — the determinism rule is
  // independent of who read the group.
  const auto process_group = [&](Group& group) -> Status {
    UKC_OBS_TIMER(metric.process_seconds);
    for (size_t g = 0; g < group.loaded; ++g) {
      UKC_RETURN_IF_ERROR(ValidateBatch(group.batches[g], dim));
      // The coreset's geometry (diameter, error bound) is stated under
      // one norm; a source that switches norms mid-stream would
      // silently invalidate it.
      if (!norm_latched) {
        stream_norm = group.batches[g].norm;
        norm_latched = true;
      } else if (group.batches[g].norm != stream_norm) {
        return Status::InvalidArgument(
            "BuildCoresetFromSource: batch norm changed mid-stream");
      }
      // The content fingerprint is maintained only when a checkpoint
      // could be written — the hashing cost must not tax
      // checkpoint-free ingestion.
      if (checkpointing) {
        resume.content_fingerprint =
            HashBatch(resume.content_fingerprint, group.batches[g]);
      }
      counters.points += group.batches[g].n();
      counters.locations += group.batches[g].num_locations();
      counters.batches += 1;
      metric.batches_total->Increment();
      metric.points_total->Add(group.batches[g].n());
    }
    if (group.loaded == 0) return Status::OK();
    if (shard_sets.empty()) {
      shard_sets.reserve(shards);
      for (size_t s = 0; s < shards; ++s) {
        shard_sets.emplace_back(dim, stream_norm, options.coreset);
      }
      if (resume.restored.has_value()) {
        // The restored prefix lives in shard 0 from here on; grid-cell
        // commutativity makes the final merge independent of which
        // shard carried it.
        shard_sets[0] = std::move(*resume.restored);
        resume.restored.reset();
      }
    }
    pool->ParallelFor(group.loaded, [&](int, size_t g) {
      const size_t shard = g;
      const uncertain::UncertainPointBatch& batch = group.batches[g];
      std::vector<double> expected(dim);
      Status status;
      for (size_t i = 0; i < batch.n() && status.ok(); ++i) {
        const double spread = SummarizeBatchPoint(batch, i, expected.data());
        status = shard_sets[shard].Add(batch.start_index + i, expected.data(),
                                       spread);
      }
      statuses[g] = std::move(status);
    });
    for (size_t g = 0; g < group.loaded; ++g) {
      if (!statuses[g].ok()) return std::move(statuses[g]);
    }
    return Status::OK();
  };

  // Saves a checkpoint when the cadence says so. Failures are counted,
  // not propagated: the previous sidecar (written atomically) remains
  // the recovery point, so a failed save only widens the redo window.
  uint64_t last_saved_batches = counters.batches;
  const uint64_t cadence =
      std::max<uint64_t>(1, options.checkpoint.every_n_batches);
  const auto maybe_checkpoint = [&](const Group& group) {
    if (!checkpointing || shard_sets.empty() || group.loaded == 0) return;
    if (counters.batches - last_saved_batches < cadence) return;
    IngestCheckpoint checkpoint;
    checkpoint.config_fingerprint = resume.config_fingerprint;
    checkpoint.content_fingerprint = resume.content_fingerprint;
    checkpoint.batches = counters.batches;
    checkpoint.points = counters.points;
    checkpoint.locations = counters.locations;
    if (group.cursor.has_value()) {
      checkpoint.has_byte_offset = true;
      checkpoint.byte_offset = group.cursor->byte_offset;
      checkpoint.cursor_window_hash = group.cursor->window_hash;
    }
    // The image is a merged COPY of the shard state; the live shards
    // keep ingesting untouched.
    StreamingCoreset merged = shard_sets[0];
    Status status = Status::OK();
    for (size_t s = 1; s < shard_sets.size() && status.ok(); ++s) {
      status = merged.MergeFrom(shard_sets[s]);
    }
    if (status.ok()) {
      merged.SerializeTo(&checkpoint.coreset_image);
      UKC_OBS_TIMER(metric.checkpoint_save_seconds);
      status = SaveCheckpoint(options.checkpoint.path, checkpoint,
                              options.checkpoint.sync);
    }
    if (status.ok()) {
      ++counters.checkpoint_saves;
      metric.checkpoints_saved->Increment();
      last_saved_batches = counters.batches;
    } else {
      ++counters.checkpoint_save_failures;
      metric.checkpoints_failed->Increment();
    }
  };

  if (!options.double_buffer) {
    // Reference path: read a group, process it, repeat.
    Group group;
    group.batches.resize(shards);
    bool done = false;
    while (!done) {
      fill_group(&group);
      UKC_RETURN_IF_ERROR(group.status);
      done = group.done;
      UKC_RETURN_IF_ERROR(process_group(group));
      if (group.loaded == 0) break;
      maybe_checkpoint(group);
    }
  } else {
    // Double-buffered path: a dedicated reader thread fills group r+1
    // while the pool processes group r. The source is only ever
    // touched by the reader (reads stay strictly serial), and groups
    // are handed over whole, so the shard assignment above is
    // untouched.
    Group groups[2];
    groups[0].batches.resize(shards);
    groups[1].batches.resize(shards);
    std::mutex mutex;
    std::condition_variable cv;
    int requested = -1;  // Slot the reader should fill next.
    bool ready = false;  // The requested slot has been filled.
    bool stop = false;
    std::thread reader([&] {
      std::unique_lock<std::mutex> lock(mutex);
      while (true) {
        cv.wait(lock, [&] { return requested >= 0 || stop; });
        if (stop) return;
        const int slot = requested;
        requested = -1;
        lock.unlock();
        fill_group(&groups[slot]);
        lock.lock();
        ready = true;
        cv.notify_all();
      }
    });
    // Stops and joins the reader on every exit path, including early
    // error returns while a prefetch is still in flight.
    struct ReaderJoiner {
      std::thread* thread;
      std::mutex* mutex;
      std::condition_variable* cv;
      bool* stop;
      ~ReaderJoiner() {
        {
          std::lock_guard<std::mutex> lock(*mutex);
          *stop = true;
          cv->notify_all();
        }
        thread->join();
      }
    } joiner{&reader, &mutex, &cv, &stop};
    const auto request = [&](int slot) {
      std::lock_guard<std::mutex> lock(mutex);
      requested = slot;
      ready = false;
      cv.notify_all();
    };
    const auto wait_ready = [&] {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return ready; });
    };

    int current = 0;
    request(current);
    bool done = false;
    while (!done) {
      wait_ready();
      Group& group = groups[current];
      UKC_RETURN_IF_ERROR(group.status);
      done = group.done;
      if (!done) request(1 - current);  // Overlap the next group's read.
      UKC_RETURN_IF_ERROR(process_group(group));
      if (group.loaded == 0) break;
      maybe_checkpoint(group);
      current = 1 - current;
    }
  }
  if (shard_sets.empty()) {
    // A resume that landed exactly at the end of the stream: the
    // checkpoint already holds the whole coreset.
    if (resume.restored.has_value()) return std::move(*resume.restored);
    return Status::InvalidArgument("BuildCoresetFromSource: empty stream");
  }

  // Ordered binary merge tree: at stride s, shard i absorbs shard i+s
  // for every i divisible by 2s. Pairs are disjoint, so each round is
  // one ParallelFor.
  UKC_OBS_TIMER(metric.merge_seconds);
  for (size_t stride = 1; stride < shards; stride *= 2) {
    UKC_INJECT_FAULT("ingest.merge");
    std::vector<size_t> left;
    for (size_t i = 0; i + stride < shards; i += 2 * stride) left.push_back(i);
    if (left.empty()) continue;
    std::vector<Status> merge_statuses(left.size());
    pool->ParallelFor(left.size(), [&](int, size_t p) {
      merge_statuses[p] =
          shard_sets[left[p]].MergeFrom(shard_sets[left[p] + stride]);
    });
    for (Status& status : merge_statuses) {
      if (!status.ok()) return std::move(status);
    }
  }
  return std::move(shard_sets[0]);
}

// Shared argument validation of the two public entry points.
Status ValidateIngestArguments(size_t dim, const IngestOptions& options,
                               ThreadPool* pool) {
  if (pool == nullptr) {
    return Status::InvalidArgument("ingest: null pool");
  }
  if (dim == 0 || options.coreset.max_cells == 0 ||
      !(options.coreset.base_cell_width > 0.0)) {
    return Status::InvalidArgument(
        "ingest: dim and max_cells must be >= 1 and base_cell_width > 0");
  }
  if (options.retry.max_attempts < 1) {
    return Status::InvalidArgument("ingest: retry.max_attempts must be >= 1");
  }
  return Status::OK();
}

size_t EffectiveShards(const IngestOptions& options, ThreadPool* pool) {
  return options.shards <= 0 ? static_cast<size_t>(pool->num_threads())
                             : static_cast<size_t>(options.shards);
}

}  // namespace

Result<StreamingCoreset> BuildCoresetFromSource(size_t dim,
                                                const BatchSource& source,
                                                const IngestOptions& options,
                                                ThreadPool* pool,
                                                IngestStats* stats) {
  if (source == nullptr) {
    return Status::InvalidArgument("BuildCoresetFromSource: null source");
  }
  UKC_RETURN_IF_ERROR(ValidateIngestArguments(dim, options, pool));
  if (!options.checkpoint.path.empty()) {
    return Status::InvalidArgument(
        "BuildCoresetFromSource: checkpointing requires a re-startable "
        "stream — use IngestCoreset with a ResumableSourceFactory");
  }
  const size_t shards = EffectiveShards(options, pool);
  IngestStats counters;
  ResumableSource resumable;
  resumable.next = source;
  Result<StreamingCoreset> result = RunIngest(dim, resumable, options, shards,
                                              pool, counters, ResumeState{});
  if (stats != nullptr) *stats = counters;
  return result;
}

Result<StreamingCoreset> IngestCoreset(size_t dim,
                                       const ResumableSourceFactory& factory,
                                       const IngestOptions& options,
                                       ThreadPool* pool, IngestStats* stats) {
  if (factory == nullptr) {
    return Status::InvalidArgument("IngestCoreset: null factory");
  }
  UKC_RETURN_IF_ERROR(ValidateIngestArguments(dim, options, pool));
  const size_t shards = EffectiveShards(options, pool);
  const bool checkpointing = !options.checkpoint.path.empty();

  IngestStats counters;
  ResumeState resume;
  resume.config_fingerprint = ConfigFingerprint(dim, options, shards);
  std::optional<ResumableSource> source;

  if (checkpointing) {
    // The whole restore path — sidecar load, validation, replay-verify
    // — is one latency observation: it is the redo cost a crash pays.
    obs::ScopedTimer restore_timer(IngestRegistry(options).GetHistogram(
        "ukc_ingest_checkpoint_seconds", "Checkpoint save/restore latency",
        {{"op", "restore"}}));
    Result<IngestCheckpoint> loaded = LoadCheckpoint(options.checkpoint.path);
    if (!loaded.ok()) {
      // No sidecar yet is the normal first run; anything else is a
      // corrupt checkpoint — count the rejection, ingest from scratch.
      if (loaded.status().code() != StatusCode::kNotFound) {
        counters.checkpoint_rejected = true;
      }
    } else if (loaded->config_fingerprint != resume.config_fingerprint) {
      counters.checkpoint_rejected = true;
    } else if (loaded->batches > 0) {
      Result<StreamingCoreset> image =
          StreamingCoreset::Deserialize(loaded->coreset_image);
      if (!image.ok()) {
        counters.checkpoint_rejected = true;
      } else {
        ResumePoint point;
        point.batches = loaded->batches;
        point.points = loaded->points;
        point.has_byte_offset = loaded->has_byte_offset;
        point.byte_offset = loaded->byte_offset;
        point.window_hash = loaded->cursor_window_hash;
        bool positioned = false;
        UKC_ASSIGN_OR_RETURN(ResumableSource opened,
                             factory(&point, &positioned));
        bool accepted = true;
        uint64_t prefix_hash = loaded->content_fingerprint;
        if (!positioned) {
          // Replay the prefix without ingesting it, re-deriving the
          // content fingerprint; only a bit-for-bit match of the
          // checkpointed hash lets the resume proceed.
          uncertain::UncertainPointBatch discard;
          uint64_t replay_hash = kHashSeed;
          uint64_t replayed = 0;
          while (replayed < loaded->batches) {
            UKC_ASSIGN_OR_RETURN(
                bool more,
                PullBatch(opened, IngestRetryOptions(options), &discard,
                          &counters));
            if (!more) {  // The stream is shorter than the checkpoint.
              accepted = false;
              break;
            }
            replay_hash = HashBatch(replay_hash, discard);
            ++replayed;
          }
          counters.replayed_batches = replayed;
          if (accepted && replay_hash != loaded->content_fingerprint) {
            accepted = false;
          }
          prefix_hash = replay_hash;
        }
        if (accepted) {
          resume.restored = std::move(image).value();
          resume.content_fingerprint = prefix_hash;
          counters.batches = loaded->batches;
          counters.points = loaded->points;
          counters.locations = loaded->locations;
          counters.restored = true;
          counters.restored_batches = loaded->batches;
          source = std::move(opened);
        } else {
          counters.checkpoint_rejected = true;
        }
      }
    }
  }

  if (!source.has_value()) {
    // Fresh full ingest — the first run, or the fallback after a
    // rejected checkpoint.
    bool positioned = false;
    UKC_ASSIGN_OR_RETURN(ResumableSource fresh, factory(nullptr, &positioned));
    source = std::move(fresh);
  }
  Result<StreamingCoreset> result = RunIngest(dim, *source, options, shards,
                                              pool, counters, std::move(resume));
  if (stats != nullptr) *stats = counters;
  return result;
}

}  // namespace stream
}  // namespace ukc
