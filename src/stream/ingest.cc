#include "stream/ingest.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "uncertain/io.h"

namespace ukc {
namespace stream {

Status ValidateBatch(const uncertain::UncertainPointBatch& batch, size_t dim) {
  if (batch.dim != dim) {
    return Status::InvalidArgument(
        StrFormat("ingest: batch dim %zu != stream dim %zu", batch.dim, dim));
  }
  if (batch.offsets.empty() || batch.offsets.front() != 0 ||
      batch.offsets.back() != batch.probabilities.size() ||
      batch.coords.size() != batch.probabilities.size() * dim) {
    return Status::InvalidArgument("ingest: inconsistent batch layout");
  }
  // Every point needs at least one location (strictly increasing
  // offsets) — a zero-location point has no expected point and would
  // read out of bounds downstream.
  for (size_t i = 0; i + 1 < batch.offsets.size(); ++i) {
    if (batch.offsets[i] >= batch.offsets[i + 1]) {
      return Status::InvalidArgument(StrFormat(
          "ingest: batch point %zu is empty or offsets are non-monotone", i));
    }
  }
  return Status::OK();
}

double SummarizeBatchPoint(const uncertain::UncertainPointBatch& batch,
                           size_t i, double* expected) {
  const size_t dim = batch.dim;
  std::fill(expected, expected + dim, 0.0);
  const size_t begin = batch.offsets[i];
  const size_t end = batch.offsets[i + 1];
  for (size_t l = begin; l < end; ++l) {
    const double* coords = batch.location_coords(l);
    const double p = batch.probabilities[l];
    for (size_t a = 0; a < dim; ++a) expected[a] += coords[a] * p;
  }
  double spread = 0.0;
  for (size_t l = begin; l < end; ++l) {
    spread = std::max(spread,
                      metric::NormDistanceKernel(
                          batch.norm, batch.location_coords(l), expected, dim));
  }
  return spread;
}

Result<BatchSource> MakeDatasetBatchSource(
    const uncertain::UncertainDataset* dataset, size_t chunk_size) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("MakeDatasetBatchSource: null dataset");
  }
  if (chunk_size == 0) {
    return Status::InvalidArgument("MakeDatasetBatchSource: chunk_size >= 1");
  }
  const metric::EuclideanSpace* space = dataset->euclidean();
  if (space == nullptr) {
    return Status::FailedPrecondition(
        "MakeDatasetBatchSource: streaming requires a Euclidean dataset");
  }
  auto cursor = std::make_shared<size_t>(0);
  return BatchSource([dataset, space, chunk_size,
                      cursor](uncertain::UncertainPointBatch* batch)
                         -> Result<bool> {
    const size_t n = dataset->n();
    if (*cursor >= n) return false;
    const size_t begin = *cursor;
    const size_t end = std::min(n, begin + chunk_size);
    const size_t dim = space->dim();
    batch->Clear();
    batch->dim = dim;
    batch->norm = space->norm();
    batch->start_index = begin;
    batch->offsets.push_back(0);
    const metric::SiteId* sites = dataset->flat_sites().data();
    const double* probabilities = dataset->flat_probabilities().data();
    const size_t* offsets = dataset->offsets().data();
    for (size_t i = begin; i < end; ++i) {
      for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
        const double* coords = space->coords(sites[l]);
        batch->coords.insert(batch->coords.end(), coords, coords + dim);
        batch->probabilities.push_back(probabilities[l]);
      }
      batch->offsets.push_back(batch->probabilities.size());
    }
    *cursor = end;
    return true;
  });
}

Result<BatchSource> MakeFileBatchSource(const std::string& path,
                                        size_t chunk_size) {
  if (chunk_size == 0) {
    return Status::InvalidArgument("MakeFileBatchSource: chunk_size >= 1");
  }
  UKC_ASSIGN_OR_RETURN(uncertain::DatasetReader reader,
                       uncertain::DatasetReader::Open(path));
  auto shared = std::make_shared<uncertain::DatasetReader>(std::move(reader));
  return BatchSource(
      [shared, chunk_size](uncertain::UncertainPointBatch* batch)
          -> Result<bool> {
        UKC_ASSIGN_OR_RETURN(size_t produced,
                             shared->ReadChunk(chunk_size, batch));
        return produced > 0;
      });
}

Result<BatchSource> MakeProducerBatchSource(size_t dim, PointProducer next,
                                            size_t chunk_size,
                                            metric::Norm norm) {
  if (dim == 0) {
    return Status::InvalidArgument("MakeProducerBatchSource: dim >= 1");
  }
  if (chunk_size == 0) {
    return Status::InvalidArgument("MakeProducerBatchSource: chunk_size >= 1");
  }
  if (next == nullptr) {
    return Status::InvalidArgument("MakeProducerBatchSource: null producer");
  }
  struct State {
    PointProducer next;
    uint64_t index = 0;
    bool drained = false;
    std::vector<double> coords;
    std::vector<double> probabilities;
  };
  auto state = std::make_shared<State>();
  state->next = std::move(next);
  return BatchSource([state, dim, chunk_size, norm](
                         uncertain::UncertainPointBatch* batch) -> Result<bool> {
    if (state->drained) return false;
    batch->Clear();
    batch->dim = dim;
    batch->norm = norm;
    batch->start_index = state->index;
    batch->offsets.push_back(0);
    for (size_t i = 0; i < chunk_size; ++i) {
      state->coords.clear();
      state->probabilities.clear();
      if (!state->next(&state->coords, &state->probabilities)) {
        state->drained = true;
        break;
      }
      if (state->probabilities.empty() ||
          state->coords.size() != state->probabilities.size() * dim) {
        return Status::InvalidArgument(StrFormat(
            "producer batch source: point %llu emitted %zu coords for %zu "
            "probabilities (dim %zu)",
            static_cast<unsigned long long>(state->index),
            state->coords.size(), state->probabilities.size(), dim));
      }
      // The same distribution invariant — via the same helper — as
      // UncertainPoint::Build and DatasetReader::ReadChunk; a producer
      // that broke it would silently void the verified bracket's rigor.
      UKC_RETURN_IF_ERROR(
          uncertain::ValidateDistribution(state->probabilities)
              .WithPrefix(StrFormat(
                  "producer batch source: point %llu",
                  static_cast<unsigned long long>(state->index))));
      batch->coords.insert(batch->coords.end(), state->coords.begin(),
                           state->coords.end());
      batch->probabilities.insert(batch->probabilities.end(),
                                  state->probabilities.begin(),
                                  state->probabilities.end());
      batch->offsets.push_back(batch->probabilities.size());
      ++state->index;
    }
    return batch->n() > 0;
  });
}

BatchSourceFactory DatasetBatchFactory(const uncertain::UncertainDataset* dataset,
                                       size_t chunk_size) {
  return [dataset, chunk_size]() -> Result<BatchSource> {
    return MakeDatasetBatchSource(dataset, chunk_size);
  };
}

BatchSourceFactory FileBatchFactory(const std::string& path, size_t chunk_size) {
  return [path, chunk_size]() -> Result<BatchSource> {
    return MakeFileBatchSource(path, chunk_size);
  };
}

BatchSourceFactory SeededFileBatchFactory(uncertain::DatasetReader&& probe,
                                          const std::string& path,
                                          size_t chunk_size) {
  auto seeded =
      std::make_shared<uncertain::DatasetReader>(std::move(probe));
  auto used = std::make_shared<bool>(false);
  return [seeded, used, path, chunk_size]() -> Result<BatchSource> {
    if (chunk_size == 0) {
      return Status::InvalidArgument("SeededFileBatchFactory: chunk_size >= 1");
    }
    if (!*used) {
      // Pass 1 consumes the probe reader — its header is already
      // parsed, so the file is opened and header-scanned exactly once
      // for probe + first pass combined.
      *used = true;
      return BatchSource(
          [seeded, chunk_size](uncertain::UncertainPointBatch* batch)
              -> Result<bool> {
            UKC_ASSIGN_OR_RETURN(size_t produced,
                                 seeded->ReadChunk(chunk_size, batch));
            return produced > 0;
          });
    }
    return MakeFileBatchSource(path, chunk_size);
  };
}

Result<StreamingCoreset> BuildCoresetFromSource(size_t dim,
                                                const BatchSource& source,
                                                const IngestOptions& options,
                                                ThreadPool* pool,
                                                IngestStats* stats) {
  if (source == nullptr) {
    return Status::InvalidArgument("BuildCoresetFromSource: null source");
  }
  if (pool == nullptr) {
    return Status::InvalidArgument("BuildCoresetFromSource: null pool");
  }
  if (dim == 0 || options.coreset.max_cells == 0 ||
      !(options.coreset.base_cell_width > 0.0)) {
    return Status::InvalidArgument(
        "BuildCoresetFromSource: dim and max_cells must be >= 1 and "
        "base_cell_width > 0");
  }
  const size_t shards = options.shards <= 0
                            ? static_cast<size_t>(pool->num_threads())
                            : static_cast<size_t>(options.shards);

  // Shard coresets are constructed on the first batch, when the
  // stream's norm is known.
  std::vector<StreamingCoreset> shard_sets;
  IngestStats counters;
  metric::Norm stream_norm = metric::Norm::kL2;
  std::vector<Status> statuses(shards);

  // One batch group: up to `shards` batches pulled serially off the
  // source, plus the read outcome. With double buffering two of these
  // ping-pong between the reader thread and the processing loop.
  struct Group {
    std::vector<uncertain::UncertainPointBatch> batches;
    size_t loaded = 0;
    bool done = false;  // Source drained while filling this group.
    Status status;
  };
  const auto fill_group = [&source, shards](Group* group) {
    group->loaded = 0;
    group->done = false;
    group->status = Status::OK();
    while (group->loaded < shards) {
      Result<bool> more = source(&group->batches[group->loaded]);
      if (!more.ok()) {
        group->status = more.status();
        return;
      }
      if (!*more) {
        group->done = true;
        return;
      }
      ++group->loaded;
    }
  };

  // Validates a received group (structure, one norm across the stream)
  // and folds it into the shards: batch g feeds shard g. Every group
  // before the final one is full, so shard s consumes exactly the
  // batches s, s + shards, s + 2·shards, ... in stream order, and
  // workers never contend on a shard — the determinism rule is
  // independent of who read the group.
  const auto process_group = [&](Group& group) -> Status {
    for (size_t g = 0; g < group.loaded; ++g) {
      UKC_RETURN_IF_ERROR(ValidateBatch(group.batches[g], dim));
      // The coreset's geometry (diameter, error bound) is stated under
      // one norm; a source that switches norms mid-stream would
      // silently invalidate it.
      if (counters.batches == 0) {
        stream_norm = group.batches[g].norm;
      } else if (group.batches[g].norm != stream_norm) {
        return Status::InvalidArgument(
            "BuildCoresetFromSource: batch norm changed mid-stream");
      }
      counters.points += group.batches[g].n();
      counters.locations += group.batches[g].num_locations();
      counters.batches += 1;
    }
    if (group.loaded == 0) return Status::OK();
    if (shard_sets.empty()) {
      shard_sets.reserve(shards);
      for (size_t s = 0; s < shards; ++s) {
        shard_sets.emplace_back(dim, stream_norm, options.coreset);
      }
    }
    pool->ParallelFor(group.loaded, [&](int, size_t g) {
      const size_t shard = g;
      const uncertain::UncertainPointBatch& batch = group.batches[g];
      std::vector<double> expected(dim);
      Status status;
      for (size_t i = 0; i < batch.n() && status.ok(); ++i) {
        const double spread = SummarizeBatchPoint(batch, i, expected.data());
        status = shard_sets[shard].Add(batch.start_index + i, expected.data(),
                                       spread);
      }
      statuses[g] = std::move(status);
    });
    for (size_t g = 0; g < group.loaded; ++g) {
      if (!statuses[g].ok()) return std::move(statuses[g]);
    }
    return Status::OK();
  };

  if (!options.double_buffer) {
    // Reference path: read a group, process it, repeat.
    Group group;
    group.batches.resize(shards);
    bool done = false;
    while (!done) {
      fill_group(&group);
      UKC_RETURN_IF_ERROR(group.status);
      done = group.done;
      UKC_RETURN_IF_ERROR(process_group(group));
      if (group.loaded == 0) break;
    }
  } else {
    // Double-buffered path: a dedicated reader thread fills group r+1
    // while the pool processes group r. The source is only ever
    // touched by the reader (reads stay strictly serial), and groups
    // are handed over whole, so the shard assignment above is
    // untouched.
    Group groups[2];
    groups[0].batches.resize(shards);
    groups[1].batches.resize(shards);
    std::mutex mutex;
    std::condition_variable cv;
    int requested = -1;  // Slot the reader should fill next.
    bool ready = false;  // The requested slot has been filled.
    bool stop = false;
    std::thread reader([&] {
      std::unique_lock<std::mutex> lock(mutex);
      while (true) {
        cv.wait(lock, [&] { return requested >= 0 || stop; });
        if (stop) return;
        const int slot = requested;
        requested = -1;
        lock.unlock();
        fill_group(&groups[slot]);
        lock.lock();
        ready = true;
        cv.notify_all();
      }
    });
    // Stops and joins the reader on every exit path, including early
    // error returns while a prefetch is still in flight.
    struct ReaderJoiner {
      std::thread* thread;
      std::mutex* mutex;
      std::condition_variable* cv;
      bool* stop;
      ~ReaderJoiner() {
        {
          std::lock_guard<std::mutex> lock(*mutex);
          *stop = true;
          cv->notify_all();
        }
        thread->join();
      }
    } joiner{&reader, &mutex, &cv, &stop};
    const auto request = [&](int slot) {
      std::lock_guard<std::mutex> lock(mutex);
      requested = slot;
      ready = false;
      cv.notify_all();
    };
    const auto wait_ready = [&] {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return ready; });
    };

    int current = 0;
    request(current);
    bool done = false;
    while (!done) {
      wait_ready();
      Group& group = groups[current];
      UKC_RETURN_IF_ERROR(group.status);
      done = group.done;
      if (!done) request(1 - current);  // Overlap the next group's read.
      UKC_RETURN_IF_ERROR(process_group(group));
      if (group.loaded == 0) break;
      current = 1 - current;
    }
  }
  if (shard_sets.empty()) {
    return Status::InvalidArgument("BuildCoresetFromSource: empty stream");
  }

  // Ordered binary merge tree: at stride s, shard i absorbs shard i+s
  // for every i divisible by 2s. Pairs are disjoint, so each round is
  // one ParallelFor.
  for (size_t stride = 1; stride < shards; stride *= 2) {
    std::vector<size_t> left;
    for (size_t i = 0; i + stride < shards; i += 2 * stride) left.push_back(i);
    if (left.empty()) continue;
    std::vector<Status> merge_statuses(left.size());
    pool->ParallelFor(left.size(), [&](int, size_t p) {
      merge_statuses[p] =
          shard_sets[left[p]].MergeFrom(shard_sets[left[p] + stride]);
    });
    for (Status& status : merge_statuses) {
      if (!status.ok()) return std::move(status);
    }
  }
  if (stats != nullptr) *stats = counters;
  return std::move(shard_sets[0]);
}

}  // namespace stream
}  // namespace ukc
