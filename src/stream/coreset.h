// A mergeable weighted coreset for uncertain k-center over expected-
// point surrogates — the summary object of the out-of-core ingestion
// layer.
//
// Each uncertain point P_i is summarized by its expected point P̄_i
// (the paper's Euclidean surrogate, core/surrogates.h) plus a
// dispersion scalar spread_i = max_j d(P_ij, P̄_i). The coreset is a
// doubling *grid* cover over these summaries: at level L every point
// falls into the axis-aligned cell of width base_cell_width·2^L that
// contains P̄_i, and all points of a cell collapse into one weighted
// cell record. When the number of occupied cells exceeds max_cells the
// level is doubled (cells merge pairwise per axis) until it fits.
//
// Why a grid cover instead of a greedy Gonzalez cover: cell membership
// is a pure function of the coordinates — it does not depend on the
// order points arrive, on how the stream was chunked, or on which
// shard processed which chunk. Combined with cell aggregates that are
// all commutative and exact (integer count, min of indices, max of
// spreads, representative owned by the minimum-index member), the
// extracted coreset is BITWISE identical for every (threads, shards,
// chunk size) configuration; a greedy cover cannot offer that, because
// its cell set depends on insertion order. Integer cell keys are
// computed once at the base level and coarsened by exact arithmetic
// shifts, so a point inserted directly at level L lands in exactly the
// cell its level-0 key coarsens into.
//
// Approximation contract (any norm; diameter() is the cell diameter at
// the final level): for every point i with cell representative r_i and
// any center set C,
//
//   | E[d(P̂_i, C)] − d(r_i, C) | <= diameter() + spread_i,
//
// because d(P̄_i, r_i) <= diameter() (same cell) and
// |E[d(P̂_i, C)] − d(P̄_i, C)| <= E[d(P̂_i, P̄_i)] <= spread_i (norm
// convexity, the paper's Lemma 3.1 direction). Hence solving k-center
// on the cell representatives with an α-approximate certain solver is
// within α·OPT + (α+1)·error_bound() of the full-data optimum.

#ifndef UKC_STREAM_CORESET_H_
#define UKC_STREAM_CORESET_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "metric/euclidean_space.h"

namespace ukc {
namespace stream {

/// Configuration of the doubling-grid coreset.
struct CoresetOptions {
  /// Target number of cells: the level doubles while more cells than
  /// this are occupied. (In dimensions where one doubling cannot go
  /// below 2^dim cells, the level cap wins and the target may be
  /// exceeded; irrelevant for the d <= 8 instances this repo runs.)
  size_t max_cells = 1024;
  /// Width of a level-0 grid cell. Coordinates must satisfy
  /// |x| / base_cell_width < 2^44 or Add fails (the cap keeps the
  /// floating-point cell assignment within the diameter() slack); the
  /// default supports coordinate magnitudes up to ~1.7e4 — raise the
  /// width for larger domains.
  double base_cell_width = 1e-9;
  /// Churn mode (0 = off). Stream indices are grouped into buckets of
  /// this many consecutive indices ([b·B, (b+1)·B)), and every cell
  /// keeps its aggregates per bucket as well as folded. Whole buckets
  /// retire deterministically via ExpireBefore — the sliding-window
  /// primitive — because the cell refold over the surviving buckets is
  /// exact and order-independent, just like the folds themselves.
  uint64_t churn_bucket = 0;
  /// Keep per-member records {index, spread, coords} inside each
  /// bucket so Remove can re-fold the non-invertible aggregates
  /// (min_index, representative, max_spread) exactly after deleting a
  /// single point. Requires churn_bucket > 0. Memory becomes O(live
  /// points) instead of O(max_cells); expiry-only windows do not need
  /// it (bucket retirement is self-contained).
  bool track_members = false;
};

/// The mergeable streaming summary. See file comment for invariants.
class StreamingCoreset {
 public:
  /// One extracted coreset cell.
  struct Cell {
    /// Smallest stream index among the members (the deterministic owner
    /// of the representative).
    uint64_t min_index = 0;
    /// Number of member uncertain points (the cell's weight; exact).
    uint64_t count = 0;
    /// max over members of spread_i.
    double max_spread = 0.0;
    /// Expected-point coordinates of the min_index member (dim values).
    std::vector<double> representative;
  };

  StreamingCoreset(size_t dim, metric::Norm norm, CoresetOptions options);

  /// Absorbs one summarized uncertain point. `expected_coords` has
  /// dim() entries; `spread` = max location distance to the expected
  /// point. Indices must be unique across the stream but may arrive in
  /// any order. In churn mode an index whose bucket already retired is
  /// rejected (it could never be expired again deterministically).
  Status Add(uint64_t index, const double* expected_coords, double spread);

  /// Exact single-point delete (churn mode with track_members only):
  /// removes the member added as (index, expected_coords, spread) and
  /// re-folds its bucket and cell, leaving the coreset bitwise equal
  /// to one whose surviving points were added at this level (see
  /// CoarsenTo for matching levels — the level itself stays monotone).
  /// kNotFound when no such member exists; kInvalidArgument when a
  /// member with that index exists but coords/spread disagree (caller
  /// replayed the wrong point — removing it anyway would corrupt the
  /// aggregates silently).
  Status Remove(uint64_t index, const double* expected_coords, double spread);

  /// Sliding-window expiry (churn mode only): retires every bucket
  /// that lies entirely below `min_live_index`, i.e. buckets with id
  /// < min_live_index / churn_bucket. Idempotent and monotone — the
  /// watermark never moves backwards — and a pure function of the
  /// largest watermark ever applied, so any schedule of calls with the
  /// same final watermark leaves bitwise-identical state. Points with
  /// index >= min_live_index are always retained; older points linger
  /// until their whole bucket ages out (at most churn_bucket - 1 of
  /// them). Returns the number of points retired.
  Result<uint64_t> ExpireBefore(uint64_t min_live_index);

  /// Coarsens the grid to `level` (>= level(); error above the level
  /// cap). Deletes make levels history-dependent — an incremental
  /// coreset may sit at a higher level than a fresh rebuild of its
  /// surviving points — so parity checks coarsen both sides to the max
  /// of the two levels before comparing.
  Status CoarsenTo(int level);

  /// Merges another shard's coreset into this one (same dim / norm /
  /// base_cell_width / max_cells / churn configuration required).
  /// Associative and commutative up to bitwise equality of the
  /// extracted cells; in churn mode the merged watermark is the max of
  /// the two (shard pipelines apply expiry only after the final merge,
  /// so shards normally carry watermark 0).
  Status MergeFrom(const StreamingCoreset& other);

  size_t dim() const { return dim_; }
  metric::Norm norm() const { return norm_; }
  int level() const { return level_; }
  size_t num_cells() const { return cells_.size(); }
  uint64_t num_points() const { return num_points_; }

  /// Current cell width (base_cell_width · 2^level).
  double cell_width() const;
  /// Upper bound on the distance between any two points of one cell
  /// under the configured norm (includes a 1e-2 relative slack that
  /// rigorously absorbs the floating-point cell assignment under the
  /// 2^44 key-magnitude cap).
  double diameter() const;
  /// max over cells of max_spread (0 when empty).
  double max_spread() const;
  /// diameter() + max_spread(): the additive error of evaluating any
  /// center set on representatives instead of the full data.
  double error_bound() const;

  /// Resident bytes of the cell table (representatives included) —
  /// bounded by max_cells, never by the number of points ingested.
  size_t ApproxMemoryBytes() const;

  /// The cells sorted by min_index (a deterministic, configuration-
  /// independent order).
  std::vector<Cell> ExtractCells() const;

  /// Appends a self-contained binary image (config, level, cells) to
  /// *out. Cells are written in min_index order, so equal coresets
  /// serialize to equal bytes regardless of hash-table iteration
  /// order. Host-endian raw values: a checkpoint is a crash-recovery
  /// artifact of one machine, not a portable interchange format.
  void SerializeTo(std::string* out) const;

  /// Rebuilds a coreset from bytes written by SerializeTo. The span
  /// must be consumed exactly; truncation, trailing bytes, or any
  /// out-of-range field is an error (the checkpoint layer treats every
  /// such error as "checkpoint unusable, re-ingest").
  static Result<StreamingCoreset> Deserialize(std::string_view bytes);

 private:
  // Churn mode only: one member record inside a bucket, enough to
  // re-fold the bucket exactly after a single-point delete.
  struct Member {
    uint64_t index = 0;
    double spread = 0.0;
    std::vector<double> coords;
  };
  // Churn mode only: the cell's aggregates restricted to one index
  // bucket. Same commutative exact folds as the cell itself; members
  // (track_members) stay sorted by index, so the refold is a pure
  // function of the member set.
  struct BucketState {
    uint64_t min_index = 0;
    uint64_t count = 0;
    double max_spread = 0.0;
    std::vector<double> representative;
    std::vector<Member> members;
  };
  struct CellState {
    uint64_t min_index = 0;
    uint64_t count = 0;
    double max_spread = 0.0;
    std::vector<double> representative;
    // Ordered by bucket id: refolds and serialization walk buckets in
    // a deterministic order, and expiry retires a prefix.
    std::map<uint64_t, BucketState> buckets;
  };
  using Key = std::vector<int64_t>;
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  using CellMap = std::unordered_map<Key, CellState, KeyHash>;

  // Folds `state` into the cell at `key` (commutative, exact).
  static void Absorb(CellMap* cells, Key key, CellState state);
  // Folds one bucket's aggregates into another (commutative, exact).
  static void MergeBucket(BucketState* into, BucketState from);
  // Recomputes the cell's top-level aggregates from its buckets.
  static void RefoldCell(CellState* cell);
  // Recomputes a bucket's aggregates from its (sorted) members.
  static void RefoldBucket(BucketState* bucket);
  // Writes the point's current-level grid key into key_scratch_.
  Status ComputeKey(const double* expected_coords);
  // Rebuilds the table with every key shifted to `level` (> level_).
  void CoarsenToLevel(int level);
  // Doubles the level until the cell target (or the level cap) is met.
  void ReduceToCapacity();

  bool churn() const { return options_.churn_bucket > 0; }

  size_t dim_;
  metric::Norm norm_;
  CoresetOptions options_;
  int level_ = 0;
  uint64_t num_points_ = 0;
  // Churn mode: buckets below this id have retired; Add rejects
  // indices that land under it, which keeps expiry monotone.
  uint64_t watermark_bucket_ = 0;
  CellMap cells_;
  Key key_scratch_;
};

}  // namespace stream
}  // namespace ukc

#endif  // UKC_STREAM_CORESET_H_
