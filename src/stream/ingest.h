// Chunked ingestion: turns a stream of uncertain points — an in-memory
// dataset, a dataset file (uncertain/io.h DatasetReader), or any
// caller-supplied producer — into a StreamingCoreset without ever
// holding more than shards · chunk_size points in memory.
//
// Sharding discipline: batches are read serially (I/O is the one
// serial resource), collected into groups of at most `shards` batches,
// and each group is processed by one ThreadPool::ParallelFor — batch g
// of group r feeds shard (r·shards + g) mod shards, so no two workers
// ever touch one shard and each shard sees its subsequence of batches
// in stream order. The shard coresets are then reduced by an ordered
// binary merge tree (stride 1, 2, 4, ... — disjoint pairs merge in
// parallel). None of this is needed for determinism — the grid coreset
// is bitwise partition-invariant by construction (stream/coreset.h) —
// but it keeps the layer on the same determinism discipline as
// ParallelCandidateEvaluator, so the invariance never rests on a
// single component's guarantee.

#ifndef UKC_STREAM_INGEST_H_
#define UKC_STREAM_INGEST_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/result.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "stream/checkpoint.h"
#include "stream/coreset.h"
#include "uncertain/chunk.h"
#include "uncertain/dataset.h"
#include "uncertain/io.h"

namespace ukc {
namespace stream {

/// Pull-style producer of batches: fills *batch with the next chunk of
/// the stream and returns true, or returns false at the clean end of
/// the stream. Implementations must set batch->start_index to the
/// stream index of the batch's first point.
using BatchSource =
    std::function<Result<bool>(uncertain::UncertainPointBatch* batch)>;

/// Re-startable stream: every call opens an independent pass over the
/// same data from the beginning (the streaming pipeline reads the data
/// twice — coreset build, then verification).
using BatchSourceFactory = std::function<Result<BatchSource>()>;

/// Chunks an in-memory dataset (Euclidean only; coordinates are
/// gathered out of the space's arena). The dataset must outlive the
/// source.
Result<BatchSource> MakeDatasetBatchSource(
    const uncertain::UncertainDataset* dataset, size_t chunk_size);

/// Streams a dataset file via uncertain::DatasetReader; one chunk of
/// the file is resident at a time.
Result<BatchSource> MakeFileBatchSource(const std::string& path,
                                        size_t chunk_size);

/// Adapts a per-point callback producer: `next` appends one point's
/// locations (dim doubles per location into *coords, one probability
/// each into *probabilities; both pre-cleared) and returns true, or
/// returns false when the stream ends. Each point's probabilities must
/// be positive and sum to 1 (the same invariant every other entry
/// point enforces). `norm` declares the metric the coordinates live
/// under; it stamps every batch and must match across the stream.
using PointProducer = std::function<bool(std::vector<double>* coords,
                                         std::vector<double>* probabilities)>;
Result<BatchSource> MakeProducerBatchSource(size_t dim, PointProducer next,
                                            size_t chunk_size,
                                            metric::Norm norm = metric::Norm::kL2);

/// Factory conveniences for the two re-startable stream kinds.
BatchSourceFactory DatasetBatchFactory(const uncertain::UncertainDataset* dataset,
                                       size_t chunk_size);
BatchSourceFactory FileBatchFactory(const std::string& path, size_t chunk_size);

/// FileBatchFactory that hands an already-open reader to its FIRST
/// source: callers that probe the header up front (SolveFile reads the
/// dimension before building its pipeline) seed pass 1 with the probe
/// reader instead of reopening and re-parsing the header; passes after
/// the first reopen `path` as usual. The probe must be freshly opened
/// (no chunks consumed).
BatchSourceFactory SeededFileBatchFactory(uncertain::DatasetReader&& probe,
                                          const std::string& path,
                                          size_t chunk_size);

/// Bytes hashed into SourceCursor::window_hash: the window of the file
/// immediately preceding the cursor's byte offset (shorter when the
/// offset is near the start).
inline constexpr uint64_t kCursorWindowBytes = 4096;

/// One position probe of a seekable stream: the byte offset of the
/// next unread record plus a hash of the kCursorWindowBytes bytes
/// preceding it. The window hash is the seek path's change detector: a
/// structurally-valid record boundary at the right offset of the WRONG
/// file (the data was regenerated between crash and resume) would
/// otherwise splice two streams into one silently wrong coreset, so
/// the factory re-hashes the same window before trusting a
/// checkpointed offset and degrades to the replay-verify path on any
/// mismatch.
struct SourceCursor {
  uint64_t byte_offset = 0;
  uint64_t window_hash = 0;
};

/// The ingestion cursor a checkpoint restores to (a whole-group
/// boundary: `batches` is a multiple of the effective shard count
/// whenever the stream was not yet exhausted).
struct ResumePoint {
  uint64_t batches = 0;
  uint64_t points = 0;
  /// Byte offset of the next unread record — and the hash of the
  /// window before it — when the checkpointed source could report one
  /// (uncertain/io.h TellByteOffset).
  bool has_byte_offset = false;
  uint64_t byte_offset = 0;
  uint64_t window_hash = 0;
};

/// A BatchSource plus an optional position probe. `tell`, when
/// non-null, returns the cursor of the next unread record — it is
/// only ever called by the thread that pulls `next`, between pulls —
/// and is what makes a checkpoint seek-restorable.
struct ResumableSource {
  BatchSource next;
  std::function<std::optional<SourceCursor>()> tell;
};

/// Factory of re-startable, optionally repositionable streams — the
/// input of the checkpoint-aware IngestCoreset. Called with `resume ==
/// nullptr` it opens the stream from the beginning (like
/// BatchSourceFactory). Called with a ResumePoint it MAY position the
/// stream so the next pull yields batch `resume->batches`, setting
/// *positioned = true; a factory that cannot (or whose positioning
/// attempt fails against a stale cursor) returns a from-the-start
/// stream with *positioned = false, and the ingest layer replays the
/// prefix, verifying its content fingerprint batch by batch. Either
/// way the factory must tolerate being invoked again (a rejected
/// resume falls back to a fresh full pass).
using ResumableSourceFactory = std::function<Result<ResumableSource>(
    const ResumePoint* resume, bool* positioned)>;

/// Wraps a plain BatchSourceFactory: never positioned, no tell —
/// resumes go through the replay-and-verify path. (For in-memory
/// datasets the replay is a cheap re-chunk, and hashing the prefix
/// guards against resuming against different data.)
ResumableSourceFactory AdaptBatchFactory(BatchSourceFactory factory);

/// Resumable factory over a dataset file. Resume positions the reader
/// with DatasetReader::SeekTo (one seek instead of re-parsing the
/// prefix); a cursor that fails structural validation degrades to the
/// replay path instead of erroring.
ResumableSourceFactory ResumableFileFactory(const std::string& path,
                                            size_t chunk_size);

/// ResumableFileFactory variant seeded with a freshly-opened probe
/// reader (see SeededFileBatchFactory): the first stream consumes the
/// probe — seeking it when that first call is a resume — and later
/// calls reopen `path`.
ResumableSourceFactory ResumableSeededFileFactory(
    uncertain::DatasetReader&& probe, const std::string& path,
    size_t chunk_size);

/// Resumable factory over an in-memory dataset (replay path; see
/// AdaptBatchFactory).
ResumableSourceFactory ResumableDatasetFactory(
    const uncertain::UncertainDataset* dataset, size_t chunk_size);

/// Configuration of the sharded coreset build.
struct IngestOptions {
  /// Points per batch. Consumed by the Make*BatchSource factories (and
  /// the pipeline, which builds sources from it); BuildCoresetFromSource
  /// itself takes whatever batch size its source emits.
  size_t chunk_size = 4096;
  /// Shard coresets built concurrently; <= 0 = the pool's thread count.
  int shards = 0;
  /// Double-buffer ingestion: a dedicated reader thread pulls batch
  /// group r+1 off the source while the pool processes group r, so
  /// I/O and compute overlap on parse-heavy file streams. The source
  /// is still read strictly serially (only ever by the reader), groups
  /// are formed identically, and batch g of a group still feeds shard
  /// g — the batch→shard→ordered-merge determinism rule is untouched,
  /// so the coreset is bitwise identical either way. false = the
  /// serial read-then-process alternation (the reference path).
  bool double_buffer = true;
  CoresetOptions coreset;
  /// Bounded retry of transient batch-source failures (kUnavailable
  /// only; see common/retry.h). Sources must not consume input on a
  /// failed pull for the retry to be sound — every source in this
  /// repo satisfies that.
  RetryOptions retry;
  /// Crash-consistent checkpointing (stream/checkpoint.h). Only the
  /// factory-based IngestCoreset honors it — resuming and falling back
  /// require re-opening the stream, which a bare BatchSource cannot do
  /// — so BuildCoresetFromSource rejects a non-empty path.
  CheckpointOptions checkpoint;
  /// Registry the ingest telemetry meters into (null = the process-wide
  /// obs::MetricsRegistry::Default()): stage timers
  /// (ukc_ingest_stage_seconds{stage=read|process|merge}), throughput
  /// counters (ukc_ingest_{batches,points}_total), checkpoint latency
  /// (ukc_ingest_checkpoint_seconds{op=save|restore}) and outcome
  /// counters. Retry counters ride retry.metrics_site (defaulted to
  /// "ingest.read" here). Metrics never feed the coreset state — the
  /// bitwise-determinism guarantee is untouched.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Counters of one ingestion run. When a run resumes from a
/// checkpoint, points/locations/batches include the restored prefix —
/// the totals match an uninterrupted run.
struct IngestStats {
  uint64_t points = 0;
  uint64_t locations = 0;
  uint64_t batches = 0;
  /// Batch pulls re-tried after a transient failure (and of those,
  /// retry budgets exhausted — the run then failed).
  uint64_t read_retries = 0;
  uint64_t read_exhausted = 0;
  /// Checkpoints written / failed to write. Save failures are
  /// non-fatal: the previous sidecar remains the recovery point.
  uint64_t checkpoint_saves = 0;
  uint64_t checkpoint_save_failures = 0;
  /// Restore outcome: whether a checkpoint was accepted, how many
  /// batches it skipped (restored_batches) and how many had to be
  /// replayed to verify the content fingerprint (replayed_batches).
  bool restored = false;
  bool checkpoint_rejected = false;
  uint64_t restored_batches = 0;
  uint64_t replayed_batches = 0;
};

/// Drains `source` through shard coresets on `pool` and reduces them
/// into the returned coreset. The result is bitwise identical for
/// every (pool size, shards, chunk_size) configuration.
Result<StreamingCoreset> BuildCoresetFromSource(size_t dim,
                                                const BatchSource& source,
                                                const IngestOptions& options,
                                                ThreadPool* pool,
                                                IngestStats* stats = nullptr);

/// The checkpoint-aware ingestion entry point: BuildCoresetFromSource
/// semantics (same sharding, same bitwise-deterministic result) over a
/// re-startable stream. With options.checkpoint.path set, the run
/// first tries to restore — validating checksum, configuration
/// fingerprint and stream position, and degrading to a full re-ingest
/// on ANY mismatch — then saves a checkpoint every every_n_batches
/// batches (rounded to whole groups). A restored-and-resumed run
/// produces the bitwise-identical coreset an uninterrupted run would
/// have produced.
Result<StreamingCoreset> IngestCoreset(size_t dim,
                                       const ResumableSourceFactory& factory,
                                       const IngestOptions& options,
                                       ThreadPool* pool,
                                       IngestStats* stats = nullptr);

/// Summarizes one batch point for the coreset: writes the expected
/// point of batch point `i` into expected[0..dim) and returns
/// spread_i = max location distance to it. (The verification pass does
/// not use this — it works with per-location distances to the chosen
/// centers, not the surrogate summary.)
double SummarizeBatchPoint(const uncertain::UncertainPointBatch& batch,
                           size_t i, double* expected);

/// Structural validation applied to every ingested batch (dimension,
/// CSR consistency, no empty points). The pipeline's verification pass
/// applies the same gate to its second read of the stream.
Status ValidateBatch(const uncertain::UncertainPointBatch& batch, size_t dim);

}  // namespace stream
}  // namespace ukc

#endif  // UKC_STREAM_INGEST_H_
