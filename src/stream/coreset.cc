#include "stream/coreset.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>
#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace ukc {
namespace stream {

namespace {

// Levels beyond this collapse every representable key to {-1, 0}: no
// further doubling can help, so the reduction loop stops here.
constexpr int kMaxLevel = 62;

// Version tag of the SerializeTo byte layout. Bump on any layout
// change; Deserialize rejects unknown versions, which the checkpoint
// layer degrades to a full re-ingest. v2 added the churn-mode fields
// (churn_bucket, track_members, watermark, per-cell buckets).
constexpr uint32_t kSerializeVersion = 2;

void AppendRaw(std::string* out, const void* data, size_t bytes) {
  out->append(static_cast<const char*>(data), bytes);
}

template <typename T>
void AppendValue(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

// Bounds-checked sequential reader over the serialized image.
struct ByteCursor {
  const char* p;
  const char* end;

  bool Read(void* out, size_t bytes) {
    if (static_cast<size_t>(end - p) < bytes) return false;
    std::memcpy(out, p, bytes);
    p += bytes;
    return true;
  }

  template <typename T>
  bool ReadValue(T* out) {
    return Read(out, sizeof(T));
  }
};

// Cap on |coord / base_cell_width|: 2^44. Well below int64 overflow,
// and chosen so the floating-point division's absolute error stays
// under 2^44 · eps ≈ 2e-3 — two same-cell points are then within
// (1 + 2·2e-3) cell widths per axis, which the diameter() slack of
// 1e-2 absorbs rigorously. (At larger quotients the ulp of the
// quotient exceeds the slack and the cell-diameter invariant would
// silently break.)
constexpr double kMaxBaseKeyMagnitude = 17592186044416.0;  // 2^44

}  // namespace

size_t StreamingCoreset::KeyHash::operator()(const Key& key) const {
  // splitmix64-style combine; the key is a handful of int64s.
  uint64_t h = 0x9e3779b97f4a7c15ull ^ key.size();
  for (int64_t v : key) {
    uint64_t x = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull + h;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    h = x ^ (x >> 31);
  }
  return static_cast<size_t>(h);
}

StreamingCoreset::StreamingCoreset(size_t dim, metric::Norm norm,
                                   CoresetOptions options)
    : dim_(dim), norm_(norm), options_(options), key_scratch_(dim, 0) {
  UKC_CHECK(dim_ > 0) << "StreamingCoreset: dim must be >= 1";
  UKC_CHECK(options_.max_cells > 0)
      << "StreamingCoreset: max_cells must be >= 1";
  UKC_CHECK(options_.base_cell_width > 0.0)
      << "StreamingCoreset: base_cell_width must be > 0";
  UKC_CHECK(!options_.track_members || options_.churn_bucket > 0)
      << "StreamingCoreset: track_members requires churn_bucket > 0";
}

double StreamingCoreset::cell_width() const {
  return std::ldexp(options_.base_cell_width, level_);
}

double StreamingCoreset::diameter() const {
  const double width = cell_width();
  double factor = 1.0;
  switch (norm_) {
    case metric::Norm::kL2:
      factor = std::sqrt(static_cast<double>(dim_));
      break;
    case metric::Norm::kL1:
      factor = static_cast<double>(dim_);
      break;
    case metric::Norm::kLInf:
      factor = 1.0;
      break;
  }
  // The 1e-2 relative slack rigorously absorbs the floating-point
  // x / width quotient: with |x / base_cell_width| capped at 2^44
  // (kMaxBaseKeyMagnitude), two members of one cell are within
  // (1 + 2·2^44·eps) < 1.004 widths per axis.
  return width * factor * (1.0 + 1e-2);
}

double StreamingCoreset::max_spread() const {
  double spread = 0.0;
  for (const auto& [key, state] : cells_) {
    spread = std::max(spread, state.max_spread);
  }
  return spread;
}

double StreamingCoreset::error_bound() const { return diameter() + max_spread(); }

size_t StreamingCoreset::ApproxMemoryBytes() const {
  // Key + state + representative per cell, plus the table's buckets.
  const size_t per_cell = dim_ * (sizeof(int64_t) + sizeof(double)) +
                          sizeof(CellState) + sizeof(void*);
  size_t bytes = cells_.size() * per_cell + cells_.bucket_count() * sizeof(void*);
  if (churn()) {
    // Churn mode keeps per-bucket sub-aggregates (and, with
    // track_members, O(live points) member records).
    const size_t per_bucket =
        sizeof(uint64_t) + sizeof(BucketState) + dim_ * sizeof(double);
    const size_t per_member = sizeof(Member) + dim_ * sizeof(double);
    for (const auto& [key, state] : cells_) {
      bytes += state.buckets.size() * per_bucket;
      for (const auto& [b, bucket] : state.buckets) {
        bytes += bucket.members.size() * per_member;
      }
    }
  }
  return bytes;
}

Status StreamingCoreset::ComputeKey(const double* expected_coords) {
  // The base-level key is the only floating-point step of the whole
  // structure; every later level is an exact arithmetic shift of it.
  for (size_t a = 0; a < dim_; ++a) {
    const double q =
        std::floor(expected_coords[a] / options_.base_cell_width);
    if (!(q >= -kMaxBaseKeyMagnitude && q <= kMaxBaseKeyMagnitude)) {
      return Status::InvalidArgument(StrFormat(
          "StreamingCoreset: coordinate %.6g overflows the level-0 grid; "
          "raise CoresetOptions::base_cell_width",
          expected_coords[a]));
    }
    // C++20 guarantees arithmetic (floor) shift for signed operands, so
    // this matches floor division by 2^level exactly, including for
    // negative keys.
    key_scratch_[a] = static_cast<int64_t>(q) >> level_;
  }
  return Status::OK();
}

Status StreamingCoreset::Add(uint64_t index, const double* expected_coords,
                             double spread) {
  UKC_RETURN_IF_ERROR(ComputeKey(expected_coords));
  if (churn() && index / options_.churn_bucket < watermark_bucket_) {
    return Status::InvalidArgument(StrFormat(
        "StreamingCoreset::Add: index %llu lies below the expiry watermark "
        "(bucket %llu already retired)",
        static_cast<unsigned long long>(index),
        static_cast<unsigned long long>(watermark_bucket_)));
  }
  auto [it, inserted] = cells_.try_emplace(key_scratch_);
  CellState& cell = it->second;
  if (inserted || index < cell.min_index) {
    cell.min_index = index;
    cell.representative.assign(expected_coords, expected_coords + dim_);
  }
  cell.count += 1;
  cell.max_spread = std::max(cell.max_spread, spread);
  if (churn()) {
    BucketState& bucket = cell.buckets[index / options_.churn_bucket];
    if (bucket.count == 0 || index < bucket.min_index) {
      bucket.min_index = index;
      bucket.representative.assign(expected_coords, expected_coords + dim_);
    }
    bucket.count += 1;
    bucket.max_spread = std::max(bucket.max_spread, spread);
    if (options_.track_members) {
      // Sorted by (unique) index: the member list — and every refold
      // over it — is a pure function of the member set.
      Member member;
      member.index = index;
      member.spread = spread;
      member.coords.assign(expected_coords, expected_coords + dim_);
      auto pos = std::lower_bound(
          bucket.members.begin(), bucket.members.end(), index,
          [](const Member& m, uint64_t i) { return m.index < i; });
      bucket.members.insert(pos, std::move(member));
    }
  }
  ++num_points_;
  ReduceToCapacity();
  return Status::OK();
}

void StreamingCoreset::MergeBucket(BucketState* into, BucketState from) {
  if (into->count == 0) {
    *into = std::move(from);
    return;
  }
  if (from.min_index < into->min_index) {
    into->min_index = from.min_index;
    into->representative = std::move(from.representative);
  }
  into->count += from.count;
  into->max_spread = std::max(into->max_spread, from.max_spread);
  if (!from.members.empty()) {
    std::vector<Member> merged;
    merged.reserve(into->members.size() + from.members.size());
    std::merge(std::make_move_iterator(into->members.begin()),
               std::make_move_iterator(into->members.end()),
               std::make_move_iterator(from.members.begin()),
               std::make_move_iterator(from.members.end()),
               std::back_inserter(merged),
               [](const Member& a, const Member& b) { return a.index < b.index; });
    into->members = std::move(merged);
  }
}

void StreamingCoreset::RefoldBucket(BucketState* bucket) {
  UKC_DCHECK(!bucket->members.empty());
  // Members are sorted by index, so the front member owns the
  // representative; the folds over the rest are exact and commutative.
  bucket->min_index = bucket->members.front().index;
  bucket->representative = bucket->members.front().coords;
  bucket->count = bucket->members.size();
  bucket->max_spread = 0.0;
  for (const Member& member : bucket->members) {
    bucket->max_spread = std::max(bucket->max_spread, member.spread);
  }
}

void StreamingCoreset::RefoldCell(CellState* cell) {
  UKC_DCHECK(!cell->buckets.empty());
  cell->count = 0;
  cell->max_spread = 0.0;
  bool first = true;
  for (const auto& [b, bucket] : cell->buckets) {
    if (first || bucket.min_index < cell->min_index) {
      cell->min_index = bucket.min_index;
      cell->representative = bucket.representative;
    }
    first = false;
    cell->count += bucket.count;
    cell->max_spread = std::max(cell->max_spread, bucket.max_spread);
  }
}

Status StreamingCoreset::Remove(uint64_t index, const double* expected_coords,
                                double spread) {
  if (!options_.track_members) {
    return Status::FailedPrecondition(
        "StreamingCoreset::Remove: requires churn mode with track_members "
        "(the min/max/representative folds are not invertible without "
        "member records)");
  }
  UKC_RETURN_IF_ERROR(ComputeKey(expected_coords));
  auto it = cells_.find(key_scratch_);
  if (it == cells_.end()) {
    return Status::NotFound(
        "StreamingCoreset::Remove: no cell holds such a point");
  }
  CellState& cell = it->second;
  auto bucket_it = cell.buckets.find(index / options_.churn_bucket);
  if (bucket_it == cell.buckets.end()) {
    return Status::NotFound(
        "StreamingCoreset::Remove: no bucket holds such a point");
  }
  BucketState& bucket = bucket_it->second;
  auto member_it = std::lower_bound(
      bucket.members.begin(), bucket.members.end(), index,
      [](const Member& m, uint64_t i) { return m.index < i; });
  if (member_it == bucket.members.end() || member_it->index != index) {
    return Status::NotFound(StrFormat(
        "StreamingCoreset::Remove: index %llu is not a member",
        static_cast<unsigned long long>(index)));
  }
  // The caller replays the point it believes it inserted; a mismatch
  // means it replayed the wrong one — removing the stored member
  // anyway would corrupt the aggregates silently.
  if (member_it->spread != spread ||
      std::memcmp(member_it->coords.data(), expected_coords,
                  dim_ * sizeof(double)) != 0) {
    return Status::InvalidArgument(StrFormat(
        "StreamingCoreset::Remove: stored member %llu disagrees with the "
        "replayed coordinates/spread",
        static_cast<unsigned long long>(index)));
  }
  bucket.members.erase(member_it);
  if (bucket.members.empty()) {
    cell.buckets.erase(bucket_it);
  } else {
    RefoldBucket(&bucket);
  }
  if (cell.buckets.empty()) {
    cells_.erase(it);
  } else {
    RefoldCell(&cell);
  }
  --num_points_;
  return Status::OK();
}

Result<uint64_t> StreamingCoreset::ExpireBefore(uint64_t min_live_index) {
  if (!churn()) {
    return Status::FailedPrecondition(
        "StreamingCoreset::ExpireBefore: requires churn mode "
        "(CoresetOptions::churn_bucket > 0)");
  }
  const uint64_t watermark = min_live_index / options_.churn_bucket;
  // Monotone + idempotent: the state is a pure function of the largest
  // watermark ever applied, so any call schedule reaching the same
  // final watermark — per point, per batch, or once at the end —
  // leaves bitwise-identical cells.
  if (watermark <= watermark_bucket_) return uint64_t{0};
  uint64_t expired = 0;
  for (auto it = cells_.begin(); it != cells_.end();) {
    CellState& cell = it->second;
    bool changed = false;
    while (!cell.buckets.empty() && cell.buckets.begin()->first < watermark) {
      expired += cell.buckets.begin()->second.count;
      cell.buckets.erase(cell.buckets.begin());
      changed = true;
    }
    if (cell.buckets.empty()) {
      it = cells_.erase(it);
      continue;
    }
    if (changed) RefoldCell(&cell);
    ++it;
  }
  UKC_CHECK(expired <= num_points_)
      << "StreamingCoreset::ExpireBefore: retired more points than live";
  num_points_ -= expired;
  watermark_bucket_ = watermark;
  return expired;
}

Status StreamingCoreset::CoarsenTo(int level) {
  if (level < level_ || level > kMaxLevel) {
    return Status::InvalidArgument(StrFormat(
        "StreamingCoreset::CoarsenTo: level %d outside [%d, %d]", level,
        level_, kMaxLevel));
  }
  if (level > level_) CoarsenToLevel(level);
  return Status::OK();
}

void StreamingCoreset::Absorb(CellMap* cells, Key key, CellState state) {
  auto [it, inserted] = cells->try_emplace(std::move(key));
  CellState& cell = it->second;
  if (inserted) {
    cell = std::move(state);
    return;
  }
  // All folds are commutative and exact, so the merged cell does not
  // depend on the order its parts arrive in.
  if (state.min_index < cell.min_index) {
    cell.min_index = state.min_index;
    cell.representative = std::move(state.representative);
  }
  cell.count += state.count;
  cell.max_spread = std::max(cell.max_spread, state.max_spread);
  for (auto& [b, bucket] : state.buckets) {
    MergeBucket(&cell.buckets[b], std::move(bucket));
  }
}

void StreamingCoreset::CoarsenToLevel(int level) {
  UKC_DCHECK(level > level_);
  const int shift = level - level_;
  CellMap coarser;
  coarser.reserve(cells_.size());
  for (auto& [key, state] : cells_) {
    Key shifted(dim_);
    for (size_t a = 0; a < dim_; ++a) shifted[a] = key[a] >> shift;
    Absorb(&coarser, std::move(shifted), std::move(state));
  }
  cells_ = std::move(coarser);
  level_ = level;
}

void StreamingCoreset::ReduceToCapacity() {
  while (cells_.size() > options_.max_cells && level_ < kMaxLevel) {
    CoarsenToLevel(level_ + 1);
  }
}

Status StreamingCoreset::MergeFrom(const StreamingCoreset& other) {
  if (other.dim_ != dim_ || other.norm_ != norm_ ||
      other.options_.base_cell_width != options_.base_cell_width ||
      other.options_.max_cells != options_.max_cells ||
      other.options_.churn_bucket != options_.churn_bucket ||
      other.options_.track_members != options_.track_members) {
    return Status::InvalidArgument(
        "StreamingCoreset::MergeFrom: incompatible coreset configuration");
  }
  if (other.level_ > level_) CoarsenToLevel(other.level_);
  const int shift = level_ - other.level_;
  for (const auto& [key, state] : other.cells_) {
    Key shifted(dim_);
    for (size_t a = 0; a < dim_; ++a) shifted[a] = key[a] >> shift;
    Absorb(&cells_, std::move(shifted), state);
  }
  num_points_ += other.num_points_;
  // Shard pipelines expire only after the final merge, so shards
  // normally carry watermark 0; the max is still the only fold that
  // keeps the merged state monotone when they do not.
  watermark_bucket_ = std::max(watermark_bucket_, other.watermark_bucket_);
  ReduceToCapacity();
  return Status::OK();
}

std::vector<StreamingCoreset::Cell> StreamingCoreset::ExtractCells() const {
  std::vector<Cell> cells;
  cells.reserve(cells_.size());
  for (const auto& [key, state] : cells_) {
    Cell cell;
    cell.min_index = state.min_index;
    cell.count = state.count;
    cell.max_spread = state.max_spread;
    cell.representative = state.representative;
    cells.push_back(std::move(cell));
  }
  // min_index is unique (one owner point per cell), so this order — and
  // therefore everything solved on the extracted coreset — is
  // independent of the hash table's iteration order.
  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.min_index < b.min_index; });
  return cells;
}

void StreamingCoreset::SerializeTo(std::string* out) const {
  AppendValue(out, kSerializeVersion);
  AppendValue(out, static_cast<uint64_t>(dim_));
  AppendValue(out, static_cast<uint8_t>(norm_));
  AppendValue(out, static_cast<uint64_t>(options_.max_cells));
  AppendValue(out, options_.base_cell_width);
  AppendValue(out, options_.churn_bucket);
  AppendValue(out, static_cast<uint8_t>(options_.track_members ? 1 : 0));
  AppendValue(out, watermark_bucket_);
  AppendValue(out, static_cast<int32_t>(level_));
  AppendValue(out, num_points_);
  AppendValue(out, static_cast<uint64_t>(cells_.size()));
  // min_index order, same as ExtractCells: the bytes are a pure
  // function of the cell set, never of the table's iteration order.
  std::vector<const CellMap::value_type*> ordered;
  ordered.reserve(cells_.size());
  for (const auto& entry : cells_) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const CellMap::value_type* a, const CellMap::value_type* b) {
              return a->second.min_index < b->second.min_index;
            });
  for (const CellMap::value_type* entry : ordered) {
    AppendRaw(out, entry->first.data(), dim_ * sizeof(int64_t));
    AppendValue(out, entry->second.min_index);
    AppendValue(out, entry->second.count);
    AppendValue(out, entry->second.max_spread);
    AppendRaw(out, entry->second.representative.data(), dim_ * sizeof(double));
    if (!churn()) continue;
    // Buckets serialize in id order (std::map iteration) — again a
    // pure function of the state, not of any insertion history.
    AppendValue(out, static_cast<uint64_t>(entry->second.buckets.size()));
    for (const auto& [b, bucket] : entry->second.buckets) {
      AppendValue(out, b);
      AppendValue(out, bucket.min_index);
      AppendValue(out, bucket.count);
      AppendValue(out, bucket.max_spread);
      AppendRaw(out, bucket.representative.data(), dim_ * sizeof(double));
      if (!options_.track_members) continue;
      AppendValue(out, static_cast<uint64_t>(bucket.members.size()));
      for (const Member& member : bucket.members) {
        AppendValue(out, member.index);
        AppendValue(out, member.spread);
        AppendRaw(out, member.coords.data(), dim_ * sizeof(double));
      }
    }
  }
}

Result<StreamingCoreset> StreamingCoreset::Deserialize(std::string_view bytes) {
  ByteCursor cursor{bytes.data(), bytes.data() + bytes.size()};
  const auto truncated = [] {
    return Status::InvalidArgument(
        "StreamingCoreset::Deserialize: truncated image");
  };
  uint32_t version = 0;
  if (!cursor.ReadValue(&version)) return truncated();
  if (version != kSerializeVersion) {
    return Status::InvalidArgument(
        StrFormat("StreamingCoreset::Deserialize: unknown version %u",
                  static_cast<unsigned>(version)));
  }
  uint64_t dim = 0;
  uint8_t norm_raw = 0;
  uint64_t max_cells = 0;
  double base_cell_width = 0.0;
  uint64_t churn_bucket = 0;
  uint8_t track_members_raw = 0;
  uint64_t watermark_bucket = 0;
  int32_t level = 0;
  uint64_t num_points = 0;
  uint64_t num_cells = 0;
  if (!cursor.ReadValue(&dim) || !cursor.ReadValue(&norm_raw) ||
      !cursor.ReadValue(&max_cells) || !cursor.ReadValue(&base_cell_width) ||
      !cursor.ReadValue(&churn_bucket) ||
      !cursor.ReadValue(&track_members_raw) ||
      !cursor.ReadValue(&watermark_bucket) || !cursor.ReadValue(&level) ||
      !cursor.ReadValue(&num_points) || !cursor.ReadValue(&num_cells)) {
    return truncated();
  }
  if (dim == 0 || dim > (1u << 20) || max_cells == 0 ||
      !(base_cell_width > 0.0) || !std::isfinite(base_cell_width) ||
      level < 0 || level > kMaxLevel || num_cells > num_points) {
    return Status::InvalidArgument(
        "StreamingCoreset::Deserialize: out-of-range header field");
  }
  if (norm_raw > static_cast<uint8_t>(metric::Norm::kLInf)) {
    return Status::InvalidArgument(
        "StreamingCoreset::Deserialize: unknown norm");
  }
  if (track_members_raw > 1 ||
      (track_members_raw == 1 && churn_bucket == 0) ||
      (churn_bucket == 0 && watermark_bucket != 0)) {
    return Status::InvalidArgument(
        "StreamingCoreset::Deserialize: inconsistent churn configuration");
  }
  CoresetOptions options;
  options.max_cells = static_cast<size_t>(max_cells);
  options.base_cell_width = base_cell_width;
  options.churn_bucket = churn_bucket;
  options.track_members = track_members_raw == 1;
  StreamingCoreset coreset(static_cast<size_t>(dim),
                           static_cast<metric::Norm>(norm_raw), options);
  coreset.level_ = static_cast<int>(level);
  coreset.num_points_ = num_points;
  coreset.watermark_bucket_ = watermark_bucket;
  coreset.cells_.reserve(num_cells);
  uint64_t total_count = 0;
  for (uint64_t c = 0; c < num_cells; ++c) {
    Key key(dim);
    CellState state;
    state.representative.resize(dim);
    if (!cursor.Read(key.data(), dim * sizeof(int64_t)) ||
        !cursor.ReadValue(&state.min_index) || !cursor.ReadValue(&state.count) ||
        !cursor.ReadValue(&state.max_spread) ||
        !cursor.Read(state.representative.data(), dim * sizeof(double))) {
      return truncated();
    }
    if (state.count == 0) {
      return Status::InvalidArgument(
          "StreamingCoreset::Deserialize: empty cell");
    }
    if (churn_bucket > 0) {
      uint64_t num_buckets = 0;
      if (!cursor.ReadValue(&num_buckets)) return truncated();
      if (num_buckets == 0 || num_buckets > state.count) {
        return Status::InvalidArgument(
            "StreamingCoreset::Deserialize: bad bucket count");
      }
      uint64_t bucket_total = 0;
      uint64_t prev_bucket_id = 0;
      bool first_bucket = true;
      for (uint64_t bi = 0; bi < num_buckets; ++bi) {
        uint64_t bucket_id = 0;
        BucketState bucket;
        bucket.representative.resize(dim);
        if (!cursor.ReadValue(&bucket_id) ||
            !cursor.ReadValue(&bucket.min_index) ||
            !cursor.ReadValue(&bucket.count) ||
            !cursor.ReadValue(&bucket.max_spread) ||
            !cursor.Read(bucket.representative.data(), dim * sizeof(double))) {
          return truncated();
        }
        // Buckets were written in strictly increasing id order, never
        // below the watermark (Add rejects such indices).
        if (bucket.count == 0 || bucket_id < watermark_bucket ||
            (!first_bucket && bucket_id <= prev_bucket_id)) {
          return Status::InvalidArgument(
              "StreamingCoreset::Deserialize: bad bucket record");
        }
        first_bucket = false;
        prev_bucket_id = bucket_id;
        bucket_total += bucket.count;
        if (track_members_raw == 1) {
          uint64_t num_members = 0;
          if (!cursor.ReadValue(&num_members)) return truncated();
          if (num_members != bucket.count) {
            return Status::InvalidArgument(
                "StreamingCoreset::Deserialize: member/count mismatch");
          }
          bucket.members.resize(num_members);
          uint64_t prev_index = 0;
          for (uint64_t mi = 0; mi < num_members; ++mi) {
            Member& member = bucket.members[mi];
            member.coords.resize(dim);
            if (!cursor.ReadValue(&member.index) ||
                !cursor.ReadValue(&member.spread) ||
                !cursor.Read(member.coords.data(), dim * sizeof(double))) {
              return truncated();
            }
            if (mi > 0 && member.index <= prev_index) {
              return Status::InvalidArgument(
                  "StreamingCoreset::Deserialize: members out of order");
            }
            prev_index = member.index;
          }
        }
        state.buckets.emplace(bucket_id, std::move(bucket));
      }
      if (bucket_total != state.count) {
        return Status::InvalidArgument(
            "StreamingCoreset::Deserialize: bucket counts do not sum to "
            "the cell count");
      }
    }
    total_count += state.count;
    auto [it, inserted] =
        coreset.cells_.try_emplace(std::move(key), std::move(state));
    if (!inserted) {
      return Status::InvalidArgument(
          "StreamingCoreset::Deserialize: duplicate cell key");
    }
  }
  if (total_count != num_points) {
    return Status::InvalidArgument(StrFormat(
        "StreamingCoreset::Deserialize: cell counts sum to %llu, header "
        "declares %llu points",
        static_cast<unsigned long long>(total_count),
        static_cast<unsigned long long>(num_points)));
  }
  if (cursor.p != cursor.end) {
    return Status::InvalidArgument(
        "StreamingCoreset::Deserialize: trailing bytes");
  }
  return coreset;
}

}  // namespace stream
}  // namespace ukc
