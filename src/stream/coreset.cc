#include "stream/coreset.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace ukc {
namespace stream {

namespace {

// Levels beyond this collapse every representable key to {-1, 0}: no
// further doubling can help, so the reduction loop stops here.
constexpr int kMaxLevel = 62;

// Version tag of the SerializeTo byte layout. Bump on any layout
// change; Deserialize rejects unknown versions, which the checkpoint
// layer degrades to a full re-ingest.
constexpr uint32_t kSerializeVersion = 1;

void AppendRaw(std::string* out, const void* data, size_t bytes) {
  out->append(static_cast<const char*>(data), bytes);
}

template <typename T>
void AppendValue(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

// Bounds-checked sequential reader over the serialized image.
struct ByteCursor {
  const char* p;
  const char* end;

  bool Read(void* out, size_t bytes) {
    if (static_cast<size_t>(end - p) < bytes) return false;
    std::memcpy(out, p, bytes);
    p += bytes;
    return true;
  }

  template <typename T>
  bool ReadValue(T* out) {
    return Read(out, sizeof(T));
  }
};

// Cap on |coord / base_cell_width|: 2^44. Well below int64 overflow,
// and chosen so the floating-point division's absolute error stays
// under 2^44 · eps ≈ 2e-3 — two same-cell points are then within
// (1 + 2·2e-3) cell widths per axis, which the diameter() slack of
// 1e-2 absorbs rigorously. (At larger quotients the ulp of the
// quotient exceeds the slack and the cell-diameter invariant would
// silently break.)
constexpr double kMaxBaseKeyMagnitude = 17592186044416.0;  // 2^44

}  // namespace

size_t StreamingCoreset::KeyHash::operator()(const Key& key) const {
  // splitmix64-style combine; the key is a handful of int64s.
  uint64_t h = 0x9e3779b97f4a7c15ull ^ key.size();
  for (int64_t v : key) {
    uint64_t x = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull + h;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    h = x ^ (x >> 31);
  }
  return static_cast<size_t>(h);
}

StreamingCoreset::StreamingCoreset(size_t dim, metric::Norm norm,
                                   CoresetOptions options)
    : dim_(dim), norm_(norm), options_(options), key_scratch_(dim, 0) {
  UKC_CHECK(dim_ > 0) << "StreamingCoreset: dim must be >= 1";
  UKC_CHECK(options_.max_cells > 0)
      << "StreamingCoreset: max_cells must be >= 1";
  UKC_CHECK(options_.base_cell_width > 0.0)
      << "StreamingCoreset: base_cell_width must be > 0";
}

double StreamingCoreset::cell_width() const {
  return std::ldexp(options_.base_cell_width, level_);
}

double StreamingCoreset::diameter() const {
  const double width = cell_width();
  double factor = 1.0;
  switch (norm_) {
    case metric::Norm::kL2:
      factor = std::sqrt(static_cast<double>(dim_));
      break;
    case metric::Norm::kL1:
      factor = static_cast<double>(dim_);
      break;
    case metric::Norm::kLInf:
      factor = 1.0;
      break;
  }
  // The 1e-2 relative slack rigorously absorbs the floating-point
  // x / width quotient: with |x / base_cell_width| capped at 2^44
  // (kMaxBaseKeyMagnitude), two members of one cell are within
  // (1 + 2·2^44·eps) < 1.004 widths per axis.
  return width * factor * (1.0 + 1e-2);
}

double StreamingCoreset::max_spread() const {
  double spread = 0.0;
  for (const auto& [key, state] : cells_) {
    spread = std::max(spread, state.max_spread);
  }
  return spread;
}

double StreamingCoreset::error_bound() const { return diameter() + max_spread(); }

size_t StreamingCoreset::ApproxMemoryBytes() const {
  // Key + state + representative per cell, plus the table's buckets.
  const size_t per_cell = dim_ * (sizeof(int64_t) + sizeof(double)) +
                          sizeof(CellState) + sizeof(void*);
  return cells_.size() * per_cell + cells_.bucket_count() * sizeof(void*);
}

Status StreamingCoreset::Add(uint64_t index, const double* expected_coords,
                             double spread) {
  // The base-level key is the only floating-point step of the whole
  // structure; every later level is an exact arithmetic shift of it.
  for (size_t a = 0; a < dim_; ++a) {
    const double q =
        std::floor(expected_coords[a] / options_.base_cell_width);
    if (!(q >= -kMaxBaseKeyMagnitude && q <= kMaxBaseKeyMagnitude)) {
      return Status::InvalidArgument(StrFormat(
          "StreamingCoreset: coordinate %.6g overflows the level-0 grid; "
          "raise CoresetOptions::base_cell_width",
          expected_coords[a]));
    }
    // C++20 guarantees arithmetic (floor) shift for signed operands, so
    // this matches floor division by 2^level exactly, including for
    // negative keys.
    key_scratch_[a] = static_cast<int64_t>(q) >> level_;
  }
  auto [it, inserted] = cells_.try_emplace(key_scratch_);
  CellState& cell = it->second;
  if (inserted || index < cell.min_index) {
    cell.min_index = index;
    cell.representative.assign(expected_coords, expected_coords + dim_);
  }
  cell.count += 1;
  cell.max_spread = std::max(cell.max_spread, spread);
  ++num_points_;
  ReduceToCapacity();
  return Status::OK();
}

void StreamingCoreset::Absorb(CellMap* cells, Key key, CellState state) {
  auto [it, inserted] = cells->try_emplace(std::move(key));
  CellState& cell = it->second;
  if (inserted) {
    cell = std::move(state);
    return;
  }
  // All folds are commutative and exact, so the merged cell does not
  // depend on the order its parts arrive in.
  if (state.min_index < cell.min_index) {
    cell.min_index = state.min_index;
    cell.representative = std::move(state.representative);
  }
  cell.count += state.count;
  cell.max_spread = std::max(cell.max_spread, state.max_spread);
}

void StreamingCoreset::CoarsenToLevel(int level) {
  UKC_DCHECK(level > level_);
  const int shift = level - level_;
  CellMap coarser;
  coarser.reserve(cells_.size());
  for (auto& [key, state] : cells_) {
    Key shifted(dim_);
    for (size_t a = 0; a < dim_; ++a) shifted[a] = key[a] >> shift;
    Absorb(&coarser, std::move(shifted), std::move(state));
  }
  cells_ = std::move(coarser);
  level_ = level;
}

void StreamingCoreset::ReduceToCapacity() {
  while (cells_.size() > options_.max_cells && level_ < kMaxLevel) {
    CoarsenToLevel(level_ + 1);
  }
}

Status StreamingCoreset::MergeFrom(const StreamingCoreset& other) {
  if (other.dim_ != dim_ || other.norm_ != norm_ ||
      other.options_.base_cell_width != options_.base_cell_width ||
      other.options_.max_cells != options_.max_cells) {
    return Status::InvalidArgument(
        "StreamingCoreset::MergeFrom: incompatible coreset configuration");
  }
  if (other.level_ > level_) CoarsenToLevel(other.level_);
  const int shift = level_ - other.level_;
  for (const auto& [key, state] : other.cells_) {
    Key shifted(dim_);
    for (size_t a = 0; a < dim_; ++a) shifted[a] = key[a] >> shift;
    Absorb(&cells_, std::move(shifted), state);
  }
  num_points_ += other.num_points_;
  ReduceToCapacity();
  return Status::OK();
}

std::vector<StreamingCoreset::Cell> StreamingCoreset::ExtractCells() const {
  std::vector<Cell> cells;
  cells.reserve(cells_.size());
  for (const auto& [key, state] : cells_) {
    Cell cell;
    cell.min_index = state.min_index;
    cell.count = state.count;
    cell.max_spread = state.max_spread;
    cell.representative = state.representative;
    cells.push_back(std::move(cell));
  }
  // min_index is unique (one owner point per cell), so this order — and
  // therefore everything solved on the extracted coreset — is
  // independent of the hash table's iteration order.
  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.min_index < b.min_index; });
  return cells;
}

void StreamingCoreset::SerializeTo(std::string* out) const {
  AppendValue(out, kSerializeVersion);
  AppendValue(out, static_cast<uint64_t>(dim_));
  AppendValue(out, static_cast<uint8_t>(norm_));
  AppendValue(out, static_cast<uint64_t>(options_.max_cells));
  AppendValue(out, options_.base_cell_width);
  AppendValue(out, static_cast<int32_t>(level_));
  AppendValue(out, num_points_);
  AppendValue(out, static_cast<uint64_t>(cells_.size()));
  // min_index order, same as ExtractCells: the bytes are a pure
  // function of the cell set, never of the table's iteration order.
  std::vector<const CellMap::value_type*> ordered;
  ordered.reserve(cells_.size());
  for (const auto& entry : cells_) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const CellMap::value_type* a, const CellMap::value_type* b) {
              return a->second.min_index < b->second.min_index;
            });
  for (const CellMap::value_type* entry : ordered) {
    AppendRaw(out, entry->first.data(), dim_ * sizeof(int64_t));
    AppendValue(out, entry->second.min_index);
    AppendValue(out, entry->second.count);
    AppendValue(out, entry->second.max_spread);
    AppendRaw(out, entry->second.representative.data(), dim_ * sizeof(double));
  }
}

Result<StreamingCoreset> StreamingCoreset::Deserialize(std::string_view bytes) {
  ByteCursor cursor{bytes.data(), bytes.data() + bytes.size()};
  const auto truncated = [] {
    return Status::InvalidArgument(
        "StreamingCoreset::Deserialize: truncated image");
  };
  uint32_t version = 0;
  if (!cursor.ReadValue(&version)) return truncated();
  if (version != kSerializeVersion) {
    return Status::InvalidArgument(
        StrFormat("StreamingCoreset::Deserialize: unknown version %u",
                  static_cast<unsigned>(version)));
  }
  uint64_t dim = 0;
  uint8_t norm_raw = 0;
  uint64_t max_cells = 0;
  double base_cell_width = 0.0;
  int32_t level = 0;
  uint64_t num_points = 0;
  uint64_t num_cells = 0;
  if (!cursor.ReadValue(&dim) || !cursor.ReadValue(&norm_raw) ||
      !cursor.ReadValue(&max_cells) || !cursor.ReadValue(&base_cell_width) ||
      !cursor.ReadValue(&level) || !cursor.ReadValue(&num_points) ||
      !cursor.ReadValue(&num_cells)) {
    return truncated();
  }
  if (dim == 0 || dim > (1u << 20) || max_cells == 0 ||
      !(base_cell_width > 0.0) || !std::isfinite(base_cell_width) ||
      level < 0 || level > kMaxLevel || num_cells > num_points) {
    return Status::InvalidArgument(
        "StreamingCoreset::Deserialize: out-of-range header field");
  }
  if (norm_raw > static_cast<uint8_t>(metric::Norm::kLInf)) {
    return Status::InvalidArgument(
        "StreamingCoreset::Deserialize: unknown norm");
  }
  CoresetOptions options;
  options.max_cells = static_cast<size_t>(max_cells);
  options.base_cell_width = base_cell_width;
  StreamingCoreset coreset(static_cast<size_t>(dim),
                           static_cast<metric::Norm>(norm_raw), options);
  coreset.level_ = static_cast<int>(level);
  coreset.num_points_ = num_points;
  coreset.cells_.reserve(num_cells);
  uint64_t total_count = 0;
  for (uint64_t c = 0; c < num_cells; ++c) {
    Key key(dim);
    CellState state;
    state.representative.resize(dim);
    if (!cursor.Read(key.data(), dim * sizeof(int64_t)) ||
        !cursor.ReadValue(&state.min_index) || !cursor.ReadValue(&state.count) ||
        !cursor.ReadValue(&state.max_spread) ||
        !cursor.Read(state.representative.data(), dim * sizeof(double))) {
      return truncated();
    }
    if (state.count == 0) {
      return Status::InvalidArgument(
          "StreamingCoreset::Deserialize: empty cell");
    }
    total_count += state.count;
    auto [it, inserted] =
        coreset.cells_.try_emplace(std::move(key), std::move(state));
    if (!inserted) {
      return Status::InvalidArgument(
          "StreamingCoreset::Deserialize: duplicate cell key");
    }
  }
  if (total_count != num_points) {
    return Status::InvalidArgument(StrFormat(
        "StreamingCoreset::Deserialize: cell counts sum to %llu, header "
        "declares %llu points",
        static_cast<unsigned long long>(total_count),
        static_cast<unsigned long long>(num_points)));
  }
  if (cursor.p != cursor.end) {
    return Status::InvalidArgument(
        "StreamingCoreset::Deserialize: trailing bytes");
  }
  return coreset;
}

}  // namespace stream
}  // namespace ukc
