// StreamingUncertainKCenter: the out-of-core facade.
//
//   1. Ingest  — stream the input (file / dataset / producer) through
//      the sharded coreset build (stream/ingest.h): O(max_cells)
//      resident state, one pass.
//   2. Solve   — materialize the tiny coreset instance (one certain
//      point per cell representative; cell weights do not enter the
//      max objective, so the instance is unweighted) and run the
//      existing core/uncertain_kcenter pipeline on it, sharing this
//      run's worker pool through the options hook.
//   3. Verify  — one more parallel pass over the full stream: every
//      point is ED-assigned to its nearest-in-expectation center and
//      its exact distance CDF is folded into a fixed-point log-product
//      grid, yielding a rigorous bracket [verified_lower,
//      verified_upper] of the TRUE exact expected assigned cost
//      E[max_i d(P̂_i, A(i))] in O(verify_buckets) memory.
//
// Determinism: the coreset is bitwise partition-invariant
// (stream/coreset.h), the solve consumes only the extracted cells (a
// deterministic order), and the verification grid is accumulated with
// exact commutative integer arithmetic — so centers, coreset cost, and
// the verified bracket are bitwise identical for every (threads,
// shards, chunk size) configuration.
//
// Why a bracket instead of the exact sweep: the exact evaluator
// (cost/expected_cost.h) sorts one event per location — O(n z) memory,
// exactly what an out-of-core pipeline cannot hold. The grid exploits
// log Π_i F_i(t) = Σ_i log F_i(t): each point's step-function log-CDF
// is range-added into the grid in fixed point (floor and ceil
// quantizations kept separately), so the product under- and
// over-estimates bracket the integrand rigorously and the integral
// error is O(grid_top / verify_buckets) plus the 2^-24 quantization.
// SolveDataset additionally reports the exact evaluator cost
// (verified_exact), which the bracket provably contains.

#ifndef UKC_STREAM_PIPELINE_H_
#define UKC_STREAM_PIPELINE_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/uncertain_kcenter.h"
#include "solver/certain_solver.h"
#include "stream/ingest.h"

namespace ukc {
namespace stream {

/// Configuration of the streaming facade.
struct StreamingOptions {
  /// Number of centers.
  size_t k = 1;
  /// Chunking / sharding / coreset knobs.
  IngestOptions ingest;
  /// Deterministic solver run on the coreset representatives.
  solver::CertainSolverOptions certain;
  /// Worker count (<= 0 = hardware threads) for ingest, solve and
  /// verify; ignored when `pool` is set.
  int threads = 1;
  /// Borrowed shared worker pool (see common/thread_pool.h ScopedPool).
  ThreadPool* pool = nullptr;
  /// Grid resolution of the verification bracket; the bracket width is
  /// about grid_top / verify_buckets.
  size_t verify_buckets = 4096;
  /// Skip the second pass entirely (verified_* stay NaN). For
  /// one-shot producer streams that cannot be re-read.
  bool verify = true;
};

/// Output of one streaming run.
struct StreamingSolution {
  /// Effective k (= min(requested k, coreset cells)).
  size_t k = 0;
  size_t dim = 0;
  /// The chosen centers, row-major k × dim coordinates. (Site ids are
  /// meaningless across passes — the full data is never materialized —
  /// so centers are reported as coordinates.)
  std::vector<double> center_coords;

  /// Coreset summary.
  size_t coreset_cells = 0;
  int coreset_level = 0;
  double coreset_diameter = 0.0;
  double coreset_max_spread = 0.0;
  /// diameter + max spread: the additive evaluation error of the
  /// coreset (stream/coreset.h contract).
  double coreset_error_bound = 0.0;
  /// Resident bytes of the coreset cell table (independent of n).
  size_t coreset_memory_bytes = 0;
  /// Expected cost reported by the pipeline run on the coreset
  /// instance, and its certain-clustering radius.
  double coreset_cost = 0.0;
  double coreset_radius = 0.0;

  /// Rigorous bracket of the exact expected assigned cost of
  /// center_coords on the full stream (NaN when verify = false).
  double verified_lower = std::nan("");
  double verified_upper = std::nan("");
  /// max_i E[d(P̂_i, A(i))] — the exact max-of-expectations lower
  /// bound, a free by-product of the verification pass.
  double max_expected_distance = std::nan("");
  /// Exact evaluator cost; only SolveDataset fills this (it needs the
  /// materialized dataset). Always inside [verified_lower,
  /// verified_upper].
  double verified_exact = std::nan("");

  IngestStats ingest_stats;

  struct Timings {
    double ingest_seconds = 0.0;
    double solve_seconds = 0.0;
    double verify_seconds = 0.0;
    double TotalSeconds() const {
      return ingest_seconds + solve_seconds + verify_seconds;
    }
  } timings;
};

/// The facade. Thread-compatible: one Solve* call at a time.
class StreamingUncertainKCenter {
 public:
  explicit StreamingUncertainKCenter(StreamingOptions options)
      : options_(std::move(options)) {}

  /// Solves a re-startable stream of known dimension. The factory is
  /// invoked once for the ingest pass and once more for the
  /// verification pass. With options.ingest.checkpoint set, the ingest
  /// pass checkpoints and resumes through the replay-verify path (see
  /// stream/ingest.h AdaptBatchFactory).
  Result<StreamingSolution> SolveSource(size_t dim,
                                        const BatchSourceFactory& factory);

  /// Solves a dataset file (uncertain/io.h format) through the chunked
  /// reader; the file is read twice and never materialized. With
  /// options.ingest.checkpoint set, a resumed ingest seeks straight to
  /// the checkpointed byte offset.
  Result<StreamingSolution> SolveFile(const std::string& path);

  /// Solves an in-memory dataset through the same chunked path, then
  /// additionally reports the exact evaluator cost (verified_exact).
  /// The dataset's space grows: the chosen centers are minted into it
  /// for the exact evaluation.
  Result<StreamingSolution> SolveDataset(uncertain::UncertainDataset* dataset);

 private:
  Result<StreamingSolution> Solve(size_t dim,
                                  const ResumableSourceFactory& factory,
                                  ThreadPool* pool);

  StreamingOptions options_;
};

}  // namespace stream
}  // namespace ukc

#endif  // UKC_STREAM_PIPELINE_H_
