#include "stream/pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "cost/expected_cost_evaluator.h"
#include "obs/trace.h"
#include "uncertain/io.h"

namespace ukc {
namespace stream {

namespace {

// Fixed-point scale of the log-CDF grid: 24 fractional bits keep the
// per-point quantization at 2^-24 nats while bounding the grid sums by
// ~64 · 2^24 · n — overflow-free for any realistic stream (n < ~8e9).
constexpr double kLogScale = 16777216.0;  // 2^24
constexpr double kInvLogScale = 1.0 / kLogScale;
// log F below this is folded into the zero counter (floor grid) or
// clamped (ceil grid): e^-64 is far below the double-sum resolution of
// the integrand.
constexpr double kLogClamp = -64.0;

// Per-worker accumulator of the verification pass. Every field merges
// commutatively and exactly (integer adds, double max), so the reduced
// grid does not depend on which worker saw which point.
struct VerifyGrid {
  std::vector<int64_t> s_floor;  // Range-add diff of floor-quantized logs.
  std::vector<int64_t> s_ceil;   // Same, ceil-quantized.
  std::vector<int64_t> z_floor;  // Diff of "product is zero" counters.
  std::vector<int64_t> z_ceil;
  double max_expected = 0.0;
  double max_location = 0.0;
  uint64_t points = 0;

  explicit VerifyGrid(size_t buckets)
      : s_floor(buckets + 2, 0),
        s_ceil(buckets + 2, 0),
        z_floor(buckets + 2, 0),
        z_ceil(buckets + 2, 0) {}

  void MergeFrom(const VerifyGrid& other) {
    for (size_t b = 0; b < s_floor.size(); ++b) {
      s_floor[b] += other.s_floor[b];
      s_ceil[b] += other.s_ceil[b];
      z_floor[b] += other.z_floor[b];
      z_ceil[b] += other.z_ceil[b];
    }
    max_expected = std::max(max_expected, other.max_expected);
    max_location = std::max(max_location, other.max_location);
    points += other.points;
  }
};

struct VerifyOutcome {
  double lower = 0.0;
  double upper = 0.0;
  double max_expected = 0.0;
  uint64_t points = 0;
};

// Folds one point of `batch` into `grid`: ED-assigns it to the nearest
// center in expectation, then range-adds its distance-CDF log onto the
// grid. `scratch` holds (distance, location) sort pairs.
void AccumulatePoint(const uncertain::UncertainPointBatch& batch, size_t i,
                     const std::vector<double>& center_coords, size_t k,
                     double grid_top, size_t buckets, VerifyGrid* grid,
                     std::vector<std::pair<double, size_t>>* scratch) {
  const size_t dim = batch.dim;
  const metric::Norm norm = batch.norm;
  const size_t begin = batch.offsets[i];
  const size_t end = batch.offsets[i + 1];

  // ED rule, bit-matching cost::AssignExpectedDistance: per-center
  // expected distance accumulated in location order, strict < argmin.
  size_t best = 0;
  double best_value = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < k; ++c) {
    const double* center = center_coords.data() + c * dim;
    double value = 0.0;
    for (size_t l = begin; l < end; ++l) {
      value += batch.probabilities[l] *
               metric::NormDistanceKernel(norm, batch.location_coords(l),
                                          center, dim);
    }
    if (value < best_value) {
      best_value = value;
      best = c;
    }
  }
  grid->max_expected = std::max(grid->max_expected, best_value);
  grid->points += 1;

  // Distances to the assigned center, sorted ascending ((d, l) pairs:
  // a strict total order, so ties cannot reorder across runs).
  const double* assigned = center_coords.data() + best * dim;
  scratch->clear();
  for (size_t l = begin; l < end; ++l) {
    const double d = metric::NormDistanceKernel(
        norm, batch.location_coords(l), assigned, dim);
    grid->max_location = std::max(grid->max_location, d);
    scratch->emplace_back(d, l);
  }
  std::sort(scratch->begin(), scratch->end());

  if (grid_top <= 0.0) return;  // Degenerate stream: every distance 0.
  const double dt = grid_top / static_cast<double>(buckets);

  // The point's CDF F(t) is a step function with one step per
  // location; on grid indices [seg_begin, seg_end) its value is the
  // cumulative probability so far. log F is range-added in fixed
  // point; F = 0 and log F < kLogClamp regions go to the zero
  // counters (floor grid) / the clamp (ceil grid), keeping
  //   G_floor <= Π F_i <= G_ceil
  // pointwise.
  auto bucket_of = [&](double d) -> size_t {
    if (d <= 0.0) return 0;
    const double b = std::ceil(d / dt);
    if (b >= static_cast<double>(buckets)) return buckets;
    return static_cast<size_t>(b);
  };
  // F = 0 before the first location's distance.
  const size_t first = bucket_of((*scratch)[0].first);
  if (first > 0) {
    grid->z_floor[0] += 1;
    grid->z_floor[first] -= 1;
    grid->z_ceil[0] += 1;
    grid->z_ceil[first] -= 1;
  }
  double cumulative = 0.0;
  const size_t z = scratch->size();
  for (size_t m = 0; m < z; ++m) {
    cumulative += batch.probabilities[(*scratch)[m].second];
    if (m + 1 == z) break;  // Final segment: F = 1 exactly, log = 0.
    const size_t seg_begin = bucket_of((*scratch)[m].first);
    const size_t seg_end = bucket_of((*scratch)[m + 1].first);
    if (seg_begin >= seg_end) continue;
    const double lf = std::min(std::log(cumulative), 0.0);
    if (lf < kLogClamp) {
      grid->z_floor[seg_begin] += 1;
      grid->z_floor[seg_end] -= 1;
      const int64_t qc = static_cast<int64_t>(kLogClamp * kLogScale);
      grid->s_ceil[seg_begin] += qc;
      grid->s_ceil[seg_end] -= qc;
    } else {
      const int64_t qf = static_cast<int64_t>(std::floor(lf * kLogScale));
      const int64_t qc = static_cast<int64_t>(std::ceil(lf * kLogScale));
      grid->s_floor[seg_begin] += qf;
      grid->s_floor[seg_end] -= qf;
      grid->s_ceil[seg_begin] += qc;
      grid->s_ceil[seg_end] -= qc;
    }
  }
}

// Integrates the reduced grid into the [lower, upper] bracket:
//   upper uses the left bucket endpoint of the underestimated product,
//   lower the right endpoint of the overestimated product — both sides
//   of Ecost = ∫ (1 − Π_i F_i(t)) dt for the monotone integrand.
VerifyOutcome IntegrateGrid(const VerifyGrid& grid, double grid_top,
                            size_t buckets) {
  VerifyOutcome outcome;
  outcome.max_expected = grid.max_expected;
  outcome.points = grid.points;
  if (grid_top <= 0.0) return outcome;
  const double dt = grid_top / static_cast<double>(buckets);
  int64_t sf = 0, sc = 0, zf = 0, zc = 0;
  double lower = 0.0, upper = 0.0;
  for (size_t b = 0; b <= buckets; ++b) {
    sf += grid.s_floor[b];
    sc += grid.s_ceil[b];
    zf += grid.z_floor[b];
    zc += grid.z_ceil[b];
    const double g_floor =
        zf > 0 ? 0.0 : std::exp(static_cast<double>(sf) * kInvLogScale);
    const double g_ceil =
        zc > 0 ? 0.0 : std::exp(static_cast<double>(sc) * kInvLogScale);
    if (b < buckets) upper += dt * (1.0 - g_floor);
    if (b > 0) lower += dt * (1.0 - g_ceil);
  }
  outcome.lower = lower;
  outcome.upper = upper;
  return outcome;
}

// The verification pass: drains a fresh source, sharding each batch's
// points over the pool into per-worker grids, then reduces and
// integrates.
Result<VerifyOutcome> VerifyPass(size_t dim, metric::Norm norm,
                                 const BatchSource& source,
                                 const std::vector<double>& center_coords,
                                 size_t k, double grid_top, size_t buckets,
                                 ThreadPool* pool) {
  UKC_OBS_SPAN("stream.verify");
  std::vector<VerifyGrid> grids(pool->num_threads(), VerifyGrid(buckets));
  std::vector<std::vector<std::pair<double, size_t>>> scratch(
      pool->num_threads());
  uncertain::UncertainPointBatch batch;
  while (true) {
    UKC_ASSIGN_OR_RETURN(bool more, source(&batch));
    if (!more) break;
    UKC_RETURN_IF_ERROR(ValidateBatch(batch, dim));
    if (batch.norm != norm) {
      return Status::InvalidArgument(
          "VerifyPass: batch norm differs from the ingested stream's");
    }
    pool->ParallelFor(batch.n(), [&](int worker, size_t i) {
      AccumulatePoint(batch, i, center_coords, k, grid_top, buckets,
                      &grids[worker], &scratch[worker]);
    });
  }
  for (size_t w = 1; w < grids.size(); ++w) grids[0].MergeFrom(grids[w]);
  if (grids[0].max_location > grid_top) {
    return Status::Internal(
        StrFormat("VerifyPass: location distance %.17g exceeds the certified "
                  "grid top %.17g — coreset bound violated",
                  grids[0].max_location, grid_top));
  }
  return IntegrateGrid(grids[0], grid_top, buckets);
}

}  // namespace

Result<StreamingSolution> StreamingUncertainKCenter::SolveSource(
    size_t dim, const BatchSourceFactory& factory) {
  ScopedPool pool(options_.pool, options_.threads);
  return Solve(dim, AdaptBatchFactory(factory), pool.get());
}

Result<StreamingSolution> StreamingUncertainKCenter::SolveFile(
    const std::string& path) {
  // Open once up front for the header (dimension + early validation);
  // the probe reader then seeds pass 1 of the pipeline, so the header
  // is parsed once for probe + ingest combined and only the
  // verification pass reopens the file.
  UKC_ASSIGN_OR_RETURN(uncertain::DatasetReader reader,
                       uncertain::DatasetReader::Open(path));
  const size_t dim = reader.dim();
  ScopedPool pool(options_.pool, options_.threads);
  return Solve(dim,
               ResumableSeededFileFactory(std::move(reader), path,
                                          options_.ingest.chunk_size),
               pool.get());
}

Result<StreamingSolution> StreamingUncertainKCenter::SolveDataset(
    uncertain::UncertainDataset* dataset) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("SolveDataset: null dataset");
  }
  metric::EuclideanSpace* space = dataset->euclidean();
  if (space == nullptr) {
    return Status::FailedPrecondition(
        "SolveDataset: streaming requires a Euclidean dataset");
  }
  ScopedPool pool(options_.pool, options_.threads);
  UKC_ASSIGN_OR_RETURN(
      StreamingSolution solution,
      Solve(space->dim(),
            ResumableDatasetFactory(dataset, options_.ingest.chunk_size),
            pool.get()));

  // The materialized dataset allows the exact evaluator cost on top of
  // the streaming bracket: mint the centers into the space, ED-assign,
  // evaluate.
  std::vector<metric::SiteId> center_ids;
  center_ids.reserve(solution.k);
  for (size_t c = 0; c < solution.k; ++c) {
    center_ids.push_back(
        space->AddCoords(solution.center_coords.data() + c * solution.dim));
  }
  UKC_ASSIGN_OR_RETURN(cost::Assignment assignment,
                       cost::AssignExpectedDistance(*dataset, center_ids,
                                                    options_.threads,
                                                    pool.get()));
  // The one exact sweep of the solve runs at the full dataset size —
  // exactly what the segmented engine is for; it shares the
  // pipeline's pool.
  cost::ExpectedCostEvaluator::Options evaluator_options;
  evaluator_options.sweep_pool = pool.get();
  cost::ExpectedCostEvaluator evaluator(evaluator_options);
  UKC_ASSIGN_OR_RETURN(solution.verified_exact,
                       evaluator.AssignedCost(*dataset, assignment));
  return solution;
}

Result<StreamingSolution> StreamingUncertainKCenter::Solve(
    size_t dim, const ResumableSourceFactory& factory, ThreadPool* pool) {
  if (dim == 0) {
    return Status::InvalidArgument(
        "StreamingUncertainKCenter: dim must be >= 1");
  }
  if (options_.k == 0) {
    return Status::InvalidArgument("StreamingUncertainKCenter: k must be >= 1");
  }
  if (options_.verify && options_.verify_buckets == 0) {
    return Status::InvalidArgument(
        "StreamingUncertainKCenter: verify_buckets must be >= 1");
  }
  UKC_OBS_SPAN("stream.solve");
  StreamingSolution solution;
  solution.dim = dim;
  Stopwatch stopwatch;

  // Pass 1: sharded coreset build (checkpoint-aware — restore, resume
  // and cadenced saves all live inside IngestCoreset).
  UKC_ASSIGN_OR_RETURN(
      StreamingCoreset coreset,
      IngestCoreset(dim, factory, options_.ingest, pool,
                    &solution.ingest_stats));
  const std::vector<StreamingCoreset::Cell> cells = coreset.ExtractCells();
  solution.coreset_cells = cells.size();
  solution.coreset_level = coreset.level();
  solution.coreset_diameter = coreset.diameter();
  solution.coreset_max_spread = coreset.max_spread();
  solution.coreset_error_bound = coreset.error_bound();
  solution.coreset_memory_bytes = coreset.ApproxMemoryBytes();
  solution.timings.ingest_seconds = stopwatch.ElapsedSeconds();

  // Solve on the coreset instance through the existing pipeline. Cell
  // representatives are certain points; their weights do not enter the
  // max objective, so the instance is the unweighted representative
  // set. The run shares this pipeline's worker pool via the options
  // hook.
  stopwatch.Reset();
  solution.k = std::min(options_.k, cells.size());
  auto coreset_space =
      std::make_shared<metric::EuclideanSpace>(dim, coreset.norm());
  std::vector<uncertain::UncertainPoint> coreset_points;
  coreset_points.reserve(cells.size());
  for (const StreamingCoreset::Cell& cell : cells) {
    const metric::SiteId site =
        coreset_space->AddCoords(cell.representative.data());
    coreset_points.push_back(uncertain::UncertainPoint::Certain(site));
  }
  UKC_ASSIGN_OR_RETURN(
      uncertain::UncertainDataset coreset_dataset,
      uncertain::UncertainDataset::Build(coreset_space,
                                         std::move(coreset_points)));
  core::UncertainKCenterOptions solve_options;
  solve_options.k = solution.k;
  solve_options.rule = cost::AssignmentRule::kExpectedDistance;
  solve_options.certain = options_.certain;
  solve_options.pool = pool;
  UKC_ASSIGN_OR_RETURN(
      core::UncertainKCenterSolution coreset_solution,
      core::SolveUncertainKCenter(&coreset_dataset, solve_options));
  solution.coreset_cost = coreset_solution.expected_cost;
  solution.coreset_radius = coreset_solution.certain_radius;
  solution.center_coords.resize(solution.k * dim);
  for (size_t c = 0; c < solution.k; ++c) {
    const double* coords = coreset_space->coords(coreset_solution.centers[c]);
    std::copy(coords, coords + dim, solution.center_coords.data() + c * dim);
  }
  solution.timings.solve_seconds = stopwatch.ElapsedSeconds();

  if (!options_.verify) return solution;

  // Pass 2: verification. The grid top is certified from the coreset
  // alone: every location of every point sits within
  //   d(rep, nearest center) + diameter + 2 · spread
  // of its ED-assigned center (stream/coreset.h contract plus norm
  // convexity), so the integrand vanishes above it.
  stopwatch.Reset();
  double rep_radius = 0.0;
  for (const StreamingCoreset::Cell& cell : cells) {
    double nearest = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < solution.k; ++c) {
      nearest = std::min(
          nearest, metric::NormDistanceKernel(
                       coreset.norm(), cell.representative.data(),
                       solution.center_coords.data() + c * dim, dim));
    }
    rep_radius = std::max(rep_radius, nearest);
  }
  const double grid_top =
      (rep_radius + coreset.diameter() + 2.0 * coreset.max_spread()) *
      (1.0 + 1e-9);
  bool verify_positioned = false;
  UKC_ASSIGN_OR_RETURN(ResumableSource verify_source,
                       factory(nullptr, &verify_positioned));
  UKC_ASSIGN_OR_RETURN(
      VerifyOutcome outcome,
      VerifyPass(dim, coreset.norm(), verify_source.next,
                 solution.center_coords, solution.k, grid_top,
                 options_.verify_buckets, pool));
  if (outcome.points != solution.ingest_stats.points) {
    return Status::Internal(StrFormat(
        "StreamingUncertainKCenter: verification saw %llu points, ingest saw "
        "%llu — the source factory must replay the same stream",
        static_cast<unsigned long long>(outcome.points),
        static_cast<unsigned long long>(solution.ingest_stats.points)));
  }
  solution.verified_lower = outcome.lower;
  solution.verified_upper = outcome.upper;
  solution.max_expected_distance = outcome.max_expected;
  solution.timings.verify_seconds = stopwatch.ElapsedSeconds();
  return solution;
}

}  // namespace stream
}  // namespace ukc
