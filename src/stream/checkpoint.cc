#include "stream/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/strings.h"

namespace ukc {
namespace stream {

namespace {

// 8-byte magic + layout version. The checksum is HashBytes over every
// byte that precedes it, seeded with kHashSeed.
//
// v2 added the sliding-window state (window_points, expired_points) —
// and the embedded coreset image moved to its own v2 layout with
// churn fields. A v1 sidecar is REJECTED ("unknown version"), never
// partially interpreted: the ingest and serve layers degrade every
// load error to a full re-ingest, which is always correct.
constexpr char kMagic[8] = {'u', 'k', 'c', 'c', 'k', 'p', 't', '\0'};
constexpr uint32_t kVersion = 2;

void AppendRaw(std::string* out, const void* data, size_t bytes) {
  out->append(static_cast<const char*>(data), bytes);
}

template <typename T>
void AppendValue(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

struct ByteCursor {
  const char* p;
  const char* end;

  bool Read(void* out, size_t bytes) {
    if (static_cast<size_t>(end - p) < bytes) return false;
    std::memcpy(out, p, bytes);
    p += bytes;
    return true;
  }

  template <typename T>
  bool ReadValue(T* out) {
    return Read(out, sizeof(T));
  }
};

std::string Serialize(const IngestCheckpoint& checkpoint) {
  std::string buffer;
  buffer.reserve(sizeof(kMagic) + 64 + checkpoint.coreset_image.size());
  AppendRaw(&buffer, kMagic, sizeof(kMagic));
  AppendValue(&buffer, kVersion);
  AppendValue(&buffer, checkpoint.config_fingerprint);
  AppendValue(&buffer, checkpoint.content_fingerprint);
  AppendValue(&buffer, checkpoint.batches);
  AppendValue(&buffer, checkpoint.points);
  AppendValue(&buffer, checkpoint.locations);
  AppendValue(&buffer, checkpoint.window_points);
  AppendValue(&buffer, checkpoint.expired_points);
  AppendValue(&buffer, static_cast<uint8_t>(checkpoint.has_byte_offset));
  AppendValue(&buffer, checkpoint.byte_offset);
  AppendValue(&buffer, checkpoint.cursor_window_hash);
  AppendValue(&buffer, static_cast<uint64_t>(checkpoint.coreset_image.size()));
  buffer.append(checkpoint.coreset_image);
  const uint64_t checksum =
      HashBytes(kHashSeed, buffer.data(), buffer.size());
  AppendValue(&buffer, checksum);
  return buffer;
}

Status WriteAll(int fd, const char* data, size_t bytes,
                const std::string& path) {
  size_t written = 0;
  while (written < bytes) {
    const ssize_t n = ::write(fd, data + written, bytes - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrFormat("checkpoint: write to %s failed: %s",
                                        path.c_str(), std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

// fsync the directory containing `path`, so the rename itself is
// durable. Best-effort on filesystems that reject directory fds.
void SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status SaveCheckpoint(const std::string& path,
                      const IngestCheckpoint& checkpoint, bool sync) {
  if (path.empty()) {
    return Status::InvalidArgument("SaveCheckpoint: empty path");
  }
  const std::string buffer = Serialize(checkpoint);
  const std::string tmp = path + ".tmp";

  UKC_INJECT_FAULT("checkpoint.open");
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("checkpoint: cannot open %s: %s",
                                      tmp.c_str(), std::strerror(errno)));
  }
  // Any failure from here on leaves only the temp file behind — the
  // previous checkpoint at `path` is untouched until the rename.
  Status status = [&]() -> Status {
    UKC_INJECT_FAULT("checkpoint.write");
    UKC_RETURN_IF_ERROR(WriteAll(fd, buffer.data(), buffer.size(), tmp));
    if (sync && ::fsync(fd) != 0) {
      return Status::Internal(StrFormat("checkpoint: fsync %s failed: %s",
                                        tmp.c_str(), std::strerror(errno)));
    }
    return Status::OK();
  }();
  ::close(fd);
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }

  UKC_INJECT_FAULT("checkpoint.rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status error =
        Status::Internal(StrFormat("checkpoint: rename %s -> %s failed: %s",
                                   tmp.c_str(), path.c_str(),
                                   std::strerror(errno)));
    ::unlink(tmp.c_str());
    return error;
  }
  if (sync) SyncParentDirectory(path);
  return Status::OK();
}

Result<IngestCheckpoint> LoadCheckpoint(const std::string& path) {
  UKC_INJECT_FAULT("checkpoint.read");
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::NotFound("LoadCheckpoint: cannot open " + path);
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  if (file.bad()) {
    return Status::Internal("LoadCheckpoint: read failure on " + path);
  }
  const std::string buffer = contents.str();
  const auto corrupt = [&](const char* what) {
    return Status::InvalidArgument(
        StrFormat("LoadCheckpoint: %s (%s)", what, path.c_str()));
  };
  if (buffer.size() < sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t)) {
    return corrupt("file too short");
  }
  // Checksum first: it covers everything, so one comparison rejects
  // any torn or bit-flipped content before fields are interpreted.
  const size_t payload = buffer.size() - sizeof(uint64_t);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, buffer.data() + payload, sizeof(uint64_t));
  if (HashBytes(kHashSeed, buffer.data(), payload) != stored_checksum) {
    return corrupt("checksum mismatch");
  }
  ByteCursor cursor{buffer.data(), buffer.data() + payload};
  char magic[sizeof(kMagic)];
  uint32_t version = 0;
  if (!cursor.Read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return corrupt("bad magic");
  }
  if (!cursor.ReadValue(&version) || version != kVersion) {
    return corrupt("unknown version");
  }
  IngestCheckpoint checkpoint;
  uint8_t has_offset = 0;
  uint64_t image_size = 0;
  if (!cursor.ReadValue(&checkpoint.config_fingerprint) ||
      !cursor.ReadValue(&checkpoint.content_fingerprint) ||
      !cursor.ReadValue(&checkpoint.batches) ||
      !cursor.ReadValue(&checkpoint.points) ||
      !cursor.ReadValue(&checkpoint.locations) ||
      !cursor.ReadValue(&checkpoint.window_points) ||
      !cursor.ReadValue(&checkpoint.expired_points) ||
      !cursor.ReadValue(&has_offset) ||
      !cursor.ReadValue(&checkpoint.byte_offset) ||
      !cursor.ReadValue(&checkpoint.cursor_window_hash) ||
      !cursor.ReadValue(&image_size)) {
    return corrupt("truncated header");
  }
  checkpoint.has_byte_offset = has_offset != 0;
  if (image_size != static_cast<uint64_t>(cursor.end - cursor.p)) {
    return corrupt("image size mismatch");
  }
  checkpoint.coreset_image.assign(cursor.p, cursor.end - cursor.p);
  return checkpoint;
}

}  // namespace stream
}  // namespace ukc
