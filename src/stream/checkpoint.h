// Crash-consistent checkpointing of the streaming ingestion state.
//
// A checkpoint is a small sidecar file capturing everything needed to
// resume a coreset build mid-stream: the merged coreset image
// (stream/coreset.h SerializeTo), the ingestion cursor (batches and
// points consumed, and — for seekable file streams — the byte offset
// of the next record), and two fingerprints that gate the restore:
//
//   - config_fingerprint: hash of the ingestion configuration (dim,
//     chunk size, effective shard count, coreset knobs). A checkpoint
//     written under one configuration must never resume another — the
//     group boundaries would differ and the bitwise-determinism
//     contract of stream/ingest.h would silently break.
//   - content_fingerprint: running hash of every batch consumed so
//     far. A replay-based resume re-hashes the prefix and compares; a
//     seek-based resume instead re-hashes the file window preceding
//     the cursor (cursor_window_hash) and validates the offset
//     structurally (uncertain/io.h SeekTo peeks a record boundary).
//
// Write protocol (SaveCheckpoint): serialize + trailing checksum into
// a buffer, write to `path + ".tmp"`, fsync, rename over `path`, fsync
// the directory. A crash at any point leaves either the old complete
// checkpoint or the new complete checkpoint — a torn temp file is
// never renamed into place. LoadCheckpoint verifies magic, version and
// checksum and returns an error on any mismatch; the ingest layer
// treats every load error as "no usable checkpoint" and falls back to
// a full re-ingest (recovery is best-effort, correctness never rests
// on the sidecar).
//
// The byte layout is host-endian and carries a version tag: a
// checkpoint is a crash-recovery artifact of one machine and one build,
// not a portable interchange format. See docs/operations.md.

#ifndef UKC_STREAM_CHECKPOINT_H_
#define UKC_STREAM_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace ukc {
namespace stream {

/// Checkpointing knobs of an ingestion run (IngestOptions::checkpoint).
struct CheckpointOptions {
  /// Sidecar file path; empty disables checkpointing entirely (the
  /// default — no fingerprinting work is done either).
  std::string path;
  /// Save after at least this many batches since the last save.
  /// Checkpoints are only taken at group boundaries (multiples of the
  /// effective shard count), so the actual cadence is this value
  /// rounded up to whole groups.
  uint64_t every_n_batches = 64;
  /// fsync the temp file and its directory on save. Leave on for crash
  /// consistency; tests that only exercise the logic may turn it off.
  bool sync = true;
};

/// The persisted state. Plain data; the ingest layer fills and
/// interprets it, this header only moves it to and from disk.
struct IngestCheckpoint {
  /// Hash of the ingestion configuration (see file comment).
  uint64_t config_fingerprint = 0;
  /// Running hash of the consumed batch prefix.
  uint64_t content_fingerprint = 0;
  /// Batches, points and locations consumed when the checkpoint was
  /// taken (the full IngestStats cursor, so a resumed run reports the
  /// same totals as an uninterrupted one).
  uint64_t batches = 0;
  uint64_t points = 0;
  uint64_t locations = 0;
  /// Sliding-window state (v2): the window size the writer ran with
  /// (0 = unbounded) and the cumulative points retired by expiry. The
  /// expiry WATERMARK itself lives inside the coreset image; these two
  /// fields let a restored replica report the same window config and
  /// telemetry totals as an uninterrupted one.
  uint64_t window_points = 0;
  uint64_t expired_points = 0;
  /// Byte offset of the next unread record of the underlying file,
  /// when the source can report one (uncertain/io.h TellByteOffset),
  /// plus the hash of the file window preceding it (stream/ingest.h
  /// SourceCursor) — re-verified before any seek-based resume.
  bool has_byte_offset = false;
  uint64_t byte_offset = 0;
  uint64_t cursor_window_hash = 0;
  /// StreamingCoreset::SerializeTo image of the merged shard state.
  std::string coreset_image;
};

/// Atomically replaces `path` with a checksummed serialization of
/// `checkpoint` (see file comment for the crash-consistency protocol).
/// Failures leave any previous checkpoint at `path` intact.
Status SaveCheckpoint(const std::string& path,
                      const IngestCheckpoint& checkpoint, bool sync = true);

/// Reads and validates a checkpoint written by SaveCheckpoint. Any
/// corruption — bad magic, unknown version, checksum mismatch,
/// truncation — is an error, never a partial result.
Result<IngestCheckpoint> LoadCheckpoint(const std::string& path);

}  // namespace stream
}  // namespace ukc

#endif  // UKC_STREAM_CHECKPOINT_H_
