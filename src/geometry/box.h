// Axis-aligned bounding boxes, used by dataset generators and the grid
// (1+eps) k-center solver.

#ifndef UKC_GEOMETRY_BOX_H_
#define UKC_GEOMETRY_BOX_H_

#include <vector>

#include "geometry/point.h"

namespace ukc {
namespace geometry {

/// An axis-aligned box [lo, hi] in R^d.
class Box {
 public:
  /// Degenerate box at the origin of R^dim.
  explicit Box(size_t dim) : lo_(dim), hi_(dim) {}

  /// Box with the given corners; requires lo[i] <= hi[i] for all i.
  Box(Point lo, Point hi);

  /// The tightest box containing all points (non-empty input).
  static Box BoundingBox(const std::vector<Point>& points);

  size_t dim() const { return lo_.dim(); }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  /// Side length along axis i.
  double Extent(size_t i) const { return hi_[i] - lo_[i]; }

  /// The largest side length.
  double MaxExtent() const;

  /// The length of the box diagonal.
  double Diagonal() const { return Distance(lo_, hi_); }

  /// The center of the box.
  Point Center() const { return Lerp(lo_, hi_, 0.5); }

  /// Whether p lies inside (inclusive).
  bool Contains(const Point& p) const;

  /// Grows the box to include p.
  void Expand(const Point& p);

  /// Grows the box by `margin` in every direction (margin >= 0).
  void Inflate(double margin);

 private:
  Point lo_;
  Point hi_;
};

}  // namespace geometry
}  // namespace ukc

#endif  // UKC_GEOMETRY_BOX_H_
