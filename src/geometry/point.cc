#include "geometry/point.h"

#include <cmath>

#include "common/strings.h"
#include "geometry/point_view.h"

namespace ukc {
namespace geometry {

Point& Point::operator+=(const Point& other) {
  UKC_DCHECK_EQ(dim(), other.dim());
  for (size_t i = 0; i < coords_.size(); ++i) coords_[i] += other.coords_[i];
  return *this;
}

Point& Point::operator-=(const Point& other) {
  UKC_DCHECK_EQ(dim(), other.dim());
  for (size_t i = 0; i < coords_.size(); ++i) coords_[i] -= other.coords_[i];
  return *this;
}

Point& Point::operator*=(double scale) {
  for (double& c : coords_) c *= scale;
  return *this;
}

double Point::SquaredNorm() const {
  double total = 0.0;
  for (double c : coords_) total += c * c;
  return total;
}

double Point::Norm() const { return std::sqrt(SquaredNorm()); }

double Point::Dot(const Point& other) const {
  UKC_DCHECK_EQ(dim(), other.dim());
  double total = 0.0;
  for (size_t i = 0; i < coords_.size(); ++i) total += coords_[i] * other.coords_[i];
  return total;
}

std::string Point::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < coords_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.6g", coords_[i]);
  }
  out += ")";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << p.ToString();
}

double SquaredDistance(const Point& a, const Point& b) {
  UKC_DCHECK_EQ(a.dim(), b.dim());
  return SquaredDistanceKernel(a.coords().data(), b.coords().data(), a.dim());
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double L1Distance(const Point& a, const Point& b) {
  UKC_DCHECK_EQ(a.dim(), b.dim());
  return L1DistanceKernel(a.coords().data(), b.coords().data(), a.dim());
}

double LInfDistance(const Point& a, const Point& b) {
  UKC_DCHECK_EQ(a.dim(), b.dim());
  return LInfDistanceKernel(a.coords().data(), b.coords().data(), a.dim());
}

double LpDistance(const Point& a, const Point& b, double p) {
  UKC_DCHECK_EQ(a.dim(), b.dim());
  UKC_CHECK_GE(p, 1.0) << "Lp distance needs p >= 1 for the triangle inequality";
  double total = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    total += std::pow(std::abs(a[i] - b[i]), p);
  }
  return std::pow(total, 1.0 / p);
}

Point Lerp(const Point& a, const Point& b, double t) {
  UKC_DCHECK_EQ(a.dim(), b.dim());
  Point out(a.dim());
  for (size_t i = 0; i < a.dim(); ++i) out[i] = (1.0 - t) * a[i] + t * b[i];
  return out;
}

Point Centroid(const std::vector<Point>& points) {
  UKC_CHECK(!points.empty());
  Point sum(points[0].dim());
  for (const Point& p : points) sum += p;
  return sum * (1.0 / static_cast<double>(points.size()));
}

Point WeightedCentroid(const std::vector<Point>& points,
                       const std::vector<double>& weights) {
  UKC_CHECK(!points.empty());
  UKC_CHECK_EQ(points.size(), weights.size());
  Point sum(points[0].dim());
  double total = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    UKC_CHECK_GE(weights[i], 0.0);
    sum += points[i] * weights[i];
    total += weights[i];
  }
  UKC_CHECK_GT(total, 0.0);
  return sum * (1.0 / total);
}

}  // namespace geometry
}  // namespace ukc
