#include "geometry/bounded_kdtree.h"

#include <algorithm>

#include "geometry/kdtree.h"

namespace ukc {
namespace geometry {

Result<BoundedKdTree> BoundedKdTree::BuildFlat(std::vector<double> coords,
                                               size_t dim) {
  if (dim == 0) {
    return Status::InvalidArgument("BoundedKdTree: zero-dimensional points");
  }
  if (coords.empty()) {
    return Status::InvalidArgument("BoundedKdTree: no points");
  }
  if (coords.size() % dim != 0) {
    return Status::InvalidArgument("BoundedKdTree: coords not a multiple of dim");
  }
  const size_t count = coords.size() / dim;

  BoundedKdTree tree;
  tree.dim_ = dim;
  std::vector<uint32_t> order(count);
  for (size_t i = 0; i < count; ++i) order[i] = static_cast<uint32_t>(i);
  internal::ImplicitMedianLayout(&order, coords.data(), dim, 0, count, 0);

  // Gather the input coordinates into tree order.
  tree.coords_.resize(coords.size());
  for (size_t slot = 0; slot < count; ++slot) {
    const double* src = coords.data() + static_cast<size_t>(order[slot]) * dim;
    double* dst = tree.coords_.data() + slot * dim;
    for (size_t a = 0; a < dim; ++a) dst[a] = src[a];
  }
  tree.index_ = std::move(order);

  // Subtree bounding boxes, bottom-up: each node's box is its own point
  // widened by both children's boxes. Children precede their parent in
  // the recursion, so one post-order pass suffices.
  tree.box_lo_.resize(coords.size());
  tree.box_hi_.resize(coords.size());
  struct BoxBuilder {
    BoundedKdTree* tree;
    void Run(size_t begin, size_t end) {
      if (begin >= end) return;
      const size_t dim = tree->dim_;
      const size_t mid = begin + (end - begin) / 2;
      double* lo = tree->box_lo_.data() + mid * dim;
      double* hi = tree->box_hi_.data() + mid * dim;
      const double* own = tree->coords_.data() + mid * dim;
      for (size_t a = 0; a < dim; ++a) lo[a] = hi[a] = own[a];
      const auto widen = [&](size_t child_begin, size_t child_end) {
        if (child_begin >= child_end) return;
        Run(child_begin, child_end);
        const size_t child =
            child_begin + (child_end - child_begin) / 2;
        const double* clo = tree->box_lo_.data() + child * dim;
        const double* chi = tree->box_hi_.data() + child * dim;
        for (size_t a = 0; a < dim; ++a) {
          lo[a] = std::min(lo[a], clo[a]);
          hi[a] = std::max(hi[a], chi[a]);
        }
      };
      widen(begin, mid);
      widen(mid + 1, end);
    }
  };
  BoxBuilder{&tree}.Run(0, count);
  return tree;
}

double BoundedKdTree::FillSubtreeMaxRecursive(
    size_t begin, size_t end, std::span<const double> value_of,
    std::span<double> subtree_max, double mask_below) const {
  const size_t mid = begin + (end - begin) / 2;
  double value = value_of[index_[mid]];
  if (value < mask_below) value = 0.0;
  if (begin < mid) {
    value = std::max(value, FillSubtreeMaxRecursive(begin, mid, value_of,
                                                    subtree_max, mask_below));
  }
  if (mid + 1 < end) {
    value = std::max(value, FillSubtreeMaxRecursive(mid + 1, end, value_of,
                                                    subtree_max, mask_below));
  }
  subtree_max[mid] = value;
  return value;
}

void BoundedKdTree::FillSubtreeMax(std::span<const double> value_of,
                                   std::span<double> subtree_max,
                                   double mask_below) const {
  UKC_CHECK_EQ(value_of.size(), index_.size());
  UKC_CHECK_EQ(subtree_max.size(), index_.size());
  if (index_.empty()) return;
  FillSubtreeMaxRecursive(0, index_.size(), value_of, subtree_max, mask_below);
}

}  // namespace geometry
}  // namespace ukc
