#include "geometry/kdtree.h"

#include <algorithm>
#include <limits>

namespace ukc {
namespace geometry {

namespace internal {

void ImplicitMedianLayout(std::vector<uint32_t>* order, const double* coords,
                          size_t dim, size_t begin, size_t end, size_t depth) {
  if (end - begin <= 1) return;
  const size_t axis = depth % dim;
  const size_t median = begin + (end - begin) / 2;
  std::nth_element(order->begin() + begin, order->begin() + median,
                   order->begin() + end, [&](uint32_t a, uint32_t b) {
                     return coords[a * dim + axis] < coords[b * dim + axis];
                   });
  ImplicitMedianLayout(order, coords, dim, begin, median, depth + 1);
  ImplicitMedianLayout(order, coords, dim, median + 1, end, depth + 1);
}

}  // namespace internal

Result<KdTree> KdTree::Build(const std::vector<Point>& points) {
  if (points.empty()) {
    return Status::InvalidArgument("KdTree: no points");
  }
  const size_t dim = points[0].dim();
  if (dim == 0) {
    return Status::InvalidArgument("KdTree: zero-dimensional points");
  }
  std::vector<double> coords;
  coords.reserve(points.size() * dim);
  for (const Point& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("KdTree: mixed dimensions");
    }
    coords.insert(coords.end(), p.coords().begin(), p.coords().end());
  }
  return BuildFlat(std::move(coords), dim);
}

Result<KdTree> KdTree::BuildFlat(std::vector<double> coords, size_t dim) {
  if (dim == 0) {
    return Status::InvalidArgument("KdTree: zero-dimensional points");
  }
  if (coords.empty()) {
    return Status::InvalidArgument("KdTree: no points");
  }
  if (coords.size() % dim != 0) {
    return Status::InvalidArgument("KdTree: coords not a multiple of dim");
  }
  const size_t count = coords.size() / dim;

  KdTree tree;
  tree.dim_ = dim;
  std::vector<uint32_t> order(count);
  for (size_t i = 0; i < count; ++i) order[i] = static_cast<uint32_t>(i);
  internal::ImplicitMedianLayout(&order, coords.data(), dim, 0, count, 0);

  // Gather the input coordinates into tree order.
  tree.coords_.resize(coords.size());
  for (size_t slot = 0; slot < count; ++slot) {
    const double* src = coords.data() + static_cast<size_t>(order[slot]) * dim;
    double* dst = tree.coords_.data() + slot * dim;
    for (size_t a = 0; a < dim; ++a) dst[a] = src[a];
  }
  tree.index_ = std::move(order);
  return tree;
}

Point KdTree::point(size_t index) const {
  UKC_DCHECK_LT(index, index_.size());
  // index_ is a permutation; find the slot holding `index`. Queries
  // return construction indices, so this reverse lookup is cold (tests
  // and diagnostics only).
  for (size_t slot = 0; slot < index_.size(); ++slot) {
    if (index_[slot] == index) {
      return PointView(coords_.data() + slot * dim_, dim_).ToPoint();
    }
  }
  UKC_CHECK(false) << "KdTree::point: index not found";
  return Point();
}

NearestResult KdTree::Nearest(const double* query) const {
  NearestResult best;
  best.squared_distance = std::numeric_limits<double>::infinity();
  NearestRecursive(0, index_.size(), 0, query, &best);
  return best;
}

void KdTree::NearestRecursive(size_t begin, size_t end, size_t depth,
                              const double* query, NearestResult* best) const {
  if (begin >= end) return;
  const size_t mid = begin + (end - begin) / 2;
  const double* here = coords_.data() + mid * dim_;
  const double d2 = SquaredDistanceKernel(here, query, dim_);
  if (d2 < best->squared_distance) {
    best->squared_distance = d2;
    best->index = index_[mid];
  }
  if (end - begin == 1) return;
  const size_t axis = depth % dim_;
  const double delta = query[axis] - here[axis];
  if (delta <= 0.0) {
    NearestRecursive(begin, mid, depth + 1, query, best);
    // The far side can only help if the splitting plane is closer than
    // the incumbent.
    if (delta * delta < best->squared_distance) {
      NearestRecursive(mid + 1, end, depth + 1, query, best);
    }
  } else {
    NearestRecursive(mid + 1, end, depth + 1, query, best);
    if (delta * delta < best->squared_distance) {
      NearestRecursive(begin, mid, depth + 1, query, best);
    }
  }
}

std::vector<size_t> KdTree::WithinRadius(const double* query,
                                         double radius) const {
  UKC_CHECK_GE(radius, 0.0);
  std::vector<size_t> out;
  RadiusRecursive(0, index_.size(), 0, query, radius * radius, &out);
  return out;
}

void KdTree::RadiusRecursive(size_t begin, size_t end, size_t depth,
                             const double* query, double squared_radius,
                             std::vector<size_t>* out) const {
  if (begin >= end) return;
  const size_t mid = begin + (end - begin) / 2;
  const double* here = coords_.data() + mid * dim_;
  if (SquaredDistanceKernel(here, query, dim_) <= squared_radius) {
    out->push_back(index_[mid]);
  }
  if (end - begin == 1) return;
  const size_t axis = depth % dim_;
  const double delta = query[axis] - here[axis];
  if (delta <= 0.0) {
    RadiusRecursive(begin, mid, depth + 1, query, squared_radius, out);
    if (delta * delta <= squared_radius) {
      RadiusRecursive(mid + 1, end, depth + 1, query, squared_radius, out);
    }
  } else {
    RadiusRecursive(mid + 1, end, depth + 1, query, squared_radius, out);
    if (delta * delta <= squared_radius) {
      RadiusRecursive(begin, mid, depth + 1, query, squared_radius, out);
    }
  }
}

}  // namespace geometry
}  // namespace ukc
