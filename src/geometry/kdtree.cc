#include "geometry/kdtree.h"

#include <algorithm>
#include <limits>

namespace ukc {
namespace geometry {

Result<KdTree> KdTree::Build(std::vector<Point> points) {
  if (points.empty()) {
    return Status::InvalidArgument("KdTree: no points");
  }
  const size_t dim = points[0].dim();
  if (dim == 0) {
    return Status::InvalidArgument("KdTree: zero-dimensional points");
  }
  for (const Point& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("KdTree: mixed dimensions");
    }
  }
  KdTree tree;
  tree.points_ = std::move(points);
  tree.dim_ = dim;
  tree.nodes_.reserve(tree.points_.size());
  std::vector<uint32_t> order(tree.points_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
  tree.root_ = tree.BuildRecursive(&order, 0, order.size(), 0);
  return tree;
}

int32_t KdTree::BuildRecursive(std::vector<uint32_t>* order, size_t begin,
                               size_t end, size_t depth) {
  if (begin >= end) return -1;
  const uint16_t axis = static_cast<uint16_t>(depth % dim_);
  const size_t median = begin + (end - begin) / 2;
  std::nth_element(order->begin() + begin, order->begin() + median,
                   order->begin() + end, [&](uint32_t a, uint32_t b) {
                     return points_[a][axis] < points_[b][axis];
                   });
  const int32_t node_index = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].point_index = (*order)[median];
  nodes_[node_index].axis = axis;
  const int32_t left = BuildRecursive(order, begin, median, depth + 1);
  const int32_t right = BuildRecursive(order, median + 1, end, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

NearestResult KdTree::Nearest(const Point& query) const {
  UKC_CHECK_EQ(query.dim(), dim_);
  NearestResult best;
  best.squared_distance = std::numeric_limits<double>::infinity();
  NearestRecursive(root_, query, &best);
  return best;
}

void KdTree::NearestRecursive(int32_t node_index, const Point& query,
                              NearestResult* best) const {
  if (node_index < 0) return;
  const Node& node = nodes_[static_cast<size_t>(node_index)];
  const Point& here = points_[node.point_index];
  const double d2 = SquaredDistance(here, query);
  if (d2 < best->squared_distance) {
    best->squared_distance = d2;
    best->index = node.point_index;
  }
  const double delta = query[node.axis] - here[node.axis];
  const int32_t near_child = delta <= 0.0 ? node.left : node.right;
  const int32_t far_child = delta <= 0.0 ? node.right : node.left;
  NearestRecursive(near_child, query, best);
  // The far side can only help if the splitting plane is closer than
  // the incumbent.
  if (delta * delta < best->squared_distance) {
    NearestRecursive(far_child, query, best);
  }
}

std::vector<size_t> KdTree::WithinRadius(const Point& query,
                                         double radius) const {
  UKC_CHECK_EQ(query.dim(), dim_);
  UKC_CHECK_GE(radius, 0.0);
  std::vector<size_t> out;
  RadiusRecursive(root_, query, radius * radius, &out);
  return out;
}

void KdTree::RadiusRecursive(int32_t node_index, const Point& query,
                             double squared_radius,
                             std::vector<size_t>* out) const {
  if (node_index < 0) return;
  const Node& node = nodes_[static_cast<size_t>(node_index)];
  const Point& here = points_[node.point_index];
  if (SquaredDistance(here, query) <= squared_radius) {
    out->push_back(node.point_index);
  }
  const double delta = query[node.axis] - here[node.axis];
  const int32_t near_child = delta <= 0.0 ? node.left : node.right;
  const int32_t far_child = delta <= 0.0 ? node.right : node.left;
  RadiusRecursive(near_child, query, squared_radius, out);
  if (delta * delta <= squared_radius) {
    RadiusRecursive(far_child, query, squared_radius, out);
  }
}

}  // namespace geometry
}  // namespace ukc
