// Static kd-tree with per-node bounding boxes and caller-supplied
// per-node value bounds, for "find every point that beats its own
// threshold" queries.
//
// geometry::KdTree answers nearest-neighbor queries, where one global
// incumbent prunes the search. The swap-sweep candidate scan needs a
// different query: given a per-location threshold array base[l], visit
// every location l with d(l, q) < base[l]. No single incumbent exists —
// each location carries its own bound — so pruning needs, per subtree,
// the *maximum* threshold of the locations inside it: a subtree whose
// bounding box is farther from q than that maximum cannot contain any
// qualifying location and is skipped whole.
//
// The tree stores the reordered flat coordinates in the same implicit
// median layout as KdTree (subtree [begin, end) rooted at the middle
// slot, axis = depth % d) plus one bounding box per slot, computed once
// at build. The threshold maxima change per query family (the swap
// engine keeps one array per center position, refreshed when that
// position's base table changes), so they are computed on demand by
// FillSubtreeMax into a caller-owned array and passed back into
// Traverse. Traversal order is a pure function of (tree, maxima,
// pruning predicate), independent of threads or timing.

#ifndef UKC_GEOMETRY_BOUNDED_KDTREE_H_
#define UKC_GEOMETRY_BOUNDED_KDTREE_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/result.h"

namespace ukc {
namespace geometry {

/// Immutable kd-tree over flat points with per-node boxes. Build once,
/// query with per-query subtree bounds. See file comment.
class BoundedKdTree {
 public:
  /// Builds from a flat row-major coordinate buffer (count =
  /// coords.size() / dim points).
  static Result<BoundedKdTree> BuildFlat(std::vector<double> coords, size_t dim);

  /// Number of indexed points.
  size_t size() const { return index_.size(); }

  /// Dimension of the indexed points.
  size_t dim() const { return dim_; }

  /// Fills subtree_max[slot] = max over the subtree rooted at `slot` of
  /// the masked value (value_of[original index], or 0 where it is below
  /// `mask_below` — a point that can never qualify should not inflate
  /// its ancestors' bounds). `value_of` is indexed by construction
  /// order (as passed to BuildFlat), `subtree_max` by tree slot; both
  /// must have size() entries. O(n).
  void FillSubtreeMax(std::span<const double> value_of,
                      std::span<double> subtree_max,
                      double mask_below =
                          -std::numeric_limits<double>::infinity()) const;

  /// Depth-first visit of every point whose subtree survives pruning:
  /// prune(box_lo, box_hi, subtree_max[slot]) is called once per
  /// reached node with the node's subtree bounding box (dim() doubles
  /// each) and its subtree bound — returning true skips the whole
  /// subtree; otherwise visit(original_index, point_coords) runs for
  /// the node's own point and both children are descended. `prune`
  /// must be conservative (never true for a subtree containing a point
  /// the caller wants); `visit` re-tests each reached point exactly, so
  /// over-visiting affects time only, never the result.
  template <typename Prune, typename Visit>
  void Traverse(std::span<const double> subtree_max, Prune&& prune,
                Visit&& visit) const {
    UKC_DCHECK_EQ(subtree_max.size(), index_.size());
    TraverseRecursive(0, index_.size(), subtree_max, prune, visit);
  }

 private:
  BoundedKdTree() = default;

  double FillSubtreeMaxRecursive(size_t begin, size_t end,
                                 std::span<const double> value_of,
                                 std::span<double> subtree_max,
                                 double mask_below) const;

  // Subtrees of at most this many points are scanned linearly instead
  // of descended: the implicit median layout stores every subtree's
  // coordinates contiguously, so a surviving leaf range streams like a
  // flat array — the traversal stays bandwidth-friendly instead of
  // chasing one cache line per point.
  static constexpr size_t kLeafSize = 16;

  template <typename Prune, typename Visit>
  void TraverseRecursive(size_t begin, size_t end,
                         std::span<const double> subtree_max, Prune& prune,
                         Visit& visit) const {
    if (begin >= end) return;
    const size_t mid = begin + (end - begin) / 2;
    if (prune(box_lo_.data() + mid * dim_, box_hi_.data() + mid * dim_,
              subtree_max[mid])) {
      return;
    }
    if (end - begin <= kLeafSize) {
      for (size_t slot = begin; slot < end; ++slot) {
        visit(index_[slot], coords_.data() + slot * dim_);
      }
      return;
    }
    visit(index_[mid], coords_.data() + mid * dim_);
    TraverseRecursive(begin, mid, subtree_max, prune, visit);
    TraverseRecursive(mid + 1, end, subtree_max, prune, visit);
  }

  // coords_[slot * dim_ ..] holds the point at tree slot `slot`;
  // index_[slot] is its construction index; box_lo_/box_hi_ bound the
  // subtree rooted at `slot`.
  std::vector<double> coords_;
  std::vector<double> box_lo_;
  std::vector<double> box_hi_;
  std::vector<uint32_t> index_;
  size_t dim_ = 0;
};

}  // namespace geometry
}  // namespace ukc

#endif  // UKC_GEOMETRY_BOUNDED_KDTREE_H_
