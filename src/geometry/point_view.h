// Flat (structure-of-arrays) geometry: non-owning coordinate views and
// dimension-specialized distance kernels.
//
// The heap-boxed Point type is convenient at API boundaries but hostile
// to hot loops: every distance evaluation chases two vector headers. All
// performance-critical code paths therefore operate on raw coordinate
// spans into a contiguous arena (metric::EuclideanSpace stores one, and
// geometry::KdTree reorders one) and evaluate distances through the
// kernels below, which are fully unrolled for the common d = 1/2/3 and
// never allocate.

#ifndef UKC_GEOMETRY_POINT_VIEW_H_
#define UKC_GEOMETRY_POINT_VIEW_H_

#include <cmath>
#include <cstddef>

#include "common/check.h"
#include "geometry/point.h"

namespace ukc {
namespace geometry {

/// A non-owning view of one point's coordinates inside a flat arena.
/// Cheap to copy (pointer + size); the arena must outlive the view.
class PointView {
 public:
  PointView() = default;
  PointView(const double* data, size_t dim) : data_(data), dim_(dim) {}

  size_t dim() const { return dim_; }
  const double* data() const { return data_; }

  double operator[](size_t i) const {
    UKC_DCHECK_LT(i, dim_);
    return data_[i];
  }

  /// Materializes an owning Point (allocates; boundary use only).
  Point ToPoint() const {
    Point p(dim_);
    for (size_t i = 0; i < dim_; ++i) p[i] = data_[i];
    return p;
  }

 private:
  const double* data_ = nullptr;
  size_t dim_ = 0;
};

/// Squared L2 distance between two coordinate arrays of length `dim`.
/// Unrolled for d = 1/2/3; plain strided loop (auto-vectorizable)
/// otherwise. Never allocates.
inline double SquaredDistanceKernel(const double* a, const double* b,
                                    size_t dim) {
  switch (dim) {
    case 1: {
      const double d0 = a[0] - b[0];
      return d0 * d0;
    }
    case 2: {
      const double d0 = a[0] - b[0];
      const double d1 = a[1] - b[1];
      return d0 * d0 + d1 * d1;
    }
    case 3: {
      const double d0 = a[0] - b[0];
      const double d1 = a[1] - b[1];
      const double d2 = a[2] - b[2];
      return d0 * d0 + d1 * d1 + d2 * d2;
    }
    default: {
      double total = 0.0;
      for (size_t i = 0; i < dim; ++i) {
        const double d = a[i] - b[i];
        total += d * d;
      }
      return total;
    }
  }
}

/// L2 distance between two coordinate arrays.
inline double DistanceKernel(const double* a, const double* b, size_t dim) {
  return std::sqrt(SquaredDistanceKernel(a, b, dim));
}

/// L1 (Manhattan) distance between two coordinate arrays.
inline double L1DistanceKernel(const double* a, const double* b, size_t dim) {
  switch (dim) {
    case 1:
      return std::abs(a[0] - b[0]);
    case 2:
      return std::abs(a[0] - b[0]) + std::abs(a[1] - b[1]);
    case 3:
      return std::abs(a[0] - b[0]) + std::abs(a[1] - b[1]) +
             std::abs(a[2] - b[2]);
    default: {
      double total = 0.0;
      for (size_t i = 0; i < dim; ++i) total += std::abs(a[i] - b[i]);
      return total;
    }
  }
}

/// L∞ (Chebyshev) distance between two coordinate arrays.
inline double LInfDistanceKernel(const double* a, const double* b, size_t dim) {
  double worst = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = std::abs(a[i] - b[i]);
    if (d > worst) worst = d;
  }
  return worst;
}

/// View overloads mirroring the Point free functions.
inline double SquaredDistance(PointView a, PointView b) {
  UKC_DCHECK_EQ(a.dim(), b.dim());
  return SquaredDistanceKernel(a.data(), b.data(), a.dim());
}
inline double Distance(PointView a, PointView b) {
  UKC_DCHECK_EQ(a.dim(), b.dim());
  return DistanceKernel(a.data(), b.data(), a.dim());
}
inline double L1Distance(PointView a, PointView b) {
  UKC_DCHECK_EQ(a.dim(), b.dim());
  return L1DistanceKernel(a.data(), b.data(), a.dim());
}
inline double LInfDistance(PointView a, PointView b) {
  UKC_DCHECK_EQ(a.dim(), b.dim());
  return LInfDistanceKernel(a.data(), b.data(), a.dim());
}

}  // namespace geometry
}  // namespace ukc

#endif  // UKC_GEOMETRY_POINT_VIEW_H_
