// Static kd-tree over points in R^d for nearest-neighbor queries.
//
// Used to accelerate the assignment phase of the pipeline (nearest
// center to each surrogate) and the Gonzalez relaxation on large
// Euclidean instances: brute force is O(n k), the tree answers nearest
// queries in roughly O(log k) for the small center sets k-center
// produces. Exact (no approximation), with standard median-split
// construction.
//
// Storage is fully flat (structure of arrays): the point coordinates are
// reordered once at build time into a single contiguous buffer laid out
// in *implicit median order* — the subtree over slot range [begin, end)
// has its root at slot begin + (end - begin) / 2 and splits on axis
// depth % d. There are no per-node Point copies, no child pointers, and
// queries touch only the coordinate buffer and one index array.

#ifndef UKC_GEOMETRY_KDTREE_H_
#define UKC_GEOMETRY_KDTREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geometry/point.h"
#include "geometry/point_view.h"

namespace ukc {
namespace geometry {

namespace internal {

/// Arranges order[begin, end) into implicit median layout: the subtree
/// over slot range [begin, end) has its root (the median along axis
/// depth % dim) at the middle slot, recursively. Shared by KdTree and
/// BoundedKdTree so the two trees can never drift apart on the layout.
void ImplicitMedianLayout(std::vector<uint32_t>* order, const double* coords,
                          size_t dim, size_t begin, size_t end, size_t depth);

}  // namespace internal

/// A nearest-neighbor answer: index into the construction array plus
/// the (squared) distance.
struct NearestResult {
  size_t index = 0;
  double squared_distance = 0.0;
};

/// Immutable kd-tree. Build once, query many times.
class KdTree {
 public:
  /// Builds the tree in O(n log n) from boxed points (flattened once).
  /// All points must share one dimension >= 1.
  static Result<KdTree> Build(const std::vector<Point>& points);

  /// Builds from a flat row-major coordinate buffer (count = coords.size
  /// / dim points). The preferred entry point: no boxing anywhere.
  static Result<KdTree> BuildFlat(std::vector<double> coords, size_t dim);

  /// The exact nearest point to `query` (ties broken arbitrarily).
  /// `query` must have length dim() / dimension dim().
  NearestResult Nearest(const double* query) const;
  NearestResult Nearest(const Point& query) const {
    UKC_DCHECK_EQ(query.dim(), dim_);
    return Nearest(query.coords().data());
  }

  /// All point indices within `radius` (inclusive) of `query`.
  std::vector<size_t> WithinRadius(const double* query, double radius) const;
  std::vector<size_t> WithinRadius(const Point& query, double radius) const {
    UKC_DCHECK_EQ(query.dim(), dim_);
    return WithinRadius(query.coords().data(), radius);
  }

  /// Number of indexed points.
  size_t size() const { return index_.size(); }

  /// Dimension of the indexed points.
  size_t dim() const { return dim_; }

  /// The point for an index returned by a query (i.e. an index into the
  /// construction array), materialized as an owning copy.
  Point point(size_t index) const;

 private:
  KdTree() = default;

  void NearestRecursive(size_t begin, size_t end, size_t depth,
                        const double* query, NearestResult* best) const;
  void RadiusRecursive(size_t begin, size_t end, size_t depth,
                       const double* query, double squared_radius,
                       std::vector<size_t>* out) const;

  // coords_[slot * dim_ ..] holds the point at tree slot `slot`;
  // index_[slot] is its index in the construction array.
  std::vector<double> coords_;
  std::vector<uint32_t> index_;
  size_t dim_ = 0;
};

}  // namespace geometry
}  // namespace ukc

#endif  // UKC_GEOMETRY_KDTREE_H_
