// Static kd-tree over points in R^d for nearest-neighbor queries.
//
// Used to accelerate the assignment phase of the pipeline (nearest
// center to each surrogate) and the Gonzalez relaxation on large
// Euclidean instances: brute force is O(n k), the tree answers nearest
// queries in roughly O(log k) for the small center sets k-center
// produces. Exact (no approximation), with standard
// median-split construction.

#ifndef UKC_GEOMETRY_KDTREE_H_
#define UKC_GEOMETRY_KDTREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geometry/point.h"

namespace ukc {
namespace geometry {

/// A nearest-neighbor answer: index into the construction array plus
/// the (squared) distance.
struct NearestResult {
  size_t index = 0;
  double squared_distance = 0.0;
};

/// Immutable kd-tree. Build once, query many times.
class KdTree {
 public:
  /// Builds the tree in O(n log n). All points must share one dimension
  /// >= 1; the input is copied.
  static Result<KdTree> Build(std::vector<Point> points);

  /// The exact nearest point to `query` (ties broken arbitrarily).
  NearestResult Nearest(const Point& query) const;

  /// All point indices within `radius` (inclusive) of `query`.
  std::vector<size_t> WithinRadius(const Point& query, double radius) const;

  /// Number of indexed points.
  size_t size() const { return points_.size(); }

  /// The point for an index returned by a query.
  const Point& point(size_t index) const {
    UKC_DCHECK_LT(index, points_.size());
    return points_[index];
  }

 private:
  struct Node {
    // Children as node indices; kNoChild when absent.
    int32_t left = -1;
    int32_t right = -1;
    uint32_t point_index = 0;  // Index into points_.
    uint16_t axis = 0;         // Split axis.
  };

  KdTree() = default;

  int32_t BuildRecursive(std::vector<uint32_t>* order, size_t begin, size_t end,
                         size_t depth);
  void NearestRecursive(int32_t node, const Point& query,
                        NearestResult* best) const;
  void RadiusRecursive(int32_t node, const Point& query, double squared_radius,
                       std::vector<size_t>* out) const;

  std::vector<Point> points_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t dim_ = 0;
};

}  // namespace geometry
}  // namespace ukc

#endif  // UKC_GEOMETRY_KDTREE_H_
