#include "geometry/box.h"

#include <algorithm>

namespace ukc {
namespace geometry {

Box::Box(Point lo, Point hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  UKC_CHECK_EQ(lo_.dim(), hi_.dim());
  for (size_t i = 0; i < lo_.dim(); ++i) {
    UKC_CHECK_LE(lo_[i], hi_[i]) << "Box corners out of order on axis " << i;
  }
}

Box Box::BoundingBox(const std::vector<Point>& points) {
  UKC_CHECK(!points.empty());
  Box box(points[0], points[0]);
  for (size_t i = 1; i < points.size(); ++i) box.Expand(points[i]);
  return box;
}

double Box::MaxExtent() const {
  double worst = 0.0;
  for (size_t i = 0; i < dim(); ++i) worst = std::max(worst, Extent(i));
  return worst;
}

bool Box::Contains(const Point& p) const {
  UKC_DCHECK_EQ(p.dim(), dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

void Box::Expand(const Point& p) {
  UKC_DCHECK_EQ(p.dim(), dim());
  for (size_t i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], p[i]);
    hi_[i] = std::max(hi_[i], p[i]);
  }
}

void Box::Inflate(double margin) {
  UKC_CHECK_GE(margin, 0.0);
  for (size_t i = 0; i < dim(); ++i) {
    lo_[i] -= margin;
    hi_[i] += margin;
  }
}

}  // namespace geometry
}  // namespace ukc
