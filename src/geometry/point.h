// Dynamic-dimension Euclidean point/vector type.
//
// The paper's Euclidean results hold in any dimension, so Point carries
// its dimension at runtime. All arithmetic checks dimension agreement
// with UKC_DCHECK (programmer error, not user input).

#ifndef UKC_GEOMETRY_POINT_H_
#define UKC_GEOMETRY_POINT_H_

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "common/check.h"

namespace ukc {
namespace geometry {

/// A point (equivalently, vector) in R^d with runtime dimension d >= 1.
class Point {
 public:
  /// An empty (dimension-0) point; assign before use.
  Point() = default;

  /// The origin of R^dim.
  explicit Point(size_t dim) : coords_(dim, 0.0) {}

  /// From explicit coordinates.
  Point(std::initializer_list<double> coords) : coords_(coords) {}
  explicit Point(std::vector<double> coords) : coords_(std::move(coords)) {}

  /// Dimension of the ambient space.
  size_t dim() const { return coords_.size(); }

  /// Coordinate access.
  double operator[](size_t i) const {
    UKC_DCHECK_LT(i, coords_.size());
    return coords_[i];
  }
  double& operator[](size_t i) {
    UKC_DCHECK_LT(i, coords_.size());
    return coords_[i];
  }

  const std::vector<double>& coords() const { return coords_; }

  /// Vector arithmetic. Dimensions must match.
  Point& operator+=(const Point& other);
  Point& operator-=(const Point& other);
  Point& operator*=(double scale);

  friend Point operator+(Point a, const Point& b) { return a += b; }
  friend Point operator-(Point a, const Point& b) { return a -= b; }
  friend Point operator*(Point a, double s) { return a *= s; }
  friend Point operator*(double s, Point a) { return a *= s; }

  friend bool operator==(const Point& a, const Point& b) {
    return a.coords_ == b.coords_;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }

  /// Euclidean norm and squared norm.
  double Norm() const;
  double SquaredNorm() const;

  /// Dot product; dimensions must match.
  double Dot(const Point& other) const;

  /// "(x, y, ...)" with %.6g coordinates.
  std::string ToString() const;

 private:
  std::vector<double> coords_;
};

std::ostream& operator<<(std::ostream& os, const Point& p);

/// Euclidean (L2) distance. Dimensions must match.
double Distance(const Point& a, const Point& b);

/// Squared Euclidean distance (no sqrt).
double SquaredDistance(const Point& a, const Point& b);

/// L1 (Manhattan) distance.
double L1Distance(const Point& a, const Point& b);

/// L∞ (Chebyshev) distance.
double LInfDistance(const Point& a, const Point& b);

/// Lp distance for p >= 1.
double LpDistance(const Point& a, const Point& b, double p);

/// Convex combination (1-t)*a + t*b.
Point Lerp(const Point& a, const Point& b, double t);

/// The arithmetic mean of a non-empty set of points.
Point Centroid(const std::vector<Point>& points);

/// The probability-weighted mean Σ w_i p_i / Σ w_i (weights must be
/// non-negative with positive total).
Point WeightedCentroid(const std::vector<Point>& points,
                       const std::vector<double>& weights);

}  // namespace geometry
}  // namespace ukc

#endif  // UKC_GEOMETRY_POINT_H_
