#include "exper/instances.h"

#include <cmath>

#include "common/strings.h"
#include "uncertain/generators.h"

namespace ukc {
namespace exper {

std::string FamilyToString(Family family) {
  switch (family) {
    case Family::kUniform:
      return "uniform";
    case Family::kClustered:
      return "clustered";
    case Family::kOutlier:
      return "outlier";
    case Family::kLine:
      return "line";
    case Family::kGridGraph:
      return "grid-graph";
  }
  return "?";
}

Result<uncertain::UncertainDataset> MakeInstance(const InstanceSpec& spec) {
  uncertain::EuclideanInstanceOptions options;
  options.n = spec.n;
  options.z = spec.z;
  options.dim = spec.dim;
  options.spread = spec.spread;
  options.shape = uncertain::ProbabilityShape::kRandom;
  options.seed = spec.seed;
  switch (spec.family) {
    case Family::kUniform:
      return uncertain::GenerateUniformInstance(options);
    case Family::kClustered:
      return uncertain::GenerateClusteredInstance(options, spec.k);
    case Family::kOutlier:
      return uncertain::GenerateOutlierInstance(options, spec.k,
                                                /*outlier_probability=*/0.05,
                                                /*outlier_distance=*/30.0);
    case Family::kLine:
      return uncertain::GenerateLineInstance(spec.n, spec.z, /*length=*/100.0,
                                             spec.spread,
                                             uncertain::ProbabilityShape::kRandom,
                                             spec.seed);
    case Family::kGridGraph: {
      // Grid large enough to hold z distinct locations per point with
      // room for structure: side about sqrt(4n), at least 4.
      const int side =
          std::max(4, static_cast<int>(std::ceil(std::sqrt(4.0 * spec.n))));
      UKC_ASSIGN_OR_RETURN(auto graph,
                           uncertain::GenerateGridGraph(side, side, 0.5, 2.0,
                                                        spec.seed * 977 + 13));
      return uncertain::GenerateMetricInstance(
          graph, spec.n, spec.z, /*locality_scale=*/2.0 * spec.spread,
          uncertain::ProbabilityShape::kRandom, spec.seed);
    }
  }
  return Status::InvalidArgument("MakeInstance: unknown family");
}

std::string DescribeInstance(const InstanceSpec& spec) {
  return StrFormat("%s(n=%zu z=%zu d=%zu k=%zu spread=%.3g seed=%llu)",
                   FamilyToString(spec.family).c_str(), spec.n, spec.z, spec.dim,
                   spec.k, spec.spread,
                   static_cast<unsigned long long>(spec.seed));
}

}  // namespace exper
}  // namespace ukc
