// Reference values for ratio measurement: certified lower bounds on the
// optimal unrestricted assigned cost at any instance size, and exact
// optima on tiny instances (see core/exact_tiny.h for the latter).

#ifndef UKC_EXPER_REFERENCE_H_
#define UKC_EXPER_REFERENCE_H_

#include "common/result.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace exper {

/// The components of the instance lower bound.
struct LowerBoundReport {
  /// Lemma 3.2: max_i min_q E[d(P̂_i, q)].
  double per_point = 0.0;
  /// Lemma 3.4 / 3.6: a certified lower bound on the certain k-center
  /// optimum of the surrogates, scaled by the lemma's constant (1 for
  /// Euclidean expected points, 1/2 for metric 1-medians).
  double surrogate = 0.0;
  /// max(per_point, surrogate) — the usable denominator.
  double combined = 0.0;
};

/// Computes both bounds. The dataset's space may grow (surrogates are
/// minted for the Lemma 3.4 bound on Euclidean instances).
Result<LowerBoundReport> UnrestrictedLowerBound(
    uncertain::UncertainDataset* dataset, size_t k);

}  // namespace exper
}  // namespace ukc

#endif  // UKC_EXPER_REFERENCE_H_
