#include "exper/reference.h"

#include <algorithm>

#include "core/surrogates.h"
#include "cost/lower_bounds.h"
#include "solver/hochbaum_shmoys.h"

namespace ukc {
namespace exper {

Result<LowerBoundReport> UnrestrictedLowerBound(
    uncertain::UncertainDataset* dataset, size_t k) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("UnrestrictedLowerBound: null dataset");
  }
  LowerBoundReport report;
  UKC_ASSIGN_OR_RETURN(report.per_point, cost::PerPointLowerBound(*dataset));

  // Surrogate bound. Lemma 3.4: for Euclidean instances, the certain
  // k-center optimum of the expected points lower-bounds OPT. Lemma
  // 3.6: in any metric, half the certain optimum of the 1-medians does.
  // The certain optimum itself is lower-bounded by the threshold
  // certificate of Hochbaum–Shmoys (k+1 surrogates pairwise > 2t apart
  // force radius > t for any centers).
  const bool euclidean = dataset->is_euclidean();
  core::SurrogateOptions surrogate_options;
  surrogate_options.kind = euclidean ? core::SurrogateKind::kExpectedPoint
                                     : core::SurrogateKind::kOneCenter;
  UKC_ASSIGN_OR_RETURN(std::vector<metric::SiteId> surrogates,
                       core::BuildSurrogates(dataset, surrogate_options));
  UKC_ASSIGN_OR_RETURN(
      solver::ThresholdSolution threshold,
      solver::HochbaumShmoys(dataset->space(), surrogates, k));
  report.surrogate = euclidean ? threshold.continuous_lower_bound
                               : threshold.continuous_lower_bound / 2.0;
  report.combined = std::max(report.per_point, report.surrogate);
  return report;
}

}  // namespace exper
}  // namespace ukc
