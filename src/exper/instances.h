// Named instance families for the experiment harness, so that every
// bench binary and EXPERIMENTS.md describe workloads the same way.

#ifndef UKC_EXPER_INSTANCES_H_
#define UKC_EXPER_INSTANCES_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace exper {

/// The instance families used across the benches.
enum class Family {
  kUniform,     // Euclidean, homes uniform in a box.
  kClustered,   // Euclidean, planted Gaussian clusters.
  kOutlier,     // Clustered + low-probability far locations.
  kLine,        // 1-dimensional.
  kGridGraph,   // Shortest-path metric of a random-weight grid graph.
};

std::string FamilyToString(Family family);

/// A fully specified instance.
struct InstanceSpec {
  Family family = Family::kClustered;
  size_t n = 60;       // Uncertain points.
  size_t z = 4;        // Locations per point.
  size_t dim = 2;      // Euclidean families only.
  size_t k = 3;        // Target number of centers (= planted clusters).
  double spread = 0.5; // Support scale.
  uint64_t seed = 1;
};

/// Materializes the instance.
Result<uncertain::UncertainDataset> MakeInstance(const InstanceSpec& spec);

/// One-line description for table headers.
std::string DescribeInstance(const InstanceSpec& spec);

}  // namespace exper
}  // namespace ukc

#endif  // UKC_EXPER_INSTANCES_H_
