// Expected-cost evaluation: the objective functions of the paper.
//
//   EcostA(c_1..c_k)  = E_R[ max_i d(P̂_i, A(P_i)) ]   (assigned)
//   Ecost(c_1..c_k)   = E_R[ max_i min_j d(P̂_i, c_j)] (unassigned)
//
// Because the uncertain points are independent and each point's cost is
// a function of its own realization only, the max is over *independent*
// discrete random variables, and the expectation is computed *exactly*
// in O(N log N) for N = Σ_i z_i by sweeping the value axis:
//
//   E[max_i X_i] = Σ_v v · ( Π_i F_i(v) − Π_i F_i(v^-) )
//
// A naive enumeration of all Π z_i realizations (the formula as written
// in the paper) is exponential; it is provided as BruteForce* for
// cross-validation on tiny instances, alongside a Monte-Carlo estimator
// with standard errors for independent validation at any size.
//
// The functions here are convenience wrappers over the reusable engine
// in expected_cost_evaluator.h (which owns all scratch state); they
// delegate to a thread-local evaluator, so even one-off calls avoid
// per-call allocation churn. Pipelines that evaluate many candidate
// solutions should hold an ExpectedCostEvaluator directly.

#ifndef UKC_COST_EXPECTED_COST_H_
#define UKC_COST_EXPECTED_COST_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "cost/assignment.h"
#include "cost/expected_cost_evaluator.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace cost {

/// Exact E[max_i X_i] for independent discrete X_i. O(N log N) in the
/// total support size N. Takes the distributions by const reference —
/// nothing is copied.
double ExpectedMaxOfIndependent(
    const std::vector<DiscreteDistribution>& distributions);

/// Exact assigned expected cost EcostA for the given assignment
/// (assignment[i] = serving center site of point i).
Result<double> ExactAssignedCost(const uncertain::UncertainDataset& dataset,
                                 const Assignment& assignment);

/// Exact unassigned expected cost Ecost for the given centers. The
/// options select the kd-tree cutover (see ExactCostOptions).
Result<double> ExactUnassignedCost(const uncertain::UncertainDataset& dataset,
                                   const std::vector<metric::SiteId>& centers,
                                   const ExactCostOptions& options = {});

/// Options bounding the brute-force enumerations.
struct BruteForceCostOptions {
  uint64_t max_realizations = 5'000'000;
};

/// Reference implementation enumerating every realization of Ω.
/// Exponential; refuses instances larger than the option cap.
Result<double> BruteForceAssignedCost(const uncertain::UncertainDataset& dataset,
                                      const Assignment& assignment,
                                      const BruteForceCostOptions& options = {});
Result<double> BruteForceUnassignedCost(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers,
    const BruteForceCostOptions& options = {});

/// Monte-Carlo estimators (sampling realizations with alias tables).
Result<MonteCarloEstimate> MonteCarloAssignedCost(
    const uncertain::UncertainDataset& dataset, const Assignment& assignment,
    int64_t samples, Rng& rng);
Result<MonteCarloEstimate> MonteCarloUnassignedCost(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers, int64_t samples, Rng& rng);

}  // namespace cost
}  // namespace ukc

#endif  // UKC_COST_EXPECTED_COST_H_
