#include "cost/parallel_evaluator.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"
#include "metric/euclidean_space.h"

namespace ukc {
namespace cost {

ParallelCandidateEvaluator::ParallelCandidateEvaluator()
    : ParallelCandidateEvaluator(Options()) {}

ParallelCandidateEvaluator::ParallelCandidateEvaluator(Options options)
    : options_(options), pool_(options.pool, options.threads) {
  ExpectedCostEvaluator::Options worker_options = options_.evaluator;
  worker_options.monte_carlo_threads = 1;  // The pool is the only fan-out.
  evaluators_ = std::vector<ExpectedCostEvaluator>(pool_->num_threads());
  for (ExpectedCostEvaluator& evaluator : evaluators_) {
    evaluator.set_options(worker_options);
  }
}

template <typename Fn>
Status ParallelCandidateEvaluator::RunTasks(size_t count, const Fn& fn) {
  std::vector<Status> statuses(count);
  pool_->ParallelFor(count, [&](int worker, size_t index) {
    statuses[index] = fn(worker, index);
  });
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

Result<std::vector<double>> ParallelCandidateEvaluator::UnassignedCostBatch(
    const uncertain::UncertainDataset& dataset,
    const std::vector<std::vector<metric::SiteId>>& center_sets) {
  std::vector<double> values(center_sets.size());
  UKC_RETURN_IF_ERROR(RunTasks(
      center_sets.size(), [&](int worker, size_t s) -> Status {
        UKC_ASSIGN_OR_RETURN(
            values[s], evaluators_[worker].UnassignedCost(dataset, center_sets[s]));
        return Status::OK();
      }));
  return values;
}

Result<std::vector<double>> ParallelCandidateEvaluator::AssignedCostBatch(
    const uncertain::UncertainDataset& dataset,
    const std::vector<Assignment>& assignments) {
  std::vector<double> values(assignments.size());
  UKC_RETURN_IF_ERROR(RunTasks(
      assignments.size(), [&](int worker, size_t a) -> Status {
        UKC_ASSIGN_OR_RETURN(
            values[a], evaluators_[worker].AssignedCost(dataset, assignments[a]));
        return Status::OK();
      }));
  return values;
}

Result<std::vector<MonteCarloEstimate>>
ParallelCandidateEvaluator::MonteCarloUnassignedCostBatch(
    const uncertain::UncertainDataset& dataset,
    const std::vector<std::vector<metric::SiteId>>& center_sets,
    int64_t samples, Rng& rng) {
  // Fork every candidate's stream up front on the calling thread, so
  // the draw for candidate s is a pure function of (seed, s).
  std::vector<Rng> rngs;
  rngs.reserve(center_sets.size());
  for (size_t s = 0; s < center_sets.size(); ++s) {
    rngs.push_back(rng.Fork(static_cast<uint64_t>(s)));
  }
  std::vector<MonteCarloEstimate> estimates(center_sets.size());
  UKC_RETURN_IF_ERROR(RunTasks(
      center_sets.size(), [&](int worker, size_t s) -> Status {
        UKC_ASSIGN_OR_RETURN(estimates[s],
                             evaluators_[worker].MonteCarloUnassignedCost(
                                 dataset, center_sets[s], samples, rngs[s]));
        return Status::OK();
      }));
  return estimates;
}

Result<std::vector<double>> ParallelCandidateEvaluator::SwapCostMatrix(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers,
    const std::vector<metric::SiteId>& pool) {
  if (centers.empty()) {
    return Status::InvalidArgument("SwapCostMatrix: no centers");
  }
  if (pool.empty()) {
    return Status::InvalidArgument("SwapCostMatrix: empty candidate pool");
  }
  const metric::MetricSpace& space = dataset.space();
  for (metric::SiteId c : centers) {
    if (c < 0 || c >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("SwapCostMatrix: center %d out of range", c));
    }
  }
  const size_t k = centers.size();
  const size_t total = dataset.total_locations();
  const metric::SiteId* sites = dataset.flat_sites().data();
  const metric::EuclideanSpace* euclidean = dataset.euclidean();

  // 1. Distance of every location to every current center, one row per
  // center (the rows parallelize independently).
  center_distances_.resize(k * total);
  pool_->ParallelFor(k, [&](int, size_t c) {
    double* row = center_distances_.data() + c * total;
    if (euclidean != nullptr) {
      const size_t dim = euclidean->dim();
      const metric::Norm norm = euclidean->norm();
      const double* target = euclidean->coords(centers[c]);
      for (size_t l = 0; l < total; ++l) {
        row[l] = metric::NormDistanceKernel(norm, euclidean->coords(sites[l]),
                                            target, dim);
      }
    } else {
      for (size_t l = 0; l < total; ++l) {
        row[l] = space.Distance(sites[l], centers[c]);
      }
    }
  });

  // 2. base_without_[p][l] = min over c != p of the distance rows,
  // via a backward suffix pass plus a rolling forward prefix.
  base_without_.resize(k * total);
  suffix_min_.assign((k + 1) * total, std::numeric_limits<double>::infinity());
  for (size_t p = k; p-- > 0;) {
    const double* row = center_distances_.data() + p * total;
    const double* next = suffix_min_.data() + (p + 1) * total;
    double* out = suffix_min_.data() + p * total;
    for (size_t l = 0; l < total; ++l) out[l] = std::min(row[l], next[l]);
  }
  {
    std::vector<double> prefix(total, std::numeric_limits<double>::infinity());
    for (size_t p = 0; p < k; ++p) {
      const double* after = suffix_min_.data() + (p + 1) * total;
      double* out = base_without_.data() + p * total;
      for (size_t l = 0; l < total; ++l) {
        out[l] = std::min(prefix[l], after[l]);
      }
      const double* row = center_distances_.data() + p * total;
      for (size_t l = 0; l < total; ++l) {
        prefix[l] = std::min(prefix[l], row[l]);
      }
    }
  }

  // 3. Presort every position's base distances into one sequential
  // event stream, once, shared read-only by all of that position's
  // candidates (the per-worker evaluators supply the radix scratch).
  point_of_.resize(total);
  const size_t* offsets = dataset.offsets().data();
  for (size_t i = 0; i < dataset.n(); ++i) {
    for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
      point_of_[l] = static_cast<uint32_t>(i);
    }
  }
  swap_bases_.resize(k);
  UKC_RETURN_IF_ERROR(RunTasks(k, [&](int worker, size_t p) -> Status {
    return evaluators_[worker].BuildSwapBase(
        dataset,
        std::span<const double>(base_without_.data() + p * total, total),
        point_of_, &swap_bases_[p]);
  }));

  // 4. One task per (position, candidate) pair; each costs one kernel
  // distance per location plus the merge-sweep — no per-candidate sort
  // of the base, only of the m locations the candidate improves.
  std::vector<double> values(k * pool.size());
  UKC_RETURN_IF_ERROR(RunTasks(
      k * pool.size(), [&](int worker, size_t task) -> Status {
        const size_t p = task / pool.size();
        const size_t c = task % pool.size();
        UKC_ASSIGN_OR_RETURN(
            values[task],
            evaluators_[worker].UnassignedCostSwapPresorted(
                dataset,
                std::span<const double>(base_without_.data() + p * total, total),
                swap_bases_[p], point_of_, pool[c]));
        return Status::OK();
      }));
  return values;
}

}  // namespace cost
}  // namespace ukc
