#include "cost/parallel_evaluator.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/hash.h"
#include "common/strings.h"
#include "metric/euclidean_space.h"
#include "obs/metrics.h"

namespace ukc {
namespace cost {

namespace {

// Content fingerprint of everything the cached swap tables depend on
// besides the centers: dimension, norm, the CSR layout, probabilities,
// site ids, and the coordinates of every location. Identity (the
// dataset's address) is deliberately not used — a loop that rebuilds a
// same-shaped dataset at the same address must invalidate the cache.
// One linear pass, negligible next to the kernel work it saves.
uint64_t DatasetSwapFingerprint(const uncertain::UncertainDataset& dataset,
                                const metric::EuclideanSpace& euclidean) {
  uint64_t hash = kHashSeed;
  const size_t dim = euclidean.dim();
  const metric::Norm norm = euclidean.norm();
  const size_t n = dataset.n();
  const size_t total = dataset.total_locations();
  hash = HashBytes(hash, &dim, sizeof(dim));
  hash = HashBytes(hash, &norm, sizeof(norm));
  hash = HashBytes(hash, &n, sizeof(n));
  hash = HashBytes(hash, &total, sizeof(total));
  hash = HashBytes(hash, dataset.offsets().data(),
                   dataset.offsets().size_bytes());
  hash = HashBytes(hash, dataset.flat_probabilities().data(),
                   dataset.flat_probabilities().size_bytes());
  hash = HashBytes(hash, dataset.flat_sites().data(),
                   dataset.flat_sites().size_bytes());
  for (metric::SiteId site : dataset.flat_sites()) {
    hash = HashBytes(hash, euclidean.coords(site), dim * sizeof(double));
  }
  return hash;
}

}  // namespace

ParallelCandidateEvaluator::ParallelCandidateEvaluator()
    : ParallelCandidateEvaluator(Options()) {}

ParallelCandidateEvaluator::ParallelCandidateEvaluator(Options options)
    : options_(options), pool_(options.pool, options.threads) {
  ExpectedCostEvaluator::Options worker_options = options_.evaluator;
  worker_options.monte_carlo_threads = 1;  // The pool is the only fan-out.
  worker_options.sweep_pool = nullptr;     // Workers run inside pool jobs.
  evaluators_ = std::vector<ExpectedCostEvaluator>(pool_->num_threads());
  for (ExpectedCostEvaluator& evaluator : evaluators_) {
    evaluator.set_options(worker_options);
  }
  // The main evaluator runs on the calling thread only, so its
  // segmented sweeps may fan out over the shared pool.
  ExpectedCostEvaluator::Options main_options = worker_options;
  main_options.sweep_pool = pool_.get();
  main_evaluator_.set_options(main_options);
}

bool ParallelCandidateEvaluator::SweepsInsideCandidates(
    const uncertain::UncertainDataset& dataset) const {
  // Trading candidate-level sharding for within-sweep parallelism only
  // pays when the main evaluator's segmented engine will actually
  // engage on this dataset's streams — otherwise the serial loop
  // would simply forfeit the workers.
  return options_.evaluator.parallel_sweep &&
         pool_->num_threads() > 1 &&
         dataset.total_locations() >=
             options_.evaluator.parallel_sweep_cutover;
}

template <typename Fn>
Status ParallelCandidateEvaluator::RunTasks(size_t count, const Fn& fn) {
  std::vector<Status> statuses(count);
  pool_->ParallelFor(count, [&](int worker, size_t index) {
    statuses[index] = fn(worker, index);
  });
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

Result<std::vector<double>> ParallelCandidateEvaluator::UnassignedCostBatch(
    const uncertain::UncertainDataset& dataset,
    const std::vector<std::vector<metric::SiteId>>& center_sets) {
  std::vector<double> values(center_sets.size());
  if (center_sets.size() * 2 <= static_cast<size_t>(threads()) &&
      SweepsInsideCandidates(dataset)) {
    // Too few candidates to keep the workers busy across candidates,
    // and each candidate's sweep is big enough for the segmented
    // engine: evaluate serially on the main evaluator and let the
    // sweep fan out instead. Results are bitwise identical to the
    // sharded path (the sweep is thread-count invariant).
    for (size_t s = 0; s < center_sets.size(); ++s) {
      UKC_ASSIGN_OR_RETURN(values[s],
                           main_evaluator_.UnassignedCost(dataset,
                                                          center_sets[s]));
    }
    return values;
  }
  UKC_RETURN_IF_ERROR(RunTasks(
      center_sets.size(), [&](int worker, size_t s) -> Status {
        UKC_ASSIGN_OR_RETURN(
            values[s], evaluators_[worker].UnassignedCost(dataset, center_sets[s]));
        return Status::OK();
      }));
  return values;
}

Result<std::vector<double>> ParallelCandidateEvaluator::AssignedCostBatch(
    const uncertain::UncertainDataset& dataset,
    const std::vector<Assignment>& assignments) {
  std::vector<double> values(assignments.size());
  if (assignments.size() * 2 <= static_cast<size_t>(threads()) &&
      SweepsInsideCandidates(dataset)) {
    for (size_t a = 0; a < assignments.size(); ++a) {
      UKC_ASSIGN_OR_RETURN(values[a],
                           main_evaluator_.AssignedCost(dataset,
                                                        assignments[a]));
    }
    return values;
  }
  UKC_RETURN_IF_ERROR(RunTasks(
      assignments.size(), [&](int worker, size_t a) -> Status {
        UKC_ASSIGN_OR_RETURN(
            values[a], evaluators_[worker].AssignedCost(dataset, assignments[a]));
        return Status::OK();
      }));
  return values;
}

Result<std::vector<MonteCarloEstimate>>
ParallelCandidateEvaluator::MonteCarloUnassignedCostBatch(
    const uncertain::UncertainDataset& dataset,
    const std::vector<std::vector<metric::SiteId>>& center_sets,
    int64_t samples, Rng& rng) {
  // Fork every candidate's stream up front on the calling thread, so
  // the draw for candidate s is a pure function of (seed, s).
  std::vector<Rng> rngs;
  rngs.reserve(center_sets.size());
  for (size_t s = 0; s < center_sets.size(); ++s) {
    rngs.push_back(rng.Fork(static_cast<uint64_t>(s)));
  }
  std::vector<MonteCarloEstimate> estimates(center_sets.size());
  UKC_RETURN_IF_ERROR(RunTasks(
      center_sets.size(), [&](int worker, size_t s) -> Status {
        UKC_ASSIGN_OR_RETURN(estimates[s],
                             evaluators_[worker].MonteCarloUnassignedCost(
                                 dataset, center_sets[s], samples, rngs[s]));
        return Status::OK();
      }));
  return estimates;
}

Result<std::vector<double>> ParallelCandidateEvaluator::SwapCostMatrix(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers,
    const std::vector<metric::SiteId>& pool) {
  if (centers.empty()) {
    return Status::InvalidArgument("SwapCostMatrix: no centers");
  }
  if (pool.empty()) {
    return Status::InvalidArgument("SwapCostMatrix: empty candidate pool");
  }
  const metric::MetricSpace& space = dataset.space();
  for (metric::SiteId c : centers) {
    if (c < 0 || c >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("SwapCostMatrix: center %d out of range", c));
    }
  }
  const size_t k = centers.size();
  const size_t total = dataset.total_locations();
  // Pre-reserve every evaluator's radix/CDF scratch from the dataset
  // header once per instance size, so swap rounds never reallocate
  // mid-trajectory (the evaluators CHECK the capacity never shrinks
  // again).
  if (dataset.n() > reserved_points_ || total > reserved_locations_) {
    reserved_points_ = std::max(reserved_points_, dataset.n());
    reserved_locations_ = std::max(reserved_locations_, total);
    for (ExpectedCostEvaluator& evaluator : evaluators_) {
      evaluator.ReserveScratch(reserved_points_, reserved_locations_);
    }
    main_evaluator_.ReserveScratch(reserved_points_, reserved_locations_);
  }
  const metric::SiteId* sites = dataset.flat_sites().data();
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  const size_t dim = euclidean != nullptr ? euclidean->dim() : 0;

  // Every call is a new epoch; every table consulted below must carry
  // it. The cache validity flags are computed against the *previous
  // successful* call's state, then the state is poisoned until this
  // call completes — an error can therefore never leave half-rolled
  // tables behind as apparently valid.
  ++swap_epoch_;
  std::optional<uint64_t> fingerprint;
  if (euclidean != nullptr &&
      (options_.incremental_rollover || options_.kd_prune)) {
    fingerprint = DatasetSwapFingerprint(dataset, *euclidean);
  }
  const bool cache_hit = fingerprint.has_value() &&
                         swap_fingerprint_.has_value() &&
                         *swap_fingerprint_ == *fingerprint;
  // Rollover telemetry: handles resolve once per process (the counters
  // are registered lazily on first use), the per-round cost is one
  // relaxed add. A miss here means the whole table set rebuilds.
  {
    static obs::Counter* const rollover_hits =
        obs::MetricsRegistry::Default().GetCounter(
            "ukc_swap_rollover_total", "Swap-table rollover checks by outcome",
            {{"outcome", "hit"}});
    static obs::Counter* const rollover_misses =
        obs::MetricsRegistry::Default().GetCounter(
            "ukc_swap_rollover_total", "Swap-table rollover checks by outcome",
            {{"outcome", "miss"}});
    (cache_hit ? rollover_hits : rollover_misses)->Increment();
  }
  if (!cache_hit) location_tree_.reset();
  const bool have_tables =
      cache_hit && options_.incremental_rollover && base_prev_valid_ &&
      cached_centers_.size() == k && cached_center_coords_.size() == k * dim &&
      center_distances_.size() == k * total &&
      base_without_.size() == k * total && swap_bases_.size() == k;
  std::vector<uint8_t> row_valid(k, 0);
  if (have_tables) {
    for (size_t p = 0; p < k; ++p) {
      row_valid[p] =
          centers[p] == cached_centers_[p] &&
          std::memcmp(euclidean->coords(centers[p]),
                      cached_center_coords_.data() + p * dim,
                      dim * sizeof(double)) == 0;
    }
  }
  swap_fingerprint_.reset();
  base_prev_valid_ = false;

  // 1. Distance of every location to every current center, one row per
  // center (the rows parallelize independently). Rollover: a row whose
  // center id and coordinates are unchanged since the previous call is
  // kept — on a one-swap round only the replaced center's row is
  // recomputed (O(N) kernels instead of O(kN)).
  center_distances_.resize(k * total);
  std::vector<size_t> stale_rows;
  for (size_t p = 0; p < k; ++p) {
    if (!row_valid[p]) stale_rows.push_back(p);
  }
  pool_->ParallelFor(stale_rows.size(), [&](int, size_t index) {
    const size_t c = stale_rows[index];
    double* row = center_distances_.data() + c * total;
    if (euclidean != nullptr) {
      const metric::Norm norm = euclidean->norm();
      const double* target = euclidean->coords(centers[c]);
      for (size_t l = 0; l < total; ++l) {
        row[l] = metric::NormDistanceKernel(norm, euclidean->coords(sites[l]),
                                            target, dim);
      }
    } else {
      for (size_t l = 0; l < total; ++l) {
        row[l] = space.Distance(sites[l], centers[c]);
      }
    }
  });

  // 2. base_without_[p][l] = min over c != p of the distance rows,
  // via a backward suffix pass plus a rolling forward prefix. The
  // previous round's tables move into base_prev_ for the bitwise diff
  // below (min over unchanged inputs is exact, so a recomputed table is
  // bit-equal whenever its inputs are).
  std::swap(base_without_, base_prev_);
  base_without_.resize(k * total);
  suffix_min_.assign((k + 1) * total, std::numeric_limits<double>::infinity());
  for (size_t p = k; p-- > 0;) {
    const double* row = center_distances_.data() + p * total;
    const double* next = suffix_min_.data() + (p + 1) * total;
    double* out = suffix_min_.data() + p * total;
    for (size_t l = 0; l < total; ++l) out[l] = std::min(row[l], next[l]);
  }
  {
    std::vector<double> prefix(total, std::numeric_limits<double>::infinity());
    for (size_t p = 0; p < k; ++p) {
      const double* after = suffix_min_.data() + (p + 1) * total;
      double* out = base_without_.data() + p * total;
      for (size_t l = 0; l < total; ++l) {
        out[l] = std::min(prefix[l], after[l]);
      }
      const double* row = center_distances_.data() + p * total;
      for (size_t l = 0; l < total; ++l) {
        prefix[l] = std::min(prefix[l], row[l]);
      }
    }
  }

  // Positions whose base table changed bitwise need their presorted
  // stream + snapshot (and kd bounds) rebuilt; the rest roll over. On a
  // one-swap round the swapped position's own table — the only one
  // excluding the replaced center — always survives the diff. A table
  // is epoch-stamped exactly where its validity is established: here
  // for a bitwise-unchanged rollover, below after a successful rebuild
  // — so a position that slipped through both is caught by the
  // consultation CHECK.
  std::vector<size_t> stale_tables;
  for (size_t p = 0; p < k; ++p) {
    const bool unchanged =
        have_tables &&
        std::memcmp(base_without_.data() + p * total,
                    base_prev_.data() + p * total,
                    total * sizeof(double)) == 0;
    if (unchanged) {
      swap_bases_[p].epoch = swap_epoch_;
    } else {
      stale_tables.push_back(p);
    }
  }

  // 3. Presort the stale positions' base distances into sequential
  // event streams, shared read-only by all of that position's
  // candidates (the per-worker evaluators supply the radix scratch).
  point_of_.resize(total);
  const size_t* offsets = dataset.offsets().data();
  for (size_t i = 0; i < dataset.n(); ++i) {
    for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
      point_of_[l] = static_cast<uint32_t>(i);
    }
  }
  swap_bases_.resize(k);
  const auto build_table = [&](ExpectedCostEvaluator& evaluator,
                               size_t p) -> Status {
    const std::span<const double> new_row(base_without_.data() + p * total,
                                          total);
    if (have_tables) {
      // The previous round's table is valid for the old row: patch
      // the sorted stream instead of re-sorting from scratch
      // (bitwise identical — see PatchSwapBase).
      UKC_RETURN_IF_ERROR(evaluator.PatchSwapBase(
          dataset,
          std::span<const double>(base_prev_.data() + p * total, total),
          new_row, point_of_, &swap_bases_[p]));
    } else {
      UKC_RETURN_IF_ERROR(evaluator.BuildSwapBase(
          dataset, new_row, point_of_, &swap_bases_[p]));
    }
    swap_bases_[p].epoch = swap_epoch_;  // Freshly rebuilt: validated.
    return Status::OK();
  };
  if (stale_tables.size() == 1) {
    // A single stale table (the steady rollover round) has nothing to
    // shard per position — build it on the main evaluator instead,
    // whose presort radix fans out over the pool. Bitwise identical:
    // the parallel sort computes the same stable permutation.
    UKC_RETURN_IF_ERROR(build_table(main_evaluator_, stale_tables[0]));
  } else {
    UKC_RETURN_IF_ERROR(
        RunTasks(stale_tables.size(), [&](int worker, size_t index) -> Status {
          return build_table(evaluators_[worker], stale_tables[index]);
        }));
  }

  // Location kd-tree + per-position subtree maxima for the pruned
  // candidate scans. The tree is a pure function of the location
  // coordinates (rebuilt only on a fingerprint miss); the bound rows
  // follow their position's base table.
  const bool prune = options_.kd_prune && euclidean != nullptr;
  bool fill_all_bounds = false;
  if (prune) {
    if (!location_tree_.has_value()) {
      std::vector<double> coords(total * dim);
      for (size_t l = 0; l < total; ++l) {
        const double* src = euclidean->coords(sites[l]);
        std::copy(src, src + dim, coords.data() + l * dim);
      }
      UKC_ASSIGN_OR_RETURN(
          geometry::BoundedKdTree tree,
          geometry::BoundedKdTree::BuildFlat(std::move(coords), dim));
      location_tree_ = std::move(tree);
      fill_all_bounds = true;
    }
    if (node_base_max_.size() != k * total) {
      node_base_max_.resize(k * total);
      fill_all_bounds = true;
    }
    const auto fill_bounds = [&](size_t p) {
      // Masked at the emission threshold: a location whose base
      // distance is below it can never contribute a relevant
      // improvement (see SwapBase), so it must not inflate its
      // ancestors' bounds — this is what prunes whole clusters.
      location_tree_->FillSubtreeMax(
          std::span<const double>(base_without_.data() + p * total, total),
          std::span<double>(node_base_max_.data() + p * total, total),
          swap_bases_[p].threshold);
    };
    if (fill_all_bounds) {
      pool_->ParallelFor(k, [&](int, size_t p) { fill_bounds(p); });
    } else {
      pool_->ParallelFor(stale_tables.size(), [&](int, size_t index) {
        fill_bounds(stale_tables[index]);
      });
    }
  }

  // 4. One task per (position, candidate) pair. With pruning each costs
  // ~m kernel distances (the locations the candidate can improve) plus
  // the tail replay; the reference path pays one kernel distance per
  // location. Every consulted table's epoch is CHECKed against this
  // round's.
  std::vector<double> values(k * pool.size());
  UKC_RETURN_IF_ERROR(RunTasks(
      k * pool.size(), [&](int worker, size_t task) -> Status {
        const size_t p = task / pool.size();
        const size_t c = task % pool.size();
        UKC_CHECK_EQ(swap_bases_[p].epoch, swap_epoch_)
            << "SwapCostMatrix: stale rolled-over base table consulted";
        const std::span<const double> base_row(base_without_.data() + p * total,
                                               total);
        if (prune) {
          UKC_ASSIGN_OR_RETURN(
              values[task],
              evaluators_[worker].UnassignedCostSwapPruned(
                  dataset, base_row, swap_bases_[p], point_of_, pool[c],
                  *location_tree_,
                  std::span<const double>(node_base_max_.data() + p * total,
                                          total)));
        } else {
          UKC_ASSIGN_OR_RETURN(
              values[task],
              evaluators_[worker].UnassignedCostSwapPresorted(
                  dataset, base_row, swap_bases_[p], point_of_, pool[c]));
        }
        return Status::OK();
      }));

  // Success: publish this round's state for the next call to roll from.
  if (fingerprint.has_value()) {
    swap_fingerprint_ = fingerprint;
    cached_centers_ = centers;
    cached_center_coords_.resize(k * dim);
    for (size_t p = 0; p < k; ++p) {
      const double* src = euclidean->coords(centers[p]);
      std::copy(src, src + dim, cached_center_coords_.data() + p * dim);
    }
    base_prev_valid_ = true;
  }
  return values;
}

Status ParallelCandidateEvaluator::ApplyDatasetEdit(
    const uncertain::UncertainDataset& dataset, const DatasetEdit& edit) {
  // Poison helper: an inconsistent half-edited cache must read as "no
  // cache" — the next SwapCostMatrix call then rebuilds from scratch,
  // which is always correct.
  const auto drop_cache = [this]() {
    swap_fingerprint_.reset();
    base_prev_valid_ = false;
    location_tree_.reset();
  };
  // Without published cached state there is nothing to roll; leave the
  // (absent) cache alone. base_prev_valid_ going false while the
  // fingerprint is set cannot happen outside a failed call, which
  // already poisoned.
  if (!swap_fingerprint_.has_value() || !base_prev_valid_) return Status::OK();
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  if (euclidean == nullptr || !options_.incremental_rollover) {
    // The cached state cannot describe this dataset (fingerprints are
    // Euclidean-only) or rollover is off: reference behavior is a full
    // rebuild next call.
    drop_cache();
    return Status::OK();
  }
  const size_t k = cached_centers_.size();
  const size_t dim = euclidean->dim();
  const size_t new_total = dataset.total_locations();
  if (edit.location_end <= edit.location_begin) {
    return Status::InvalidArgument(
        "ApplyDatasetEdit: edit location range must be non-empty");
  }
  const size_t span = edit.location_end - edit.location_begin;
  const size_t old_total = edit.is_insert ? new_total - span : new_total + span;
  if (edit.is_insert) {
    // The edit must describe the dataset's actual tail.
    if (edit.point + 1 != dataset.n() ||
        edit.location_begin != dataset.offsets()[edit.point] ||
        edit.location_end != new_total) {
      return Status::InvalidArgument(
          "ApplyDatasetEdit: insert edit does not match the dataset tail");
    }
  } else if (edit.location_end > old_total || edit.point >= dataset.n() + 1) {
    return Status::InvalidArgument(
        "ApplyDatasetEdit: delete edit out of the pre-edit range");
  }
  if (k == 0 || center_distances_.size() != k * old_total ||
      base_without_.size() != k * old_total ||
      cached_center_coords_.size() != k * dim || swap_bases_.size() != k) {
    // Cached state does not describe the pre-edit instance (e.g. two
    // edits were applied between calls, or the sizes never matched) —
    // refuse to guess.
    drop_cache();
    return Status::OK();
  }
  // Evaluator scratch must cover the grown instance before EditSwapBase
  // runs (same sizing protocol as SwapCostMatrix).
  if (dataset.n() > reserved_points_ || new_total > reserved_locations_) {
    reserved_points_ = std::max(reserved_points_, dataset.n());
    reserved_locations_ = std::max(reserved_locations_, new_total);
    for (ExpectedCostEvaluator& evaluator : evaluators_) {
      evaluator.ReserveScratch(reserved_points_, reserved_locations_);
    }
    main_evaluator_.ReserveScratch(reserved_points_, reserved_locations_);
  }
  const metric::SiteId* sites = dataset.flat_sites().data();
  const metric::Norm norm = euclidean->norm();

  // 1. Re-stride the k distance rows to the post-edit width. Retained
  // entries are copied bytes; only the inserted locations run the
  // kernel — against the CACHED center coordinates, so the rows stay
  // exactly what a full recompute at those coordinates would produce.
  {
    std::vector<double> rows(k * new_total);
    pool_->ParallelFor(k, [&](int, size_t p) {
      const double* old_row = center_distances_.data() + p * old_total;
      double* row = rows.data() + p * new_total;
      if (edit.is_insert) {
        std::copy(old_row, old_row + old_total, row);
        const double* target = cached_center_coords_.data() + p * dim;
        for (size_t l = edit.location_begin; l < edit.location_end; ++l) {
          row[l] = metric::NormDistanceKernel(norm, euclidean->coords(sites[l]),
                                              target, dim);
        }
      } else {
        std::copy(old_row, old_row + edit.location_begin, row);
        std::copy(old_row + edit.location_end, old_row + old_total,
                  row + edit.location_begin);
      }
    });
    center_distances_ = std::move(rows);
  }

  // 2. The same re-stride for the per-position base tables. The
  // inserted tail is min over the other k-1 rows — min over a set is
  // order-invariant bitwise (exact in floating point), so these entries
  // equal what the next call's suffix/prefix recompute produces, and
  // the bitwise diff there classifies every table as unchanged.
  {
    std::vector<double> bases(k * new_total);
    pool_->ParallelFor(k, [&](int, size_t p) {
      const double* old_base = base_without_.data() + p * old_total;
      double* base = bases.data() + p * new_total;
      if (edit.is_insert) {
        std::copy(old_base, old_base + old_total, base);
        for (size_t l = edit.location_begin; l < edit.location_end; ++l) {
          double best = std::numeric_limits<double>::infinity();
          for (size_t c = 0; c < k; ++c) {
            if (c == p) continue;
            best = std::min(best, center_distances_[c * new_total + l]);
          }
          base[l] = best;
        }
      } else {
        std::copy(old_base, old_base + edit.location_begin, base);
        std::copy(old_base + edit.location_end, old_base + old_total,
                  base + edit.location_begin);
      }
    });
    base_without_ = std::move(bases);
  }

  // 3. Location → point map for the post-edit CSR layout.
  point_of_.resize(new_total);
  const size_t* offsets = dataset.offsets().data();
  for (size_t i = 0; i < dataset.n(); ++i) {
    for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
      point_of_[l] = static_cast<uint32_t>(i);
    }
  }

  // 4. Sparse-edit every position's presorted stream + ladder. A
  // failure here leaves streams for two different instances side by
  // side — poison so the next call rebuilds.
  const Status edited =
      RunTasks(k, [&](int worker, size_t p) -> Status {
        return evaluators_[worker].EditSwapBase(
            dataset,
            std::span<const double>(base_without_.data() + p * new_total,
                                    new_total),
            point_of_, edit, &swap_bases_[p]);
      });
  if (!edited.ok()) {
    drop_cache();
    return edited;
  }

  // 5. The kd-tree indexes the pre-edit location set; drop it (the next
  // call rebuilds it, since the published fingerprint below matches and
  // the tree-absence path fills all bounds). Publish the POST-edit
  // fingerprint: the rolled tables now describe exactly this instance.
  location_tree_.reset();
  swap_fingerprint_ = DatasetSwapFingerprint(dataset, *euclidean);
  return Status::OK();
}

size_t ParallelCandidateEvaluator::SwapLadderBytes() const {
  size_t bytes = 0;
  for (const ExpectedCostEvaluator::SwapBase& base : swap_bases_) {
    bytes += base.LadderBytes();
  }
  return bytes;
}

size_t ParallelCandidateEvaluator::SwapBaseMemoryBytes() const {
  size_t bytes = SwapLadderBytes();
  for (const ExpectedCostEvaluator::SwapBase& base : swap_bases_) {
    bytes += base.events.capacity() * sizeof(ExpectedCostEvaluator::Event);
    bytes += base.bottleneck.capacity() * sizeof(uint8_t);
    bytes += base.deep_points.capacity() * sizeof(uint32_t);
    bytes += base.deep_first.capacity() * sizeof(double);
  }
  return bytes;
}

uint64_t ParallelCandidateEvaluator::LadderEscalations() const {
  uint64_t escalations = main_evaluator_.ladder_escalations();
  for (const ExpectedCostEvaluator& evaluator : evaluators_) {
    escalations += evaluator.ladder_escalations();
  }
  return escalations;
}

uint64_t ParallelCandidateEvaluator::LadderReplayedEvents() const {
  uint64_t events = main_evaluator_.ladder_replayed_events();
  for (const ExpectedCostEvaluator& evaluator : evaluators_) {
    events += evaluator.ladder_replayed_events();
  }
  return events;
}

Status ParallelCandidateEvaluator::ForEachTask(
    size_t count, const std::function<Status(ExpectedCostEvaluator&, size_t)>& fn) {
  return RunTasks(count, [&](int worker, size_t task) -> Status {
    return fn(evaluators_[worker], task);
  });
}

}  // namespace cost
}  // namespace ukc
