#include "cost/assignment.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "metric/euclidean_space.h"

namespace ukc {
namespace cost {

std::string AssignmentRuleToString(AssignmentRule rule) {
  switch (rule) {
    case AssignmentRule::kExpectedDistance:
      return "ED";
    case AssignmentRule::kExpectedPoint:
      return "EP";
    case AssignmentRule::kOneCenter:
      return "OC";
  }
  return "?";
}

Result<Assignment> AssignExpectedDistance(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers, int threads,
    ThreadPool* shared_pool) {
  if (centers.empty()) {
    return Status::InvalidArgument("AssignExpectedDistance: no centers");
  }
  Assignment assignment(dataset.n(), metric::kInvalidSite);
  ScopedPool pool(shared_pool, threads);
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  if (euclidean != nullptr) {
    // Flat path: gather the center coordinates once, then the O(n z k)
    // triple loop runs entirely over contiguous memory with the
    // dimension-specialized kernel — no virtual dispatch inside. The
    // per-point argmins are independent, so they shard over the pool.
    const size_t dim = euclidean->dim();
    const metric::Norm norm = euclidean->norm();
    std::vector<double> center_coords;
    euclidean->GatherCoords(centers, &center_coords);
    const metric::SiteId* sites = dataset.flat_sites().data();
    const double* probabilities = dataset.flat_probabilities().data();
    const size_t* offsets = dataset.offsets().data();
    pool->ParallelFor(dataset.n(), [&](int, size_t i) {
      size_t best = 0;
      double best_value = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < centers.size(); ++c) {
        const double* center = center_coords.data() + c * dim;
        double value = 0.0;
        for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
          value += probabilities[l] *
                   metric::NormDistanceKernel(norm, euclidean->coords(sites[l]),
                                              center, dim);
        }
        if (value < best_value) {
          best_value = value;
          best = c;
        }
      }
      assignment[i] = centers[best];
    });
    return assignment;
  }
  pool->ParallelFor(dataset.n(), [&](int, size_t i) {
    assignment[i] =
        dataset.point(i).MinExpectedDistanceSite(dataset.space(), centers);
  });
  return assignment;
}

Result<Assignment> AssignBySurrogate(const uncertain::UncertainDataset& dataset,
                                     const std::vector<metric::SiteId>& surrogates,
                                     const std::vector<metric::SiteId>& centers) {
  if (centers.empty()) {
    return Status::InvalidArgument("AssignBySurrogate: no centers");
  }
  if (surrogates.size() != dataset.n()) {
    return Status::InvalidArgument(
        StrFormat("AssignBySurrogate: %zu surrogates for %zu points",
                  surrogates.size(), dataset.n()));
  }
  Assignment assignment(dataset.n(), metric::kInvalidSite);
  for (size_t i = 0; i < dataset.n(); ++i) {
    assignment[i] = dataset.space().NearestInSet(surrogates[i], centers);
  }
  return assignment;
}

Status ValidateAssignment(const uncertain::UncertainDataset& dataset,
                          const std::vector<metric::SiteId>& centers,
                          const Assignment& assignment) {
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument(
        StrFormat("assignment covers %zu points, dataset has %zu",
                  assignment.size(), dataset.n()));
  }
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (std::find(centers.begin(), centers.end(), assignment[i]) ==
        centers.end()) {
      return Status::InvalidArgument(
          StrFormat("assignment[%zu]=%d is not one of the centers", i,
                    assignment[i]));
    }
  }
  return Status::OK();
}

}  // namespace cost
}  // namespace ukc
