#include "cost/assignment.h"

#include <algorithm>

#include "common/strings.h"

namespace ukc {
namespace cost {

std::string AssignmentRuleToString(AssignmentRule rule) {
  switch (rule) {
    case AssignmentRule::kExpectedDistance:
      return "ED";
    case AssignmentRule::kExpectedPoint:
      return "EP";
    case AssignmentRule::kOneCenter:
      return "OC";
  }
  return "?";
}

Result<Assignment> AssignExpectedDistance(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers) {
  if (centers.empty()) {
    return Status::InvalidArgument("AssignExpectedDistance: no centers");
  }
  Assignment assignment(dataset.n(), metric::kInvalidSite);
  for (size_t i = 0; i < dataset.n(); ++i) {
    assignment[i] =
        dataset.point(i).MinExpectedDistanceSite(dataset.space(), centers);
  }
  return assignment;
}

Result<Assignment> AssignBySurrogate(const uncertain::UncertainDataset& dataset,
                                     const std::vector<metric::SiteId>& surrogates,
                                     const std::vector<metric::SiteId>& centers) {
  if (centers.empty()) {
    return Status::InvalidArgument("AssignBySurrogate: no centers");
  }
  if (surrogates.size() != dataset.n()) {
    return Status::InvalidArgument(
        StrFormat("AssignBySurrogate: %zu surrogates for %zu points",
                  surrogates.size(), dataset.n()));
  }
  Assignment assignment(dataset.n(), metric::kInvalidSite);
  for (size_t i = 0; i < dataset.n(); ++i) {
    assignment[i] = dataset.space().NearestInSet(surrogates[i], centers);
  }
  return assignment;
}

Status ValidateAssignment(const uncertain::UncertainDataset& dataset,
                          const std::vector<metric::SiteId>& centers,
                          const Assignment& assignment) {
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument(
        StrFormat("assignment covers %zu points, dataset has %zu",
                  assignment.size(), dataset.n()));
  }
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (std::find(centers.begin(), centers.end(), assignment[i]) ==
        centers.end()) {
      return Status::InvalidArgument(
          StrFormat("assignment[%zu]=%d is not one of the centers", i,
                    assignment[i]));
    }
  }
  return Status::OK();
}

}  // namespace cost
}  // namespace ukc
